#!/usr/bin/env python3
"""Distributed cache invalidation vs leasing (§4.1–4.2).

A file server keeps client caches consistent over one LBRM channel:
invalidations arrive reliably, a lost invalidation is recovered before
anyone serves stale data, and a channel outage degrades exactly like a
lease expiry — without per-file lease renewals.

Run:  python examples/cache_invalidation.py
"""

from __future__ import annotations

from repro.apps.cache import CacheClient, InvalidationServer, LeaseClient
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def main() -> None:
    dep = LbrmDeployment(DeploymentSpec(n_sites=4, receivers_per_site=3, seed=33))
    dep.start()
    dep.advance(0.1)

    server = InvalidationServer()
    clients = [CacheClient() for _ in dep.receivers]
    for client in clients:
        for key in ("etc/passwd", "home/readme", "var/data"):
            client.put(key, b"v1")

    print(f"{len(clients)} clients cache 3 files each; the server modifies one ...")
    dep.send(server.refresh("home/readme", b"v2"))
    dep.advance(1.0)
    for node, client in zip(dep.receiver_nodes, clients):
        for delivery in node.delivered:
            client.on_deliver(delivery)
    fresh = sum(1 for c in clients if c.get("home/readme") == b"v2")
    print(f"  clients now holding v2: {fresh}/{len(clients)}")

    print("\nsite2's tail circuit drops the next invalidation ...")
    dep.burst_site("site2", 0.1)
    dep.send(server.invalidate("etc/passwd"))
    dep.advance(3.0)
    for node, client in zip(dep.receiver_nodes, clients):
        for delivery in node.delivered:
            client.on_deliver(delivery)
    stale = sum(1 for c in clients if c.get("etc/passwd") is not None)
    print(f"  clients still serving the stale file after recovery: {stale} "
          f"(cross-site NACKs: {dep.trace.cross_site_nacks()})")

    # The lease comparison (§4.2): keeping 3 files valid for 10 minutes.
    lease = LeaseClient(lease_term=10.0)
    renewals = lease.renewals_required(n_keys=3, duration=600.0)
    per_client_lbrm = dep.receivers[0].stats["heartbeats_received"]
    print("\nbookkeeping comparison over 10 idle minutes, per client:")
    print(f"  leases (10s term, 3 files):   {renewals:.0f} renewal round-trips")
    dep.advance(600.0)
    hb = dep.receivers[0].stats["heartbeats_received"] - per_client_lbrm
    print(f"  LBRM channel:                 {hb} shared heartbeats, 0 renewals")

    print("\nchannel failure behaves like a lease timeout:")
    dep.kill_primary()
    # silence the source too: total channel outage for the receivers
    dep.source_node.machines.clear()
    dep.advance(130.0)  # > 2x h_max of silence
    client = clients[0]
    for event in dep.receiver_nodes[0].events:
        client.on_event(event)
    print(f"  client connected: {client.connected}; "
          f"cached reads now miss: {client.get('var/data') is None}")


if __name__ == "__main__":
    main()
