#!/usr/bin/env python3
"""The paper's motivating scenario: dynamic terrain in DIS (§1).

A battlefield of terrain entities is disseminated over LBRM.  Most of
the time nothing changes and the variable heartbeat keeps the channel
nearly silent; when the bridge is destroyed mid-exercise, every tank
sees it within a fraction of a second — including the site whose tail
circuit dropped the update.

Run:  python examples/dis_terrain.py
"""

from __future__ import annotations

import random

from repro.apps.dis import DisScenario, TerrainDatabase, scenario_packet_rates
from repro.core.events import RecoveryComplete
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def main() -> None:
    # --- the paper's §2.1.2 arithmetic at full STOW-97 scale ------------
    rates = scenario_packet_rates()
    print("STOW-97 scale scenario (100k dynamic + 100k terrain entities):")
    print(f"  total traffic, fixed heartbeat:    {rates.total_fixed:>10,.0f} pkt/s")
    print(f"  of which terrain heartbeats:       {rates.terrain_heartbeats_fixed:>10,.0f} pkt/s "
          f"({rates.heartbeat_fraction_fixed:.0%})")
    print(f"  total traffic, variable heartbeat: {rates.total_variable:>10,.0f} pkt/s")
    print(f"  heartbeat reduction factor:        {rates.heartbeat_reduction:>10.1f}x")

    # --- a live (scaled) exercise on the simulated WAN -------------------
    print("\nrunning a live exercise: 1 terrain group, 4 sites x 5 tanks ...")
    dep = LbrmDeployment(DeploymentSpec(n_sites=4, receivers_per_site=5, seed=7))
    dep.start()
    dep.advance(0.1)

    scenario = DisScenario(n_terrain=40, terrain_interval=60.0, rng=random.Random(7))
    bridge = scenario.bridges()[0]
    databases = [TerrainDatabase() for _ in dep.receivers]

    # Disseminate the initial battlefield.
    for entity in scenario.entities.values():
        dep.send(entity.state.encode())
        dep.advance(0.02)
    dep.advance(2.0)

    # A quiet stretch: watch the heartbeat rate collapse.
    hb_before = dep.sender.stats["heartbeats_sent"]
    dep.advance(120.0)
    hb_idle = dep.sender.stats["heartbeats_sent"] - hb_before
    print(f"  heartbeats during 120s of static terrain: {hb_idle} "
          f"(fixed scheme would send {int(120 / 0.25)})")

    # The bridge is destroyed — and site3 drops the packet.
    print(f"\ndestroying bridge entity #{bridge.entity_id}; site3's tail circuit is congested ...")
    site3 = dep.network.site("site3")
    site3.tail_down.loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.1)])
    dep.send(bridge.destroy().encode())
    dep.advance(2.0)

    for node, db in zip(dep.receiver_nodes, databases):
        for delivery in node.delivered:
            db.apply(delivery.payload)

    aware = sum(1 for db in databases if db.get(bridge.entity_id)
                and db.get(bridge.entity_id).condition == 0)
    print(f"  tanks that see the bridge destroyed: {aware}/{len(databases)}")

    latencies = [e.latency for node in dep.receiver_nodes for e in node.events_of(RecoveryComplete)]
    if latencies:
        print(f"  site3 recovery latency: max {max(latencies)*1000:.1f} ms "
              "(detection at the first h_min heartbeat + local logger RTT)")
    print(f"  cross-site NACKs: {dep.trace.cross_site_nacks()}")


if __name__ == "__main__":
    main()
