#!/usr/bin/env python3
"""Appendix A: WWW page invalidation over multicast.

A Mosaic-style browser caches pages, subscribes to each page's
invalidation multicast address (from the first-line HTML comment), and
highlights RELOAD when the server announces a change.  The text protocol
is the paper's exactly: TRANS / RETRANS, UPDATE / HEARTBEAT.

Run:  python examples/web_invalidation.py
"""

from __future__ import annotations

from repro.apps.webinval import BrowserClient, HttpInvalidationServer, WebMessage


def main() -> None:
    server = HttpInvalidationServer(group_address="234.12.29.72")
    browser = BrowserClient()

    url = "http://www-DSG.Stanford.EDU/groupMembers.html"
    html = server.publish(url, "<h1>Group Members</h1><ul><li>Holbrook</li></ul>")
    print("document first line:", html.splitlines()[0])

    address = browser.display(url, server.fetch(url))
    print(f"browser displayed {url}")
    print(f"  -> subscribed to multicast group {address}")

    # The channel idles: the server heartbeats (TRANS:seq.N:HEARTBEAT).
    for n in (1, 2, 3):
        beat = server.heartbeat(n)
        print("heartbeat on the wire:   ", beat.encode())
        browser.on_message(beat)
    print("RELOAD highlighted?", browser.needs_reload(url))

    # The document changes: an UPDATE is multicast.
    update = server.modify(url, "<h1>Group Members</h1><ul><li>Holbrook</li><li>Singhal</li></ul>")
    print("\nupdate on the wire:      ", update.encode())
    browser.on_message(update)
    print("RELOAD highlighted?", browser.needs_reload(url))

    # A second client missed the update; it asks the server-host logging
    # process, which answers with RETRANS-tagged messages.
    replies = server.retransmit([update.seq])
    print("retransmission on the wire:", replies[0].encode())
    late_browser = BrowserClient()
    late_browser.display(url, html)  # displaying the stale copy
    late_browser.on_message(replies[0])
    print("late client RELOAD highlighted?", late_browser.needs_reload(url))

    # The user reloads; the flag clears.
    browser.reload(url, server.fetch(url))
    print("\nafter reload, RELOAD highlighted?", browser.needs_reload(url))
    print("browser cache now contains:", browser.cached(url).splitlines()[1])


if __name__ == "__main__":
    main()
