#!/usr/bin/env python3
"""LBRM on real UDP multicast (loopback) — no simulator involved.

Starts a primary logger, a source, and two receivers as asyncio
endpoints with actual sockets; one receiver drops off the group for a
packet and recovers it from the logging server.

Run:  python examples/asyncio_live.py
"""

from __future__ import annotations

import asyncio

from repro.aio import AioNode, GroupDirectory, parse_token
from repro.core.config import LbrmConfig, ReceiverConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender

GROUP = "live/demo/1"


async def start_receiver(directory, cfg, logger_addr, name):
    node = AioNode(directory=directory)
    await node.start()
    receiver = LbrmReceiver(
        GROUP,
        ReceiverConfig(nack_retry=0.2),
        logger_chain=(logger_addr,),
        heartbeat=cfg.heartbeat,
        parse_token=parse_token,
    )
    node.machines.append(receiver)
    await node.run_machine(receiver.start, node.now)
    print(f"  {name} listening on {node.token}")
    return node, receiver


async def main() -> None:
    directory = GroupDirectory()
    cfg = LbrmConfig()
    maddr, mport = directory.resolve(GROUP)
    print(f"group {GROUP!r} -> multicast {maddr}:{mport}")

    logger_node = AioNode(directory=directory)
    await logger_node.start()
    logger = LogServer(GROUP, addr_token=logger_node.token, config=cfg,
                       role=LoggerRole.PRIMARY, level=0)
    logger_node.machines.append(logger)
    await logger_node.run_machine(logger.start, logger_node.now)
    print(f"primary logger on {logger_node.token}")

    sender_node = AioNode(directory=directory)
    await sender_node.start()
    sender = LbrmSender(GROUP, cfg, primary=logger_node.address,
                        addr_token=sender_node.token)
    sender_node.machines.append(sender)
    await sender_node.run_machine(sender.start, sender_node.now)
    logger.set_source(sender_node.address)
    print(f"source on {sender_node.token}")

    rx1_node, rx1 = await start_receiver(directory, cfg, logger_node.address, "receiver-1")
    rx2_node, rx2 = await start_receiver(directory, cfg, logger_node.address, "receiver-2")
    await asyncio.sleep(0.1)

    print("\nsending update 1 ...")
    await sender_node.send(sender, b"terrain: bridge intact")
    for name, node in (("receiver-1", rx1_node), ("receiver-2", rx2_node)):
        d = await asyncio.wait_for(node.delivery_queue.get(), 2.0)
        print(f"  {name} got seq {d.seq}: {d.payload.decode()}")
    await asyncio.sleep(0.1)
    print(f"  source buffer released through seq {sender.released_up_to} (logger ACKed)")

    print("\nreceiver-2 walks out of range; sending update 2 ...")
    rx2_node.leave_group(GROUP)
    await asyncio.sleep(0.05)
    await sender_node.send(sender, b"terrain: bridge DESTROYED")
    d = await asyncio.wait_for(rx1_node.delivery_queue.get(), 2.0)
    print(f"  receiver-1 got seq {d.seq}: {d.payload.decode()}")

    print("receiver-2 reconnects; the next packet reveals its gap ...")
    await rx2_node.join_group(GROUP)
    await asyncio.sleep(0.05)
    await sender_node.send(sender, b"terrain: crater smoking")
    got = {}
    for _ in range(2):
        d = await asyncio.wait_for(rx2_node.delivery_queue.get(), 3.0)
        got[d.seq] = (d.payload.decode(), d.recovered)
    for seq in sorted(got):
        payload, recovered = got[seq]
        tag = "RECOVERED from logger" if recovered else "live multicast"
        print(f"  receiver-2 got seq {seq}: {payload}  [{tag}]")
    print(f"  receiver-2 recoveries: {rx2.stats['recoveries']}, "
          f"NACKs sent: {rx2.stats['nacks_sent']}")

    for node in (logger_node, sender_node, rx1_node, rx2_node):
        await node.close()
    print("\ndone — everything above crossed real UDP sockets.")


if __name__ == "__main__":
    asyncio.run(main())
