#!/usr/bin/env python3
"""Primary-log failure and replica promotion (§2.2.3).

The primary logging server is replicated; the source discards data only
when a replica holds it.  When the primary dies mid-stream, the source
locates the most up-to-date replica, promotes it, hands over the
unreplicated tail, and service continues — receivers that cached the old
primary's address re-learn the new one from the source.

Run:  python examples/failover_demo.py
"""

from __future__ import annotations

from repro.core.events import PrimaryFailover, PromotedToPrimary
from repro.core.logger import LoggerRole
from repro.simnet import DeploymentSpec, LbrmDeployment


def main() -> None:
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=3, receivers_per_site=3, n_replicas=2, seed=99,
    ))
    dep.start()
    dep.advance(0.2)

    print("publishing updates 1-3 with a replicated primary log ...")
    for i in (1, 2, 3):
        dep.send(f"update {i}".encode())
        dep.advance(0.3)
    print(f"  primary log: {len(dep.primary.log)} entries; "
          f"replicas: {[len(r.log) for r in dep.replicas]}")
    print(f"  source released through seq {dep.sender.released_up_to} "
          "(replica-safe, §2.2.3)")

    print("\nkilling the primary logging server ...")
    dep.kill_primary()
    dep.send(b"update 4 (primary is dead)")
    dep.advance(6.0)  # liveness timeout -> vote -> promote -> handover

    failover = dep.source_node.events_of(PrimaryFailover)[0]
    print(f"  source timed out on {failover.old_primary}, "
          f"promoted {failover.new_primary} "
          f"(resent {failover.resent_packets} buffered packet(s))")
    promoted = [r for r in dep.replicas if r.role is LoggerRole.PRIMARY][0]
    promo_events = [e for node in dep.replica_nodes for e in node.events_of(PromotedToPrimary)]
    print(f"  replica acknowledged promotion, serving from seq {promo_events[0].from_seq}")
    print(f"  new primary log: {len(promoted.log)} entries")

    print("\npublishing update 5 through the new primary ...")
    dep.send(b"update 5")
    dep.advance(2.0)
    print(f"  receivers holding all 5 updates: {dep.receivers_with(5)}/{len(dep.receivers)}")
    print(f"  source released through seq {dep.sender.released_up_to}, "
          f"unacked buffer: {dep.sender.unacked}")
    print("\ncomplete log loss would now require the new primary and its "
          "remaining replica to fail simultaneously — \"a rare event\".")


if __name__ == "__main__":
    main()
