#!/usr/bin/env python3
"""Fine-grained groups: one LBRM group per terrain entity (§1, §2.2.1 fn 5).

DIS assigns every terrain entity its own multicast group, so logging
must be shared infrastructure: this demo runs 12 entity groups through
ONE primary logging process and ONE site logging process per site, each
a MultiGroupProcess serving all groups at once — primary for all here,
and in general "primary logger for one group and secondary logger for
another".

Run:  python examples/multi_group.py
"""

from __future__ import annotations

from repro.apps.dis import TerrainDatabase, TerrainEntity, TerrainKind
from repro.core import LbrmConfig, LbrmReceiver, LbrmSender, LogServer, LoggerRole, MultiGroupProcess
from repro.simnet import BurstLoss, Network, RngStreams, SimNode, Simulator

N_ENTITIES = 12


def main() -> None:
    sim = Simulator()
    streams = RngStreams(2026)
    net = Network(sim, streams=streams)
    cfg = LbrmConfig()
    groups = [f"terrain/{i}" for i in range(1, N_ENTITIES + 1)]

    s0 = net.add_site("hq")
    s1 = net.add_site("field")

    primary_proc = MultiGroupProcess()
    for group in groups:
        primary_proc.add(group, LogServer(group, addr_token="primary", config=cfg,
                                          role=LoggerRole.PRIMARY, source="source", level=0))
    SimNode(net, net.add_host("primary", s0), [primary_proc]).start()

    source_proc = MultiGroupProcess()
    senders = {}
    for group in groups:
        sender = LbrmSender(group, cfg, primary="primary", addr_token="source")
        senders[group] = sender
        source_proc.add(group, sender)
    source_node = SimNode(net, net.add_host("source", s0), [source_proc])
    source_node.start()

    site_proc = MultiGroupProcess()
    for group in groups:
        site_proc.add(group, LogServer(group, addr_token="field-logger", config=cfg,
                                       role=LoggerRole.SECONDARY, parent="primary",
                                       source="source", level=1,
                                       rng=streams.stream(f"lg:{group}")))
    SimNode(net, net.add_host("field-logger", s1), [site_proc]).start()

    tank_proc = MultiGroupProcess()
    tank_receivers = {}
    for group in groups:
        rx = LbrmReceiver(group, cfg.receiver, logger_chain=("field-logger", "primary"),
                          source="source", heartbeat=cfg.heartbeat)
        tank_receivers[group] = rx
        tank_proc.add(group, rx)
    tank_node = SimNode(net, net.add_host("tank", s1), [tank_proc])
    tank_node.start()

    entities = {g: TerrainEntity(i + 1, TerrainKind.BRIDGE if i % 4 == 0 else TerrainKind.TREE,
                                 float(i), 0.0)
                for i, g in enumerate(groups)}

    print(f"disseminating {N_ENTITIES} entity states, one group each ...")
    sim.run_until(0.1)
    for group, entity in entities.items():
        source_node.run_machine(senders[group].send, entity.state.encode(), sim.now)
        sim.run_until(sim.now + 0.02)
    sim.run_until(sim.now + 2.0)
    held = sum(1 for rx in tank_receivers.values() if rx.tracker.has(1))
    print(f"  tank holds {held}/{N_ENTITIES} entity states")
    print(f"  one logging process logged all groups: "
          f"{sum(len(m.log) for m in (site_proc.machines_for(g)[0] for g in groups))} entries")

    bridge_group = groups[0]
    print(f"\ndestroying {bridge_group}'s bridge while the field tail circuit is congested ...")
    net.site("field").tail_down.loss = BurstLoss([(sim.now, sim.now + 0.1)])
    destroyed = entities[bridge_group].destroy()
    source_node.run_machine(senders[bridge_group].send, destroyed.encode(), sim.now)
    sim.run_until(sim.now + 5.0)

    db = TerrainDatabase()
    for delivery in tank_node.delivered:
        db.apply(delivery.payload)
    state = db.get(1)
    print(f"  tank's view of the bridge: condition={state.condition} "
          f"({'DESTROYED' if state.condition == 0 else 'intact'})")
    rx = tank_receivers[bridge_group]
    print(f"  recovery stats for that group: "
          f"{ {k: v for k, v in rx.stats.items() if v} }")
    idle = senders[groups[1]]
    print(f"  an idle group's sender meanwhile sent {idle.stats['data_sent']} data "
          f"and {idle.stats['heartbeats_sent']} heartbeats — fine-grained groups stay cheap.")


if __name__ == "__main__":
    main()
