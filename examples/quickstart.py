#!/usr/bin/env python3
"""Quickstart: an LBRM group on the simulated WAN in ~40 lines.

Builds the paper's canonical deployment shape (scaled down), multicasts
an update, injects a whole-site loss on a tail circuit, and watches the
distributed logging hierarchy repair it with a single cross-site NACK.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def main() -> None:
    # 5 sites x 4 receivers, a secondary logger per site, the primary
    # logger co-sited with the source (Figure 6's architecture).
    dep = LbrmDeployment(DeploymentSpec(n_sites=5, receivers_per_site=4, seed=42))
    dep.start()
    dep.advance(0.1)

    print("sending update #1 to", len(dep.receivers), "receivers ...")
    dep.send(b"bridge 17: intact")
    dep.advance(1.0)
    print(f"  delivered to {dep.receivers_with(1)}/{len(dep.receivers)}")
    print(f"  source buffer released through seq {dep.sender.released_up_to}")

    # Congestion bursts on site2's incoming tail circuit: the entire
    # site — receivers and its logger — misses the next packet.
    print("\ninjecting a 100ms loss burst on site2's tail circuit ...")
    site2 = dep.network.site("site2")
    site2.tail_down.loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.1)])

    dep.send(b"bridge 17: DESTROYED")
    dep.advance(3.0)

    print(f"  delivered to {dep.receivers_with(2)}/{len(dep.receivers)} after recovery")
    print(f"  cross-site NACKs on the WAN: {dep.trace.cross_site_nacks()} "
          "(the site logger's single upstream request)")
    print(f"  heartbeats sent so far: {dep.sender.stats['heartbeats_sent']} "
          "(variable schedule: clustered after data, backed off while idle)")

    rx = dep.receivers[4]  # first receiver at site2
    print("\nsite2 receiver stats:", {k: v for k, v in rx.stats.items() if v})


if __name__ == "__main__":
    main()
