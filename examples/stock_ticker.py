#!/usr/bin/env python3
"""Stock-quote dissemination (§4.1) with statistical acknowledgement.

A quote feed multicasts trade prints to broker terminals across many
sites.  Statistical acking keeps the source's ACK load at ~k regardless
of audience size, and a widespread loss is repaired with one immediate
re-multicast instead of a NACK storm.

Run:  python examples/stock_ticker.py
"""

from __future__ import annotations

import random

from repro.apps.ticker import QuoteBoard, QuoteFeed
from repro.core.config import LbrmConfig, StatAckConfig
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def main() -> None:
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=10, epoch_length=64))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=30, receivers_per_site=2, enable_statack=True, config=cfg, seed=12,
    ))
    dep.start()
    dep.advance(3.0)  # group-size probing + first epoch
    sa = dep.sender.statack
    print(f"statistical acking bootstrap: estimated {sa.group_size_estimate:.0f} site loggers "
          f"(actual 30), {len(sa.designated_ackers)} designated ackers, "
          f"t_wait {sa.t_wait*1000:.0f} ms")

    feed = QuoteFeed(symbols=("ACME", "GLOBEX", "INITECH"), rng=random.Random(1))
    boards = [QuoteBoard() for _ in dep.receivers]

    print(f"\nstreaming 30 quotes to {len(dep.receivers)} terminals at 30 sites ...")
    for i in range(30):
        quote = feed.tick_random()
        if i == 14:
            # flash congestion: 20 of 30 sites lose this print
            now = dep.sim.now
            for s in range(1, 21):
                dep.network.site(f"site{s}").tail_down.loss = BurstLoss([(now, now + 0.05)])
            print(f"  quote #{i+1} ({quote.symbol} @ {quote.price_cents/100:.2f}): "
                  "20 sites congested ...")
        dep.send(quote.encode())
        dep.advance(0.4)
    dep.advance(2.0)

    for node, board in zip(dep.receiver_nodes, boards):
        for delivery in node.delivered:
            board.apply(delivery.payload)

    complete = sum(1 for b in boards if len(b) == 3)
    print(f"\nterminals with a complete 3-symbol book: {complete}/{len(boards)}")
    print(f"source ACK load: {sa.stats['acks_received'] / dep.sender.stats['data_sent']:.1f} "
          f"acks/quote (vs {len(dep.receivers)} under per-receiver positive ACK)")
    print(f"immediate re-multicasts after widespread loss: {dep.sender.stats['remulticasts']}")
    print(f"cross-site NACKs on the WAN: {dep.trace.cross_site_nacks()}")
    sample = boards[0]
    print("\nterminal 0 last prints:",
          {s: f"{sample.last(s).price_cents/100:.2f}" for s in feed.symbols})


if __name__ == "__main__":
    main()
