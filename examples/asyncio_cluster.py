#!/usr/bin/env python3
"""A hierarchical LBRM cluster on real UDP — discovery, site logger, oracle.

Builds the paper's §2.2.2 shape in miniature on loopback multicast:
a source, a primary logger with one replica, one *site secondary*
logger, and three receivers.  The receivers locate their logger at
runtime with expanding-ring discovery (§2.2.1) rather than static
wiring, the site secondary collapses their NACKs and answers repairs
locally, and the whole run is graded live against the protocol
invariants I1–I4 by the same judgement the simulator's chaos campaign
uses.  Mid-stream the site logger is killed; the stream (and the
invariants) must survive, because every receiver's chain escalates to
the primary.

Run:  python examples/asyncio_cluster.py
"""

from __future__ import annotations

import asyncio

from repro.aio.cluster import AioCluster
from repro.chaos.live import LiveOracle
from repro.core.config import DiscoveryConfig, LbrmConfig

GROUP = "live/cluster/1"


async def main() -> None:
    cfg = LbrmConfig()
    cluster = AioCluster(
        GROUP,
        cfg,
        n_receivers=3,
        n_secondaries=1,
        n_replicas=1,
        use_discovery=True,
        discovery=DiscoveryConfig(initial_ttl=1, query_timeout=0.3),
    )
    async with cluster:
        maddr, mport = cluster.directory.resolve(GROUP)
        print(f"group {GROUP!r} -> multicast {maddr}:{mport}")
        print(f"primary logger   {cluster.primary_node.token}")
        print(f"site secondary   {cluster.secondary_nodes[0].token}")
        print(f"log replica      {cluster.replica_nodes[0].token}")

        oracle = LiveOracle(cluster)
        oracle.install()

        await cluster.wait_discovery(timeout=10.0)
        for i, receiver in enumerate(cluster.receivers):
            chain = " -> ".join(f"{h}:{p}" for h, p in receiver.logger_chain)
            print(f"rx{i} discovered recovery chain: {chain}")

        for i in range(4):
            await cluster.publish(f"tick-{i}".encode())
            await asyncio.sleep(0.05)
        for i in range(3):
            await cluster.deliveries(i, 4, timeout=5.0)
        print("4 packets delivered to all receivers via the site logger")

        # Kill the site logger: receivers keep the primary as their
        # escalation target, so the stream must not miss a beat.
        await cluster.secondary_nodes[0].close()
        print("site secondary killed — escalating to primary")
        for i in range(4, 8):
            await cluster.publish(f"tick-{i}".encode())
            await asyncio.sleep(0.05)
        for i in range(3):
            await cluster.deliveries(i, 4, timeout=5.0)
        print("4 more packets delivered with the site logger dead")

        await asyncio.sleep(0.3)
        oracle.assert_ok()
        print("invariants I1-I4 (gap-free delivery, MaxIT bound, log safety, "
              "monotone promotion): all clean")


if __name__ == "__main__":
    asyncio.run(main())
