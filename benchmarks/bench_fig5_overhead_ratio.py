"""Figure 5 — Overhead(Fixed)/Overhead(Variable) vs data interval.

The marked point: at dt = 120 s (the DIS terrain update rate) the
variable heartbeat reduces heartbeat bandwidth by a factor of ~53.
"""

from __future__ import annotations

import pytest

from repro.analysis.heartbeat_math import overhead_ratio
from repro.analysis.report import format_table
from repro.core.config import HeartbeatConfig

DTS = [0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1000.0]


def compute_series():
    cfg = HeartbeatConfig(h_min=0.25, h_max=32.0, backoff=2.0)
    return [(dt, overhead_ratio(dt, cfg)) for dt in DTS]


def test_fig5_overhead_ratio(benchmark, report):
    rows = benchmark(compute_series)
    text = "# Figure 5: Overhead(Fixed)/Overhead(Variable) (h_min=0.25, h_max=32, backoff=2)\n"
    text += format_table(["dt (s)", "ratio"], rows)
    text += "\n\npaper's marked point: dt=120s -> 53.4x   measured: "
    ratio_120 = dict(rows)[120.0]
    text += f"{ratio_120:.1f}x"
    report("fig5_overhead_ratio", text)

    # savings grow with dt
    ratios = [r for _, r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # the paper's DIS point: 53.4x (we measure 53.2-53.3 depending on the
    # fencepost at exactly dt = n*h_min; shape and magnitude match)
    assert ratio_120 == pytest.approx(53.3, rel=0.01)
