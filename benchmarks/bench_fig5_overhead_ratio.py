"""Figure 5 — Overhead(Fixed)/Overhead(Variable) vs data interval.

The marked point: at dt = 120 s (the DIS terrain update rate) the
variable heartbeat reduces heartbeat bandwidth by a factor of ~53.

Counts are *measured*, not closed-form: each (scheme, dt) pair drives
the real :class:`VariableHeartbeatSchedule` through
:func:`heartbeat_times` inside its own metrics-recording window and
reads the ``heartbeat.sent`` counter from the registry.  The fixed
scheme is the degenerate config h_max = h_min (§2.1.2).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis.report import format_table
from repro.core.config import HeartbeatConfig
from repro.core.heartbeat import heartbeat_times

DTS = [0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1000.0]

VARIABLE = HeartbeatConfig(h_min=0.25, h_max=32.0, backoff=2.0)
FIXED = HeartbeatConfig(h_min=0.25, h_max=0.25, backoff=2.0)


def measured_heartbeats(cfg: HeartbeatConfig, dt: float) -> int:
    """Heartbeats sent between two data packets ``dt`` apart, counted
    by the metrics registry rather than returned-list length."""
    with obs.recording() as reg:
        beats = heartbeat_times(cfg, [0.0, dt])
        sent = reg.counter_value("heartbeat.sent", scheme="variable")
        assert sent == len(beats), "registry disagrees with the schedule"
        return sent


def compute_series():
    return [
        (dt, measured_heartbeats(FIXED, dt) / measured_heartbeats(VARIABLE, dt))
        for dt in DTS
    ]


def test_fig5_overhead_ratio(benchmark, report):
    rows = benchmark(compute_series)
    text = "# Figure 5: Overhead(Fixed)/Overhead(Variable) (h_min=0.25, h_max=32, backoff=2)\n"
    text += format_table(["dt (s)", "ratio"], rows)
    text += "\n\npaper's marked point: dt=120s -> 53.4x   measured: "
    ratio_120 = dict(rows)[120.0]
    text += f"{ratio_120:.1f}x"
    report("fig5_overhead_ratio", text)

    # savings grow with dt
    ratios = [r for _, r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # the paper's DIS point: 53.4x (we measure 53.2-53.3 depending on the
    # fencepost at exactly dt = n*h_min; shape and magnitude match)
    assert ratio_120 == pytest.approx(53.3, rel=0.01)
