"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, prints the
same rows/series the paper reports, and writes the rendered text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite concrete
artifacts.  Run with::

    pytest benchmarks/ --benchmark-only

Heavy simulations use ``benchmark.pedantic(..., rounds=1)`` — we are
timing one reproducible run, not microbenchmarking the simulator.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Print a rendered experiment report and persist it to results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report
