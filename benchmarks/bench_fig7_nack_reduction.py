"""Figure 7 / §2.2.2 — NACK traffic: centralized vs distributed logging.

The paper's scenario: 50 sites × 20 receivers; congestion on one site's
tail circuit loses a packet for the whole site.  "Distributed logging
cuts the number of NACKs transmitted across the tail circuit and the WAN
from 20 (one per receiver at the site) to 1 (from the site's secondary
logging server)" — and the primary-server load drops by the same factor.

Every figure here is read from the metrics registry: WAN NACKs from the
``simnet.packets`` mirror of the packet trace, primary load from the
``logger.*{node=primary}`` counters.  Each run records in its own
registry window, with a :meth:`reset` after warm-up so only the
congestion event is measured.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.analysis.report import format_table
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment

N_SITES = 50
RECEIVERS = 20


def run(secondary_loggers: bool):
    # The registry must be live *before* the deployment is built:
    # machines resolve their instruments at construction time.
    with obs.recording() as reg:
        dep = LbrmDeployment(DeploymentSpec(
            n_sites=N_SITES, receivers_per_site=RECEIVERS,
            secondary_loggers=secondary_loggers, seed=1995,
        ))
        dep.start()
        dep.advance(0.2)
        dep.send(b"warm-up")
        dep.advance(1.0)
        # Instruments zero in place (machines hold references), so the
        # measurement window starts here.
        reg.reset()
        dep.trace.reset()
        # Congestion on site1's incoming tail circuit: the whole site
        # misses the next update (Figure 1's story).
        site = dep.network.site("site1")
        site.tail_down.loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.1)])
        dep.send(b"the update")
        dep.advance(5.0)
        assert dep.receivers_with(2) == len(dep.receivers), "recovery incomplete"

        wan_nacks = (
            reg.counter_value("simnet.packets", kind="rx", ptype="NACK", scope="cross")
            + reg.counter_value("simnet.packets", kind="drop", ptype="NACK", scope="cross")
        )
        primary_nacks = reg.counter_value("logger.nacks_received", node="primary")
        primary_retrans = (
            reg.counter_value("logger.retrans_unicast", node="primary")
            + reg.counter_value("logger.retrans_multicast", node="primary")
        )
        # The registry mirror must agree with the legacy in-object stats.
        assert wan_nacks == dep.trace.cross_site_nacks()
        assert primary_nacks == dep.primary.stats["nacks_received"]
        return {
            "wan_nacks": wan_nacks,
            "primary_nacks": primary_nacks,
            "primary_retrans": primary_retrans,
        }


def test_fig7_nack_reduction(benchmark, report):
    def both():
        return run(secondary_loggers=False), run(secondary_loggers=True)

    centralized, distributed = benchmark.pedantic(both, rounds=1, iterations=1)

    rows = [
        ("NACKs across tail/WAN", 20, centralized["wan_nacks"], 1, distributed["wan_nacks"]),
        ("NACKs at primary server", 20, centralized["primary_nacks"], 1, distributed["primary_nacks"]),
        ("retransmissions by primary", 20, centralized["primary_retrans"], 1, distributed["primary_retrans"]),
    ]
    text = (
        f"# Figure 7: retransmission requests, {N_SITES} sites x {RECEIVERS} receivers,\n"
        "# one site loses a packet on its tail circuit\n"
    )
    text += format_table(
        ["quantity", "paper centralized", "measured centralized", "paper distributed", "measured distributed"],
        rows,
    )
    report("fig7_nack_reduction", text)

    assert centralized["wan_nacks"] == RECEIVERS  # one per receiver
    assert distributed["wan_nacks"] == 1  # one per site
    assert centralized["primary_nacks"] == RECEIVERS
    assert distributed["primary_nacks"] == 1
    # the 20x load reduction on the primary
    assert centralized["primary_retrans"] / distributed["primary_retrans"] == RECEIVERS
