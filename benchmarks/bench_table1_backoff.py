"""Table 1 — overhead reduction ratio as the backoff parameter changes.

Paper rows (dt=120 s, h_min=0.25, h_max=32):

    backoff  1.5   2.0   2.5   3.0   3.5   4.0
    ratio    34.4  53.3  65.8  74.8  81.7  87.3

Our discrete counting reproduces the flagship backoff-2 row exactly and
the monotone trend elsewhere; the tail rows saturate earlier because the
h_max cap dominates once the ramp is steep (see EXPERIMENTS.md for the
convention discussion).  The ablation extension also reports the §2.1.1
trade-off: a larger backoff stretches the burst-loss detection bound.
"""

from __future__ import annotations

import pytest

from repro.analysis.estimation_math import loss_detection_bound
from repro.analysis.heartbeat_math import table1_rows
from repro.analysis.report import format_table
from repro.core.config import HeartbeatConfig

PAPER = {1.5: 34.4, 2.0: 53.3, 2.5: 65.8, 3.0: 74.8, 3.5: 81.7, 4.0: 87.3}


def compute():
    rows = []
    for backoff, ratio in table1_rows():
        cfg = HeartbeatConfig(h_min=0.25, h_max=32.0, backoff=backoff)
        detect_bound = loss_detection_bound(1.0, cfg)  # 1-second burst
        rows.append((backoff, PAPER[backoff], ratio, detect_bound))
    return rows


def test_table1_backoff(benchmark, report):
    rows = benchmark(compute)
    text = "# Table 1: Fixed/Variable overhead ratio vs backoff (dt=120s)\n"
    text += format_table(
        ["backoff", "paper ratio", "measured ratio", "detection bound for 1s burst (s)"],
        rows,
    )
    report("table1_backoff", text)

    measured = {b: r for b, _, r, _ in rows}
    # flagship row matches the paper
    assert measured[2.0] == pytest.approx(53.3, rel=0.01)
    # monotone non-decreasing savings with backoff (the paper's trend)
    ratios = [r for _, _, r, _ in rows]
    assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:]))
    # every row within 25% of the paper's value despite the counting
    # convention difference
    for backoff, paper, ratio, _ in rows:
        assert ratio == pytest.approx(paper, rel=0.25)
    # the ablation trade-off: detection bound grows linearly in backoff
    bounds = [d for _, _, _, d in rows]
    assert bounds == sorted(bounds)
    assert bounds[-1] == pytest.approx(4.0)  # backoff 4 x 1s burst
