"""§3 — maximum logging-server request rate.

Paper: "A server can receive, process, and reply to one request every
630 microseconds, or approximately 1587 requests per second. ... The
server can receive and process 100 requests for a packet in memory in
0.063 seconds."

We measure the same quantity for our logger (full decode → serve →
encode path) and reproduce the burst experiment: 100 near-simultaneous
requests for one in-memory packet.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.report import format_table
from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import NackPacket, decode, encode


def make_logger() -> LogServer:
    logger = LogServer("g", addr_token="sec", config=LbrmConfig(),
                       role=LoggerRole.SECONDARY)
    payload = b"x" * 128
    for seq in range(1, 201):
        logger.log.append(seq, payload, now=0.0)
        logger.tracker.observe_data(seq)
    return logger


def hundred_requests(logger: LogServer) -> int:
    """The paper's burst: 100 requests for one in-memory packet."""
    request = encode(NackPacket(group="g", seqs=(100,)))
    served = 0
    for i in range(100):
        packet = decode(request)
        actions = logger.handle(packet, f"rx{i}", 1.0)
        served += sum(1 for a in actions if hasattr(a, "packet"))
    return served


def test_logger_throughput(benchmark, report):
    logger = make_logger()
    served = benchmark(hundred_requests, logger)
    assert served == 100

    burst_seconds = benchmark.stats["mean"]
    per_request_us = burst_seconds * 1e6 / 100
    rate = 100 / burst_seconds
    rows = [
        ("per-request service time (µs)", 630, f"{per_request_us:.0f}"),
        ("requests per second", 1587, f"{rate:.0f}"),
        ("100-request burst (s)", 0.063, f"{burst_seconds:.4f}"),
    ]
    text = "# §3: logging server saturation throughput\n"
    text += format_table(["quantity", "paper (RS/6000, 1995)", "measured (this host)"], rows)
    text += (
        "\n\nconclusion preserved: hundreds of near-simultaneous requests do not "
        "unduly load one logger"
    )
    report("logger_throughput", text)

    # A 1995-class conclusion must hold a fortiori today: the burst is
    # served far faster than clients would notice (<< heartbeat period).
    assert burst_seconds < 0.25
    assert rate > 1587  # modern hardware beats the RS/6000
