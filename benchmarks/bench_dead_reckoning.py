"""§1 background — dead reckoning's traffic reduction for dynamic entities.

"Dead reckoning at each receiver dramatically reduces the bandwidth
demands of dynamic entities, but the naturally high update rate of these
entities still requires a large amount of communication."

We drive a fleet of wandering vehicles at a 10 Hz simulation tick and
compare raw per-tick state broadcast against threshold-triggered dead
reckoning, while verifying the receivers' displayed error stays within
the threshold.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.report import format_table
from repro.apps.dis.deadreckoning import DeadReckoningMirror, DeadReckoningSource

N_VEHICLES = 50
TICKS = 600  # 60 s at 10 Hz
DT = 0.1
THRESHOLDS = [0.5, 1.0, 2.0, 5.0]


def run(threshold: float, seed: int = 3):
    rng = random.Random(seed)
    sources = [DeadReckoningSource(i, threshold=threshold, max_silence=1000.0)
               for i in range(N_VEHICLES)]
    mirror = DeadReckoningMirror()
    positions = [[0.0, 0.0, rng.uniform(0, 2 * math.pi)] for _ in range(N_VEHICLES)]
    emitted = 0
    worst_error = 0.0
    for tick in range(TICKS):
        now = tick * DT
        for i, src in enumerate(sources):
            pos = positions[i]
            pos[2] += rng.gauss(0.0, 0.04)
            vx, vy = 12.0 * math.cos(pos[2]), 12.0 * math.sin(pos[2])
            pos[0] += vx * DT
            pos[1] += vy * DT
            update = src.move(pos[0], pos[1], vx, vy, now=now)
            if update is not None:
                emitted += 1
                mirror.apply(update.encode())
            mx, my = mirror.position(i, now)
            worst_error = max(worst_error, math.hypot(pos[0] - mx, pos[1] - my))
    raw = N_VEHICLES * TICKS
    return emitted, raw, worst_error


def test_dead_reckoning(benchmark, report):
    def sweep():
        return [(t, *run(t)) for t in THRESHOLDS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        (t, raw, emitted, f"{raw / emitted:.1f}x", f"{err:.2f}")
        for t, emitted, raw, err in rows
    ]
    text = (
        f"# §1 background: dead reckoning, {N_VEHICLES} vehicles x {TICKS} ticks @ 10 Hz\n"
    )
    text += format_table(
        ["threshold (m)", "raw updates", "DR updates", "reduction", "worst display error (m)"],
        table,
    )
    report("dead_reckoning", text)

    for threshold, emitted, raw, err in rows:
        assert emitted < raw / 3  # "dramatically reduces"
        assert err <= threshold + 1e-6  # error bound honoured
    # looser thresholds emit fewer updates
    counts = [emitted for _, emitted, _, _ in rows]
    assert counts == sorted(counts, reverse=True)
