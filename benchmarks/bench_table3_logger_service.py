"""Table 3 — secondary logging server response time for a 128-byte packet.

Paper (IBM RS/6000-370, AIX 3.2.5, 10 Mbit Ethernet):

    Server request processing        102 µs
    Ethernet transmission            390 µs
    Network interrupts, ctx, misc   1090 µs
    Total                           1582 µs

Substitution (DESIGN.md): we measure our logger's *request processing*
directly on this host (decode NACK → log lookup → encode RETRANS) and
model the 1995 wire and OS costs with the paper's own constants, so the
structural conclusion — server processing is a small fraction of the
total, which is itself tiny next to the 250 ms detection time — is
checked against live code.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import NackPacket, decode, encode

ETHERNET_US = 390.0  # 10 Mbit wire time for request+reply, paper-measured
OS_MISC_US = 1090.0  # interrupts, context switch, misc, paper-measured
PAPER_PROCESSING_US = 102.0
PAPER_TOTAL_US = 1582.0


def make_loaded_logger() -> tuple[LogServer, bytes]:
    logger = LogServer("g", addr_token="sec", config=LbrmConfig(),
                       role=LoggerRole.SECONDARY)
    payload = b"x" * 128
    for seq in range(1, 1001):
        logger.log.append(seq, payload, now=0.0)
        logger.tracker.observe_data(seq)
    request = encode(NackPacket(group="g", seqs=(500,)))
    return logger, request


def serve_request(logger: LogServer, request: bytes) -> bytes:
    """The full server-side path: decode, look up, encode the repair."""
    packet = decode(request)
    actions = logger.handle(packet, "rx1", 0.5)
    return encode(actions[0].packet)


def test_table3_logger_response_time(benchmark, report):
    logger, request = make_loaded_logger()

    reply = benchmark(serve_request, logger, request)
    assert len(reply) > 128  # the repair carries the payload

    processing_us = benchmark.stats["mean"] * 1e6
    total_us = processing_us + ETHERNET_US + OS_MISC_US
    rows = [
        ("server request processing (µs)", PAPER_PROCESSING_US, f"{processing_us:.0f}"),
        ("Ethernet transmission (µs)", ETHERNET_US, f"{ETHERNET_US:.0f} (modeled, paper constant)"),
        ("interrupts/ctx/misc (µs)", OS_MISC_US, f"{OS_MISC_US:.0f} (modeled, paper constant)"),
        ("total (µs)", PAPER_TOTAL_US, f"{total_us:.0f}"),
    ]
    text = "# Table 3: logging server response time, 128-byte packet\n"
    text += format_table(["operation", "paper (µs)", "measured (µs)"], rows)
    text += (
        "\n\nstructural check: processing << total << 250 ms heartbeat detection: "
        f"{processing_us:.0f}µs << {total_us:.0f}µs << 250000µs"
    )
    report("table3_logger_service", text)

    # The paper's conclusion: loss detection and network transmission,
    # not server processing, dominate recovery latency.
    assert processing_us < 2000  # same order as 1995 hardware or better
    assert processing_us < 0.6 * total_us
    assert total_us < 0.05 * 250_000
