"""Figure 3 — heartbeat clustering between data packet transmissions.

Regenerates the timeline the paper sketches: after each data packet the
heartbeats go out at h_min, then back off geometrically to h_max.
"""

from __future__ import annotations

from repro.analysis.report import format_series
from repro.core.config import HeartbeatConfig
from repro.core.heartbeat import heartbeat_times


def test_fig3_heartbeat_timeline(benchmark, report):
    cfg = HeartbeatConfig(h_min=0.25, h_max=32.0, backoff=2.0)
    data_times = [0.0, 120.0]

    beats = benchmark(heartbeat_times, cfg, data_times)

    intervals = [beats[0]] + [b - a for a, b in zip(beats, beats[1:])]
    text = format_series(
        "Figure 3: heartbeat transmission times after a data packet at t=0 "
        "(h_min=0.25, backoff=2, h_max=32)",
        [f"hb{i+1}" for i in range(len(beats))],
        [f"t={t:.2f}s (interval {dt:.2f}s)" for t, dt in zip(beats, intervals)],
        x_label="packet",
        y_label="transmission",
    )
    report("fig3_heartbeat_timeline", text)

    # Shape assertions: clustering near the data packet, backoff after.
    assert beats[0] == 0.25
    assert all(b2 - b1 >= b1 - a for a, b1, b2 in zip([0.0] + beats, beats, beats[1:]))
    assert len(beats) == 9
