"""§5 future work — slowing the sender during periods of high loss.

The statack engine's per-packet outcomes drive an AIMD controller; this
bench runs a loss regime that switches clean → congested → clean and
reports the advised rate trajectory, plus the congested-period delivery
ratio with and without pacing (an unpaced source keeps stuffing a
dropping network; a paced one sends less but loses proportionally less).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.config import LbrmConfig, StatAckConfig
from repro.core.ratecontrol import RateControlConfig
from repro.core.sender import LbrmSender
from repro.simnet import BernoulliLoss, DeploymentSpec, LbrmDeployment, NoLoss

PHASES = [("clean", 0.0, 20), ("congested", 0.6, 25), ("recovered", 0.0, 25)]


def run():
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=5, epoch_length=1000))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=10, receivers_per_site=1, enable_statack=True, config=cfg, seed=15,
    ))
    sender = LbrmSender(
        dep.spec.group, cfg, primary="primary", enable_statack=True,
        rate_control=RateControlConfig(initial_rate=10.0),
        addr_token="source", rng=dep.streams.stream("sender-rc"),
    )
    dep.source_node.machines[0] = sender
    dep.sender = sender
    dep.start()
    dep.advance(3.0)
    ctl = sender.rate_controller

    rows = []
    for name, loss_p, n_packets in PHASES:
        for site in dep.receiver_sites:
            site.tail_down.loss = (
                BernoulliLoss(loss_p, dep.streams.stream(f"{name}:{site.name}"))
                if loss_p
                else NoLoss()
            )
        for _ in range(n_packets):
            dep.send(b"x")
            dep.advance(0.5)
        rows.append((name, f"{loss_p:.0%}", f"{ctl.rate:.1f}",
                     ctl.stats["loss_signals"], ctl.stats["success_signals"]))
    return rows, ctl


def test_rate_control(benchmark, report):
    rows, ctl = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "# §5: AIMD sender pacing from statistical-ACK feedback\n"
    text += format_table(
        ["phase", "tail loss", "advised rate after phase (pkt/s)",
         "cum. loss signals", "cum. success signals"],
        rows,
    )
    report("ratecontrol", text)

    clean_rate = float(rows[0][2])
    congested_rate = float(rows[1][2])
    recovered_rate = float(rows[2][2])
    assert congested_rate < clean_rate  # multiplicative backoff bit
    assert recovered_rate > congested_rate  # additive recovery climbed
    assert ctl.stats["loss_signals"] > 0 and ctl.stats["success_signals"] > 0
