"""§6 — recovery time and repair traffic: LBRM vs wb/SRM.

"LBRM improves recovery time compared with wb by organizing packet
recovery into a hierarchy. ... The total recovery delay equals the RTT
to the nearest logger in the hierarchy that has the packet. ... In wb,
the last receiver to lose a packet recovers from a loss in approximately
3 × RTT (where RTT measures the round trip time between the receiver and
the packet source)."

Same topology, same site-wide loss, both protocols; we report mean/max
recovery latency and group-wide multicast repair traffic.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.baselines.srm import SrmMember, SrmSender
from repro.core.config import LbrmConfig
from repro.core.events import RecoveryComplete
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender
from repro.simnet import BurstLoss, Network, RngStreams, SimNode, Simulator

N_SITES = 4
RX_PER_SITE = 5
# One-way source->receiver delay in the default topology (~40 ms).
D_SOURCE = 0.0395
RTT = 2 * D_SOURCE


def topology(sim, seed):
    net = Network(sim, streams=RngStreams(seed))
    sites = [net.add_site(f"s{i}") for i in range(N_SITES + 1)]
    return net, sites


def run_lbrm(seed=3):
    sim = Simulator()
    net, sites = topology(sim, seed)
    streams = RngStreams(seed + 50)
    cfg = LbrmConfig()
    src_host = net.add_host("src", sites[0])
    prim_host = net.add_host("primary", sites[0])
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="src", level=0)
    SimNode(net, prim_host, [primary]).start()
    sender = LbrmSender("g", cfg, primary="primary", addr_token="src")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    nodes = []
    for i in range(N_SITES):
        lg_host = net.add_host(f"lg{i}", sites[i + 1])
        logger = LogServer("g", addr_token=f"lg{i}", config=cfg,
                           role=LoggerRole.SECONDARY, parent="primary", source="src",
                           rng=streams.stream(f"lg{i}"))
        SimNode(net, lg_host, [logger]).start()
        for j in range(RX_PER_SITE):
            host = net.add_host(f"m{i}-{j}", sites[i + 1])
            rx = LbrmReceiver("g", cfg.receiver, logger_chain=(f"lg{i}", "primary"),
                              source="src", heartbeat=cfg.heartbeat)
            node = SimNode(net, host, [rx])
            node.start()
            nodes.append(node)
    src_node.send_app(sender, b"warm")
    sim.run_until(sim.now + 1.0)
    # site 1 (sites[1]) loses the next packet on its tail circuit; its
    # secondary logger catches it — site receivers recover locally.
    sites[1].tail_down.loss = BurstLoss([(sim.now, sim.now + 0.05)])
    src_node.send_app(sender, b"lost")
    sim.run_until(sim.now + 10.0)
    latencies = [e.latency for n in nodes for e in n.events_of(RecoveryComplete)]
    # Repair traffic the whole group must process: LBRM's source never
    # re-multicast (statack off here) and logger repairs are unicast or
    # site-TTL-scoped, so group-wide repair multicasts are zero.
    repair_multicasts = sender.stats["remulticasts"]
    return latencies, repair_multicasts


def run_srm(seed=3):
    sim = Simulator()
    net, sites = topology(sim, seed)
    streams = RngStreams(seed + 60)
    src_host = net.add_host("src", sites[0])
    sender = SrmSender("g", session_interval=0.25)
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    net.join("g", "src")
    nodes = []
    for i in range(N_SITES):
        for j in range(RX_PER_SITE):
            name = f"m{i}-{j}"
            host = net.add_host(name, sites[i + 1])
            member = SrmMember("g", d_source=D_SOURCE, rng=streams.stream(name))
            node = SimNode(net, host, [member])
            node.start()
            nodes.append(node)
    src_node.send_app(sender, b"warm")
    sim.run_until(sim.now + 1.0)
    sites[1].tail_down.loss = BurstLoss([(sim.now, sim.now + 0.05)])
    multicast_before = net.stats["multicast_sent"]
    src_node.send_app(sender, b"lost")
    sim.run_until(sim.now + 10.0)
    latencies = [e.latency for n in nodes for e in n.events_of(RecoveryComplete)]
    # subtract the sender's own session messages over the window (they are
    # not repair traffic)
    repair_multicasts = (
        net.stats["multicast_sent"] - multicast_before - sender.stats["sessions_sent"]
    )
    return latencies, repair_multicasts


def test_wb_vs_lbrm_recovery(benchmark, report):
    def both():
        return run_lbrm(), run_srm()

    (lbrm_lat, lbrm_tx), (srm_lat, srm_tx) = benchmark.pedantic(both, rounds=1, iterations=1)
    assert lbrm_lat and srm_lat

    rows = [
        ("mean recovery latency (s)", f"{sum(lbrm_lat)/len(lbrm_lat):.4f}",
         f"{sum(srm_lat)/len(srm_lat):.4f}"),
        ("max recovery latency (s)", f"{max(lbrm_lat):.4f}", f"{max(srm_lat):.4f}"),
        ("recoveries", len(lbrm_lat), len(srm_lat)),
        ("group-wide repair multicasts", lbrm_tx, srm_tx),
        ("paper's model", "1 RTT to nearest logger (LAN ~4ms)", "~3 x RTT to source (~0.24s)"),
    ]
    text = f"# §6: recovery comparison, site-wide loss ({N_SITES} sites x {RX_PER_SITE} rx, RTT={RTT:.3f}s)\n"
    text += format_table(["quantity", "LBRM", "wb/SRM"], rows)
    report("wb_vs_lbrm", text)

    # LBRM recovers via the local logger: LAN RTT, far below wb's
    # suppression-delayed multicast dance.
    assert max(lbrm_lat) < max(srm_lat)
    assert sum(lbrm_lat) / len(lbrm_lat) < 0.5 * (sum(srm_lat) / len(srm_lat))
    # wb's recovery is in the ~RTT-to-source regime (request delay alone
    # is 1-2 x d_source); LBRM's is LAN-scale after local detection.
    assert max(srm_lat) > RTT
    # wb floods the whole group with repair traffic; LBRM keeps repairs
    # unicast or site-scoped.
    assert srm_tx >= 2  # at least one request + one repair, group-wide
    assert lbrm_tx == 0
