"""Figure 4 — fixed vs variable heartbeat rates as a function of dt.

The paper's series: fixed rate approaches 1/h_min = 4 pkt/s while the
variable rate approaches 1/h_max = 1/32 pkt/s as the inter-data interval
grows.  Closed form is cross-checked against the event-driven schedule
generator at every point.
"""

from __future__ import annotations

import pytest

from repro.analysis.heartbeat_math import fixed_rate, variable_rate
from repro.analysis.report import format_table
from repro.core.config import HeartbeatConfig
from repro.core.heartbeat import heartbeat_times

DTS = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 1000.0, 10_000.0]


def compute_series():
    cfg = HeartbeatConfig(h_min=0.25, h_max=32.0, backoff=2.0)
    rows = []
    for dt in DTS:
        fixed = fixed_rate(dt, cfg.h_min)
        variable = variable_rate(dt, cfg)
        simulated = len(heartbeat_times(cfg, [0.0, dt])) / dt
        rows.append((dt, fixed, variable, simulated))
    return rows


def test_fig4_heartbeat_rates(benchmark, report):
    rows = benchmark(compute_series)

    text = "# Figure 4: heartbeat rates vs data interval (h_min=0.25, h_max=32, backoff=2)\n"
    text += format_table(
        ["dt (s)", "fixed (pkt/s)", "variable (pkt/s)", "variable (simulated)"], rows
    )
    report("fig4_heartbeat_rates", text)

    for dt, fixed, variable, simulated in rows:
        assert variable <= fixed + 1e-12
        assert variable == pytest.approx(simulated, abs=1e-9)
    # the two asymptotes
    assert rows[-1][1] == pytest.approx(4.0, rel=0.01)
    assert rows[-1][2] == pytest.approx(1 / 32, rel=0.05)
    # below h_min neither scheme transmits
    assert rows[0][1] == 0.0 and rows[0][2] == 0.0
