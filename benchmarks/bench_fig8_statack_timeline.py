"""Figure 8 — the statistical-acknowledgement timeline.

The figure's story: an Acker Selection Packet goes out, three Designated
Ackers respond; data packet #33 draws only two of three ACKs, so the
source immediately re-multicasts, and the repair draws all three.

We reproduce it event for event: 3 secondary loggers, p_ack = 1, one
site's tail dropped for exactly one packet.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.config import LbrmConfig, StatAckConfig
from repro.core.events import EpochStarted, Remulticast
from repro.core.packets import PacketType
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def run():
    # sites_per_acker_multicast=1 reproduces Figure 8's policy choice of
    # "re-multicast on any missing ACK" at this tiny scale.
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=10, epoch_length=128,
                                           sites_per_acker_multicast=1.0))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=3, receivers_per_site=1, enable_statack=True, config=cfg, seed=8,
    ))
    dep.start()
    dep.advance(3.0)  # bootstrap + selection: with N=3, p_ack caps at 1.0
    sa = dep.sender.statack
    timeline = [
        ("acker selection", f"epoch {sa.epoch}, p_ack={1.0:.1f}"),
        ("acker responses", f"{len(sa.designated_ackers)} designated ackers"),
    ]
    # packet #1 sails through
    dep.send(b"ok packet")
    dep.advance(0.5)
    acks_ok = sa.stats["acks_received"]
    timeline.append(("data #1", f"{acks_ok} of {len(sa.designated_ackers)} ACKs"))
    # packet #2 is lost at site2: one ACK missing -> immediate re-multicast
    now = dep.sim.now
    dep.network.site("site2").tail_down.loss = BurstLoss([(now, now + 0.05)])
    dep.send(b"lost at one site")
    dep.advance(2.0)
    remulticasts = dep.source_node.events_of(Remulticast)
    acks_after = sa.stats["acks_received"]
    timeline.append(("data #2", f"{acks_after - acks_ok - 3} of 3 ACKs at deadline"))
    timeline.append(("re-multicast", f"{len(remulticasts)} immediate retransmission(s)"))
    timeline.append(("after repair", f"coverage {dep.receivers_with(2)}/{len(dep.receivers)}"))
    return dep, sa, timeline, remulticasts


def test_fig8_statack_timeline(benchmark, report):
    dep, sa, timeline, remulticasts = benchmark.pedantic(run, rounds=1, iterations=1)

    text = "# Figure 8: statistical acking timeline (3 secondary loggers, p_ack=1)\n"
    text += format_table(["event", "outcome"], timeline)
    report("fig8_statack_timeline", text)

    assert len(sa.designated_ackers) == 3  # all three loggers volunteered
    assert len(remulticasts) >= 1  # the missing ACK forced a re-multicast
    assert dep.receivers_with(2) == len(dep.receivers)  # repair landed
    # the repair completed the ACK set (Fig 8's last beat): 3 for data #1,
    # 2 originals + the repair ACK that filled the set for data #2 (ACKs
    # arriving after completion are no longer counted against the packet)
    assert sa.stats["acks_received"] >= 3 + 2 + 1
