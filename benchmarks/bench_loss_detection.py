"""§2.1.1 — loss-detection delay under the burst congestion model.

"If the burst error length is small (less than h_min), then the lost
packet is discovered when the first heartbeat packet arrives after
h_min.  If the burst error is longer ... the maximum time between data
packet transmission and receiver discovery of packet loss is
2 × t_burst (or h_max, whichever is smaller)."
"""

from __future__ import annotations

import pytest

from repro.analysis.estimation_math import loss_detection_bound, worst_case_detection_time
from repro.analysis.report import format_table
from repro.core.events import LossDetected
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment

BURSTS = [0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 40.0]


def measure_with_timestamps(t_burst: float) -> float:
    """Simulated detection delay for a data packet sent at burst start
    (the paper's worst case: the burst swallows everything reaching the
    site — receiver and site logger alike — for t_burst)."""
    timestamps: list[float] = []

    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=1, seed=5))
    dep.start()
    dep.advance(0.2)
    dep.send(b"warm")
    dep.advance(1.0)
    start = dep.sim.now
    host = dep.network.host("site1-rx0")
    logger_host = dep.network.host("site1-logger")
    host.inbound_loss = BurstLoss([(start, start + t_burst)])
    logger_host.inbound_loss = BurstLoss([(start, start + t_burst)])

    node = dep.receiver_nodes[0]
    node._on_event = lambda e, t: timestamps.append(t) if isinstance(e, LossDetected) and e.seqs else None
    dep.send(b"lost")
    dep.advance(t_burst + 80.0)
    assert timestamps, f"loss never detected for t_burst={t_burst}"
    return timestamps[0] - start


def compute():
    rows = []
    for t_burst in BURSTS:
        measured = measure_with_timestamps(t_burst)
        bound = loss_detection_bound(t_burst)
        exact = worst_case_detection_time(t_burst)
        rows.append((t_burst, bound, exact, measured))
    return rows


def test_loss_detection_bounds(benchmark, report):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = "# §2.1.1: loss detection delay vs burst duration (h_min=0.25, backoff=2, h_max=32)\n"
    text += format_table(
        ["t_burst (s)", "paper bound 2t (tail capped h_max)", "analytic worst case", "simulated"],
        rows,
    )
    report("loss_detection", text)

    for t_burst, bound, exact, measured in rows:
        # network delay adds a few ms on top of the heartbeat arithmetic
        assert measured <= exact + 0.05, (t_burst, exact, measured)
        if t_burst <= 0.25:
            # isolated loss: detected by the first h_min heartbeat
            assert measured == pytest.approx(0.25, abs=0.05)
        # the paper's 2x bound holds throughout (tail capped at h_max)
        assert measured <= bound + 0.05
