"""§1/§5 — ACK implosion: positive-ACK multicast vs LBRM statistical acking.

A conventional sender-reliable protocol draws one ACK per receiver per
packet; LBRM's source hears from k Designated Ackers regardless of group
size.  We sweep the receiver count and report per-packet ACK load at the
source.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.baselines.senderreliable import PosAckReceiver, PosAckSender
from repro.core.config import LbrmConfig, StatAckConfig
from repro.simnet import DeploymentSpec, LbrmDeployment, Network, RngStreams, SimNode, Simulator

SWEEP = [10, 50, 100, 250]
K_ACKERS = 10
N_PACKETS = 5


def posack_load(n_receivers: int, seed=4) -> float:
    sim = Simulator()
    net = Network(sim, streams=RngStreams(seed))
    s0 = net.add_site("s0")
    s1 = net.add_site("s1")
    src_host = net.add_host("src", s0)
    names = tuple(f"r{i}" for i in range(n_receivers))
    sender = PosAckSender("g", names)
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    for name in names:
        host = net.add_host(name, s1)
        SimNode(net, host, [PosAckReceiver("g", sender="src")]).start()
    for _ in range(N_PACKETS):
        src_node.send_app(sender, b"x")
        sim.run_until(sim.now + 0.5)
    return sender.stats["acks_received"] / N_PACKETS


def lbrm_load(n_sites: int, seed=4) -> float:
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=K_ACKERS, epoch_length=1000))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=n_sites, receivers_per_site=1, enable_statack=True, config=cfg, seed=seed,
    ))
    dep.start()
    dep.advance(3.0)
    before = dep.sender.statack.stats["acks_received"]
    for _ in range(N_PACKETS):
        dep.send(b"x")
        dep.advance(0.5)
    return (dep.sender.statack.stats["acks_received"] - before) / N_PACKETS


def test_ack_implosion(benchmark, report):
    def sweep():
        rows = []
        for n in SWEEP:
            rows.append((n, posack_load(n), lbrm_load(n)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = f"# §1/§5: per-packet ACK load at the source vs group size (k={K_ACKERS})\n"
    text += format_table(
        ["receivers/sites", "positive-ACK (acks/pkt)", "LBRM statistical (acks/pkt)"], rows
    )
    report("ack_implosion", text)

    for n, posack, lbrm in rows:
        assert posack == n  # linear in group size: the implosion
        # statistical acking stays near k (binomial fluctuation allowed;
        # with p_ack capped at 1 small groups ack fully)
        assert lbrm <= max(3 * K_ACKERS, n * 0.6 if n <= 2 * K_ACKERS else 3 * K_ACKERS)
    # the headline: at the largest sweep point LBRM's load is a small
    # fraction of the positive-ACK protocol's
    n, posack, lbrm = rows[-1]
    assert lbrm < 0.2 * posack
