"""§2.1.2 — the STOW-97-scale DIS scenario arithmetic, plus a scaled
event-driven cross-check.

Paper numbers: 100k dynamic entities at 1 pkt/s + 100k terrain entities
changing every 120 s.  Fixed heartbeat: terrain heartbeats alone are
400k pkt/s — 4/5 of the 500k pkt/s total.  Variable heartbeat removes a
~53x factor of that.

The cross-check runs 200 actual terrain entities as LBRM senders in the
simulator for 10 minutes and compares measured heartbeat counts per
entity against the closed form.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.apps.dis import DisScenario, scenario_packet_rates
from repro.baselines.fixed_heartbeat import fixed_heartbeat_config
from repro.core.config import LbrmConfig
from repro.core.sender import LbrmSender
from repro.simnet import RngStreams, Simulator

N_ENTITIES = 200
DURATION = 600.0
INTERVAL = 120.0


def closed_form():
    rates = scenario_packet_rates()
    return rates


def event_driven_heartbeats(config: LbrmConfig, seed=6) -> float:
    """Heartbeats per entity per second, measured by replaying a Poisson
    update schedule through real sender machines."""
    import random

    scenario = DisScenario(n_terrain=N_ENTITIES, terrain_interval=INTERVAL,
                           rng=random.Random(seed))
    updates = scenario.draw_updates(DURATION)
    senders = {
        eid: LbrmSender(f"terrain/{eid}", config, primary=None)
        for eid in scenario.entities
    }
    sim = Simulator()

    def fire(sender, payload):
        sender.send(payload, sim.now)
        arm(sender)

    def poll(sender):
        sender.poll(sim.now)
        arm(sender)

    def arm(sender):
        due = sender.next_wakeup()
        if due is not None:
            sim.schedule(due, poll, sender)

    for update in updates:
        entity = scenario.entities[update.entity_id]
        sim.schedule(update.time, fire, senders[update.entity_id],
                     entity.damage(1).encode())
    sim.run_until(DURATION)
    total_heartbeats = sum(s.stats["heartbeats_sent"] for s in senders.values())
    return total_heartbeats / N_ENTITIES / DURATION


def test_dis_scenario(benchmark, report):
    def run():
        rates = closed_form()
        variable_rate = event_driven_heartbeats(LbrmConfig())
        fixed_rate = event_driven_heartbeats(fixed_heartbeat_config(0.25))
        return rates, variable_rate, fixed_rate

    rates, measured_variable, measured_fixed = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("dynamic entity traffic (pkt/s)", "100,000", f"{rates.dynamic_data:,.0f}"),
        ("terrain data traffic (pkt/s)", "~833", f"{rates.terrain_data:,.0f}"),
        ("terrain heartbeats, fixed (pkt/s)", "400,000", f"{rates.terrain_heartbeats_fixed:,.0f}"),
        ("total, fixed scheme (pkt/s)", "500,000", f"{rates.total_fixed:,.0f}"),
        ("heartbeat share of traffic", "4/5", f"{rates.heartbeat_fraction_fixed:.2f}"),
        ("fixed/variable heartbeat ratio", "~53", f"{rates.heartbeat_reduction:.1f}"),
        ("per-entity hb rate, fixed (sim, pkt/s)", "~4", f"{measured_fixed:.2f}"),
        ("per-entity hb rate, variable (sim, pkt/s)", "~0.075", f"{measured_variable:.3f}"),
        ("simulated reduction", "~53x", f"{measured_fixed / measured_variable:.1f}x"),
    ]
    text = "# §2.1.2: DIS scenario traffic (100k dynamic + 100k terrain entities)\n"
    text += format_table(["quantity", "paper", "measured"], rows)
    report("dis_scenario", text)

    assert rates.total_fixed == pytest.approx(500_000, rel=0.01)
    assert rates.heartbeat_fraction_fixed == pytest.approx(0.8, abs=0.01)
    assert rates.heartbeat_reduction == pytest.approx(53.3, rel=0.01)
    # Poisson intervals (not fixed 120 s) shift per-entity counts a bit,
    # but the order-of-magnitude reduction must reproduce.
    assert measured_fixed / measured_variable > 30
