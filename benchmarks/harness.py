"""``repro bench`` — the machine-readable performance harness.

Every scenario runs the same deterministic workload under two engine
configurations and records throughput side by side:

* ``fast``      — the timer-wheel :class:`~repro.simnet.engine.Simulator`,
                  batched multicast fan-out, memoized packet codecs.
* ``reference`` — the pre-wheel pure-heap engine
                  (:class:`~repro.simnet.engine.ReferenceSimulator`),
                  per-receiver fan-out, uncached codecs: the pre-PR
                  baseline.

Both configurations execute bit-identical protocol histories (same
seeds, same RNG draw order, same delivery order) — the harness asserts
scenario-specific invariants under each engine and refuses to report a
speedup for runs that diverge.  Results are written as
``BENCH_<scenario>.json`` files in ``benchmarks/results/`` so every PR
leaves a perf trajectory:

* ``events_per_sec`` — scenario work units (deliveries, requests) per
  wall-clock second; the unit is engine-independent, so the fast/
  reference ratio is a true speedup.
* ``sim_events`` — events the engine actually executed (batching makes
  this *smaller* for the same history).
* ``peak_queue_depth`` — high-water mark of live pending events, read
  from the ``sim.peak_queue_depth`` gauge in the ``repro.obs`` registry.

Run via ``python -m repro bench --quick`` (or ``--full`` for
paper-scale populations, ``--jobs N`` for multiprocessing across
scenario runs).
"""

from __future__ import annotations

import json
import resource
import sys
import time
from pathlib import Path

from repro.core import packets
from repro.core.config import LbrmConfig, LoggerConfig, ReceiverConfig
from repro.core.actions import SendMulticast, SendUnicast
from repro.core.events import RecoveryComplete
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import NackPacket
from repro.scale.deploy import ScaleSpec
from repro.scale.shard import ScaleScenario, run_sharded
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ReferenceSimulator, Simulator

__all__ = [
    "SCENARIOS",
    "SCALE_SCENARIOS",
    "AIO_SCENARIOS",
    "HIERARCHY_SCENARIOS",
    "ALL_SCENARIOS",
    "ENGINES",
    "aio_available",
    "run_scenario",
    "write_result",
    "main",
]

RESULTS_DIR = Path(__file__).resolve().parent / "results"

ENGINES = ("fast", "reference")


class _EngineMode:
    """Install one engine configuration process-wide for a measured run."""

    def __init__(self, engine: str) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.engine = engine
        self.fast = engine == "fast"

    def make_sim(self):
        return Simulator() if self.fast else ReferenceSimulator()

    def __enter__(self) -> "_EngineMode":
        packets.set_codec_caches(encode=self.fast, decode=self.fast)
        # The reference configuration is the pre-PR baseline throughout:
        # heap engine, uncached per-field codecs.  The struct codecs are
        # part of the fast path being measured.
        packets.set_codec_mode("struct" if self.fast else "legacy")
        return self

    def __exit__(self, *exc) -> None:
        # The fast configuration is the process default.
        packets.set_codec_caches(encode=True, decode=True)
        packets.set_codec_mode("struct")

    def configure(self, dep: LbrmDeployment) -> None:
        dep.network.batch_delivery = self.fast


# -- scenarios ---------------------------------------------------------------


def _fig7_params(tier: str) -> dict:
    if tier == "full":
        # A long steady-state train keeps the timed region ~1s so the
        # speedup is reproducible run to run; best-of-5 for stability.
        return {"n_sites": 50, "receivers_per_site": 20, "data_packets": 40,
                "spacing": 0.25, "repeats": 5}
    return {"n_sites": 10, "receivers_per_site": 5, "data_packets": 5,
            "spacing": 0.25, "repeats": 1}


def scenario_fig7_nack_reduction(tier: str, engine: str) -> dict:
    """Figure 7's world under load: site-wide loss plus steady traffic.

    The timed region covers protocol start, a warm-up packet, a
    tail-circuit burst that costs one site an update (the per-site NACK
    collapse), NACK-driven recovery, and a steady-state packet train —
    the last exercising exactly the timer churn (receiver watchdogs,
    heartbeat backoff) the wheel engine exists for.  Building the
    deployment object graph is identical under both engines and is
    excluded: the harness measures simulation throughput, not setup.
    """
    p = _fig7_params(tier)
    best = None
    for _ in range(p["repeats"]):
        # No recording registry: the harness measures protocol + engine
        # throughput, and queue depths read off the simulator directly.
        with _EngineMode(engine) as mode:
            dep = LbrmDeployment(
                DeploymentSpec(
                    n_sites=p["n_sites"],
                    receivers_per_site=p["receivers_per_site"],
                    seed=1995,
                ),
                sim=mode.make_sim(),
            )
            mode.configure(dep)
            t0 = time.perf_counter()
            dep.start()
            dep.advance(0.2)
            dep.send(b"warm-up")
            dep.advance(1.0)
            dep.burst_site("site1", duration=0.1)
            dep.send(b"the update")
            dep.advance(5.0)
            for i in range(p["data_packets"]):
                dep.send(f"steady-{i}".encode())
                dep.advance(p["spacing"])
            dep.advance(5.0)
            wall = time.perf_counter() - t0
            delivered = dep.network.stats["delivered"]
            wan_nacks = dep.trace.cross_site_nacks()
            recovered = dep.receivers_with(2)
            run = {
                "wall_s": wall,
                "events": delivered,
                "events_per_sec": delivered / wall,
                "sim_events": dep.sim.processed,
                "peak_queue_depth": dep.sim.peak_pending,
                "final_queue_depth": dep.sim.pending,
                "tombstones": dep.sim.tombstones,
                "checks": {
                    "wan_nacks": wan_nacks,
                    "recovered_receivers": recovered,
                    "delivered": delivered,
                    "dropped": dep.network.stats["dropped"],
                },
            }
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    best["params"] = p
    return best


def _logger_params(tier: str) -> dict:
    if tier == "full":
        # Long enough that the fast configuration's wall time (~0.3s)
        # is not dominated by scheduler noise; best-of-5 for stability.
        return {"requests": 80000, "log_entries": 200, "payload": 128, "repeats": 5}
    return {"requests": 2000, "log_entries": 200, "payload": 128, "repeats": 1}


def scenario_logger_throughput(tier: str, engine: str) -> dict:
    """§3's saturation test: the full decode → serve → encode request path.

    Each iteration is one complete repair round trip: encode the NACK,
    decode it at the logger, serve it, encode every reply packet, and
    decode the reply back at the requesting receiver — the full
    per-request codec+protocol cost a deployed repair path pays.  The
    paper's RS/6000 did one request per 630 µs; the memoized codec path
    is what moves our number.
    """
    p = _logger_params(tier)
    best = None
    for _ in range(p["repeats"]):
        with _EngineMode(engine):
            logger = LogServer("g", addr_token="sec", config=LbrmConfig(),
                               role=LoggerRole.SECONDARY)
            payload = b"x" * p["payload"]
            for seq in range(1, p["log_entries"] + 1):
                logger.log.append(seq, payload, now=0.0)
                logger.tracker.observe_data(seq)
            # 64 distinct (request, requester) pairs, rotated: a deployed
            # logger fields repeats of a bounded working set, not one
            # endlessly re-built object.  Construction happens outside
            # the timed loop — the path under test starts at encode.
            requests = [NackPacket(group="g", seqs=(100 + j,)) for j in range(64)]
            requesters = [f"rx{j}" for j in range(64)]
            served = 0
            encoded_bytes = 0
            t0 = time.perf_counter()
            for i in range(p["requests"]):
                j = i & 63
                wire = packets.encode(requests[j])
                request = packets.decode(wire)
                actions = logger.handle(request, requesters[j], 1.0)
                for action in actions:
                    t = type(action)
                    reply = action.packet if (t is SendUnicast or t is SendMulticast) else None
                    if reply is not None:
                        reply_wire = packets.encode(reply)
                        encoded_bytes += len(reply_wire)
                        packets.decode(reply_wire)  # receiver side of the trip
                        served += 1
            wall = time.perf_counter() - t0
            run = {
                "wall_s": wall,
                "events": p["requests"],
                "events_per_sec": p["requests"] / wall,
                "per_request_us": wall * 1e6 / p["requests"],
                "sim_events": 0,
                "peak_queue_depth": 0,
                "checks": {"served": served, "encoded_bytes": encoded_bytes},
            }
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    best["params"] = p
    return best


def _fanout_params(tier: str) -> dict:
    if tier == "full":
        return {"n_sites": 50, "receivers_per_site": 20, "data_packets": 40,
                "spacing": 0.05, "repeats": 3}
    return {"n_sites": 10, "receivers_per_site": 5, "data_packets": 10,
            "spacing": 0.05, "repeats": 1}


def scenario_multicast_fanout(tier: str, engine: str) -> dict:
    """Raw fan-out throughput: a dense packet train, no loss.

    Isolates the cost the tentpole attacks: per-receiver delivery events
    and per-packet timer churn, with recovery machinery idle.
    """
    p = _fanout_params(tier)
    best = None
    for _ in range(p["repeats"]):
        with _EngineMode(engine) as mode:
            dep = LbrmDeployment(
                DeploymentSpec(
                    n_sites=p["n_sites"],
                    receivers_per_site=p["receivers_per_site"],
                    seed=7,
                ),
                sim=mode.make_sim(),
            )
            mode.configure(dep)
            t0 = time.perf_counter()
            dep.start()
            dep.advance(0.2)
            for i in range(p["data_packets"]):
                dep.send(f"train-{i}".encode())
                dep.advance(p["spacing"])
            dep.advance(2.0)
            wall = time.perf_counter() - t0
            delivered = dep.network.stats["delivered"]
            run = {
                "wall_s": wall,
                "events": delivered,
                "events_per_sec": delivered / wall,
                "sim_events": dep.sim.processed,
                "peak_queue_depth": dep.sim.peak_pending,
                "tombstones": dep.sim.tombstones,
                "checks": {
                    "delivered": delivered,
                    "all_received_last": dep.receivers_with(p["data_packets"] + 1),
                },
            }
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    best["params"] = p
    return best


SCENARIOS = {
    "fig7_nack_reduction": scenario_fig7_nack_reduction,
    "logger_throughput": scenario_logger_throughput,
    "multicast_fanout": scenario_multicast_fanout,
}


# -- scale scenarios ---------------------------------------------------------
#
# The ``--scale`` tier measures the aggregate-receiver machinery
# (repro.scale): populations the exact engine cannot host are modeled
# by one AggregateSiteReceiver per site, so a 10^5–10^6 receiver run
# fits in a few hundred simulated hosts.  Scale scenarios run the fast
# engine only — the reference engine exists to validate the exact
# per-receiver path, and the aggregate model's conformance to it is
# established statistically by tests/scale/, not by replaying the same
# history under a second engine.  Alongside events/s each scenario
# records ``peak_rss_kb`` (ru_maxrss) so BENCH files track the memory
# cost of scale.


def _require_fast(name: str, engine: str) -> None:
    if engine != "fast":
        raise ValueError(
            f"{name} runs the fast engine only; the aggregate model has no "
            "reference-engine twin (conformance lives in tests/scale/)"
        )


def _scale_fig7_params(tier: str) -> dict:
    if tier == "scale":
        # 200 sites x 500 modeled receivers = 10^5 receivers.
        return {"n_sites": 200, "receivers_per_site": 500, "n_packets": 40,
                "interval": 0.05, "receiver_loss": 0.002, "shared_loss": 0.002}
    return {"n_sites": 16, "receivers_per_site": 50, "n_packets": 10,
            "interval": 0.05, "receiver_loss": 0.01, "shared_loss": 0.01}


def scenario_scale_fig7_aggregate(tier: str, engine: str) -> dict:
    """Figure 7's world at 10^5 receivers: burst + steady train, aggregated.

    The same shape as ``fig7_nack_reduction`` — a tail-circuit outage
    costs one site part of the train, site loggers collapse the NACKs,
    the hub unicasts repairs — but each site's receiver population is a
    single aggregate node drawing Binomial loss counts.  Single worker:
    this scenario prices the aggregate model itself.
    """
    _require_fast("scale_fig7_aggregate", engine)
    p = _scale_fig7_params(tier)
    spec = ScaleSpec(
        n_sites=p["n_sites"],
        receivers_per_site=p["receivers_per_site"],
        receiver_loss=p["receiver_loss"],
        shared_loss=p["shared_loss"],
        seed=1995,
    )
    scenario = ScaleScenario(
        spec=spec,
        n_packets=p["n_packets"],
        interval=p["interval"],
        warmup=0.2,
        drain=3.0,
        bursts=((0.2 + 2 * p["interval"], 1, 0.1),),
    )
    report = run_sharded(scenario, n_shards=1, inline=True)
    return _scale_run_dict(report, p)


def _scale_fig5_params(tier: str) -> dict:
    if tier == "scale":
        # 500 sites x 2000 modeled receivers = 10^6 receivers, 4 workers.
        return {"n_sites": 500, "receivers_per_site": 2000, "n_packets": 10,
                "interval": 0.5, "receiver_loss": 0.001, "n_shards": 4}
    return {"n_sites": 8, "receivers_per_site": 100, "n_packets": 4,
            "interval": 0.5, "receiver_loss": 0.005, "n_shards": 2}


def scenario_scale_fig5_sharded(tier: str, engine: str) -> dict:
    """Figure 5's regime at 10^6 receivers, sharded across workers.

    Sparse traffic with long gaps, so the variable-heartbeat schedule
    (the paper's Figure 5 subject) dominates the event stream.  Sites
    are partitioned across ``n_shards`` worker processes with
    conservative time-window barriers — this scenario prices the
    sharded runner end to end (fork, barriers, merge).
    """
    _require_fast("scale_fig5_sharded", engine)
    p = _scale_fig5_params(tier)
    spec = ScaleSpec(
        n_sites=p["n_sites"],
        receivers_per_site=p["receivers_per_site"],
        receiver_loss=p["receiver_loss"],
        seed=5,
    )
    scenario = ScaleScenario(
        spec=spec,
        n_packets=p["n_packets"],
        interval=p["interval"],
        warmup=0.2,
        drain=3.0,
    )
    report = run_sharded(scenario, n_shards=p["n_shards"])
    return _scale_run_dict(report, p)


def _scale_run_dict(report, params: dict) -> dict:
    from repro.scale.shard import protocol_digest

    rss = report.peak_rss_kb
    peak = rss["max"] if isinstance(rss, dict) else rss
    totals = report.totals
    return {
        "wall_s": report.wall_s,
        "events": report.sim_events,
        "events_per_sec": report.sim_events / report.wall_s,
        "sim_events": report.sim_events,
        "peak_queue_depth": 0,  # per-worker gauges are not merged
        "peak_rss_kb": peak,
        "peak_rss_kb_detail": rss,
        "n_shards": report.n_shards,
        "modeled_population": report.population["modeled_population"],
        "hosts": report.population["hosts"],
        "checks": {
            "protocol_digest": protocol_digest(report),
            "sender_seq": report.hub["sender_seq"],
            "wan_nacks": report.hub["primary"]["nacks_received"],
            "modeled_losses": totals.get("modeled_losses", 0),
            "modeled_recoveries": totals.get("modeled_recoveries", 0),
            "modeled_recovery_failures": totals.get("modeled_recovery_failures", 0),
            "outstanding": totals.get("outstanding", 0),
        },
        "params": params,
    }


SCALE_SCENARIOS = {
    "scale_fig7_aggregate": scenario_scale_fig7_aggregate,
    "scale_fig5_sharded": scenario_scale_fig5_sharded,
}


# -- aio scenarios ------------------------------------------------------------
#
# The ``--aio`` tier measures the *live* transport (repro.aio) over real
# loopback sockets, with the same fast/reference convention as the
# simulator tiers:
#
# * ``fast``      — TX bundling + zero-copy RX ring + ``decode_from`` +
#                   struct codecs: the transport fast path.
# * ``reference`` — the retained pre-fast-path configuration: asyncio
#                   DatagramTransports (one bytes allocation + one
#                   callback per datagram), copy-normalizing ``decode``,
#                   legacy uncached codecs, one datagram per packet.
#
# Two scenarios: ``aio_cluster_throughput`` carries the identical
# packet stream through a real AioCluster (sender + site logger +
# primary + N receivers) and only counts if every receiver finishes
# with the complete stream — protocol work (logging, ACK tracking,
# ordering) is a large fixed cost in both engines, so its ratio is the
# deployment-visible speedup.  ``aio_transport_blast`` isolates the
# transport (sender fans the stream to N sink nodes over unicast), so
# per-datagram cost dominates and its ratio is the transport-fast-path
# speedup bundling targets.  Throughput is timing-dependent by nature,
# so ``checks`` holds only deterministic workload facts (counts,
# completeness) — never rates.


def aio_available() -> bool:
    """True when this environment can run the loopback tier at all."""
    from repro.aio.bench import aio_available as _available

    return _available()


def scenario_aio_cluster_throughput(tier: str, engine: str) -> dict:
    """Full LBRM cluster end to end: fast path vs pre-fast-path baseline."""
    from repro.aio.bench import run_loopback

    fast = engine == "fast"
    with _EngineMode(engine):
        return run_loopback(
            bundling=fast, tier=tier, legacy_transports=not fast, scenario="cluster"
        )


def scenario_aio_transport_blast(tier: str, engine: str) -> dict:
    """Transport-isolated fan-out: per-datagram costs dominate the ratio."""
    from repro.aio.bench import run_loopback

    fast = engine == "fast"
    with _EngineMode(engine):
        return run_loopback(
            bundling=fast, tier=tier, legacy_transports=not fast, scenario="blast"
        )


AIO_SCENARIOS = {
    "aio_cluster_throughput": scenario_aio_cluster_throughput,
    "aio_transport_blast": scenario_aio_transport_blast,
}


# -- hierarchy scenarios -------------------------------------------------------
#
# The ``--hierarchy`` tier measures what DESIGN §11's k-level repair
# trees buy at scale: the *recovery-latency CDF* when a widespread loss
# forces thousands of site loggers to fetch the same packet upstream.
# Flat (depth=2), every repair unicast leaves through the primary
# site's tail circuit — a congested T1 serializes them and the tail of
# the CDF stretches to seconds.  k-level (depth=3), each interior hub
# serves its own subtree through its *own* tail circuit, so repair
# serialization is spread across ~n_sites/fanout links in parallel.
# Fast engine only, like ``--scale``: the population is the point, and
# the engines' equivalence is established elsewhere.


def _hierarchy_cdf_params(tier: str) -> dict:
    if tier == "hierarchy":
        # 10,000 sites, half of them behind a shared outage: the flat
        # primary must push 5,000 repairs down one T1 (~0.5 ms each on
        # the wire), the k-level tree spreads them over ~50 hub tails.
        return {"n_sites": 10000, "receivers_per_site": 1, "fanout": 100,
                "victims": 5000, "tail_bandwidth": 1_536_000.0, "payload": 64,
                "burst": 0.2, "drain": 20.0}
    return {"n_sites": 120, "receivers_per_site": 1, "fanout": 12,
            "victims": 60, "tail_bandwidth": 256_000.0, "payload": 64,
            "burst": 0.2, "drain": 20.0}


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _recovery_cdf_run(depth: int, p: dict, mode: "_EngineMode") -> dict:
    config = LbrmConfig(
        receiver=ReceiverConfig(max_nack_retries=20),
        logger=LoggerConfig(max_upstream_retries=40),
    )
    dep = LbrmDeployment(
        DeploymentSpec(
            n_sites=p["n_sites"],
            receivers_per_site=p["receivers_per_site"],
            depth=depth,
            fanout=p["fanout"],
            tail_bandwidth=p["tail_bandwidth"],
            config=config,
            seed=1995,
        ),
        sim=mode.make_sim(),
    )
    mode.configure(dep)
    payload = b"x" * p["payload"]
    dep.start()
    dep.advance(0.5)
    dep.send(payload)  # warm-up: everyone synced, loggers hold seq 1
    dep.advance(2.0)
    victims = [f"site{i}" for i in range(1, p["victims"] + 1)]
    dep.burst_sites(victims, p["burst"])
    dep.send(payload)  # the lost update: seq 2 misses every victim site
    dep.advance(p["drain"])
    latencies = sorted(
        event.latency
        for node in dep.receiver_nodes
        for event in node.events_of(RecoveryComplete)
    )
    expected = p["victims"] * p["receivers_per_site"]
    assert dep.receivers_missing() == 0, (
        f"depth={depth}: {dep.receivers_missing()} holes never recovered"
    )
    assert len(latencies) >= expected, (
        f"depth={depth}: only {len(latencies)} recoveries, expected >= {expected}"
    )
    return {
        "depth": depth,
        "recoveries": len(latencies),
        "p50": round(_percentile(latencies, 0.50), 6),
        "p90": round(_percentile(latencies, 0.90), 6),
        "p95": round(_percentile(latencies, 0.95), 6),
        "p99": round(_percentile(latencies, 0.99), 6),
        "max": round(latencies[-1], 6) if latencies else 0.0,
        "delivered": dep.network.stats["delivered"],
        "sim_events": dep.sim.processed,
    }


def scenario_hierarchy_recovery_cdf(tier: str, engine: str) -> dict:
    """Recovery-latency CDF under a shared outage: flat vs k-level tree.

    The acceptance claim (ISSUE 10): at 10k+ sites the k-level tree
    strictly dominates the flat layout at p50 and p95.  Detection time
    (the heartbeat that reveals the hole) is identical in both runs, so
    the difference is pure repair-path serialization.
    """
    _require_fast("hierarchy_recovery_cdf", engine)
    p = _hierarchy_cdf_params(tier)
    with _EngineMode(engine) as mode:
        t0 = time.perf_counter()
        flat = _recovery_cdf_run(2, p, mode)
        klevel = _recovery_cdf_run(3, p, mode)
        wall = time.perf_counter() - t0
    for q in ("p50", "p95", "p99"):
        assert klevel[q] < flat[q], (
            f"k-level does not dominate flat at {q}: "
            f"klevel={klevel[q]} flat={flat[q]}"
        )
    events = flat["delivered"] + klevel["delivered"]
    return {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall,
        "sim_events": flat["sim_events"] + klevel["sim_events"],
        "peak_queue_depth": 0,
        "cdf": {"flat": flat, "klevel": klevel},
        "speedup_p95": round(flat["p95"] / klevel["p95"], 3),
        "checks": {
            "flat_recoveries": flat["recoveries"],
            "klevel_recoveries": klevel["recoveries"],
            "klevel_dominates_p50": klevel["p50"] < flat["p50"],
            "klevel_dominates_p95": klevel["p95"] < flat["p95"],
        },
        "params": p,
    }


HIERARCHY_SCENARIOS = {
    "hierarchy_recovery_cdf": scenario_hierarchy_recovery_cdf,
}

ALL_SCENARIOS = {**SCENARIOS, **SCALE_SCENARIOS, **AIO_SCENARIOS, **HIERARCHY_SCENARIOS}


# -- running & reporting -----------------------------------------------------


def run_scenario(name: str, tier: str = "quick", engine: str = "fast") -> dict:
    """Run one (scenario, engine) pair and return its metrics dict."""
    try:
        fn = ALL_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; have {sorted(ALL_SCENARIOS)}"
        ) from None
    return fn(tier, engine)


def assemble_result(name: str, tier: str, engine_runs: dict[str, dict]) -> dict:
    """Combine per-engine runs into one BENCH record (with speedup)."""
    result = {
        "scenario": name,
        "tier": tier,
        "python": sys.version.split()[0],
        "engines": engine_runs,
    }
    fast = engine_runs.get("fast")
    ref = engine_runs.get("reference")
    if fast and ref:
        if fast["checks"] != ref["checks"]:
            raise AssertionError(
                f"{name}: engines diverged — fast={fast['checks']} reference={ref['checks']}"
            )
        result["speedup"] = ref["wall_s"] / fast["wall_s"]
        result["events_per_sec_ratio"] = (
            fast["events_per_sec"] / ref["events_per_sec"]
        )
    return result


def write_result(result: dict, out_dir: Path | str = RESULTS_DIR) -> Path:
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{result['scenario']}.json"
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python benchmarks/harness.py``)."""
    from repro.benchrunner import build_bench_parser, run_bench

    args = build_bench_parser().parse_args(argv)
    return run_bench(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
