"""Ablation — how many Designated Ackers?  (§2.3.1: "analysis suggests
that between 5 and 20 ACKs is appropriate.")

Sweep k and measure, at 50 sites with a single-site loss pattern:

* false re-multicast rate (source multicasts though only one site lost),
* missed widespread loss (source fails to re-multicast though 60% of
  sites lost the packet),
* per-packet ACK overhead.

Small k is cheap but statistically blind; large k approaches per-site
acking.  The paper's 5–20 band should show both failure modes tamed.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.config import LbrmConfig, StatAckConfig
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment

N_SITES = 50
KS = [2, 5, 10, 20, 40]
ROUNDS = 8


def run_k(k: int, seed=17):
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=k, epoch_length=1000))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=N_SITES, receivers_per_site=1, enable_statack=True, config=cfg, seed=seed,
    ))
    dep.start()
    dep.advance(3.0)
    sa = dep.sender.statack

    # Phase 1: isolated single-site losses. A re-multicast here is a
    # false positive (unicast recovery would have been right).
    false_remulticasts = 0
    for round_ in range(ROUNDS):
        now = dep.sim.now
        dep.network.site(f"site{(round_ % N_SITES) + 1}").tail_down.loss = BurstLoss(
            [(now, now + 0.05)]
        )
        before = sa.stats["remulticasts"]
        dep.send(b"isolated")
        dep.advance(1.0)
        false_remulticasts += sa.stats["remulticasts"] - before

    # Phase 2: widespread loss (60% of sites). The source is "blind" when
    # it takes NO proactive action at all (neither a re-multicast nor
    # unicasts to missing ackers): recovery then degrades to a NACK storm.
    missed_widespread = 0
    for round_ in range(ROUNDS):
        now = dep.sim.now
        for i in range(1, int(N_SITES * 0.6) + 1):
            dep.network.site(f"site{i}").tail_down.loss = BurstLoss([(now, now + 0.05)])
        before_m = sa.stats["remulticasts"]
        before_u = sa.stats["unicast_retransmits"]
        dep.send(b"widespread")
        dep.advance(1.0)
        if sa.stats["remulticasts"] == before_m and sa.stats["unicast_retransmits"] == before_u:
            missed_widespread += 1

    acks_per_packet = sa.stats["acks_received"] / max(dep.sender.stats["data_sent"], 1)
    return false_remulticasts, missed_widespread, acks_per_packet


def test_ablation_designated_ackers(benchmark, report):
    def sweep():
        return [(k, *run_k(k)) for k in KS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = (
        f"# Ablation: Designated Acker count k ({N_SITES} sites, {ROUNDS} isolated-loss "
        f"and {ROUNDS} widespread-loss rounds)\n"
    )
    text += format_table(
        ["k", "false re-multicasts (isolated loss)", "missed re-multicasts (widespread)", "acks/packet"],
        [(k, f, m, f"{a:.1f}") for k, f, m, a in rows],
    )
    text += "\npaper guidance: k in [5, 20]"
    report("ablation_ackers", text)

    by_k = {k: (f, m, a) for k, f, m, a in rows}
    # Overhead grows with k.
    acks = [a for _, _, _, a in rows]
    assert acks == sorted(acks)
    # In the paper's recommended band, widespread losses are essentially
    # never missed.
    for k in (10, 20):
        assert by_k[k][1] <= 1
    # Tiny k is blind to widespread loss more often than the recommended band.
    assert by_k[2][1] >= by_k[20][1]
