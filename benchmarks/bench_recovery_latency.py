"""§2.2.2 — retransmission latency: local secondary vs remote primary.

The paper's ping survey: a site logger a few miles away ≈ 3–4 ms RTT;
the primary 1,500 miles away ≈ 80 ms RTT — "we can reduce the
retransmission latency by an order of magnitude."
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.events import RecoveryComplete
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def run(secondary_loggers: bool) -> float:
    """One receiver loses a packet; return its pure recovery RTT
    (request->repair), excluding the detection wait shared by both."""
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=5, receivers_per_site=4, secondary_loggers=secondary_loggers, seed=77,
    ))
    dep.start()
    dep.advance(0.2)
    dep.send(b"warm")
    dep.advance(1.0)
    victim = dep.network.host("site1-rx0")
    victim.inbound_loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.05)])
    dep.send(b"lost")
    dep.advance(5.0)
    node = dep.receiver_nodes[0]
    events = node.events_of(RecoveryComplete)
    assert events, "recovery never completed"
    # RecoveryComplete.latency = detection -> repair delivered; detection
    # happens at the first heartbeat in both configurations, so the
    # difference between the two runs is exactly the request RTT.
    return events[0].latency


def test_recovery_latency_local_vs_wan(benchmark, report):
    def both():
        return run(secondary_loggers=True), run(secondary_loggers=False)

    local, remote = benchmark.pedantic(both, rounds=1, iterations=1)

    rows = [
        ("recovery via site logger (s)", "~0.004 RTT", f"{local:.4f}"),
        ("recovery via remote primary (s)", "~0.080 RTT", f"{remote:.4f}"),
        ("remote / local", "~20x (order of magnitude)", f"{remote / local:.1f}x"),
    ]
    text = "# §2.2.2: lost-packet recovery latency, local vs WAN logger\n"
    text += format_table(["quantity", "paper", "measured"], rows)
    report("recovery_latency", text)

    # local recovery is LAN-scale, remote is WAN-scale
    assert local < 0.01
    assert remote > 0.07
    assert remote / local > 10  # the order-of-magnitude claim
