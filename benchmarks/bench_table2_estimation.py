"""Table 2 — accuracy of the N_sl estimate as probe count increases.

Closed form: σ₁ = √(N(1-p)/p), shrinking as σ₁/√n over n probes.  The
Monte-Carlo column validates the formula against the actual estimator:
we run the repeated-probe protocol thousands of times against N = 500
simulated loggers and measure the empirical standard deviation.
"""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.analysis.estimation_math import nsl_stddev, nsl_stddev_after_probes
from repro.analysis.report import format_table

N = 500
P_ACK = 0.04
TRIALS = 3000


def one_estimate(rng: random.Random, probes: int) -> float:
    """Average of `probes` independent replies/p estimates (the paper's
    repeated-final-probe extension)."""
    total = 0.0
    for _ in range(probes):
        replies = sum(1 for _ in range(N) if rng.random() < P_ACK)
        total += replies / P_ACK
    return total / probes


def compute():
    rng = random.Random(1995)
    sigma1 = nsl_stddev(N, P_ACK)
    rows = []
    for probes in range(1, 6):
        estimates = [one_estimate(rng, probes) for _ in range(TRIALS)]
        empirical = statistics.pstdev(estimates)
        analytic = nsl_stddev_after_probes(N, P_ACK, probes)
        rows.append((probes, f"{analytic:.1f} ({analytic / sigma1:.3f} s1)", f"{empirical:.1f}",
                     statistics.fmean(estimates)))
    return rows, sigma1


def test_table2_estimation(benchmark, report):
    (rows, sigma1) = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = f"# Table 2: N_sl estimate accuracy (N={N}, p_ack={P_ACK}, sigma1={sigma1:.1f})\n"
    text += format_table(
        ["probes", "analytic stddev", "Monte-Carlo stddev", "mean estimate"], rows
    )
    text += "\npaper factors: 1.000, 0.707, 0.577, 0.500, 0.447 of sigma1"
    report("table2_estimation", text)

    for probes, analytic_s, empirical_s, mean in rows:
        analytic = float(analytic_s.split()[0])
        empirical = float(empirical_s)
        # unbiased and within 10% of the analytic sigma
        assert mean == pytest.approx(N, rel=0.05)
        assert empirical == pytest.approx(analytic, rel=0.10)
    # the 1/sqrt(n) shrinkage
    sigmas = [float(r[2]) for r in rows]
    assert sigmas[4] < sigmas[2] < sigmas[0]
    assert sigmas[0] / sigmas[3] == pytest.approx(2.0, rel=0.15)
