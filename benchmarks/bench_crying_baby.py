"""§6 — the crying-baby problem: one receiver behind a terrible link.

"if a single link to one member of the group has a high error rate, then
all members of the multicast group must contend with a multicast request
and one or more multicast responses ... LBRM does not suffer from the
crying baby problem."

We measure the *innocent bystander's* exposure: packets an unaffected
receiver at another site must process purely because of the baby's
losses, under SRM vs LBRM.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.simnet.scenarios import run_lbrm_crying_baby, run_srm_crying_baby


def test_crying_baby(benchmark, report):
    def both():
        members, innocent_srm = run_srm_crying_baby(seed=2)
        receivers, hosts = run_lbrm_crying_baby(seed=2)
        return members, innocent_srm, receivers

    members, innocent_srm, receivers = benchmark.pedantic(both, rounds=1, iterations=1)

    baby_srm = members[0]
    baby_lbrm = receivers[0]
    innocent_lbrm = receivers[-1]

    srm_exposure = innocent_srm.stats["duplicate_repairs_seen"]
    lbrm_exposure = innocent_lbrm.stats["retrans_received"] + innocent_lbrm.stats["duplicates"]
    rows = [
        ("baby's losses recovered", baby_srm.stats["recoveries"], baby_lbrm.stats["recoveries"]),
        ("baby still missing", len(baby_srm.missing), len(baby_lbrm.missing)),
        ("innocent bystander exposure (pkts)", srm_exposure, lbrm_exposure),
        ("group-wide requests", sum(m.stats["requests_sent"] for m in members), 0),
    ]
    text = "# §6 crying baby: one receiver at 40% loss, 30 packets, 4 sites x 3 rx\n"
    text += format_table(["quantity", "wb/SRM", "LBRM"], rows)
    report("crying_baby", text)

    assert baby_lbrm.stats["recoveries"] > 0
    assert not baby_lbrm.missing
    assert lbrm_exposure == 0  # LBRM: nobody else sees the baby's repairs
    assert srm_exposure > 0  # SRM: everyone contends with them
