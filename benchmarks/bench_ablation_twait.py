"""Ablation — the t_wait estimator's EWMA gain α (§2.3.2).

"If t_wait is too short, the sender may be led to believe that a packet
is lost, when in fact its ACKs are merely delayed.  If t_wait is too
long, however, the sender unnecessarily delays the detection of lost
packets."

We seed t_wait far below the true ACK round-trip and sweep α, measuring
(a) premature re-multicasts while the estimator converges and (b) how
many packets convergence takes.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.config import LbrmConfig, StatAckConfig
from repro.simnet import DeploymentSpec, LbrmDeployment

ALPHAS = [0.03125, 0.125, 0.5, 1.0]
N_PACKETS = 60  # alpha=1/32 needs ~44 capped updates to climb 4x
TRUE_RTT = 0.079  # cross-site ACK round-trip in the default topology


def run_alpha(alpha: float, seed=23):
    cfg = LbrmConfig(statack=StatAckConfig(
        k_ackers=10, alpha=alpha, epoch_length=1000,
        initial_t_wait=0.02,  # deliberately below the true RTT
        sites_per_acker_multicast=1.0,
    ))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=20, receivers_per_site=1, enable_statack=True, config=cfg, seed=seed,
    ))
    dep.start()
    dep.advance(3.0)
    sa = dep.sender.statack
    premature = 0
    converged_after = None
    for i in range(N_PACKETS):
        before = sa.stats["remulticasts"]
        dep.send(b"x")
        dep.advance(0.5)
        premature += sa.stats["remulticasts"] - before
        if converged_after is None and sa.t_wait >= TRUE_RTT:
            converged_after = i + 1
    return premature, converged_after or N_PACKETS, sa.t_wait


def test_ablation_twait_alpha(benchmark, report):
    def sweep():
        return [(a, *run_alpha(a)) for a in ALPHAS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = (
        "# Ablation: t_wait EWMA gain alpha (t_wait seeded at 0.02s, true ACK "
        f"RTT ~{TRUE_RTT}s, {N_PACKETS} clean packets)\n"
    )
    text += format_table(
        ["alpha", "premature re-multicasts", "packets to converge", "final t_wait (s)"],
        [(a, p, c, f"{t:.3f}") for a, p, c, t in rows],
    )
    text += "\npaper default: alpha = 1/8"
    report("ablation_twait", text)

    by_alpha = {a: (p, c, t) for a, p, c, t in rows}
    # Larger alpha converges in fewer packets (or equal).
    convergence = [c for _, _, c, _ in rows]
    assert all(b <= a for a, b in zip(convergence, convergence[1:]))
    # Every alpha eventually stops firing prematurely: the 2x cap lets the
    # estimator climb even from a bad seed.
    for a, premature, converged, final_t in rows:
        assert converged < N_PACKETS
        assert final_t >= 0.5 * TRUE_RTT
    # The paper's alpha=1/8 keeps premature re-multicasts modest.
    assert by_alpha[0.125][0] <= by_alpha[0.03125][0]
