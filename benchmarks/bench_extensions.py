"""§7 future-work extensions — quantified.

Three ablations for the directions the paper sketches in its conclusion:

1. **Retransmission channel** — recover by subscribing to a companion
   multicast channel instead of NACKing; loggers only serve packets that
   aged off it.
2. **Small-packet repeat** — heartbeat slots re-send a small last packet
   so a lost final update repairs itself.
3. **Multi-level logging hierarchy** — regional loggers collapse primary
   NACK load from one-per-site to one-per-region.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.config import HeartbeatConfig, LbrmConfig, ReceiverConfig
from repro.core.events import RecoveryComplete
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.retranschannel import RetransChannelConfig
from repro.core.sender import LbrmSender
from repro.simnet import (
    BurstLoss,
    DeploymentSpec,
    LbrmDeployment,
    Network,
    RngStreams,
    SimNode,
    Simulator,
)


def _run_channel(channel: bool, seed=4):
    """One receiver loses one packet; compare NACK-based vs channel recovery."""
    sim = Simulator()
    net = Network(sim, streams=RngStreams(seed))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    cfg = LbrmConfig()
    channel_cfg = RetransChannelConfig()
    prim_host = net.add_host("primary", s0)
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="src", level=0)
    SimNode(net, prim_host, [primary]).start()
    src_host = net.add_host("src", s0)
    sender = LbrmSender("g", cfg, primary="primary",
                        retrans_channel=channel_cfg if channel else None, addr_token="src")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    rx_host = net.add_host("rx", s1)
    rcfg = ReceiverConfig(
        retrans_channel_fallback=channel_cfg.lifetime + 0.5 if channel else 0.0
    )
    receiver = LbrmReceiver("g", rcfg, logger_chain=("primary",), heartbeat=cfg.heartbeat)
    rx_node = SimNode(net, rx_host, [receiver])
    rx_node.start()
    sim.run_until(0.1)
    src_node.send_app(sender, b"one")
    sim.run_until(1.0)
    rx_host.inbound_loss = BurstLoss([(sim.now, sim.now + 0.05)])
    src_node.send_app(sender, b"two")
    sim.run_until(10.0)
    assert receiver.tracker.has(2)
    latency = rx_node.events_of(RecoveryComplete)[0].latency
    return receiver.stats["nacks_sent"], latency


def test_retrans_channel(benchmark, report):
    def both():
        return _run_channel(channel=False), _run_channel(channel=True)

    (nack_n, nack_lat), (chan_n, chan_lat) = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [
        ("NACKs sent by receiver", nack_n, chan_n),
        ("recovery latency (s)", f"{nack_lat:.4f}", f"{chan_lat:.4f}"),
        ("server load", "1 request + 1 reply", "0 (channel carried it)"),
    ]
    text = "# §7 ext 1: retransmission channel vs NACK recovery (single loss)\n"
    text += format_table(["quantity", "NACK recovery", "channel recovery"], rows)
    report("ext_retrans_channel", text)
    assert nack_n >= 1 and chan_n == 0


def test_small_packet_repeat(benchmark, report):
    def run(repeat: bool):
        cfg = LbrmConfig(heartbeat=HeartbeatConfig(
            repeat_payload_max=256 if repeat else 0))
        dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=3,
                                            config=cfg, seed=44))
        dep.start()
        dep.advance(0.1)
        dep.send(b"warm")
        dep.advance(1.0)
        now = dep.sim.now
        dep.network.site("site1").tail_down.loss = BurstLoss([(now, now + 0.05)])
        dep.send(b"small final update")
        dep.advance(3.0)
        assert dep.receivers_with(2) == len(dep.receivers)
        nacks = sum(rx.stats["nacks_sent"] for rx in dep.receivers)
        upstream = sum(l.stats["upstream_nacks"] for l in dep.site_loggers)
        return nacks + upstream

    def both():
        return run(False), run(True)

    baseline, repeat = benchmark.pedantic(both, rounds=1, iterations=1)
    rows = [("retransmission requests after the loss", baseline, repeat)]
    text = "# §7 ext 3: repeat small packets in heartbeat slots\n"
    text += format_table(["quantity", "plain heartbeats", "small-packet repeat"], rows)
    report("ext_small_packet_repeat", text)
    assert repeat < baseline
    assert repeat == 0  # the repeat repaired everything silently


def test_multilevel_hierarchy(benchmark, report):
    def primary_load(region_size: int):
        dep = LbrmDeployment(DeploymentSpec(n_sites=24, receivers_per_site=2,
                                            region_size=region_size, seed=13))
        dep.start()
        dep.advance(0.2)
        dep.send(b"warm")
        dep.advance(1.0)
        now = dep.sim.now
        for i in range(1, 25):
            dep.network.site(f"site{i}").tail_down.loss = BurstLoss([(now, now + 0.05)])
        dep.send(b"lost")
        dep.advance(10.0)
        assert dep.receivers_with(2) == len(dep.receivers)
        return dep.primary.stats["nacks_received"]

    def sweep():
        return [(size, primary_load(size)) for size in (0, 4, 8)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "# §7 ext 2: multi-level logging hierarchy, 24-site group-wide loss\n"
    text += format_table(
        ["region size (0 = two-level)", "NACKs at the primary server"], rows
    )
    report("ext_multilevel_hierarchy", text)
    by_size = dict(rows)
    assert by_size[0] == 24
    assert by_size[4] == 6
    assert by_size[8] == 3
