"""Link and loss-model tests: latency, serialization, queueing, drops."""

from __future__ import annotations

import random

import pytest

from repro.simnet.links import Link
from repro.simnet.loss import (
    BernoulliLoss,
    BurstLoss,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
)


class TestLink:
    def test_pure_latency(self):
        link = Link("l", latency=0.01)
        assert link.transit(100, now=1.0) == pytest.approx(1.01)

    def test_serialization_delay(self):
        # 1000 bytes at 1 Mbit/s = 8 ms + 1 ms propagation
        link = Link("l", latency=0.001, bandwidth=1_000_000)
        assert link.transit(1000, now=0.0) == pytest.approx(0.009)

    def test_back_to_back_queueing(self):
        link = Link("l", latency=0.0, bandwidth=1_000_000)
        first = link.transit(1000, now=0.0)
        second = link.transit(1000, now=0.0)  # queued behind the first
        assert first == pytest.approx(0.008)
        assert second == pytest.approx(0.016)

    def test_queue_overflow_drops(self):
        link = Link("l", bandwidth=1_000_000, queue_limit=2)
        results = [link.transit(1000, now=0.0) for _ in range(5)]
        delivered = [r for r in results if r is not None]
        assert len(delivered) == 3  # 1 in service + 2 queued
        assert link.stats.drops_queue == 2

    def test_loss_model_applied(self):
        link = Link("l", loss=BernoulliLoss(1.0, random.Random(0)))
        assert link.transit(100, now=0.0) is None
        assert link.stats.drops_loss == 1
        assert link.stats.packets == 0

    def test_stats_accumulate(self):
        link = Link("l")
        link.transit(100, 0.0)
        link.transit(200, 0.0)
        assert link.stats.packets == 2
        assert link.stats.bytes == 300
        link.stats.reset()
        assert link.stats.packets == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Link("l", latency=-1)
        with pytest.raises(ValueError):
            Link("l", bandwidth=-1)
        with pytest.raises(ValueError):
            Link("l", queue_limit=-1)


class TestLossModels:
    def test_no_loss(self):
        model = NoLoss()
        assert not any(model.drops(t) for t in range(100))

    def test_bernoulli_rate(self):
        model = BernoulliLoss(0.3, random.Random(42))
        drops = sum(model.drops(0.0) for _ in range(10_000))
        assert drops / 10_000 == pytest.approx(0.3, abs=0.02)

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_burst_window_total_loss(self):
        model = BurstLoss([(1.0, 2.0)])
        assert not model.drops(0.5)
        assert model.drops(1.0)
        assert model.drops(1.99)
        assert not model.drops(2.0)  # half-open interval

    def test_burst_multiple_windows(self):
        model = BurstLoss([(1.0, 2.0), (5.0, 6.0)])
        assert model.drops(5.5)
        assert not model.drops(3.0)

    def test_burst_with_base_model(self):
        model = BurstLoss([(1.0, 2.0)], base=BernoulliLoss(1.0, random.Random(0)))
        assert model.drops(0.5)  # base drops outside windows

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstLoss([(2.0, 1.0)])

    def test_gilbert_elliott_is_bursty(self):
        """Mean burst length in the bad state ~ 1/p_bad_to_good."""
        model = GilbertElliottLoss(
            p_good_to_bad=0.02, p_bad_to_good=0.25, loss_good=0.0, loss_bad=1.0,
            rng=random.Random(7),
        )
        outcomes = [model.drops(0.0) for _ in range(50_000)]
        loss_rate = sum(outcomes) / len(outcomes)
        # steady state: pi_bad = 0.02/(0.02+0.25) ~ 0.074
        assert loss_rate == pytest.approx(0.074, abs=0.02)
        # runs of losses should exist (burstiness)
        max_run = run = 0
        for o in outcomes:
            run = run + 1 if o else 0
            max_run = max(max_run, run)
        assert max_run >= 5

    def test_gilbert_elliott_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5)

    def test_composite_any_drop(self):
        model = CompositeLoss(NoLoss(), BurstLoss([(0.0, 1.0)]))
        assert model.drops(0.5)
        assert not model.drops(2.0)

    def test_composite_advances_all_members(self):
        ge = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0,
                                loss_good=0.0, loss_bad=1.0, rng=random.Random(0))
        model = CompositeLoss(BurstLoss([(0.0, 10.0)]), ge)
        model.drops(0.5)  # burst drops, but GE must still transition
        assert ge.in_bad_state


class TestDefaultRngDecorrelation:
    """Default-constructed instances must not drop the same packets in
    lockstep (the correlated-loss bug the chaos campaign flushed out)."""

    def test_two_default_bernoulli_instances_differ(self):
        a, b = BernoulliLoss(0.5), BernoulliLoss(0.5)
        outcomes = [(a.drops(0.0), b.drops(0.0)) for _ in range(256)]
        assert any(x != y for x, y in outcomes)

    def test_two_default_gilbert_elliott_instances_differ(self):
        a = GilbertElliottLoss(p_good_to_bad=0.2, p_bad_to_good=0.2, loss_bad=1.0)
        b = GilbertElliottLoss(p_good_to_bad=0.2, p_bad_to_good=0.2, loss_bad=1.0)
        outcomes = [(a.drops(0.0), b.drops(0.0)) for _ in range(512)]
        assert any(x != y for x, y in outcomes)

    def test_composite_rng_pins_members_regardless_of_construction(self):
        """One seed reproduces the whole stack even when the members were
        built with (decorrelated, order-dependent) default streams."""
        def build(seed):
            members = (BernoulliLoss(0.4), GilbertElliottLoss(loss_bad=1.0))
            return CompositeLoss(*members, rng=random.Random(seed))

        a, b = build(11), build(11)
        assert [a.drops(0.0) for _ in range(512)] == [b.drops(0.0) for _ in range(512)]
        c, d = build(11), build(12)
        assert [c.drops(0.0) for _ in range(512)] != [d.drops(0.0) for _ in range(512)]

    def test_composite_reseed_preserves_member_parameters(self):
        base = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0,
                                  loss_good=0.0, loss_bad=1.0)
        model = CompositeLoss(base, rng=random.Random(0))
        model.drops(0.0)
        rebuilt = model._models[0]
        assert rebuilt is not base
        assert rebuilt.in_bad_state  # p_good_to_bad=1.0 carried over
