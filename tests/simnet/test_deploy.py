"""Deployment builder tests: shape, wiring, basic operation."""

from __future__ import annotations

import pytest

from repro.core.logger import LoggerRole
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment


def test_default_spec_matches_paper_scenario():
    spec = DeploymentSpec()
    assert spec.n_sites == 50
    assert spec.receivers_per_site == 20
    # host-to-host RTT across sites ~ 80 ms (§2.2.2 ping survey)
    one_way = spec.lan_latency + spec.tail_latency + spec.backbone_latency + spec.tail_latency + spec.lan_latency
    assert 2 * one_way == pytest.approx(0.079, abs=0.005)
    # local logger RTT ~ 3-4 ms
    assert 2 * 2 * spec.lan_latency == pytest.approx(0.004, abs=0.001)


def test_build_shape():
    dep = LbrmDeployment(DeploymentSpec(n_sites=4, receivers_per_site=3, n_replicas=2, seed=1))
    assert len(dep.receivers) == 12
    assert len(dep.site_loggers) == 4
    assert len(dep.replicas) == 2
    assert dep.primary is not None and dep.primary.role is LoggerRole.PRIMARY
    assert all(r.role is LoggerRole.REPLICA for r in dep.replicas)
    assert len(dep.network.hosts) == 1 + 1 + 2 + 4 * (1 + 3)


def test_receiver_chain_prefers_site_logger():
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=1, seed=1))
    assert dep.receivers[0].logger_chain == ("site1-logger", "primary")


def test_centralized_chain_is_primary_only():
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=1,
                                        secondary_loggers=False, seed=1))
    assert dep.site_loggers == []
    assert dep.receivers[0].logger_chain == ("primary",)


def test_send_and_deliver_everywhere():
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=4, seed=2))
    dep.start()
    dep.advance(0.1)
    seq = dep.send(b"hello")
    dep.advance(1.0)
    assert seq == 1
    assert dep.receivers_with(1) == 12
    assert dep.receivers_missing() == 0


def test_loggers_all_hold_the_log():
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=1, seed=2))
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.send(b"b")
    dep.advance(1.0)
    assert len(dep.primary.log) == 2
    assert all(len(l.log) == 2 for l in dep.site_loggers)


def test_source_buffer_released_after_log_ack():
    dep = LbrmDeployment(DeploymentSpec(n_sites=1, receivers_per_site=1, seed=2))
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(0.5)
    assert dep.sender.unacked == 0
    assert dep.sender.released_up_to == 1


def test_kill_primary_silences_it():
    dep = LbrmDeployment(DeploymentSpec(n_sites=1, receivers_per_site=1, seed=2))
    dep.start()
    dep.advance(0.1)
    dep.kill_primary()
    dep.send(b"a")
    dep.advance(1.0)
    assert len(dep.primary.log) == 0
    assert dep.sender.unacked == 1  # never acked


def test_deterministic_across_runs():
    def run():
        dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=2,
                                            enable_statack=True, seed=7))
        dep.start()
        dep.advance(2.0)
        for _ in range(5):
            dep.send(b"x")
            dep.advance(0.5)
        return (
            dep.sender.stats.copy(),
            dep.trace.counts.copy(),
            dep.sender.statack.group_size_estimate,
        )

    assert run() == run()
