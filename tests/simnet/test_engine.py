"""Discrete-event engine tests: ordering, cancellation, determinism."""

from __future__ import annotations

import pytest

from repro.simnet.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_run_until_stops_and_pins_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run_until(5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run_until(20.0)
    assert fired == [1, 10]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_schedule_in_relative():
    sim = Simulator(start=100.0)
    fired = []
    sim.schedule_in(2.5, fired.append, "x")
    sim.run()
    assert sim.now == 102.5 and fired == ["x"]


def test_past_schedule_clamped_to_now():
    sim = Simulator(start=10.0)
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10.0]


def test_events_scheduled_during_run():
    sim = Simulator()

    def chain(n):
        if n > 0:
            sim.schedule_in(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 5)
    sim.run()
    assert sim.now == 5.0
    assert sim.processed == 6


def test_max_events_bound():
    sim = Simulator()

    def forever():
        sim.schedule_in(0.1, forever)

    sim.schedule(0.0, forever)
    executed = sim.run(max_events=50)
    assert executed == 50


def test_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.processed == 7
