"""Discrete-event engine tests: ordering, cancellation, determinism."""

from __future__ import annotations

import pytest

from repro import obs
from repro.simnet.engine import ReferenceSimulator, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]


def test_run_until_stops_and_pins_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run_until(5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run_until(20.0)
    assert fired == [1, 10]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_schedule_in_relative():
    sim = Simulator(start=100.0)
    fired = []
    sim.schedule_in(2.5, fired.append, "x")
    sim.run()
    assert sim.now == 102.5 and fired == ["x"]


def test_past_schedule_clamped_to_now():
    sim = Simulator(start=10.0)
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10.0]


def test_events_scheduled_during_run():
    sim = Simulator()

    def chain(n):
        if n > 0:
            sim.schedule_in(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 5)
    sim.run()
    assert sim.now == 5.0
    assert sim.processed == 6


def test_max_events_bound():
    sim = Simulator()

    def forever():
        sim.schedule_in(0.1, forever)

    sim.schedule(0.0, forever)
    executed = sim.run(max_events=50)
    assert executed == 50


def test_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.processed == 7


def test_pending_is_live_count():
    """`pending` counts only events that will still fire."""
    sim = Simulator()
    handles = [sim.schedule(float(i), lambda: None) for i in range(5)]
    assert sim.pending == 5
    handles[0].cancel()
    handles[3].cancel()
    assert sim.pending == 3
    assert sim.tombstones == 2
    sim.run_until(2.5)
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    assert sim.tombstones == 0


def test_peak_pending_high_water_mark():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    assert sim.peak_pending == 10
    sim.run()
    assert sim.pending == 0
    assert sim.peak_pending == 10  # the mark survives the drain


def test_cancelled_events_never_inflate_peak():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None).cancel()
    live = sim.schedule(1.0, lambda: None)
    assert sim.pending == 1
    assert sim.peak_pending == 1
    live.cancel()
    assert sim.pending == 0


def test_double_cancel_counts_once():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.tombstones == 1
    assert sim.pending == 0


def test_compaction_drops_shells_and_preserves_order():
    """Forced compaction removes tombstones without touching live order."""
    sim = Simulator(compact_min=4, compact_ratio=0.0)
    fired = []
    doomed = [sim.schedule(0.5 + i, fired.append, f"dead{i}") for i in range(4)]
    for i in range(3):
        sim.schedule(1.0 + i, fired.append, i)
    for handle in doomed:
        handle.cancel()
    assert sim.compactions >= 1
    assert sim.tombstones == 0
    assert sim.pending == 3
    sim.run()
    assert fired == [0, 1, 2]


def test_cancel_inside_callback_during_run():
    """Regression: a callback cancelling a sibling may trigger compaction
    mid-run; the loop must keep draining the *same* queue (in-place
    compaction), losing and reordering nothing."""
    sim = Simulator(compact_min=1, compact_ratio=0.0)
    fired = []
    victims = [sim.schedule(2.0 + i * 0.001, fired.append, f"victim{i}") for i in range(8)]

    def reap():
        fired.append("reap")
        for victim in victims:
            victim.cancel()

    sim.schedule(1.0, reap)
    sim.schedule(3.0, fired.append, "survivor")
    sim.run()
    assert fired == ["reap", "survivor"]
    assert sim.compactions >= 1
    assert sim.pending == 0 and sim.tombstones == 0


def test_wheel_horizon_fallback_to_heap():
    """Events beyond the wheel horizon still fire in order."""
    sim = Simulator(wheel_granularity=0.01, wheel_slots=4)  # horizon 0.04s
    fired = []
    sim.schedule(100.0, fired.append, "far")
    sim.schedule(0.02, fired.append, "near")
    sim.schedule(5.0, fired.append, "mid")
    sim.run()
    assert fired == ["near", "mid", "far"]


def test_obs_gauges_reflect_queue_depth():
    with obs.recording() as reg:
        sim = Simulator()
        for i in range(6):
            sim.schedule(float(i), lambda: None)
        sim.run_until(2.5)
        assert reg.gauge_value("sim.queue_depth") == 3
        assert reg.gauge_value("sim.peak_queue_depth") == 6
        sim.run()
        assert reg.gauge_value("sim.queue_depth") == 0


def test_reference_simulator_same_contract():
    """The executable spec honors the identical external contract."""
    ref = ReferenceSimulator()
    fired = []
    ref.schedule(2.0, fired.append, "b")
    ref.schedule(1.0, fired.append, "a")
    handle = ref.schedule(1.5, fired.append, "dropped")
    handle.cancel()
    assert ref.pending == 2 and ref.tombstones == 1
    ref.run()
    assert fired == ["a", "b"]
    assert ref.pending == 0 and ref.processed == 2
