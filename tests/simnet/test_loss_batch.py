"""Vectorized loss draws: batched fan-out must be draw-for-draw exact.

``drops_batch`` exists so one multicast transmission makes one call per
loss-model instance instead of one per receiver.  Its contract is
strict stream equivalence: same verdicts as sequential ``drops`` calls,
same RNG consumption, same model state afterwards — a same-seed run may
never change by a byte when batching is toggled.  The suite closes with
the end-to-end form of that guarantee: a fig7-style lossy deployment
replayed with ``batch_delivery`` on and off (which also toggles the
shared-deadline :class:`~repro.simnet.engine.WakeupMux`) produces
byte-identical packet traces and protocol outcomes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.packets import clear_codec_caches
from repro.simnet import BernoulliLoss, DeploymentSpec, LbrmDeployment
from repro.simnet.loss import BurstLoss, CompositeLoss, GilbertElliottLoss, NoLoss
from repro.simnet.topology import clear_wire_size_cache

# -- model-level stream equivalence ------------------------------------------

_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
_COUNTS = st.integers(min_value=0, max_value=64)
_TIMES = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def _model_pair(kind: str, seed: int):
    """Two identically-seeded instances of one model kind."""
    def build():
        rng = random.Random(seed)
        if kind == "bernoulli":
            return BernoulliLoss(0.3, rng)
        if kind == "gilbert":
            return GilbertElliottLoss(
                p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.05,
                loss_bad=0.9, rng=rng,
            )
        if kind == "burst":
            return BurstLoss([(2.0, 4.0)], base=BernoulliLoss(0.2, rng))
        if kind == "composite":
            return CompositeLoss(
                BurstLoss([(2.0, 4.0)]),
                BernoulliLoss(0.2),
                GilbertElliottLoss(loss_bad=1.0),
                rng=rng,
            )
        return NoLoss()
    return build(), build()


@settings(max_examples=120, deadline=None)
@given(
    st.sampled_from(["bernoulli", "gilbert", "burst", "composite", "none"]),
    _SEEDS,
    st.lists(st.tuples(_TIMES, _COUNTS), min_size=1, max_size=8),
)
def test_drops_batch_is_stream_equivalent(kind, seed, calls):
    """Batched and sequential draws agree verdict-for-verdict, and leave
    the model in the same state (later draws agree too)."""
    batched, sequential = _model_pair(kind, seed)
    for now, count in calls:
        assert batched.drops_batch(now, count) == [
            sequential.drops(now) for _ in range(count)
        ]
    # State equivalence: one more interleaved round in each style.
    assert [batched.drops(5.0) for _ in range(8)] == sequential.drops_batch(5.0, 8)


@settings(max_examples=60, deadline=None)
@given(_SEEDS, _COUNTS, _COUNTS)
def test_drops_batch_split_invariance(seed, first, second):
    """Two batches draw exactly like one batch of the combined size."""
    split, joined = _model_pair("gilbert", seed)
    assert (
        split.drops_batch(0.0, first) + split.drops_batch(0.0, second)
        == joined.drops_batch(0.0, first + second)
    )


def test_burst_window_batch_does_not_advance_base_stream():
    """Inside a burst window everything drops without touching the base
    model's RNG — exactly like the sequential early return."""
    base = BernoulliLoss(0.5, random.Random(3))
    model = BurstLoss([(1.0, 2.0)], base=base)
    witness = BernoulliLoss(0.5, random.Random(3))
    assert model.drops_batch(1.5, 100) == [True] * 100
    # The base stream is untouched: it still agrees with a fresh twin.
    assert base.drops_batch(0.0, 64) == witness.drops_batch(0.0, 64)


def test_batched_loss_rate_statistics():
    """The vectorized path still realizes the configured loss rate."""
    model = BernoulliLoss(0.3, random.Random(42))
    draws = 50_000
    drops = sum(model.drops_batch(0.0, draws))
    assert drops / draws == pytest.approx(0.3, abs=0.02)
    ge = GilbertElliottLoss(
        p_good_to_bad=0.02, p_bad_to_good=0.25, loss_good=0.0, loss_bad=1.0,
        rng=random.Random(7),
    )
    outcomes = ge.drops_batch(0.0, 50_000)
    # steady state: pi_bad = 0.02/(0.02+0.25) ~ 0.074
    assert sum(outcomes) / len(outcomes) == pytest.approx(0.074, abs=0.02)
    # Burstiness survives batching: runs of consecutive losses exist.
    max_run = run = 0
    for o in outcomes:
        run = run + 1 if o else 0
        max_run = max(max_run, run)
    assert max_run >= 5


# -- end-to-end: batching toggles nothing observable -------------------------


def _lossy_scenario(seed: int, batch: bool):
    """Fig7's shape in miniature: burst outage + steady seeded loss."""
    clear_codec_caches()
    clear_wire_size_cache()
    with obs.recording() as reg:
        dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=3, seed=seed))
        dep.network.batch_delivery = batch
        dep.start()
        dep.network.host("site2-rx0").inbound_loss = BernoulliLoss(
            0.3, dep.streams.stream("flaky-rx")
        )
        dep.advance(0.2)
        for i in range(3):
            dep.send(f"packet-{i}".encode())
            dep.advance(0.3)
        dep.burst_site("site1", duration=0.2)
        for i in range(3, 6):
            dep.send(f"packet-{i}".encode())
            dep.advance(0.3)
        dep.advance(8.0)
        outcome = {
            "network": dict(dep.network.stats),
            "receivers": [dict(r.stats) for r in dep.receivers],
            "missing": dep.receivers_missing(),
            "trace_counts": dict(dep.trace.counts),
        }
        return reg.trace.events(), outcome


@pytest.mark.parametrize("seed", [11, 1995])
def test_same_seed_trace_identical_with_and_without_batching(seed):
    """The satellite's headline guarantee: toggling the batched fast path
    (delivery batching + wakeup mux) changes no trace byte, no stat."""
    trace_batched, outcome_batched = _lossy_scenario(seed, batch=True)
    trace_reference, outcome_reference = _lossy_scenario(seed, batch=False)
    assert len(trace_batched) > 0
    assert trace_batched == trace_reference
    assert outcome_batched == outcome_reference
