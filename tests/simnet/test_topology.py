"""Topology/routing tests: paths, TTL scoping, shared multicast fate."""

from __future__ import annotations

import pytest

from repro.core.packets import DataPacket, PrimaryQueryPacket
from repro.simnet.engine import Simulator
from repro.simnet.loss import BurstLoss
from repro.simnet.topology import CROSS_SITE_HOPS, SAME_SITE_HOPS, Network, wire_size


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, packet, src, now):
        self.received.append((packet, src, now))


def build(sim=None):
    sim = sim or Simulator()
    net = Network(sim, backbone_latency=0.005)
    s0 = net.add_site("s0", lan_latency=0.001, tail_latency=0.02)
    s1 = net.add_site("s1", lan_latency=0.001, tail_latency=0.02)
    hosts = {}
    for name, site in (("a0", s0), ("a1", s0), ("b0", s1), ("b1", s1)):
        hosts[name] = net.add_host(name, site)
        hosts[name].attach(Sink())
    return sim, net, hosts


def test_duplicate_names_rejected():
    sim, net, hosts = build()
    with pytest.raises(ValueError):
        net.add_site("s0")
    with pytest.raises(ValueError):
        net.add_host("a0", net.site("s1"))


def test_same_site_path_is_lan_only():
    sim, net, hosts = build()
    links, hops = net.path(hosts["a0"], hosts["a1"])
    assert hops == SAME_SITE_HOPS
    assert [l.name for l in links] == ["s0.lan"]


def test_cross_site_path_crosses_tails_and_backbone():
    sim, net, hosts = build()
    links, hops = net.path(hosts["a0"], hosts["b0"])
    assert hops == CROSS_SITE_HOPS
    assert [l.name for l in links] == ["s0.lan", "s0.tail.up", "backbone", "s1.tail.down", "s1.lan"]


def test_unicast_latency_sums_links():
    sim, net, hosts = build()
    net.send_unicast("a0", "b0", PrimaryQueryPacket(group="g"))
    sim.run()
    packet, src, at = hosts["b0"].endpoint.received[0]
    assert src == "a0"
    assert at == pytest.approx(0.001 + 0.02 + 0.005 + 0.02 + 0.001)


def test_unicast_to_unknown_host_counts_drop():
    sim, net, hosts = build()
    net.send_unicast("a0", "ghost", PrimaryQueryPacket(group="g"))
    sim.run()
    assert net.stats["dropped"] == 1


def test_multicast_reaches_all_members_except_sender():
    sim, net, hosts = build()
    for name in hosts:
        net.join("g", name)
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    assert hosts["a0"].endpoint.received == []  # no self-delivery
    for name in ("a1", "b0", "b1"):
        assert len(hosts[name].endpoint.received) == 1


def test_multicast_ttl_scopes_to_site():
    sim, net, hosts = build()
    for name in hosts:
        net.join("g", name)
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"x"), ttl=1)
    sim.run()
    assert len(hosts["a1"].endpoint.received) == 1
    assert hosts["b0"].endpoint.received == []
    assert hosts["b1"].endpoint.received == []


def test_multicast_shared_fate_on_tail_loss():
    """A drop on one site's tail-down loses the packet for the whole site."""
    sim, net, hosts = build()
    for name in hosts:
        net.join("g", name)
    net.site("s1").tail_down.loss = BurstLoss([(0.0, 1.0)])
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    assert len(hosts["a1"].endpoint.received) == 1  # own site unaffected
    assert hosts["b0"].endpoint.received == []
    assert hosts["b1"].endpoint.received == []
    # the loss was evaluated once: exactly one drop charged to the link
    assert net.site("s1").tail_down.stats.drops_loss == 1


def test_multicast_charges_each_link_once():
    sim, net, hosts = build()
    for name in hosts:
        net.join("g", name)
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"abc"))
    sim.run()
    # Two members behind s1, but the tail carried exactly one copy.
    assert net.site("s1").tail_down.stats.packets == 1
    assert net.backbone.stats.packets == 1


def test_host_inbound_loss():
    sim, net, hosts = build()
    hosts["b0"].inbound_loss = BurstLoss([(0.0, 10.0)])
    for name in hosts:
        net.join("g", name)
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    assert hosts["b0"].endpoint.received == []
    assert len(hosts["b1"].endpoint.received) == 1
    assert hosts["b0"].rx_dropped == 1


def test_leave_group_stops_delivery():
    sim, net, hosts = build()
    for name in hosts:
        net.join("g", name)
    net.leave("g", "b0")
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    assert hosts["b0"].endpoint.received == []
    assert net.members("g") == frozenset({"a0", "a1", "b1"})


def test_wire_size_matches_encoding():
    from repro.core.packets import encode

    pkt = DataPacket(group="g", seq=1, payload=b"x" * 37)
    assert wire_size(pkt) == len(encode(pkt))


def test_observer_sees_rx_and_drop():
    sim, net, hosts = build()
    seen = []
    net.observer = lambda kind, p, s, d, t: seen.append((kind, s, d))
    net.site("s1").tail_down.loss = BurstLoss([(0.0, 1.0)])
    for name in hosts:
        net.join("g", name)
    net.send_multicast("a0", "g", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    kinds = {k for k, _, _ in seen}
    assert kinds == {"rx", "drop"}
