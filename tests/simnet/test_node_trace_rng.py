"""SimNode action execution, PacketTrace accounting, RNG streams."""

from __future__ import annotations

import pytest

from repro.core.actions import Deliver, JoinGroup, Notify, SendMulticast, SendUnicast
from repro.core.events import LossDetected
from repro.core.machine import ProtocolMachine
from repro.core.packets import DataPacket, NackPacket, PacketType, PrimaryQueryPacket
from repro.simnet.engine import Simulator
from repro.simnet.node import SimNode
from repro.simnet.rng import RngStreams
from repro.simnet.topology import Network
from repro.simnet.trace import PacketTrace


class Echo(ProtocolMachine):
    """Test machine: joins on start, echoes data back as unicast, fires
    a poll action at a fixed deadline."""

    def __init__(self, group="g", wake_at=None):
        super().__init__()
        self._group = group
        self.polled_at: list[float] = []
        if wake_at is not None:
            self.timers.set(("wake",), wake_at)

    def start(self, now):
        return [JoinGroup(group=self._group)]

    def handle(self, packet, src, now):
        if isinstance(packet, DataPacket):
            return [
                SendUnicast(dest=src, packet=PrimaryQueryPacket(group=self._group)),
                Deliver(seq=packet.seq, payload=packet.payload),
                Notify(LossDetected(seqs=(1,))),
            ]
        return []

    def poll(self, now):
        for key in self.timers.pop_due(now):
            self.polled_at.append(now)
        return []


def build():
    sim = Simulator()
    net = Network(sim)
    site = net.add_site("s0")
    h1 = net.add_host("h1", site)
    h2 = net.add_host("h2", site)
    return sim, net, h1, h2


def test_start_executes_join():
    sim, net, h1, h2 = build()
    node = SimNode(net, h1, [Echo()])
    node.start()
    assert "h1" in net.members("g")


def test_receive_dispatches_and_executes_actions():
    sim, net, h1, h2 = build()
    n1 = SimNode(net, h1, [Echo()])
    n2 = SimNode(net, h2, [Echo()])
    n1.start()
    n2.start()
    net.send_unicast("h2", "h1", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    # h1 delivered locally and echoed a unicast back to h2
    assert n1.delivered[0].payload == b"x"
    assert isinstance(n1.events[0], LossDetected)
    assert h2.rx_packets == 1  # the echo arrived


def test_wakeup_scheduling():
    sim, net, h1, h2 = build()
    machine = Echo(wake_at=2.5)
    node = SimNode(net, h1, [machine])
    node.start()
    sim.run()
    assert machine.polled_at == [2.5]


def test_deliver_callback():
    sim, net, h1, h2 = build()
    got = []
    n1 = SimNode(net, h1, [Echo()], on_deliver=lambda d, t: got.append((d.seq, t)))
    n1.start()
    net.send_unicast("h2", "h1", DataPacket(group="g", seq=9, payload=b"x"))
    sim.run()
    assert got and got[0][0] == 9


def test_events_of_filter():
    sim, net, h1, h2 = build()
    n1 = SimNode(net, h1, [Echo()])
    n1.start()
    net.send_unicast("h2", "h1", DataPacket(group="g", seq=1, payload=b"x"))
    sim.run()
    assert len(n1.events_of(LossDetected)) == 1


class TestTrace:
    def test_counts_by_type_and_scope(self):
        sim = Simulator()
        net = Network(sim)
        s0, s1 = net.add_site("s0"), net.add_site("s1")
        a = net.add_host("a", s0)
        b = net.add_host("b", s1)
        c = net.add_host("c", s0)
        trace = PacketTrace(net)
        net.send_unicast("a", "b", NackPacket(group="g", seqs=(1,)))
        net.send_unicast("a", "c", NackPacket(group="g", seqs=(2,)))
        sim.run()
        assert trace.delivered(PacketType.NACK) == 2
        assert trace.delivered(PacketType.NACK, cross_site=True) == 1
        assert trace.cross_site_nacks() == 1

    def test_records_kept_when_asked(self):
        sim = Simulator()
        net = Network(sim)
        s0 = net.add_site("s0")
        net.add_host("a", s0)
        net.add_host("b", s0)
        trace = PacketTrace(net, keep_records=True)
        net.send_unicast("a", "b", DataPacket(group="g", seq=5, payload=b"x"))
        sim.run()
        assert len(trace.records) == 1
        rec = trace.records[0]
        assert rec.seq == 5 and rec.kind == "rx" and not rec.cross_site

    def test_reset(self):
        sim = Simulator()
        net = Network(sim)
        s0 = net.add_site("s0")
        net.add_host("a", s0)
        net.add_host("b", s0)
        trace = PacketTrace(net)
        net.send_unicast("a", "b", DataPacket(group="g", seq=1, payload=b""))
        sim.run()
        trace.reset()
        assert trace.delivered(PacketType.DATA) == 0


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngStreams(5).stream("loss")
        b = RngStreams(5).stream("loss")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        streams = RngStreams(5)
        loss = streams.stream("loss")
        before = loss.random()
        # Creating/consuming another stream must not disturb "loss".
        streams.stream("other").random()
        fresh = RngStreams(5)
        fresh_loss = fresh.stream("loss")
        fresh_loss.random()
        assert loss.random() == fresh_loss.random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_stream_cached(self):
        streams = RngStreams(0)
        assert streams.stream("a") is streams.stream("a")
