"""k-level logger trees on the simulated WAN (DESIGN §11)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigError
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ReferenceSimulator


def _spec(**kwargs):
    kwargs.setdefault("n_sites", 9)
    kwargs.setdefault("receivers_per_site", 1)
    kwargs.setdefault("depth", 3)
    kwargs.setdefault("fanout", 3)
    return DeploymentSpec(**kwargs)


def test_flat_default_builds_no_hierarchy():
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=1))
    assert dep.hierarchy is None
    assert dep.interior_loggers == []
    assert dep.receivers[0].logger_chain == ("site1-logger", "primary")


def test_depth_three_builds_hubs_and_chains():
    dep = LbrmDeployment(_spec())
    assert dep.hierarchy is not None
    names = [m.addr_token for m in dep.interior_loggers]
    assert names == ["hub1-0-logger", "hub1-1-logger", "hub1-2-logger"]
    assert all(m._level == 1 for m in dep.interior_loggers)
    # Chains walk leaf -> hub -> primary, and the leaf's upstream parent
    # is its hub.
    for i, receiver in enumerate(dep.receivers):
        chain = receiver.logger_chain
        assert len(chain) == 3
        assert chain[0] == f"site{i + 1}-logger"
        assert chain[1].startswith("hub1-")
        assert chain[-1] == "primary"
    assert dep.site_loggers[0]._parent == "hub1-0-logger"
    # Hubs are hosted at the site of their first descendant leaf.
    assert dep.network.host("hub1-0-logger").site.name == "site1"
    assert dep.network.host("hub1-1-logger").site.name == "site4"


def test_depth_four_builds_two_interior_levels():
    dep = LbrmDeployment(
        DeploymentSpec(n_sites=8, receivers_per_site=1, depth=4, fanout=2)
    )
    tree = dep.hierarchy.manager.tree
    assert len(tree.at_level(1)) == 2
    assert len(tree.at_level(2)) == 4
    chain = dep.receivers[0].logger_chain
    assert len(chain) == 4 and chain[-1] == "primary"


def test_depth_conflicts_rejected():
    with pytest.raises(ConfigError):
        LbrmDeployment(_spec(region_size=3))
    with pytest.raises(ConfigError):
        LbrmDeployment(_spec(secondary_loggers=False))
    with pytest.raises(ConfigError):
        LbrmDeployment(_spec(depth=1))


def test_recovery_through_hub_after_site_burst():
    dep = LbrmDeployment(_spec(seed=7))
    dep.start()
    dep.advance(0.5)
    dep.send(b"a")
    dep.advance(0.2)
    dep.burst_site("site5", 0.3)
    dep.send(b"b")
    dep.advance(0.2)
    dep.send(b"c")
    dep.advance(10.0)
    assert dep.receivers_missing() == 0
    assert dep.receivers_with(2) == dep.spec.n_sites


def test_hub_crash_reparents_subtree_and_recovers():
    dep = LbrmDeployment(_spec(seed=11))
    dep.start()
    dep.advance(0.5)
    dep.send(b"a")
    dep.advance(0.3)
    dep.node("hub1-1-logger").crash()
    dep.burst_site("site5", 0.3)
    dep.send(b"b")
    dep.advance(0.3)
    dep.send(b"c")
    dep.advance(15.0)
    tree = dep.hierarchy.manager.tree
    for leaf in ("site4-logger", "site5-logger", "site6-logger"):
        assert tree.parent(leaf) != "hub1-1-logger"
    moves = dep.hierarchy.manager.moves
    assert moves and all(m.reason == "crash" for m in moves)
    assert dep.receivers_missing() == 0


def test_engines_agree_on_reparenting():
    def run(sim):
        dep = LbrmDeployment(_spec(seed=3, n_replicas=1), sim=sim)
        dep.start()
        dep.advance(0.5)
        for i in range(5):
            dep.send(b"x%d" % i)
            dep.advance(0.3)
        dep.node("hub1-0-logger").crash()
        dep.burst_site("site2", 0.4)
        for i in range(5, 10):
            dep.send(b"x%d" % i)
            dep.advance(0.3)
        dep.advance(15.0)
        snap = dep.hierarchy.to_dict()
        return (
            dep.receivers_missing(),
            snap["tree"],
            snap["moves"],
            dep.network.stats["delivered"],
        )

    assert run(None) == run(ReferenceSimulator())


def test_saturation_resheds_children():
    # Cut site1's inbound tail for a long window: the hub hosted there
    # misses the whole window, and once the first post-burst heartbeat
    # reveals the hole its upstream-repair queue jumps over the
    # threshold.  A fast rescore cadence catches the queue while the
    # repairs are still in flight and sheds the hub's children.
    from repro.core.config import HierarchyConfig, LbrmConfig

    config = LbrmConfig(
        hierarchy=HierarchyConfig(rescore_interval=0.02, saturation_outstanding=2)
    )
    dep = LbrmDeployment(_spec(seed=5, config=config))
    dep.start()
    dep.advance(0.5)
    dep.send(b"a")
    dep.advance(0.2)
    dep.burst_site("site1", 3.0)
    for i in range(8):
        dep.send(b"b%d" % i)
        dep.advance(0.2)
    dep.advance(15.0)
    assert dep.hierarchy.manager.stats["reparents_saturation"] >= 1
    assert dep.receivers_missing() == 0
