"""Deployment experiment-hook tests (burst/crash helpers)."""

from __future__ import annotations

import pytest

from repro.simnet import DeploymentSpec, LbrmDeployment


def make():
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=2, seed=61))
    dep.start()
    dep.advance(0.2)
    return dep


def test_burst_site_drops_whole_site():
    dep = make()
    dep.send(b"warm")
    dep.advance(1.0)
    dep.burst_site("site1", 0.1)
    dep.send(b"lost")
    dep.advance(0.1)  # before recovery completes
    site1 = dep.receivers[:2]
    others = dep.receivers[2:]
    assert all(not rx.tracker.has(2) for rx in site1)
    assert all(rx.tracker.has(2) for rx in others)
    dep.advance(5.0)
    assert dep.receivers_with(2) == len(dep.receivers)


def test_burst_sites_plural():
    dep = make()
    dep.send(b"warm")
    dep.advance(1.0)
    dep.burst_sites(["site1", "site2"], 0.1)
    dep.send(b"lost")
    dep.advance(0.1)
    assert dep.receivers_with(2) == 2  # only site3 got it live
    dep.advance(5.0)
    assert dep.receivers_with(2) == len(dep.receivers)


def test_kill_site_logger():
    dep = make()
    dep.kill_site_logger(0)
    dep.send(b"a")
    dep.advance(1.0)
    assert len(dep.site_loggers[0].log) == 0
    assert len(dep.site_loggers[1].log) == 1
    # site1 receivers still deliver (loss-free path) and would escalate
    # to the primary on loss.
    assert dep.receivers_with(1) == len(dep.receivers)


def test_burst_unknown_site_raises():
    dep = make()
    with pytest.raises(KeyError):
        dep.burst_site("site99", 0.1)
