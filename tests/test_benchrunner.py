"""The perf gate and profiler plumbing behind ``repro bench``.

``check_results`` is the CI regression gate: it compares fresh
fast-engine throughput against committed ``BENCH_*.json`` baselines and
must catch a real slowdown (the synthetic 20% case below) while staying
quiet inside the tolerance band.  ``profile_scenario`` must leave both
artifacts a human and a flamegraph tool can read.
"""

from __future__ import annotations

import json

import pytest

from repro.benchrunner import (
    build_bench_parser,
    check_results,
    default_harness_path,
    profile_scenario,
    run_bench,
)


def _result(name: str, eps: float, tier: str = "quick") -> dict:
    return {
        "scenario": name,
        "tier": tier,
        "engines": {"fast": {"events_per_sec": eps, "wall_s": 1.0}},
    }


def _write_baseline(dirpath, result: dict) -> None:
    (dirpath / f"BENCH_{result['scenario']}.json").write_text(json.dumps(result))


class TestCheckResults:
    def test_synthetic_20pct_slowdown_fails_the_gate(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        failures = check_results([_result("fig7", 80_000.0)], tmp_path, tolerance=0.15)
        assert len(failures) == 1
        assert "regressed 20.0%" in failures[0]
        # The message tells the developer how to refresh intentionally.
        assert "refresh the baseline" in failures[0]

    def test_within_tolerance_passes(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        assert check_results([_result("fig7", 90_000.0)], tmp_path, tolerance=0.15) == []

    def test_improvement_passes(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        assert check_results([_result("fig7", 400_000.0)], tmp_path) == []

    def test_exactly_at_floor_passes(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        assert check_results([_result("fig7", 85_000.0)], tmp_path, tolerance=0.15) == []

    def test_missing_baseline_is_a_failure_with_instructions(self, tmp_path):
        failures = check_results([_result("fig7", 1.0)], tmp_path)
        assert len(failures) == 1
        assert "no baseline" in failures[0]

    def test_tier_mismatch_refuses_to_compare(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0, tier="full"))
        failures = check_results([_result("fig7", 100_000.0, tier="quick")], tmp_path)
        assert len(failures) == 1
        assert "tier" in failures[0]

    def test_multiple_scenarios_report_independently(self, tmp_path):
        _write_baseline(tmp_path, _result("a", 100.0))
        _write_baseline(tmp_path, _result("b", 100.0))
        failures = check_results(
            [_result("a", 50.0), _result("b", 99.0)], tmp_path, tolerance=0.15
        )
        assert len(failures) == 1
        assert failures[0].startswith("a:")

    def test_stale_baseline_for_retired_scenario_fails_loudly(self, tmp_path):
        # A baseline whose scenario no longer runs must not silently
        # pass the gate forever — that is how retired-but-regressed
        # scenarios hide.
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        _write_baseline(tmp_path, _result("retired_scenario", 100_000.0))
        failures = check_results(
            [_result("fig7", 100_000.0)], tmp_path, expect_complete=True
        )
        assert len(failures) == 1
        assert "retired_scenario" in failures[0]
        assert "stale baseline" in failures[0]

    def test_partial_run_skips_the_stale_baseline_check(self, tmp_path):
        # `--only` runs a subset on purpose; unexercised baselines are
        # expected then, not stale.
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        _write_baseline(tmp_path, _result("other", 100_000.0))
        assert check_results(
            [_result("fig7", 100_000.0)], tmp_path, expect_complete=False
        ) == []


class TestBenchParser:
    def test_check_and_profile_flags_parse(self):
        args = build_bench_parser().parse_args(
            ["--full", "--check", "benchmarks/results", "--check-tolerance", "0.2"]
        )
        assert args.tier == "full"
        assert args.check == "benchmarks/results"
        assert args.check_tolerance == pytest.approx(0.2)
        args = build_bench_parser().parse_args(["--profile", "--only", "fig7_nack_reduction"])
        assert args.profile is True
        assert args.check is None

    def test_aio_tier_flag_parses_and_excludes_other_tiers(self):
        args = build_bench_parser().parse_args(["--aio"])
        assert args.tier == "aio"
        with pytest.raises(SystemExit):
            build_bench_parser().parse_args(["--aio", "--full"])


# A minimal stand-in for benchmarks/harness.py: records which scenarios
# ran so the tier-selection tests below stay fast and deterministic
# (they must not open sockets or run the real transport tier).
_FAKE_HARNESS = """
import json, pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCENARIOS = {{"fig7": None}}
AIO_SCENARIOS = {{"aio_cluster_throughput": None, "aio_transport_blast": None}}
_CALLS = pathlib.Path(__file__).parent / "calls.jsonl"


def aio_available():
    return {available}


def run_scenario(name, tier="quick", engine="fast"):
    with _CALLS.open("a") as fh:
        fh.write(json.dumps([name, tier, engine]) + "\\n")
    return {{"events_per_sec": 100.0, "wall_s": 1.0}}


def assemble_result(name, tier, runs):
    return {{"scenario": name, "tier": tier, "engines": runs}}


def write_result(result, out_dir):
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / ("BENCH_" + result["scenario"] + ".json")
    path.write_text(json.dumps(result))
    return path
"""


def _write_fake_harness(tmp_path, available: bool):
    path = tmp_path / "harness.py"
    path.write_text(_FAKE_HARNESS.format(available=available))
    return path


def _calls(tmp_path) -> list:
    calls_path = tmp_path / "calls.jsonl"
    if not calls_path.exists():
        return []
    return [json.loads(line) for line in calls_path.read_text().splitlines()]


class TestAioTier:
    def test_aio_tier_runs_aio_scenarios_only(self, tmp_path):
        harness = _write_fake_harness(tmp_path, available=True)
        args = build_bench_parser().parse_args(
            ["--aio", "--out", str(tmp_path / "out"), "--harness", str(harness)]
        )
        assert run_bench(args) == 0
        ran = {name for name, _, _ in _calls(tmp_path)}
        assert ran == {"aio_cluster_throughput", "aio_transport_blast"}
        # Both engines measured: the tier's point is the fast/reference ratio.
        engines = {engine for _, _, engine in _calls(tmp_path)}
        assert engines == {"fast", "reference"}
        for name in ran:
            assert (tmp_path / "out" / f"BENCH_{name}.json").exists()

    def test_skip_artifact_written_when_sockets_unavailable(self, tmp_path):
        harness = _write_fake_harness(tmp_path, available=False)
        args = build_bench_parser().parse_args(
            ["--aio", "--out", str(tmp_path / "out"), "--harness", str(harness)]
        )
        assert run_bench(args) == 0
        # No scenario ran; the skip is an explicit artifact, not silence.
        assert _calls(tmp_path) == []
        skip = json.loads((tmp_path / "out" / "BENCH_aio_skipped.json").read_text())
        assert skip["status"] == "skipped"
        assert skip["tier"] == "aio"
        assert "reason" in skip

    def test_skip_bypasses_the_check_gate(self, tmp_path):
        # Where the tier cannot run, --check must not fail on missing
        # results — the skip artifact is the record CI uploads instead.
        harness = _write_fake_harness(tmp_path, available=False)
        args = build_bench_parser().parse_args(
            ["--aio", "--out", str(tmp_path / "out"),
             "--check", str(tmp_path / "nonexistent-baselines"),
             "--harness", str(harness)]
        )
        assert run_bench(args) == 0

    def test_real_harness_exports_the_aio_tier(self):
        import benchmarks.harness as real

        assert set(real.AIO_SCENARIOS) == {
            "aio_cluster_throughput", "aio_transport_blast"
        }
        assert isinstance(real.aio_available(), bool)
        assert set(real.AIO_SCENARIOS) <= set(real.ALL_SCENARIOS)


@pytest.mark.slow
def test_profile_scenario_writes_readable_artifacts(tmp_path):
    run, pstats_path, txt_path = profile_scenario(
        str(default_harness_path()), "logger_throughput", "quick", "fast", tmp_path
    )
    assert run["events_per_sec"] > 0
    assert pstats_path.exists() and pstats_path.stat().st_size > 0
    # The raw dump loads back into pstats (what snakeviz/flameprof read).
    import pstats

    stats = pstats.Stats(str(pstats_path))
    assert stats.total_calls > 0
    text = txt_path.read_text()
    assert "top 30 by cumulative time" in text
    assert "top 30 by internal time" in text
    assert "logger_throughput" in text
