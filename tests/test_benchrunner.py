"""The perf gate and profiler plumbing behind ``repro bench``.

``check_results`` is the CI regression gate: it compares fresh
fast-engine throughput against committed ``BENCH_*.json`` baselines and
must catch a real slowdown (the synthetic 20% case below) while staying
quiet inside the tolerance band.  ``profile_scenario`` must leave both
artifacts a human and a flamegraph tool can read.
"""

from __future__ import annotations

import json

import pytest

from repro.benchrunner import (
    build_bench_parser,
    check_results,
    default_harness_path,
    profile_scenario,
)


def _result(name: str, eps: float, tier: str = "quick") -> dict:
    return {
        "scenario": name,
        "tier": tier,
        "engines": {"fast": {"events_per_sec": eps, "wall_s": 1.0}},
    }


def _write_baseline(dirpath, result: dict) -> None:
    (dirpath / f"BENCH_{result['scenario']}.json").write_text(json.dumps(result))


class TestCheckResults:
    def test_synthetic_20pct_slowdown_fails_the_gate(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        failures = check_results([_result("fig7", 80_000.0)], tmp_path, tolerance=0.15)
        assert len(failures) == 1
        assert "regressed 20.0%" in failures[0]
        # The message tells the developer how to refresh intentionally.
        assert "refresh the baseline" in failures[0]

    def test_within_tolerance_passes(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        assert check_results([_result("fig7", 90_000.0)], tmp_path, tolerance=0.15) == []

    def test_improvement_passes(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        assert check_results([_result("fig7", 400_000.0)], tmp_path) == []

    def test_exactly_at_floor_passes(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        assert check_results([_result("fig7", 85_000.0)], tmp_path, tolerance=0.15) == []

    def test_missing_baseline_is_a_failure_with_instructions(self, tmp_path):
        failures = check_results([_result("fig7", 1.0)], tmp_path)
        assert len(failures) == 1
        assert "no baseline" in failures[0]

    def test_tier_mismatch_refuses_to_compare(self, tmp_path):
        _write_baseline(tmp_path, _result("fig7", 100_000.0, tier="full"))
        failures = check_results([_result("fig7", 100_000.0, tier="quick")], tmp_path)
        assert len(failures) == 1
        assert "tier" in failures[0]

    def test_multiple_scenarios_report_independently(self, tmp_path):
        _write_baseline(tmp_path, _result("a", 100.0))
        _write_baseline(tmp_path, _result("b", 100.0))
        failures = check_results(
            [_result("a", 50.0), _result("b", 99.0)], tmp_path, tolerance=0.15
        )
        assert len(failures) == 1
        assert failures[0].startswith("a:")

    def test_stale_baseline_for_retired_scenario_fails_loudly(self, tmp_path):
        # A baseline whose scenario no longer runs must not silently
        # pass the gate forever — that is how retired-but-regressed
        # scenarios hide.
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        _write_baseline(tmp_path, _result("retired_scenario", 100_000.0))
        failures = check_results(
            [_result("fig7", 100_000.0)], tmp_path, expect_complete=True
        )
        assert len(failures) == 1
        assert "retired_scenario" in failures[0]
        assert "stale baseline" in failures[0]

    def test_partial_run_skips_the_stale_baseline_check(self, tmp_path):
        # `--only` runs a subset on purpose; unexercised baselines are
        # expected then, not stale.
        _write_baseline(tmp_path, _result("fig7", 100_000.0))
        _write_baseline(tmp_path, _result("other", 100_000.0))
        assert check_results(
            [_result("fig7", 100_000.0)], tmp_path, expect_complete=False
        ) == []


class TestBenchParser:
    def test_check_and_profile_flags_parse(self):
        args = build_bench_parser().parse_args(
            ["--full", "--check", "benchmarks/results", "--check-tolerance", "0.2"]
        )
        assert args.tier == "full"
        assert args.check == "benchmarks/results"
        assert args.check_tolerance == pytest.approx(0.2)
        args = build_bench_parser().parse_args(["--profile", "--only", "fig7_nack_reduction"])
        assert args.profile is True
        assert args.check is None


@pytest.mark.slow
def test_profile_scenario_writes_readable_artifacts(tmp_path):
    run, pstats_path, txt_path = profile_scenario(
        str(default_harness_path()), "logger_throughput", "quick", "fast", tmp_path
    )
    assert run["events_per_sec"] > 0
    assert pstats_path.exists() and pstats_path.stat().st_size > 0
    # The raw dump loads back into pstats (what snakeviz/flameprof read).
    import pstats

    stats = pstats.Stats(str(pstats_path))
    assert stats.total_calls > 0
    text = txt_path.read_text()
    assert "top 30 by cumulative time" in text
    assert "top 30 by internal time" in text
    assert "logger_throughput" in text
