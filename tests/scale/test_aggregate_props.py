"""Property suite for the aggregate site receiver (hypothesis).

The load-bearing property is *exchangeability*: at small populations
``binomial_variate`` spends exactly one uniform per modeled receiver,
in receiver order, so an aggregate draw is bit-for-bit the sum of the
per-receiver Bernoulli draws the exact engine would have made from an
identically-seeded stream.  That is the bridge that lets the
conformance tier compare the two engines seed-for-seed.
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import SendUnicast
from repro.core.config import HeartbeatConfig, ReceiverConfig
from repro.core.packets import DataPacket
from repro.scale.aggregate import (
    EXACT_DRAW_LIMIT,
    AggregateSiteReceiver,
    binomial_variate,
)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
loss_rates = st.floats(min_value=0.0, max_value=0.9, allow_nan=False)


class TestBinomialVariate:
    @given(
        n=st.integers(min_value=0, max_value=EXACT_DRAW_LIMIT),
        p=probabilities,
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_small_n_exchangeable_with_per_receiver_bernoulli(self, n, p, seed):
        aggregate = binomial_variate(random.Random(seed), n, p)
        exact_stream = random.Random(seed)
        per_receiver = sum(1 for _ in range(n) if exact_stream.random() < p)
        assert aggregate == per_receiver

    @given(
        n=st.integers(min_value=0, max_value=EXACT_DRAW_LIMIT),
        p=st.floats(min_value=0.001, max_value=0.999),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_small_n_consumes_exactly_n_uniforms(self, n, p, seed):
        # Stream position after the draw matches n Bernoulli draws, so an
        # aggregate site and n exact receivers stay in lockstep forever.
        rng = random.Random(seed)
        binomial_variate(rng, n, p)
        twin = random.Random(seed)
        for _ in range(n):
            twin.random()
        assert rng.random() == twin.random()

    @given(
        n=st.integers(min_value=0, max_value=5000),
        p=probabilities,
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_draw_always_within_population(self, n, p, seed):
        k = binomial_variate(random.Random(seed), n, p)
        assert 0 <= k <= n

    @given(
        n=st.integers(min_value=65, max_value=2000),
        p=st.floats(min_value=1e-6, max_value=1.0 - 1e-6),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    def test_large_n_inversion_within_population(self, n, p, seed):
        k = binomial_variate(random.Random(seed), n, p)
        assert 0 <= k <= n

    @given(n=st.integers(min_value=0, max_value=1000), seed=st.integers(0, 2**32))
    def test_degenerate_probabilities(self, n, seed):
        assert binomial_variate(random.Random(seed), n, 0.0) == 0
        assert binomial_variate(random.Random(seed), n, 1.0) == n

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_variate(random.Random(0), -1, 0.5)
        with pytest.raises(ValueError):
            binomial_variate(random.Random(0), 10, 1.5)
        with pytest.raises(ValueError):
            binomial_variate(random.Random(0), 10, -0.1)

    def test_large_n_distribution_matches_exact_path(self):
        # The single-uniform inversion (n > limit) and the Bernoulli sum
        # (n <= limit) must draw from the same Binomial(n, p): compare
        # the two paths' histograms with our own chi^2 test.
        from repro.scale.stats import chi2_homogeneity

        n, p, draws = 200, 0.05, 4000
        inversion = random.Random(101)
        bernoulli = random.Random(202)
        counts_a = [0] * (n + 1)
        counts_b = [0] * (n + 1)
        for _ in range(draws):
            counts_a[binomial_variate(inversion, n, p)] += 1
            counts_b[binomial_variate(bernoulli, n, p, exact_limit=n)] += 1
        result = chi2_homogeneity(counts_a, counts_b)
        assert result.pvalue > 0.01


def _machine(site_size: int, loss_rate: float, seed: int) -> AggregateSiteReceiver:
    return AggregateSiteReceiver(
        "g",
        site_size,
        loss_rate,
        random.Random(seed),
        config=ReceiverConfig(),
        logger_chain=("logger", "primary"),
        heartbeat=HeartbeatConfig(),
    )


def _feed(machine: AggregateSiteReceiver, seqs, start=1.0, step=0.05):
    now = start
    for seq in seqs:
        machine.handle(DataPacket(group="g", seq=seq, payload=b"x"), "source", now)
        now += step
    return now


class TestAggregateSiteReceiver:
    @given(
        site_size=st.integers(min_value=1, max_value=60),
        loss_rate=loss_rates,
        n_packets=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_never_exceed_site_population(self, site_size, loss_rate, n_packets, seed):
        machine = _machine(site_size, loss_rate, seed)
        machine.start(0.0)
        _feed(machine, range(1, n_packets + 1))
        assert all(0 <= k <= site_size for k in machine.miss_draws)
        assert len(machine.miss_draws) == n_packets
        assert 0 <= machine.outstanding <= site_size * n_packets
        for _t, kind, _seq, count in machine.event_log:
            assert count <= site_size, kind
        # Conservation: every drawn miss is recovered, failed, or pending.
        stats = machine.stats
        assert stats["modeled_losses"] == (
            stats["modeled_recoveries"]
            + stats["modeled_recovery_failures"]
            + machine.outstanding
        )

    @given(
        site_size=st.integers(min_value=1, max_value=60),
        n_packets=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_loss_site_emits_zero_nacks(self, site_size, n_packets, seed):
        machine = _machine(site_size, 0.0, seed)
        machine.start(0.0)
        actions = []
        now = 1.0
        for seq in range(1, n_packets + 1):
            actions += machine.handle(DataPacket(group="g", seq=seq, payload=b"x"), "source", now)
            actions += machine.poll(now)
            now += 0.05
        assert not any(isinstance(a, SendUnicast) for a in actions)
        assert machine.stats["nacks_sent"] == 0
        assert machine.stats["modeled_nacks"] == 0
        assert machine.stats["modeled_losses"] == 0
        assert machine.miss_draws == [0] * n_packets

    @given(
        site_size=st.integers(min_value=1, max_value=60),
        loss_rate=loss_rates,
        seed=st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50, deadline=None)
    def test_aggregate_draw_matches_exact_bernoulli_stream(self, site_size, loss_rate, seed):
        # Same seed, same site: the aggregate's first miss draw equals
        # what N per-receiver Bernoulli losses would have produced.
        machine = _machine(site_size, loss_rate, seed)
        machine.start(0.0)
        machine.handle(DataPacket(group="g", seq=1, payload=b"x"), "source", 1.0)
        exact_stream = random.Random(seed)
        expected = sum(1 for _ in range(site_size) if exact_stream.random() < loss_rate)
        assert machine.miss_draws == [expected]

    def test_site_wide_gap_counts_whole_population(self):
        machine = _machine(25, 0.0, seed=3)
        machine.start(0.0)
        _feed(machine, [1, 3])  # seq 2 lost site-wide (tracker gap)
        assert 25 in machine.miss_draws
        assert machine.stats["modeled_losses"] == 25
        assert machine.outstanding == 25

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            _machine(0, 0.1, seed=0)
        with pytest.raises(ValueError):
            _machine(10, 1.0, seed=0)
