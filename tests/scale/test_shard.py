"""Determinism and failure-handling of the sharded scale runner.

The sharding contract: protocol-visible outputs are a pure function of
(scenario, seed) — independent of shard count and of whether shards run
inline or as real processes — and a dead worker surfaces as a clean
:class:`ShardWorkerError`, never a hang.
"""

from __future__ import annotations

import pytest

from repro.core.config import LbrmConfig
from repro.scale.deploy import ScaleSpec
from repro.scale.shard import (
    ScaleScenario,
    ShardWorkerError,
    _shard_sites,
    protocol_digest,
    run_sharded,
    trace_bytes,
)


def _scenario(seed: int = 7, n_sites: int = 6, **kwargs) -> ScaleScenario:
    spec = ScaleSpec(
        n_sites=n_sites,
        receivers_per_site=30,
        receiver_loss=0.02,
        shared_loss=0.01,
        seed=seed,
        config=LbrmConfig(),
    )
    return ScaleScenario(
        spec=spec,
        n_packets=8,
        interval=0.05,
        warmup=0.2,
        drain=2.0,
        bursts=((0.3, 2, 0.08),),
        **kwargs,
    )


class TestShardSites:
    def test_round_robin_partitions_every_site_exactly_once(self):
        for n_shards in (1, 2, 3, 5):
            shards = [_shard_sites(10, s, n_shards) for s in range(n_shards)]
            merged = sorted(i for shard in shards for i in shard)
            assert merged == list(range(1, 11))

    def test_single_shard_owns_everything(self):
        assert _shard_sites(4, 0, 1) == (1, 2, 3, 4)


class TestShardCountInvariance:
    def test_one_vs_four_shards_inline(self):
        one = run_sharded(_scenario(), n_shards=1, inline=True)
        four = run_sharded(_scenario(), n_shards=4, inline=True)
        assert protocol_digest(one) == protocol_digest(four)
        assert one.trace == four.trace
        assert one.totals == four.totals
        assert one.hub == four.hub
        assert one.population == four.population

    def test_multiprocessing_matches_inline(self):
        inline = run_sharded(_scenario(), n_shards=1, inline=True)
        sharded = run_sharded(_scenario(), n_shards=3, timeout=60.0)
        assert protocol_digest(sharded) == protocol_digest(inline)

    def test_different_seeds_differ(self):
        a = run_sharded(_scenario(seed=7), n_shards=1, inline=True)
        b = run_sharded(_scenario(seed=8), n_shards=1, inline=True)
        assert protocol_digest(a) != protocol_digest(b)

    def test_population_accounting_deduplicates_replicated_hub(self):
        report = run_sharded(_scenario(), n_shards=2, inline=True)
        # 6 sites x (logger + aggregate) + source + primary; the logger
        # hosts model one node each, the aggregates 30.
        assert report.population["hosts"] == 6 * 2 + 2
        assert report.population["modeled_population"] == 6 * (30 + 1) + 2


class TestDeterminism:
    def test_same_seed_same_shards_byte_identical_trace(self):
        a = run_sharded(_scenario(), n_shards=2, timeout=60.0)
        b = run_sharded(_scenario(), n_shards=2, timeout=60.0)
        assert trace_bytes(a) == trace_bytes(b)
        assert protocol_digest(a) == protocol_digest(b)

    def test_trace_is_time_ordered(self):
        report = run_sharded(_scenario(), n_shards=2, inline=True)
        times = [event[0] for event in report.trace]
        assert times == sorted(times)
        assert report.trace, "burst + loss rates should generate events"


class TestWorkerFailure:
    def test_crashed_worker_raises_instead_of_hanging(self):
        scenario = _scenario(debug_crash_shard=1)
        with pytest.raises(ShardWorkerError) as excinfo:
            run_sharded(scenario, n_shards=2, timeout=30.0)
        assert "exited" in str(excinfo.value)

    def test_worker_death_at_barrier_merge_raises(self):
        """Death at the final barrier — the worker acks every window but
        dies on ("finish",) instead of reporting — must surface as
        ShardWorkerError, not block siblings on the pipe."""
        scenario = _scenario(debug_crash_at_finish=1)
        with pytest.raises(ShardWorkerError) as excinfo:
            run_sharded(scenario, n_shards=2, timeout=30.0)
        assert "final report" in str(excinfo.value)

    def test_worker_hanging_after_report_raises(self):
        """A worker that reports but never exits is a failure, not
        something for the teardown path to silently terminate."""
        scenario = _scenario(debug_hang_at_exit=0)
        with pytest.raises(ShardWorkerError) as excinfo:
            run_sharded(scenario, n_shards=2, timeout=3.0)
        assert "still alive" in str(excinfo.value)

    def test_send_to_dead_worker_is_shard_error(self):
        """The parent's command send to an already-dead worker converts
        the BrokenPipeError into ShardWorkerError with the exit code."""
        import multiprocessing

        from repro.scale.shard import _post

        class _DeadProc:
            exitcode = 3

            def join(self, timeout=None):
                pass

        parent, child = multiprocessing.Pipe()
        child.close()
        try:
            with pytest.raises(ShardWorkerError) as excinfo:
                _post(parent, _DeadProc(), ("advance", 1.0), "barrier t=1.000")
        finally:
            parent.close()
        assert "exit code 3" in str(excinfo.value)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sharded(_scenario(), n_shards=0)
        with pytest.raises(ValueError):
            run_sharded(_scenario(n_sites=3), n_shards=4)
        with pytest.raises(ValueError):
            run_sharded(_scenario(), n_shards=1, inline=True, window=0.0)
