"""The conformance tier's statistics, pinned against scipy.

``repro.scale.stats`` is stdlib-only by contract; where scipy is
available it serves as the oracle's oracle — our KS statistic, the
Kolmogorov survival function, the χ² survival function, and the 2×K
homogeneity test must agree with ``scipy.stats`` / ``scipy.special``.
The pure-stdlib edge cases (ties, pooling, validation) run everywhere.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.scale.stats import (
    Chi2Result,
    chi2_homogeneity,
    chi2_sf,
    kolmogorov_sf,
    ks_2sample,
    ks_statistic,
)


class TestKsStatistic:
    def test_identical_samples_have_zero_distance(self):
        sample = [3, 1, 4, 1, 5, 9, 2, 6]
        assert ks_statistic(sample, list(sample)) == 0.0

    def test_heavily_tied_integer_samples(self):
        # 60/40 vs 40/60 split over two values: |F_a - F_b| peaks at 0.2
        # between the two atoms.
        a = [0] * 60 + [1] * 40
        b = [0] * 40 + [1] * 60
        assert ks_statistic(a, b) == pytest.approx(0.2)

    def test_disjoint_samples_have_distance_one(self):
        assert ks_statistic([1, 2, 3], [10, 11]) == 1.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], [1.0])
        with pytest.raises(ValueError):
            ks_statistic([1.0], [])

    def test_symmetry(self):
        rng = random.Random(7)
        a = [rng.gauss(0, 1) for _ in range(50)]
        b = [rng.gauss(0.5, 1) for _ in range(70)]
        assert ks_statistic(a, b) == ks_statistic(b, a)


class TestKs2Sample:
    def test_identical_samples_pass(self):
        a = [float(i % 10) for i in range(200)]
        result = ks_2sample(a, list(a))
        assert result.statistic == 0.0
        assert result.pvalue == 1.0

    def test_shifted_samples_fail(self):
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(300)]
        b = [rng.gauss(2, 1) for _ in range(300)]
        result = ks_2sample(a, b)
        assert result.statistic > 0.5
        assert result.pvalue < 1e-6

    def test_same_distribution_not_rejected(self):
        rng = random.Random(2)
        a = [rng.gauss(0, 1) for _ in range(400)]
        b = [rng.gauss(0, 1) for _ in range(400)]
        assert ks_2sample(a, b).pvalue > 0.01


class TestChi2Homogeneity:
    def test_identical_counts_pass(self):
        counts = [40, 30, 20, 10]
        result = chi2_homogeneity(counts, counts)
        assert result.statistic == pytest.approx(0.0)
        assert result.pvalue == pytest.approx(1.0)

    def test_disjoint_counts_fail(self):
        result = chi2_homogeneity([100, 0], [0, 100])
        assert result.pvalue < 1e-10

    def test_low_count_bins_are_pooled(self):
        # The tail bins (1s and 2s) fall below min_expected=5 and must
        # pool into a valid column instead of blowing up the statistic.
        a = [100, 3, 2, 1, 1]
        b = [101, 2, 2, 1, 1]
        result = chi2_homogeneity(a, b)
        assert result.bins == 2
        assert result.pvalue > 0.5

    def test_pooling_to_single_bin_is_a_pass(self):
        result = chi2_homogeneity([3, 1], [2, 2], min_expected=50.0)
        assert result == Chi2Result(statistic=0.0, dof=0, pvalue=1.0, bins=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi2_homogeneity([1, 2], [1])
        with pytest.raises(ValueError):
            chi2_homogeneity([1, -2], [1, 2])
        with pytest.raises(ValueError):
            chi2_homogeneity([0, 0], [1, 2])

    def test_chi2_sf_validation(self):
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)
        assert chi2_sf(0.0, 3) == 1.0
        assert chi2_sf(-5.0, 3) == 1.0


# -- scipy pins --------------------------------------------------------------


class TestAgainstScipy:
    def test_ks_statistic_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        rng = random.Random(11)
        for n, m in ((30, 30), (50, 200), (313, 171)):
            a = [rng.gauss(0, 1) for _ in range(n)]
            b = [rng.gauss(0.3, 1.2) for _ in range(m)]
            ours = ks_statistic(a, b)
            theirs = stats.ks_2samp(a, b).statistic
            assert ours == pytest.approx(theirs, abs=1e-12)

    def test_ks_statistic_matches_scipy_on_tied_integers(self):
        stats = pytest.importorskip("scipy.stats")
        rng = random.Random(12)
        a = [rng.randint(0, 5) for _ in range(400)]
        b = [rng.randint(0, 5) for _ in range(300)]
        assert ks_statistic(a, b) == pytest.approx(
            stats.ks_2samp(a, b).statistic, abs=1e-12
        )

    def test_ks_pvalue_tracks_scipy_asymptotic(self):
        stats = pytest.importorskip("scipy.stats")
        rng = random.Random(13)
        for shift in (0.0, 0.1, 0.25, 0.5):
            a = [rng.gauss(0, 1) for _ in range(500)]
            b = [rng.gauss(shift, 1) for _ in range(500)]
            ours = ks_2sample(a, b).pvalue
            theirs = stats.ks_2samp(a, b, method="asymp").pvalue
            # Stephens' correction vs scipy's plain asymptotic: a few
            # percent apart at n=500, never enough to flip a verdict.
            assert ours == pytest.approx(theirs, abs=0.02)

    def test_kolmogorov_sf_matches_scipy_special(self):
        special = pytest.importorskip("scipy.special")
        for lam in (0.3, 0.5, 0.8, 1.0, 1.36, 2.0, 3.0):
            assert kolmogorov_sf(lam) == pytest.approx(
                float(special.kolmogorov(lam)), rel=1e-9, abs=1e-12
            )

    def test_chi2_sf_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        for dof in (1, 2, 5, 10, 40):
            for x in (0.1, 1.0, 3.0, dof, 2.0 * dof, 5.0 * dof):
                assert chi2_sf(x, dof) == pytest.approx(
                    float(stats.chi2.sf(x, dof)), rel=1e-8, abs=1e-14
                )

    def test_chi2_homogeneity_matches_chi2_contingency(self):
        stats = pytest.importorskip("scipy.stats")
        # All expected counts are >= 5: no pooling, so the 2xK statistic
        # must equal scipy's (uncorrected) contingency test exactly.
        a = [30, 42, 51, 60]
        b = [45, 33, 40, 72]
        ours = chi2_homogeneity(a, b)
        res = stats.chi2_contingency([a, b], correction=False)
        assert ours.bins == 4
        assert ours.statistic == pytest.approx(float(res.statistic), rel=1e-10)
        assert ours.dof == int(res.dof)
        assert ours.pvalue == pytest.approx(float(res.pvalue), rel=1e-8)


def test_kolmogorov_sf_bounds():
    assert kolmogorov_sf(0.0) == 1.0
    assert kolmogorov_sf(-1.0) == 1.0
    assert kolmogorov_sf(10.0) == pytest.approx(0.0, abs=1e-12)
    lams = [0.1 * i for i in range(1, 40)]
    values = [kolmogorov_sf(lam) for lam in lams]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


def test_chi2_sf_series_and_contfrac_branches_agree():
    # x just below and just above the a+1 branch point must be continuous.
    for dof in (3, 9):
        a = dof / 2.0
        x_lo = 2.0 * (a + 1.0) - 1e-6
        x_hi = 2.0 * (a + 1.0) + 1e-6
        assert chi2_sf(x_lo, dof) == pytest.approx(chi2_sf(x_hi, dof), rel=1e-6)


def test_ks_2sample_counts_sample_sizes():
    result = ks_2sample([1, 2, 3], [4, 5])
    assert (result.n, result.m) == (3, 2)
    assert math.isfinite(result.pvalue)
