"""The analytic oracle behind the conformance tier.

These are closed-form functions, so the tests are exact: edge cases
(zero receivers, p → 0, p → 1), known identities (Binomial mean and
variance, inclusion–exclusion), and the large-``n`` asymptotics the
aggregate model is required to track.
"""

from __future__ import annotations

import math

import pytest

from repro.scale.model import (
    expected_miss_count,
    expected_recovery_rounds,
    expected_repair_packets,
    expected_wan_nacks,
    miss_count_variance,
    recovery_rounds_asymptote,
    site_nack_probability,
)


class TestMissCount:
    def test_zero_receivers_miss_nothing(self):
        assert expected_miss_count(0, 0.5, 0.5) == 0.0
        assert miss_count_variance(0, 0.5, 0.5) == 0.0
        assert site_nack_probability(0, 0.9, 0.0) == 0.0

    def test_p_zero_means_no_misses(self):
        assert expected_miss_count(100, 0.0) == 0.0
        assert miss_count_variance(100, 0.0) == 0.0
        assert site_nack_probability(100, 0.0) == 0.0

    def test_p_one_means_everyone_misses(self):
        assert expected_miss_count(100, 1.0) == 100.0
        assert miss_count_variance(100, 1.0) == 0.0
        assert site_nack_probability(100, 1.0) == 1.0

    def test_shared_one_is_deterministic_site_loss(self):
        assert expected_miss_count(40, 0.1, shared=1.0) == 40.0
        assert miss_count_variance(40, 0.1, shared=1.0) == pytest.approx(0.0, abs=1e-9)
        assert site_nack_probability(40, 0.0, shared=1.0) == 1.0

    def test_binomial_mean_and_variance_without_shared(self):
        n, p = 50, 0.03
        assert expected_miss_count(n, p) == pytest.approx(n * p)
        assert miss_count_variance(n, p) == pytest.approx(n * p * (1 - p))

    def test_shared_loss_adds_variance(self):
        assert miss_count_variance(50, 0.03, shared=0.01) > miss_count_variance(50, 0.03)

    def test_tiny_p_huge_n_does_not_round_to_zero(self):
        # 1e6 receivers at p=1e-7: P(any miss) ~ 0.095, not 0.
        p_any = site_nack_probability(1_000_000, 1e-7)
        assert p_any == pytest.approx(-math.expm1(-0.1), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_miss_count(-1, 0.1)
        with pytest.raises(ValueError):
            expected_miss_count(10, 1.5)
        with pytest.raises(ValueError):
            miss_count_variance(10, -0.1)
        with pytest.raises(ValueError):
            site_nack_probability(10, 0.1, shared=2.0)


class TestWanNacks:
    def test_distributed_collapses_to_one_per_site(self):
        # High per-receiver loss: distributed ~ 1 NACK/site, centralized
        # ~ n*p per site — the Figure 7 gap at any scale.
        distributed = expected_wan_nacks(50, 20, 0.5, distributed=True)
        centralized = expected_wan_nacks(50, 20, 0.5, distributed=False)
        assert distributed <= 50.0
        assert centralized == pytest.approx(50 * 20 * 0.5)
        assert centralized > 10 * distributed

    def test_zero_sites(self):
        assert expected_wan_nacks(0, 20, 0.1) == 0.0

    def test_negative_sites_rejected(self):
        with pytest.raises(ValueError):
            expected_wan_nacks(-1, 20, 0.1)


class TestRecoveryRounds:
    def test_edge_cases(self):
        assert expected_recovery_rounds(0, 0.3) == 0.0
        assert expected_recovery_rounds(10, 0.0) == 1.0
        assert expected_recovery_rounds(10, 1.0) == math.inf
        assert recovery_rounds_asymptote(0, 0.3) == 0.0
        assert recovery_rounds_asymptote(10, 0.0) == 1.0
        assert recovery_rounds_asymptote(10, 1.0) == math.inf

    def test_single_receiver_is_geometric_mean(self):
        # One receiver: rounds ~ Geometric(1-p), mean 1/(1-p).
        for p in (0.1, 0.3, 0.6):
            assert expected_recovery_rounds(1, p) == pytest.approx(1.0 / (1.0 - p), rel=1e-9)

    def test_monotone_in_population_and_loss(self):
        assert (
            expected_recovery_rounds(10, 0.1)
            < expected_recovery_rounds(100, 0.1)
            < expected_recovery_rounds(100, 0.3)
        )

    def test_asymptote_tracks_exact_sum_as_n_grows(self):
        # |E[R] - asymptote| must shrink as n grows: the log_{1/p} n
        # growth law of the shared-loss-tree literature.
        p = 0.25
        errors = [
            abs(expected_recovery_rounds(n, p) - recovery_rounds_asymptote(n, p))
            for n in (10, 100, 10_000, 1_000_000)
        ]
        assert all(b <= a + 1e-6 for a, b in zip(errors, errors[1:]))
        assert errors[-1] < 0.05

    def test_growth_is_logarithmic(self):
        # Multiplying n by 1/p adds ~one round.
        p = 0.1
        assert expected_recovery_rounds(10_000, p) - expected_recovery_rounds(
            1_000, p
        ) == pytest.approx(1.0, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_recovery_rounds(-1, 0.1)
        with pytest.raises(ValueError):
            recovery_rounds_asymptote(10, 1.0001)


class TestRepairPackets:
    def test_zero_population_or_no_loss(self):
        assert expected_repair_packets(0, 0.5, 3) == 0.0
        assert expected_repair_packets(20, 0.0, 3) == 0.0

    def test_certain_loss(self):
        # Everyone misses: one re-multicast if n reaches the threshold,
        # n unicasts otherwise.
        assert expected_repair_packets(20, 1.0, 3) == 1.0
        assert expected_repair_packets(2, 1.0, 3) == 2.0

    def test_threshold_one_is_always_one_multicast_when_any_loss(self):
        # threshold=1: any k >= 1 is served by a single re-multicast, so
        # the expectation is exactly P(k >= 1).
        n, p = 30, 0.07
        expected = site_nack_probability(n, p)
        assert expected_repair_packets(n, p, 1) == pytest.approx(expected, rel=1e-9)

    def test_huge_threshold_reduces_to_mean_unicasts(self):
        # Never re-multicast: expectation is E[k] = n*p.
        n, p = 25, 0.04
        assert expected_repair_packets(n, p, n + 1) == pytest.approx(n * p, rel=1e-9)

    def test_bounded_by_unicast_mean_and_above_multicast_floor(self):
        value = expected_repair_packets(50, 0.1, 3)
        assert 0.0 < value <= 50 * 0.1

    def test_exact_small_case_by_enumeration(self):
        # n=3, p=0.5, threshold=2: E = 1*P(k=1) + 1*P(k>=2)
        p1 = 3 * 0.5**3
        p_ge2 = 3 * 0.5**3 + 0.5**3
        assert expected_repair_packets(3, 0.5, 2) == pytest.approx(p1 + p_ge2, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_repair_packets(10, 0.1, 0)
        with pytest.raises(ValueError):
            expected_repair_packets(10, -0.5, 3)
