"""Statistical conformance: aggregate model vs the exact engine.

The contract the aggregate site receiver must honour: at overlapping
scales, running the *same* workload (same site count, per-site
population, loss rate, packet timeline) through

* the exact engine — one :class:`LbrmReceiver` per receiver with
  per-host Bernoulli ``inbound_loss``, and
* the aggregate engine — one :class:`AggregateSiteReceiver` per site
  drawing Binomial miss counts,

yields the same *distributions* for the protocol's observables:

1. per-transmission miss counts (equivalently round-1 NACKs per
   heartbeat interval) — χ² homogeneity over the count histograms;
2. repair traffic — KS over per-(site, run) unicast-repair totals and
   χ² over the unicast/re-multicast split;
3. recovery latency — KS over per-receiver recovery-completion delays
   (both engines measure from loss *detection*, which is what makes
   the distributions comparable even though the aggregate detects at
   the original packet's arrival).

Runs are seeded and deterministic, so the asserted p-values are stable
— a failure is a model regression, not noise.  The N=10 comparison is
the CI-quick tier; the N∈{5,20,50} sweep is marked ``slow``.  Analytic
asymptote tracking (large-N populations only the aggregate engine can
host) closes the tier.
"""

from __future__ import annotations

import math

import pytest

from repro.core.events import LossDetected, RecoveryComplete
from repro.scale import model
from repro.scale.deploy import AggregateDeployment, ScaleSpec
from repro.scale.stats import chi2_homogeneity, ks_2sample
from repro.simnet import BernoulliLoss, DeploymentSpec, LbrmDeployment

# Deterministic seeds => deterministic p-values: this threshold rejects
# a broken model, not an unlucky draw.  The seed pool is sized so the
# null operating point sits well inside the acceptance region — with
# only a handful of seeds a perfectly correct model can land at
# p < 0.01 by chance (5 seeds at N=10 did exactly that).
P_MIN = 0.01
SEEDS = tuple(range(20))

N_SITES = 4
N_PACKETS = 12
INTERVAL = 0.05
WARMUP = 0.2
DRAIN = 3.0
# Compared sequence window: seq 1 is excluded because an exact receiver
# that misses the very first packet may baseline its tracker past it.
FIRST_SEQ, LAST_SEQ = 2, N_PACKETS


class RunSample:
    """One run's conformance observables."""

    def __init__(self) -> None:
        self.miss_counts: list[int] = []  # per (site, seq in window)
        self.latencies: list[float] = []  # per recovered receiver
        self.unicast_totals: list[int] = []  # per site
        self.multicast_total = 0


def _quantize(latency: float) -> float:
    """Round a latency to 1 µs before comparison.

    The two engines accumulate event times in different orders, so the
    same 2 ms repair round can land at 0.0019999999999997797 in one and
    0.0020000000000000018 in the other — a 2e-16 gap the KS statistic
    would otherwise count as genuine distributional separation.
    """
    return round(latency, 6)


def _drive(dep) -> None:
    dep.start()
    dep.advance(WARMUP)
    for i in range(N_PACKETS):
        dep.send(f"pkt-{i}".encode())
        dep.advance(INTERVAL)
    dep.advance(DRAIN)


def run_exact(n_per_site: int, p: float, seed: int) -> RunSample:
    dep = LbrmDeployment(
        DeploymentSpec(n_sites=N_SITES, receivers_per_site=n_per_site, seed=seed)
    )
    for i in range(1, N_SITES + 1):
        for j in range(n_per_site):
            name = f"site{i}-rx{j}"
            dep.network.host(name).inbound_loss = BernoulliLoss(
                p, dep.streams.stream(f"loss:{name}")
            )
    _drive(dep)

    sample = RunSample()
    miss: dict[tuple[int, int], int] = {}
    for node in dep.receiver_nodes:
        site_index = int(node.name.split("-")[0][4:])
        for event in node.events_of(LossDetected):
            for seq in event.seqs:
                if FIRST_SEQ <= seq <= LAST_SEQ:
                    key = (site_index, seq)
                    miss[key] = miss.get(key, 0) + 1
        sample.latencies.extend(
            _quantize(event.latency)
            for event in node.events_of(RecoveryComplete)
            if FIRST_SEQ <= event.seq <= LAST_SEQ
        )
    for i in range(1, N_SITES + 1):
        for seq in range(FIRST_SEQ, LAST_SEQ + 1):
            sample.miss_counts.append(miss.get((i, seq), 0))
    for logger in dep.site_loggers:
        sample.unicast_totals.append(logger.stats["retrans_unicast"])
        sample.multicast_total += logger.stats["retrans_multicast"]
    return sample


def run_aggregate(n_per_site: int, p: float, seed: int) -> RunSample:
    dep = AggregateDeployment(
        ScaleSpec(
            n_sites=N_SITES,
            receivers_per_site=n_per_site,
            receiver_loss=p,
            shared_loss=0.0,
            seed=seed,
        )
    )
    _drive(dep)

    sample = RunSample()
    for agg in dep.aggregates:
        per_seq = {}
        detected_at = {}
        unicasts = 0
        for t, kind, seq, count in agg.event_log:
            if kind == "loss":
                per_seq[seq] = count
                detected_at[seq] = t
                continue
            if not FIRST_SEQ <= seq <= LAST_SEQ:
                # Seq 1 is modeled here but invisible to the exact
                # engine: a receiver missing the very first packet
                # baselines past it and never recovers it.
                continue
            if kind == "recover":
                sample.latencies.extend([_quantize(t - detected_at[seq])] * count)
            elif kind == "repair_unicast":
                unicasts += count
            elif kind == "repair_multicast":
                sample.multicast_total += count
        for seq in range(FIRST_SEQ, LAST_SEQ + 1):
            sample.miss_counts.append(per_seq.get(seq, 0))
        sample.unicast_totals.append(unicasts)
    return sample


def _collect(n_per_site: int, p: float) -> tuple[RunSample, RunSample]:
    exact = RunSample()
    aggregate = RunSample()
    for seed in SEEDS:
        for pooled, one in ((exact, run_exact(n_per_site, p, seed)),
                            (aggregate, run_aggregate(n_per_site, p, seed))):
            pooled.miss_counts.extend(one.miss_counts)
            pooled.latencies.extend(one.latencies)
            pooled.unicast_totals.extend(one.unicast_totals)
            pooled.multicast_total += one.multicast_total
    return exact, aggregate


def _assert_conformance(n_per_site: int, p: float) -> None:
    exact, aggregate = _collect(n_per_site, p)

    # 1. NACKs-per-heartbeat: per-transmission miss-count histograms.
    top = n_per_site
    hist_exact = [0] * (top + 1)
    hist_aggregate = [0] * (top + 1)
    for k in exact.miss_counts:
        hist_exact[min(k, top)] += 1
    for k in aggregate.miss_counts:
        hist_aggregate[min(k, top)] += 1
    miss_result = chi2_homogeneity(hist_exact, hist_aggregate)
    assert miss_result.pvalue > P_MIN, (
        f"miss-count distributions diverged: chi2={miss_result.statistic:.2f} "
        f"dof={miss_result.dof} p={miss_result.pvalue:.4g}"
    )

    # 2a. Repair traffic: per-site unicast totals.
    assert exact.unicast_totals and aggregate.unicast_totals
    unicast_result = ks_2sample(exact.unicast_totals, aggregate.unicast_totals)
    assert unicast_result.pvalue > P_MIN, (
        f"unicast repair totals diverged: D={unicast_result.statistic:.3f} "
        f"p={unicast_result.pvalue:.4g}"
    )
    # 2b. The unicast/re-multicast split (pooled away when multicasts
    # are too rare to test — small N at low p).
    split = chi2_homogeneity(
        [sum(exact.unicast_totals), exact.multicast_total],
        [sum(aggregate.unicast_totals), aggregate.multicast_total],
    )
    assert split.pvalue > P_MIN, (
        f"unicast/multicast split diverged: exact="
        f"{sum(exact.unicast_totals)}/{exact.multicast_total} aggregate="
        f"{sum(aggregate.unicast_totals)}/{aggregate.multicast_total} "
        f"p={split.pvalue:.4g}"
    )

    # 3. Recovery latency.
    assert exact.latencies and aggregate.latencies
    latency_result = ks_2sample(exact.latencies, aggregate.latencies)
    assert latency_result.pvalue > P_MIN, (
        f"recovery-latency distributions diverged: D={latency_result.statistic:.3f} "
        f"p={latency_result.pvalue:.4g}"
    )


class TestConformanceQuick:
    def test_aggregate_matches_exact_engine_at_n10(self):
        _assert_conformance(n_per_site=10, p=0.05)


@pytest.mark.slow
class TestConformanceSweep:
    @pytest.mark.parametrize("n_per_site", [5, 20, 50])
    def test_aggregate_matches_exact_engine(self, n_per_site):
        _assert_conformance(n_per_site=n_per_site, p=0.05)


class TestAnalyticAsymptotics:
    """Populations only the aggregate engine can host must track the
    closed-form oracle as N grows."""

    @pytest.mark.parametrize("n_per_site", [200, 2000, 20000])
    def test_total_misses_track_binomial_expectation(self, n_per_site):
        p = 0.01
        dep = AggregateDeployment(
            ScaleSpec(n_sites=2, receivers_per_site=n_per_site,
                      receiver_loss=p, seed=42)
        )
        _drive(dep)
        n_tx = len(dep.aggregates[0].miss_draws)
        draws = [k for agg in dep.aggregates for k in agg.miss_draws]
        mean = 2 * n_tx * model.expected_miss_count(n_per_site, p)
        sigma = math.sqrt(2 * n_tx * model.miss_count_variance(n_per_site, p))
        assert abs(sum(draws) - mean) < 6.0 * sigma

    def test_site_nack_rate_tracks_analytic_probability(self):
        # At N=2000, p=1e-4 the per-transmission site NACK probability is
        # 1-(1-p)^N ~ 0.181: the collapsed-NACK rate (fraction of
        # transmissions with any miss) must match it.
        n_per_site, p = 2000, 1e-4
        hits = draws = 0
        for seed in SEEDS:
            dep = AggregateDeployment(
                ScaleSpec(n_sites=4, receivers_per_site=n_per_site,
                          receiver_loss=p, seed=seed)
            )
            _drive(dep)
            for agg in dep.aggregates:
                draws += len(agg.miss_draws)
                hits += sum(1 for k in agg.miss_draws if k > 0)
        expected = model.site_nack_probability(n_per_site, p)
        sigma = math.sqrt(draws * expected * (1.0 - expected))
        assert abs(hits - draws * expected) < 6.0 * sigma

    def test_recovery_rounds_grow_logarithmically(self):
        # The modeled repair loop is the E[R] ~ log_{1/p} N process: the
        # worst site-wide recovery should need about that many rounds.
        p = 0.3
        rounds_small = model.expected_recovery_rounds(100, p)
        rounds_large = model.expected_recovery_rounds(10_000, p)
        assert rounds_large - rounds_small == pytest.approx(
            2.0 / math.log10(1.0 / p), rel=0.05
        )
