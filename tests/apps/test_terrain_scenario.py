"""DIS terrain entity and scenario tests."""

from __future__ import annotations

import random

import pytest

from repro.apps.dis import (
    DisScenario,
    TerrainDatabase,
    TerrainEntity,
    TerrainKind,
    TerrainState,
    scenario_packet_rates,
)


class TestTerrainState:
    def test_encode_decode_roundtrip(self):
        state = TerrainState(entity_id=17, kind=TerrainKind.BRIDGE, condition=128,
                             version=3, x=1.5, y=-2.5, heading=0.75)
        assert TerrainState.decode(state.encode()) == state

    def test_entity_versions_increase(self):
        bridge = TerrainEntity(1, TerrainKind.BRIDGE, 0.0, 0.0)
        v1 = bridge.state.version
        bridge.damage(40)
        bridge.destroy()
        assert bridge.state.version == v1 + 2
        assert bridge.state.condition == 0

    def test_damage_floors_at_zero(self):
        e = TerrainEntity(1, TerrainKind.TREE, 0.0, 0.0)
        e.damage(300)
        assert e.state.condition == 0

    def test_repair_restores(self):
        e = TerrainEntity(1, TerrainKind.BRIDGE, 0.0, 0.0)
        e.destroy()
        e.repair()
        assert e.state.condition == 255


class TestTerrainDatabase:
    def test_apply_and_get(self):
        db = TerrainDatabase()
        e = TerrainEntity(5, TerrainKind.BRIDGE, 1.0, 2.0)
        state = e.destroy()
        assert db.apply(state.encode()) == state
        assert db.get(5).condition == 0
        assert db.destroyed() == [5]

    def test_stale_recovery_dropped(self):
        """A recovered update superseded in flight must not regress state."""
        db = TerrainDatabase()
        e = TerrainEntity(5, TerrainKind.BRIDGE, 1.0, 2.0)
        old = e.damage(10)
        new = e.destroy()
        db.apply(new.encode())
        assert db.apply(old.encode()) is None  # late recovery
        assert db.get(5).condition == 0
        assert db.stats["stale_dropped"] == 1

    def test_len(self):
        db = TerrainDatabase()
        for i in (1, 2, 3):
            db.apply(TerrainEntity(i, TerrainKind.ROCK, 0, 0).damage(1).encode())
        assert len(db) == 3


class TestScenarioRates:
    def test_paper_numbers(self):
        """§2.1.2: 500k pkt/s total, heartbeats 4/5 of traffic, ~50x cut."""
        rates = scenario_packet_rates()
        assert rates.dynamic_data == 100_000
        assert rates.terrain_heartbeats_fixed == pytest.approx(400_000, rel=0.01)
        assert rates.total_fixed == pytest.approx(500_000, rel=0.01)
        assert rates.heartbeat_fraction_fixed == pytest.approx(0.8, abs=0.01)
        assert rates.heartbeat_reduction == pytest.approx(53.3, rel=0.02)

    def test_variable_total_far_smaller(self):
        rates = scenario_packet_rates()
        assert rates.total_variable < 0.25 * rates.total_fixed


class TestDisScenario:
    def test_population_and_kinds(self):
        scenario = DisScenario(n_terrain=500, rng=random.Random(1))
        assert len(scenario.entities) == 500
        kinds = {e.state.kind for e in scenario.entities.values()}
        assert TerrainKind.BRIDGE in kinds
        assert scenario.bridges()

    def test_updates_sorted_and_bounded(self):
        scenario = DisScenario(n_terrain=50, terrain_interval=10.0, rng=random.Random(2))
        updates = scenario.draw_updates(duration=100.0)
        times = [u.time for u in updates]
        assert times == sorted(times)
        assert all(0 <= t < 100.0 for t in times)
        # ~50 entities * 10 updates avg = ~500 updates
        assert 300 < len(updates) < 700

    def test_validation(self):
        with pytest.raises(ValueError):
            DisScenario(n_terrain=0)
