"""Appendix A protocol tests — exact message strings from the paper."""

from __future__ import annotations

import pytest

from repro.apps.webinval import (
    BrowserClient,
    HttpInvalidationServer,
    WebMessage,
    WebMessageKind,
    make_multicast_comment,
    parse_multicast_comment,
)


class TestCodec:
    def test_paper_update_message(self):
        text = "TRANS:17.0:UPDATE: http://www-DSG.Stanford.EDU/groupMembers.html"
        msg = WebMessage.decode(text)
        assert msg.kind is WebMessageKind.UPDATE
        assert msg.seq == 17 and msg.hb_index == 0
        assert msg.url == "http://www-DSG.Stanford.EDU/groupMembers.html"
        assert not msg.retrans

    def test_paper_heartbeat_message(self):
        msg = WebMessage.decode("TRANS: 17.12: HEARTBEAT")
        assert msg.kind is WebMessageKind.HEARTBEAT
        assert msg.seq == 17 and msg.hb_index == 12

    def test_retrans_tag(self):
        msg = WebMessage.decode("RETRANS:17.0:UPDATE: http://x/y.html")
        assert msg.retrans

    def test_encode_decode_roundtrip(self):
        for msg in (
            WebMessage(WebMessageKind.UPDATE, 17, 0, "http://a/b.html"),
            WebMessage(WebMessageKind.HEARTBEAT, 17, 12),
            WebMessage(WebMessageKind.UPDATE, 3, 0, "http://a/b.html", retrans=True),
        ):
            assert WebMessage.decode(msg.encode()) == msg

    def test_malformed_rejected(self):
        for bad in ("", "HELLO", "TRANS:17:UPDATE: http://x", "TRANS:17.0:UPDATE:"):
            with pytest.raises(ValueError):
                WebMessage.decode(bad)


class TestMulticastComment:
    def test_paper_comment_parses(self):
        assert parse_multicast_comment("<!MULTICAST.234.12.29.72.>\n<html>") == "234.12.29.72"

    def test_comment_must_be_first_line(self):
        assert parse_multicast_comment("<html>\n<!MULTICAST.234.12.29.72.>") is None

    def test_no_comment(self):
        assert parse_multicast_comment("<html><body>hi</body></html>") is None

    def test_make_and_parse(self):
        comment = make_multicast_comment("239.1.2.3")
        assert parse_multicast_comment(comment) == "239.1.2.3"

    def test_make_validates(self):
        with pytest.raises(ValueError):
            make_multicast_comment("not-an-address")


class TestServerAndBrowser:
    def test_full_invalidation_flow(self):
        server = HttpInvalidationServer()
        browser = BrowserClient()
        url = "http://server/page.html"
        html = server.publish(url, "<h1>v1</h1>")

        address = browser.display(url, html)
        assert address == server.group_address  # subscribed via comment
        assert not browser.needs_reload(url)

        update = server.modify(url, "<h1>v2</h1>")
        assert browser.on_message(update)
        assert browser.needs_reload(url)  # RELOAD highlighted

        browser.reload(url, server.fetch(url))
        assert not browser.needs_reload(url)
        assert "v2" in browser.cached(url)

    def test_update_for_uncached_page_ignored(self):
        server = HttpInvalidationServer()
        browser = BrowserClient()
        server.publish("http://s/a.html", "x")
        update = server.modify("http://s/a.html", "y")
        assert not browser.on_message(update)

    def test_heartbeat_does_not_invalidate(self):
        server = HttpInvalidationServer()
        browser = BrowserClient()
        url = "http://s/a.html"
        browser.display(url, server.publish(url, "x"))
        assert not browser.on_message(server.heartbeat(3))
        assert not browser.needs_reload(url)

    def test_retransmission_list(self):
        """"The logger's response packet contains a list of retransmissions."""
        server = HttpInvalidationServer()
        server.publish("http://s/a.html", "1")
        server.modify("http://s/a.html", "2")  # seq 1
        server.modify("http://s/a.html", "3")  # seq 2
        replies = server.retransmit([1, 2, 99])
        assert [r.seq for r in replies] == [1, 2]
        assert all(r.retrans for r in replies)

    def test_modify_unknown_url_raises(self):
        with pytest.raises(KeyError):
            HttpInvalidationServer().modify("http://nope", "x")

    def test_subscription_single_per_address(self):
        server = HttpInvalidationServer()
        browser = BrowserClient()
        a = browser.display("http://s/a.html", server.publish("http://s/a.html", "1"))
        b = browser.display("http://s/b.html", server.publish("http://s/b.html", "2"))
        assert a == server.group_address
        assert b is None  # already subscribed
        assert browser.subscriptions == frozenset({server.group_address})

    def test_evict(self):
        server = HttpInvalidationServer()
        browser = BrowserClient()
        url = "http://s/a.html"
        browser.display(url, server.publish(url, "1"))
        browser.evict(url)
        assert browser.cached(url) is None
