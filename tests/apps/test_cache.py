"""Cache invalidation app tests (incl. the lease comparison)."""

from __future__ import annotations

import pytest

from repro.apps.cache import (
    CacheClient,
    InvalidationKind,
    InvalidationMessage,
    InvalidationServer,
    LeaseClient,
)
from repro.core.actions import Deliver
from repro.core.events import FreshnessLost, FreshnessRestored


def deliver(payload: bytes, seq=1, recovered=False) -> Deliver:
    return Deliver(seq=seq, payload=payload, recovered=recovered)


class TestMessage:
    def test_roundtrip(self):
        msg = InvalidationMessage(InvalidationKind.REFRESH, "file/a.txt", b"contents", 7)
        assert InvalidationMessage.decode(msg.encode()) == msg

    def test_empty_value(self):
        msg = InvalidationMessage(InvalidationKind.INVALIDATE, "k", version=1)
        assert InvalidationMessage.decode(msg.encode()).value == b""


class TestServer:
    def test_versions_increase_per_key(self):
        server = InvalidationServer()
        server.invalidate("a")
        server.invalidate("a")
        server.refresh("b", b"v")
        assert server.version("a") == 2
        assert server.version("b") == 1


class TestClient:
    def test_invalidate_drops_key(self):
        server, client = InvalidationServer(), CacheClient()
        client.put("a", b"old")
        client.on_deliver(deliver(server.invalidate("a")))
        assert client.get("a") is None
        assert client.stats["invalidated_keys"] == 1

    def test_refresh_replaces_value(self):
        server, client = InvalidationServer(), CacheClient()
        client.put("a", b"old")
        client.on_deliver(deliver(server.refresh("a", b"new")))
        assert client.get("a") == b"new"

    def test_stale_recovered_invalidation_ignored(self):
        server, client = InvalidationServer(), CacheClient()
        old = server.refresh("a", b"v1")
        new = server.refresh("a", b"v2")
        client.on_deliver(deliver(new, seq=2))
        client.on_deliver(deliver(old, seq=1, recovered=True))
        assert client.get("a") == b"v2"
        assert client.stats["stale_dropped"] == 1

    def test_freshness_lost_invalidates_everything(self):
        """§4.2: channel failure == lease timeout for the whole cache."""
        client = CacheClient()
        client.put("a", b"1")
        client.put("b", b"2")
        client.on_event(FreshnessLost(idle_for=0.5))
        assert not client.connected
        assert client.get("a") is None and client.get("b") is None
        assert client.stats["full_invalidations"] == 1

    def test_freshness_restored_reconnects(self):
        client = CacheClient()
        client.on_event(FreshnessLost(idle_for=0.5))
        client.on_event(FreshnessRestored(silent_for=1.0))
        assert client.connected
        client.put("a", b"1")
        assert client.get("a") == b"1"


class TestLease:
    def test_valid_until_expiry(self):
        lease = LeaseClient(lease_term=10.0)
        lease.put("a", b"v", now=0.0)
        assert lease.get("a", now=5.0) == b"v"
        assert lease.get("a", now=10.0) is None
        assert lease.stats["expired_reads"] == 1

    def test_renewal_extends(self):
        lease = LeaseClient(lease_term=10.0)
        lease.put("a", b"v", now=0.0)
        lease.renew("a", now=8.0)
        assert lease.get("a", now=15.0) == b"v"
        assert lease.stats["renewals"] == 1

    def test_renewal_traffic_scales_with_keys(self):
        """The bookkeeping LBRM eliminates: renewals ∝ keys × time."""
        lease = LeaseClient(lease_term=10.0)
        assert lease.renewals_required(n_keys=100, duration=60.0) == pytest.approx(600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseClient(lease_term=0.0)
