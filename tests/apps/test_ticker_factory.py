"""Stock ticker and factory-automation app tests."""

from __future__ import annotations

import random

import pytest

from repro.apps.factory import AuditLog, MobileMonitor, SensorReading
from repro.apps.ticker import Quote, QuoteBoard, QuoteFeed
from repro.core.log_store import PacketLog


class TestQuotes:
    def test_roundtrip(self):
        q = Quote(symbol="ACME", quote_id=9, price_cents=10450, size=300)
        assert Quote.decode(q.encode()) == q

    def test_symbol_too_long(self):
        with pytest.raises(ValueError):
            Quote(symbol="TOOLONGSYM", quote_id=1, price_cents=1, size=1).encode()

    def test_feed_monotone_ids(self):
        feed = QuoteFeed(rng=random.Random(0))
        a = feed.tick("ACME")
        b = feed.tick("ACME")
        assert b.quote_id == a.quote_id + 1

    def test_feed_prices_positive(self):
        feed = QuoteFeed(volatility=0.5, rng=random.Random(0))
        for _ in range(200):
            assert feed.tick_random().price_cents >= 1

    def test_board_applies_latest(self):
        feed = QuoteFeed(rng=random.Random(0))
        board = QuoteBoard()
        q1 = feed.tick("ACME")
        q2 = feed.tick("ACME")
        board.apply(q2.encode())
        assert board.apply(q1.encode()) is None  # late recovery superseded
        assert board.last("ACME") == q2
        assert board.stats["stale_dropped"] == 1

    def test_feed_validation(self):
        with pytest.raises(ValueError):
            QuoteFeed(symbols=())
        with pytest.raises(ValueError):
            QuoteFeed(volatility=-1.0)


class TestFactory:
    def test_reading_roundtrip(self):
        r = SensorReading(sensor_id=3, metric="temp", value=21.5, sample=17)
        assert SensorReading.decode(r.encode()) == r

    def test_metric_too_long(self):
        with pytest.raises(ValueError):
            SensorReading(1, "temperature", 1.0, 1).encode()

    def test_audit_replay_in_order(self):
        """Record-keeping from the reliability log (§4.4)."""
        log = PacketLog()
        for sample in range(1, 6):
            reading = SensorReading(sensor_id=1, metric="rpm", value=100.0 + sample, sample=sample)
            log.append(sample, reading.encode(), now=float(sample))
        audit = AuditLog(log)
        replayed = audit.replay()
        assert [r.sample for r in replayed] == [1, 2, 3, 4, 5]

    def test_audit_skips_missing(self):
        log = PacketLog()
        log.append(1, SensorReading(1, "rpm", 1.0, 1).encode(), 0.0)
        log.append(3, SensorReading(1, "rpm", 3.0, 3).encode(), 0.0)
        assert [r.sample for r in AuditLog(log).replay()] == [1, 3]

    def test_audit_history_filters_sensor(self):
        log = PacketLog()
        log.append(1, SensorReading(1, "rpm", 1.0, 1).encode(), 0.0)
        log.append(2, SensorReading(2, "temp", 2.0, 1).encode(), 0.0)
        history = AuditLog(log).history(sensor_id=2)
        assert len(history) == 1 and history[0].metric == "temp"

    def test_mobile_monitor_recovery_accounting(self):
        monitor = MobileMonitor()
        monitor.on_deliver(SensorReading(1, "rpm", 1.0, 1).encode(), recovered=False)
        monitor.disconnect()
        monitor.reconnect()
        monitor.on_deliver(SensorReading(1, "rpm", 2.0, 2).encode(), recovered=True)
        assert monitor.stats == {"live_samples": 1, "recovered_samples": 1, "disconnects": 1}
        assert monitor.latest(1).sample == 2

    def test_mobile_monitor_stale_recovery_dropped(self):
        monitor = MobileMonitor()
        monitor.on_deliver(SensorReading(1, "rpm", 5.0, 5).encode(), recovered=False)
        assert monitor.on_deliver(SensorReading(1, "rpm", 2.0, 2).encode(), recovered=True) is None
        assert monitor.latest(1).sample == 5

    def test_double_disconnect_counts_once(self):
        monitor = MobileMonitor()
        monitor.disconnect()
        monitor.disconnect()
        assert monitor.stats["disconnects"] == 1
