"""Dead reckoning tests: emission policy and bounded display error."""

from __future__ import annotations

import math
import random

import pytest

from repro.apps.dis.deadreckoning import (
    DeadReckoningMirror,
    DeadReckoningSource,
    KinematicState,
)


def test_state_roundtrip():
    state = KinematicState(entity_id=9, x=1.0, y=-2.0, vx=3.5, vy=0.25,
                           timestamp=12.0, update_id=4)
    assert KinematicState.decode(state.encode()) == state


def test_extrapolation():
    state = KinematicState(entity_id=1, x=0.0, y=0.0, vx=2.0, vy=-1.0, timestamp=10.0)
    assert state.extrapolate(12.0) == (4.0, -2.0)


class TestSource:
    def test_first_move_always_emits(self):
        src = DeadReckoningSource(1)
        assert src.move(0.0, 0.0, 1.0, 0.0, now=0.0) is not None

    def test_straight_line_stays_silent(self):
        """Constant-velocity motion matches the extrapolation: no updates."""
        src = DeadReckoningSource(1, threshold=1.0, max_silence=100.0)
        src.move(0.0, 0.0, 2.0, 0.0, now=0.0)
        emitted = 0
        for t in range(1, 50):
            if src.move(2.0 * t, 0.0, 2.0, 0.0, now=float(t)) is not None:
                emitted += 1
        assert emitted == 0

    def test_turn_triggers_update(self):
        src = DeadReckoningSource(1, threshold=1.0)
        src.move(0.0, 0.0, 2.0, 0.0, now=0.0)
        # sharp 90-degree turn: true position diverges from extrapolation
        update = src.move(0.0, 4.0, 0.0, 2.0, now=2.0)
        assert update is not None
        assert update.update_id == 2

    def test_max_silence_floor(self):
        src = DeadReckoningSource(1, threshold=10.0, max_silence=5.0)
        src.move(0.0, 0.0, 1.0, 0.0, now=0.0)
        assert src.move(5.0, 0.0, 1.0, 0.0, now=5.0) is not None  # periodic floor

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadReckoningSource(1, threshold=0.0)
        with pytest.raises(ValueError):
            DeadReckoningSource(1, max_silence=0.0)

    def test_traffic_reduction_on_smooth_path(self):
        """§1's point: dead reckoning slashes dynamic-entity traffic."""
        rng = random.Random(5)
        src = DeadReckoningSource(1, threshold=2.0, max_silence=1000.0)
        x = y = 0.0
        heading = 0.0
        emitted = 0
        dt = 0.1
        for step in range(1000):
            heading += rng.gauss(0.0, 0.02)  # gentle wander
            vx, vy = 10.0 * math.cos(heading), 10.0 * math.sin(heading)
            x += vx * dt
            y += vy * dt
            if src.move(x, y, vx, vy, now=step * dt) is not None:
                emitted += 1
        # 1000 ticks -> a small fraction become updates
        assert emitted < 200


class TestMirror:
    def test_display_error_bounded_by_threshold(self):
        """Receiver's displayed position stays within the source threshold
        (zero network delay here)."""
        rng = random.Random(7)
        threshold = 2.0
        src = DeadReckoningSource(1, threshold=threshold, max_silence=1000.0)
        mirror = DeadReckoningMirror()
        x = y = heading = 0.0
        dt = 0.1
        for step in range(2000):
            heading += rng.gauss(0.0, 0.05)
            vx, vy = 8.0 * math.cos(heading), 8.0 * math.sin(heading)
            x += vx * dt
            y += vy * dt
            now = step * dt
            update = src.move(x, y, vx, vy, now=now)
            if update is not None:
                mirror.apply(update.encode())
            mx, my = mirror.position(1, now)
            assert math.hypot(x - mx, y - my) <= threshold + 1e-6

    def test_stale_update_dropped(self):
        mirror = DeadReckoningMirror()
        new = KinematicState(1, 5.0, 5.0, 0.0, 0.0, timestamp=2.0, update_id=3)
        old = KinematicState(1, 0.0, 0.0, 1.0, 0.0, timestamp=1.0, update_id=2)
        mirror.apply(new.encode())
        assert mirror.apply(old.encode()) is None
        assert mirror.position(1, 2.0) == (5.0, 5.0)
        assert mirror.stats["stale_dropped"] == 1

    def test_unknown_entity(self):
        assert DeadReckoningMirror().position(42, 0.0) is None
