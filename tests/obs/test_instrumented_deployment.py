"""End-to-end: a simulated deployment populates the registry coherently.

Builds a small version of the §2.2.2 world under a recording window,
loses one packet for a whole site, and checks that what the registry
says matches what the machines' own ``stats`` dicts and the packet
trace say.
"""

from __future__ import annotations

from repro import obs
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def run_lossy_deployment(seed: int = 0):
    reg = obs.registry()
    dep = LbrmDeployment(
        DeploymentSpec(n_sites=3, receivers_per_site=4, seed=seed)
    )
    dep.start()
    dep.advance(0.2)
    dep.send(b"one")
    dep.advance(0.5)
    site = dep.network.site("site1")
    site.tail_down.loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.1)])
    dep.send(b"two")
    dep.advance(5.0)
    assert dep.receivers_with(2) == len(dep.receivers), "recovery incomplete"
    return dep, reg


def test_registry_matches_machine_stats():
    with obs.recording():
        dep, reg = run_lossy_deployment()

        # sender counters carry the node label
        assert reg.counter_value("sender.data_sent", node="source") == dep.sender.stats["data_sent"]
        assert dep.sender.stats["data_sent"] == 2

        # per-logger counters match each logger's stats
        for logger in [dep.primary] + dep.site_loggers:
            for key, value in logger.stats.items():
                assert reg.counter_value(f"logger.{key}", node=logger.addr_token) == value

        # receiver counters aggregate across all receiver instances
        assert reg.counter_value("receiver.nacks_sent") == sum(
            r.stats["nacks_sent"] for r in dep.receivers
        )
        assert reg.counter_value("receiver.data_received") == sum(
            r.stats["data_received"] for r in dep.receivers
        )


def test_registry_mirrors_packet_trace():
    with obs.recording() as reg:
        dep, _ = run_lossy_deployment()
        for (kind, ptype, cross), count in dep.trace.counts.items():
            from repro.core.packets import PacketType

            assert (
                reg.counter_value(
                    "simnet.packets",
                    kind=kind,
                    ptype=PacketType(ptype).name,
                    scope="cross" if cross else "local",
                )
                == count
            )


def test_simulator_and_log_gauges_populate():
    with obs.recording() as reg:
        dep, _ = run_lossy_deployment()
        assert reg.counter_value("sim.events_processed") == dep.sim.processed
        assert dep.sim.processed > 0
        # primary logged both packets; the gauge tracks the store level
        assert reg.gauge_value("logger.log_packets", node="primary") == 2
        assert reg.counter_value("log_store.appended") > 0


def test_recovery_latency_and_trace_events_recorded():
    with obs.recording() as reg:
        run_lossy_deployment()
        hist = reg.histogram("receiver.recovery_latency")
        # every receiver at the lossy site recovered exactly one packet
        assert hist.count == 4
        assert hist.p50 is not None and hist.p50 > 0.0
        assert len(reg.trace.events("receiver.loss_detected")) > 0
        assert len(reg.trace.events("receiver.nack")) > 0
        assert len(reg.trace.events("receiver.recovery_complete")) == 4
        assert len(reg.trace.events("sender.data")) == 2


def test_noop_mode_keeps_plain_dicts_and_empty_registry():
    obs.uninstall()
    dep, reg = run_lossy_deployment()
    assert not reg.enabled
    assert type(dep.sender.stats) is dict
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
