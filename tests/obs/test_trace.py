"""Unit tests for the event-trace ring buffer."""

from __future__ import annotations

import pytest

from repro.obs.trace import NULL_TRACE, EventTrace, TraceEvent


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventTrace(capacity=0)


def test_emit_and_read_back_in_order():
    trace = EventTrace(capacity=8)
    trace.emit(1.0, "a", seq=1)
    trace.emit(2.0, "b", seq=2)
    events = trace.events()
    assert [e.name for e in events] == ["a", "b"]
    assert [e.time for e in events] == [1.0, 2.0]


def test_fields_are_sorted_for_determinism():
    trace = EventTrace()
    trace.emit(0.0, "e", zebra=1, alpha=2)
    (event,) = trace.events()
    assert event.fields == (("alpha", 2), ("zebra", 1))
    assert event.as_dict() == {"time": 0.0, "name": "e", "alpha": 2, "zebra": 1}


def test_ring_evicts_oldest_and_counts_dropped():
    trace = EventTrace(capacity=3)
    for i in range(5):
        trace.emit(float(i), "e", i=i)
    assert len(trace) == 3
    assert trace.emitted == 5
    assert trace.dropped == 2
    assert [dict(e.fields)["i"] for e in trace.events()] == [2, 3, 4]


def test_filter_by_name():
    trace = EventTrace()
    trace.emit(0.0, "nack", seq=1)
    trace.emit(0.1, "data", seq=2)
    trace.emit(0.2, "nack", seq=3)
    assert len(trace.events("nack")) == 2
    assert len(trace.events("data")) == 1
    assert trace.events("nothing") == ()


def test_reset_clears_everything():
    trace = EventTrace(capacity=2)
    for i in range(4):
        trace.emit(float(i), "e")
    trace.reset()
    assert len(trace) == 0
    assert trace.emitted == 0
    assert trace.dropped == 0


def test_format_is_stable():
    trace = EventTrace()
    trace.emit(1.5, "x", a=1)
    trace.emit(1.5, "x", a=1)
    lines = trace.format().splitlines()
    assert len(lines) == 2
    assert lines[0] == lines[1]
    assert "x" in lines[0]


def test_identical_histories_compare_equal():
    a, b = EventTrace(), EventTrace()
    for t in (a, b):
        t.emit(0.5, "loss", seq=3)
        t.emit(0.6, "nack", seq=3, logger="site1")
    assert a.events() == b.events()


def test_null_trace_is_inert():
    NULL_TRACE.emit(0.0, "anything", x=1)
    assert len(NULL_TRACE) == 0
    assert NULL_TRACE.events() == ()
    assert NULL_TRACE.format() == ""
    assert NULL_TRACE.dropped == 0
    assert list(iter(NULL_TRACE)) == []


def test_trace_event_is_frozen():
    event = TraceEvent(time=0.0, name="e")
    with pytest.raises(AttributeError):
        event.name = "other"
