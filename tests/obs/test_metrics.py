"""Unit tests for the metric primitives (counters, gauges, histograms)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    format_key,
)


# -- format_key ------------------------------------------------------------


def test_format_key_no_labels():
    assert format_key("sender.data", ()) == "sender.data"


def test_format_key_labels_render_sorted():
    labels = (("node", "primary"), ("scope", "cross"))
    assert format_key("x", labels) == "x{node=primary,scope=cross}"


# -- counter / gauge -------------------------------------------------------


def test_counter_inc_and_reset():
    c = Counter("c")
    c.inc()
    c.inc(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0


def test_gauge_set_inc_dec():
    g = Gauge("g")
    g.set(10.0)
    g.inc(2.5)
    g.dec(0.5)
    assert g.value == 12.0
    g.reset()
    assert g.value == 0.0


# -- histogram edge cases ---------------------------------------------------


def test_empty_histogram_is_all_none():
    h = Histogram("h")
    assert h.count == 0
    assert h.min is None
    assert h.max is None
    assert h.mean is None
    assert h.p50 is None and h.p95 is None and h.p99 is None
    assert h.percentile(0.0) is None
    assert h.percentile(100.0) is None
    assert h.summary()["count"] == 0


def test_single_sample_is_every_percentile_of_itself():
    h = Histogram("h")
    h.observe(3.25)
    for p in (0.0, 1.0, 50.0, 95.0, 99.0, 100.0):
        assert h.percentile(p) == 3.25
    assert h.min == h.max == h.mean == 3.25
    assert h.count == 1


def test_percentile_out_of_range_rejected():
    h = Histogram("h")
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(-0.1)
    with pytest.raises(ValueError):
        h.percentile(100.1)


def test_percentiles_linearly_interpolate():
    h = Histogram("h")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.percentile(0.0) == 1.0
    assert h.percentile(100.0) == 100.0
    assert h.p50 == pytest.approx(50.5)
    assert h.p95 == pytest.approx(95.05)
    assert h.p99 == pytest.approx(99.01)


def test_percentiles_of_two_samples():
    h = Histogram("h")
    h.observe(0.0)
    h.observe(10.0)
    assert h.p50 == pytest.approx(5.0)
    assert h.percentile(25.0) == pytest.approx(2.5)


def test_unsorted_observations_sort_lazily():
    h = Histogram("h")
    for v in (5.0, 1.0, 9.0, 3.0, 7.0):
        h.observe(v)
    assert h.p50 == 5.0
    assert h.min == 1.0
    assert h.max == 9.0
    # observing again after a percentile read still works
    h.observe(0.0)
    assert h.percentile(0.0) == 0.0


def test_histogram_reset():
    h = Histogram("h")
    h.observe(1.0)
    h.reset()
    assert h.count == 0
    assert h.p50 is None


# -- registry ---------------------------------------------------------------


def test_registry_returns_same_instrument_for_same_key():
    reg = MetricsRegistry()
    assert reg.counter("a", x=1) is reg.counter("a", x=1)
    assert reg.counter("a", x=1) is not reg.counter("a", x=2)
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_label_order_is_irrelevant():
    reg = MetricsRegistry()
    assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)


def test_counter_value_and_total():
    reg = MetricsRegistry()
    reg.counter("pkts", kind="rx").inc(3)
    reg.counter("pkts", kind="drop").inc(2)
    assert reg.counter_value("pkts", kind="rx") == 3
    assert reg.counter_value("pkts", kind="nope") == 0
    assert reg.counter_total("pkts") == 5


def test_snapshot_is_sorted_and_json_stable():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a", node="n2").inc(2)
    reg.counter("a", node="n1").inc(1)
    reg.gauge("depth").set(4.0)
    reg.histogram("lat").observe(0.5)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a{node=n1}", "a{node=n2}", "z"]
    # two dumps of the same history are bit-identical
    assert reg.to_json() == reg.to_json()
    parsed = json.loads(reg.to_json())
    assert parsed["counters"]["a{node=n1}"] == 1
    assert parsed["histograms"]["lat"]["count"] == 1


def test_reset_zeroes_in_place_preserving_identity():
    reg = MetricsRegistry()
    c = reg.counter("c")
    g = reg.gauge("g")
    h = reg.histogram("h")
    c.inc(7)
    g.set(3.0)
    h.observe(1.0)
    reg.trace.emit(0.0, "x")
    reg.reset()
    assert c.value == 0 and g.value == 0.0 and h.count == 0
    assert len(reg.trace) == 0 and reg.trace.emitted == 0
    # machines hold direct references; they must still be live
    assert reg.counter("c") is c
    c.inc()
    assert reg.counter_value("c") == 1


def test_null_registry_is_inert():
    reg = NullRegistry()
    c = reg.counter("anything", label="x")
    c.inc(100)
    reg.gauge("g").set(5.0)
    reg.histogram("h").observe(1.0)
    reg.trace.emit(0.0, "event")
    assert reg.counter_value("anything", label="x") == 0
    assert reg.counter_total("anything") == 0
    assert reg.gauge_value("g") == 0.0
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert len(reg.trace) == 0
    # every accessor hands back the same shared no-op singleton
    assert reg.counter("a") is reg.gauge("b") is reg.histogram("c")
