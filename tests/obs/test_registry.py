"""Tests for the process-wide registry lifecycle and StatCounters mirror."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry, StatCounters


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test here starts and ends in no-op mode."""
    obs.uninstall()
    yield
    obs.uninstall()


def test_default_is_noop():
    assert not obs.registry().enabled


def test_install_and_uninstall():
    reg = obs.install()
    assert obs.registry() is reg
    assert reg.enabled
    obs.uninstall()
    assert not obs.registry().enabled


def test_install_accepts_existing_registry():
    mine = MetricsRegistry()
    assert obs.install(mine) is mine
    assert obs.registry() is mine


def test_recording_restores_previous_on_exit():
    with obs.recording() as reg:
        assert obs.registry() is reg
    assert not obs.registry().enabled


def test_recording_nests():
    with obs.recording() as outer:
        outer.counter("c").inc()
        with obs.recording() as inner:
            assert obs.registry() is inner
            inner.counter("c").inc(5)
        assert obs.registry() is outer
        # the inner window never leaked into the outer registry
        assert outer.counter_value("c") == 1
        assert inner.counter_value("c") == 5


def test_recording_restores_even_on_error():
    with pytest.raises(RuntimeError):
        with obs.recording():
            raise RuntimeError("boom")
    assert not obs.registry().enabled


# -- stat_counters ----------------------------------------------------------


def test_stat_counters_plain_dict_when_off():
    stats = obs.stat_counters("sender", {"data_sent": 0})
    assert type(stats) is dict
    assert stats == {"data_sent": 0}


def test_stat_counters_mirrors_when_recording():
    with obs.recording() as reg:
        stats = obs.stat_counters("sender", {"data_sent": 0}, node="src")
        assert isinstance(stats, StatCounters)
        stats["data_sent"] += 1
        stats["data_sent"] += 2
        assert stats["data_sent"] == 3
        assert reg.counter_value("sender.data_sent", node="src") == 3


def test_stat_counters_initial_keys_materialize_at_zero():
    with obs.recording() as reg:
        obs.stat_counters("rx", {"nacks": 0})
        # listed in the snapshot even though never incremented
        assert "rx.nacks" in reg.snapshot()["counters"]
        assert reg.counter_value("rx.nacks") == 0


def test_stat_counters_preserves_dict_contract():
    with obs.recording():
        stats = obs.stat_counters("m", {"a": 0, "b": 0})
        stats["a"] += 4
        assert stats == {"a": 4, "b": 0}
        assert stats.get("a") == 4
        assert stats.get("zzz", -1) == -1
        assert set(stats) == {"a", "b"}
        assert "a" in stats


def test_stat_counters_new_key_after_construction():
    with obs.recording() as reg:
        stats = obs.stat_counters("m", {})
        stats["late"] = 2
        assert reg.counter_value("m.late") == 2


def test_stat_counters_survives_registry_reset():
    with obs.recording() as reg:
        stats = obs.stat_counters("m", {"a": 0})
        stats["a"] += 10
        reg.reset()
        assert reg.counter_value("m.a") == 0
        # further increments mirror by delta, not absolute value
        stats["a"] += 1
        assert reg.counter_value("m.a") == 1
        assert stats["a"] == 11
