"""ASCII report renderer tests."""

from __future__ import annotations

from repro.analysis.report import format_comparison, format_series, format_table


def test_table_alignment_and_rule():
    out = format_table(["name", "value"], [("alpha", 1), ("b", 123456)])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 4
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all rows equally wide


def test_float_rendering():
    out = format_table(["x"], [(53.3333333,), (0.0001234,), (float("nan"),)])
    assert "53.333" in out
    assert "0.000123" in out
    assert "nan" in out


def test_series():
    out = format_series("Figure 4", [1, 2], [4.0, 2.0], x_label="dt", y_label="rate")
    assert out.startswith("# Figure 4")
    assert "dt" in out and "rate" in out


def test_comparison():
    out = format_comparison("Table 1", [("backoff 2", 53.3, 53.2)])
    assert out.startswith("== Table 1 ==")
    assert "paper" in out and "measured" in out
    assert "53.3" in out and "53.2" in out
