"""Closed-form analysis tests against the paper's published numbers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.estimation_math import (
    loss_detection_bound,
    table2_rows,
    worst_case_detection_time,
)
from repro.analysis.heartbeat_math import (
    fixed_heartbeat_count,
    fixed_rate,
    overhead_ratio,
    table1_rows,
    variable_heartbeat_count,
    variable_rate,
)
from repro.core.config import HeartbeatConfig


class TestFigure4:
    def test_fixed_rate_asymptote(self):
        """Fixed rate approaches 1/h_min as dt grows."""
        assert fixed_rate(1000.0, 0.25) == pytest.approx(4.0, rel=0.01)

    def test_variable_rate_asymptote(self):
        """Variable rate approaches 1/h_max as dt grows."""
        cfg = HeartbeatConfig()
        assert variable_rate(100_000.0, cfg) == pytest.approx(1 / 32, rel=0.02)

    def test_no_heartbeats_below_h_min(self):
        """"If dt < h_min, no heartbeats are transmitted under either
        scheme" (at h_min=0.25 a 0.2s stream preempts everything)."""
        cfg = HeartbeatConfig()
        assert variable_heartbeat_count(0.2, cfg) == 0
        assert fixed_heartbeat_count(0.2, 0.25) == 0


class TestFigure5AndTable1:
    def test_marked_point_53x(self):
        """dt=120s, backoff 2: the paper's 53.3/53.4 reduction factor."""
        assert overhead_ratio(120.0) == pytest.approx(53.3, rel=0.01)

    def test_table1_monotone_up_to_cap(self):
        rows = table1_rows()
        ratios = [r for _, r in rows]
        assert all(b <= a + 1e-9 for a, b in zip(ratios[1:], ratios))  # non-decreasing
        assert ratios[0] < ratios[-1]

    def test_table1_backoff2_row(self):
        rows = dict(table1_rows())
        assert rows[2.0] == pytest.approx(53.3, rel=0.01)

    def test_savings_grow_with_dt(self):
        cfg = HeartbeatConfig()
        assert overhead_ratio(10.0, cfg) < overhead_ratio(120.0, cfg) < overhead_ratio(1000.0, cfg)


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            fixed_heartbeat_count(0.0, 0.25)
        with pytest.raises(ValueError):
            fixed_heartbeat_count(1.0, 0.0)
        with pytest.raises(ValueError):
            variable_heartbeat_count(-1.0)


class TestEdgeCases:
    def test_beat_landing_on_data_packet_is_preempted(self):
        # dt an exact multiple of the interval: the beat that would
        # coincide with the next data packet is never sent.
        assert fixed_heartbeat_count(1.0, 0.25) == 3

    def test_dt_exactly_h_min_emits_nothing(self):
        cfg = HeartbeatConfig()
        assert fixed_heartbeat_count(cfg.h_min, cfg.h_min) == 0
        assert variable_heartbeat_count(cfg.h_min, cfg) == 0
        assert fixed_rate(cfg.h_min, cfg.h_min) == 0.0
        assert variable_rate(cfg.h_min, cfg) == 0.0

    def test_ratio_is_one_when_neither_scheme_emits(self):
        cfg = HeartbeatConfig()
        assert overhead_ratio(cfg.h_min, cfg) == 1.0

    def test_backoff_one_degenerates_to_fixed_scheme(self):
        # backoff=1 never widens the interval, so both schemes emit the
        # same beats and the Figure 5 ratio collapses to 1.
        cfg = HeartbeatConfig(backoff=1.0)
        for dt in (0.3, 1.0, 10.0):
            assert variable_heartbeat_count(dt, cfg) == fixed_heartbeat_count(
                dt, cfg.h_min
            )
            assert overhead_ratio(dt, cfg) == pytest.approx(1.0)


class TestLossDetection:
    def test_isolated_loss_within_h_min(self):
        cfg = HeartbeatConfig()
        assert loss_detection_bound(0.1, cfg) == pytest.approx(0.25)

    def test_burst_bound_2x(self):
        cfg = HeartbeatConfig()
        assert loss_detection_bound(3.0, cfg) == pytest.approx(6.0)

    def test_burst_bound_post_burst_tail_capped_at_h_max(self):
        """For t_burst > h_max the post-burst wait caps at h_max."""
        cfg = HeartbeatConfig()
        assert loss_detection_bound(100.0, cfg) == pytest.approx(132.0)

    def test_backoff_multiple_k(self):
        cfg = HeartbeatConfig(backoff=3.0)
        assert loss_detection_bound(2.0, cfg) == pytest.approx(6.0)

    def test_exact_worst_case_below_bound_plus_tail(self):
        cfg = HeartbeatConfig()
        for t_burst in (0.1, 0.5, 1.0, 3.0, 10.0, 31.0):
            exact = worst_case_detection_time(t_burst, cfg)
            bound = loss_detection_bound(t_burst, cfg)
            assert exact <= bound + cfg.h_max

    def test_exact_worst_case_reveals_after_burst(self):
        cfg = HeartbeatConfig()
        assert worst_case_detection_time(1.0, cfg) == pytest.approx(1.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            loss_detection_bound(-1.0)
        with pytest.raises(ValueError):
            worst_case_detection_time(-1.0)


class TestTable2:
    def test_rows(self):
        rows = table2_rows()
        expected = [(1, 1.0), (2, 0.707), (3, 0.577), (4, 0.5), (5, 0.447)]
        for (n, f), (en, ef) in zip(rows, expected):
            assert n == en
            assert f == pytest.approx(ef, abs=0.001)
