"""Byte-level bandwidth accounting tests."""

from __future__ import annotations

import pytest

from repro.analysis.bandwidth import GroupBandwidth, MessageSizes, group_bandwidth
from repro.baselines.fixed_heartbeat import FIXED_DEFAULT
from repro.core.config import HeartbeatConfig, StatAckConfig
from repro.core.packets import DataPacket, encode


def test_sizes_match_real_encodings():
    sizes = MessageSizes.for_group("g", payload_size=128)
    assert sizes.data == len(encode(DataPacket(group="g", seq=1, payload=b"\x00" * 128)))
    assert sizes.heartbeat < sizes.data  # heartbeats carry no payload
    assert sizes.data_ack < sizes.data


def test_variable_heartbeat_bandwidth_far_below_fixed():
    variable = group_bandwidth(data_interval=120.0)
    fixed = group_bandwidth(data_interval=120.0, heartbeat=FIXED_DEFAULT)
    assert variable.heartbeat_bps < fixed.heartbeat_bps / 40
    assert variable.total_bps < fixed.total_bps


def test_terrain_group_is_tiny_on_a_t1():
    bw = group_bandwidth(data_interval=120.0, payload_size=128)
    # One terrain entity's channel: a vanishing share of a T1.
    assert bw.tail_fraction() < 1e-4


def test_hundred_thousand_fixed_groups_overwhelm_a_t1():
    """The §2.1.2 story in bytes: 100k fixed-heartbeat terrain groups
    saturate the tail circuit many times over; variable fits."""
    fixed = group_bandwidth(data_interval=120.0, heartbeat=FIXED_DEFAULT)
    variable = group_bandwidth(data_interval=120.0)
    assert 100_000 * fixed.tail_fraction() > 5.0  # >5 T1s of heartbeats
    # heartbeat bytes drop by the ~53x packet factor; totals (which share
    # the same data bytes) still shrink an order of magnitude
    assert fixed.heartbeat_bps / variable.heartbeat_bps > 40
    assert 100_000 * variable.tail_fraction() < 100_000 * fixed.tail_fraction() / 10


def test_statack_overhead_is_marginal():
    with_sa = group_bandwidth(data_interval=1.0, statack=StatAckConfig(epoch_length=64))
    without = group_bandwidth(data_interval=1.0)
    assert with_sa.statack_bps > 0
    assert with_sa.statack_bps < 0.05 * with_sa.data_bps
    assert without.statack_bps == 0.0


def test_validation():
    with pytest.raises(ValueError):
        group_bandwidth(payload_size=-1)
    with pytest.raises(ValueError):
        group_bandwidth(data_interval=0.0)


def test_total_is_sum():
    bw = GroupBandwidth(data_bps=10.0, heartbeat_bps=5.0, statack_bps=1.0)
    assert bw.total_bps == 16.0
    assert bw.tail_fraction(tail_bps=1280.0) == pytest.approx(0.1)
