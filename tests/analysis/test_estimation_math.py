"""Edge cases for the Table 2 estimator-accuracy closed forms.

The published-number checks live in test_heartbeat_math.py; these pin
the degenerate corners (zero loggers, certain ACKs, invalid
probabilities) that the analysis report code paths can reach.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.estimation_math import (
    nsl_stddev,
    nsl_stddev_after_probes,
    table2_rows,
)


class TestNslStddev:
    def test_zero_loggers_zero_spread(self):
        assert nsl_stddev(0, 0.5) == 0.0

    def test_certain_ack_zero_spread(self):
        # p_ack = 1: every logger replies, the estimate is exact.
        assert nsl_stddev(1000, 1.0) == 0.0

    def test_table2_single_probe_value(self):
        # N=1000, p=0.5: sigma_1 = sqrt(N(1-p)/p) = sqrt(1000).
        assert nsl_stddev(1000, 0.5) == pytest.approx(math.sqrt(1000.0))

    def test_spread_grows_as_ack_probability_falls(self):
        assert nsl_stddev(500, 0.1) > nsl_stddev(500, 0.5) > nsl_stddev(500, 0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            nsl_stddev(100, 0.0)  # p -> 0: estimator undefined
        with pytest.raises(ValueError):
            nsl_stddev(100, -0.2)
        with pytest.raises(ValueError):
            nsl_stddev(100, 1.5)
        with pytest.raises(ValueError):
            nsl_stddev(-1, 0.5)


class TestNslStddevAfterProbes:
    def test_one_probe_is_sigma_one(self):
        assert nsl_stddev_after_probes(1000, 0.5, 1) == nsl_stddev(1000, 0.5)

    def test_four_probes_halve_the_spread(self):
        assert nsl_stddev_after_probes(1000, 0.5, 4) == pytest.approx(
            nsl_stddev(1000, 0.5) / 2.0
        )

    def test_matches_table2_reduction_factors(self):
        sigma_1 = nsl_stddev(1000, 0.5)
        for probes, factor in table2_rows():
            assert nsl_stddev_after_probes(1000, 0.5, probes) == pytest.approx(
                sigma_1 * factor
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            nsl_stddev_after_probes(1000, 0.5, 0)
        with pytest.raises(ValueError):
            nsl_stddev_after_probes(1000, 0.5, -3)
