"""Fixed-heartbeat and centralized-logging baseline helpers."""

from __future__ import annotations

import pytest

from repro.baselines import centralized_spec, fixed_heartbeat_config
from repro.core.heartbeat import FixedHeartbeatSchedule, make_schedule
from repro.simnet.deploy import DeploymentSpec


def test_fixed_config_degenerates_schedule():
    cfg = fixed_heartbeat_config(interval=0.25)
    assert cfg.heartbeat.is_fixed
    schedule = make_schedule(cfg.heartbeat)
    assert isinstance(schedule, FixedHeartbeatSchedule)
    assert schedule.interval == 0.25


def test_fixed_config_preserves_other_sections():
    from repro.core.config import LbrmConfig, StatAckConfig

    base = LbrmConfig(statack=StatAckConfig(k_ackers=7))
    cfg = fixed_heartbeat_config(0.5, base)
    assert cfg.statack.k_ackers == 7
    assert cfg.heartbeat.h_min == 0.5


def test_fixed_sender_emits_constant_rate():
    from repro.core.sender import LbrmSender
    from repro.core.actions import SendMulticast
    from repro.core.packets import HeartbeatPacket

    s = LbrmSender("g", fixed_heartbeat_config(0.25), primary=None)
    s.send(b"x", 0.0)
    beats = []
    now = 0.0
    for _ in range(8):
        now = s.next_wakeup()
        actions = s.poll(now)
        beats += [a.packet for a in actions
                  if isinstance(a, SendMulticast) and isinstance(a.packet, HeartbeatPacket)]
    times = [round(0.25 * (i + 1), 2) for i in range(8)]
    assert len(beats) == 8
    assert now == pytest.approx(times[-1])


def test_centralized_spec_flips_only_loggers():
    base = DeploymentSpec(n_sites=7, receivers_per_site=2, seed=3)
    spec = centralized_spec(base)
    assert spec.secondary_loggers is False
    assert spec.n_sites == 7 and spec.seed == 3


def test_centralized_default():
    assert centralized_spec().secondary_loggers is False
