"""Positive-ACK baseline tests: implosion, in-order stalls, retransmits."""

from __future__ import annotations

import pytest

from repro.baselines.senderreliable import (
    PosAckDataPacket,
    PosAckPacket,
    PosAckReceiver,
    PosAckSender,
)
from repro.core.actions import Deliver, SendMulticast, SendUnicast
from repro.core.packets import decode, encode


def test_packets_roundtrip():
    for pkt in (
        PosAckDataPacket(group="g", seq=1, payload=b"x"),
        PosAckPacket(group="g", cum_seq=7),
    ):
        assert decode(encode(pkt)) == pkt


def test_every_receiver_acks_every_packet():
    """The ACK implosion: per-packet ACK count equals group size."""
    receivers = tuple(f"r{i}" for i in range(25))
    sender = PosAckSender("g", receivers)
    sender.send(b"x", 0.0)
    for r in receivers:
        sender.handle(PosAckPacket(group="g", cum_seq=1), r, 0.05)
    assert sender.stats["acks_received"] == 25


def test_release_requires_all_receivers():
    sender = PosAckSender("g", ("r0", "r1"))
    sender.send(b"x", 0.0)
    sender.handle(PosAckPacket(group="g", cum_seq=1), "r0", 0.05)
    assert sender.unreleased == 1
    sender.handle(PosAckPacket(group="g", cum_seq=1), "r1", 0.06)
    assert sender.unreleased == 0
    assert sender.released_up_to == 1


def test_slow_receiver_blocks_release():
    """§5: the source is *not* isolated from receiver behaviour."""
    sender = PosAckSender("g", ("fast", "slow"))
    for i in range(5):
        sender.send(b"x", float(i))
    sender.handle(PosAckPacket(group="g", cum_seq=5), "fast", 5.0)
    assert sender.unreleased == 5  # slow receiver pins the whole buffer


def test_retransmit_to_silent_receiver():
    sender = PosAckSender("g", ("r0", "r1"), retry=0.5)
    sender.send(b"x", 0.0)
    sender.handle(PosAckPacket(group="g", cum_seq=1), "r0", 0.1)
    actions = sender.poll(0.6)
    retrans = [a for a in actions if isinstance(a, SendUnicast)]
    assert len(retrans) == 1 and retrans[0].dest == "r1"
    assert sender.stats["retransmits"] == 1


def test_dead_receiver_eventually_dropped():
    sender = PosAckSender("g", ("r0",), retry=0.1, max_retries=3)
    sender.send(b"x", 0.0)
    now = 0.0
    for _ in range(6):
        now += 0.15
        sender.poll(now)
    assert sender.stats["receivers_failed"] == 1
    assert sender.unreleased == 0  # quorum shrank; buffer released


def test_ack_from_unknown_ignored():
    sender = PosAckSender("g", ("r0",))
    sender.send(b"x", 0.0)
    sender.handle(PosAckPacket(group="g", cum_seq=1), "stranger", 0.1)
    assert sender.unreleased == 1


class TestReceiver:
    def test_in_order_delivery(self):
        r = PosAckReceiver("g", sender="src")
        actions = r.handle(PosAckDataPacket(group="g", seq=1, payload=b"a"), "src", 0.0)
        deliveries = [a for a in actions if isinstance(a, Deliver)]
        assert deliveries and deliveries[0].seq == 1
        assert r.cum_seq == 1

    def test_gap_stalls_delivery(self):
        """Head-of-line blocking: seq 3 held until 2 arrives."""
        r = PosAckReceiver("g", sender="src")
        r.handle(PosAckDataPacket(group="g", seq=1, payload=b"a"), "src", 0.0)
        actions = r.handle(PosAckDataPacket(group="g", seq=3, payload=b"c"), "src", 0.1)
        assert not [a for a in actions if isinstance(a, Deliver)]
        assert r.stats["stalled"] >= 1
        actions = r.handle(PosAckDataPacket(group="g", seq=2, payload=b"b"), "src", 0.2)
        seqs = [a.seq for a in actions if isinstance(a, Deliver)]
        assert seqs == [2, 3]  # released in order

    def test_acks_cumulative(self):
        r = PosAckReceiver("g", sender="src")
        actions = r.handle(PosAckDataPacket(group="g", seq=1, payload=b"a"), "src", 0.0)
        acks = [a.packet for a in actions if isinstance(a, SendUnicast)]
        assert acks and acks[0].cum_seq == 1

    def test_every_packet_acked_even_duplicates(self):
        r = PosAckReceiver("g", sender="src")
        r.handle(PosAckDataPacket(group="g", seq=1, payload=b"a"), "src", 0.0)
        r.handle(PosAckDataPacket(group="g", seq=1, payload=b"a"), "src", 0.1)
        assert r.stats["acks_sent"] == 2


def test_validation():
    with pytest.raises(ValueError):
        PosAckSender("g", (), retry=0.0)
