"""SRM/wb baseline tests: suppression, repair, duplicate behaviour."""

from __future__ import annotations

import random

import pytest

from repro.baselines.srm import (
    SrmMember,
    SrmRepairPacket,
    SrmRequestPacket,
    SrmSender,
    SrmSessionPacket,
)
from repro.core.actions import Deliver, Notify, SendMulticast
from repro.core.events import RecoveryComplete
from repro.core.packets import DataPacket, decode, encode


def multicast_packets(actions, ptype):
    return [a.packet for a in actions if isinstance(a, SendMulticast) and isinstance(a.packet, ptype)]


def make_member(seed=0, **kwargs) -> SrmMember:
    return SrmMember("g", d_source=0.04, rng=random.Random(seed), **kwargs)


def test_srm_packets_roundtrip():
    for pkt in (
        SrmSessionPacket(group="g", seq=4),
        SrmRequestPacket(group="g", seq=2),
        SrmRepairPacket(group="g", seq=2, payload=b"fix"),
    ):
        assert decode(encode(pkt)) == pkt


def test_sender_session_messages_fixed_interval():
    sender = SrmSender("g", session_interval=0.25)
    sender.start(0.0)
    sender.send(b"x", 0.1)
    actions = sender.poll(0.25)
    sessions = multicast_packets(actions, SrmSessionPacket)
    assert sessions and sessions[0].seq == 1
    actions = sender.poll(0.5)
    assert multicast_packets(actions, SrmSessionPacket)


def test_member_caches_and_delivers():
    m = make_member()
    actions = m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    deliveries = [a for a in actions if isinstance(a, Deliver)]
    assert deliveries and m.has(1)


def test_gap_schedules_randomized_request():
    m = make_member()
    m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    m.handle(DataPacket(group="g", seq=3, payload=b"z"), "src", 0.1)
    due = m.next_wakeup()
    # request delay drawn from [c1*d, (c1+c2)*d] = [0.04, 0.08] after detection
    assert 0.1 + 0.04 <= due <= 0.1 + 0.08
    actions = m.poll(due)
    requests = multicast_packets(actions, SrmRequestPacket)
    assert requests and requests[0].seq == 2


def test_session_message_reveals_loss():
    m = make_member()
    m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    m.handle(SrmSessionPacket(group="g", seq=2), "src", 0.3)
    assert 2 in m.missing


def test_foreign_request_suppresses_own():
    """Seeing someone else's request for the same seq suppresses ours."""
    m = make_member()
    m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    m.handle(DataPacket(group="g", seq=3, payload=b"z"), "src", 0.1)
    first_due = m.next_wakeup()
    m.handle(SrmRequestPacket(group="g", seq=2), "peer", 0.11)
    assert m.stats["requests_suppressed"] == 1
    assert m.next_wakeup() > first_due  # backed off


def test_holder_schedules_repair_and_cancels_on_peer_repair():
    holder = make_member(seed=1)
    holder.handle(DataPacket(group="g", seq=2, payload=b"data2"), "src", 0.0)
    holder.handle(SrmRequestPacket(group="g", seq=2), "needy", 0.1)
    due = holder.next_wakeup()
    assert due is not None
    # another member repairs first: ours is cancelled
    holder.handle(SrmRepairPacket(group="g", seq=2, payload=b"data2"), "other", 0.12)
    assert holder.stats["repairs_cancelled"] == 1
    assert not multicast_packets(holder.poll(due), SrmRepairPacket)


def test_holder_sends_repair_when_unopposed():
    holder = make_member(seed=1)
    holder.handle(DataPacket(group="g", seq=2, payload=b"data2"), "src", 0.0)
    holder.handle(SrmRequestPacket(group="g", seq=2), "needy", 0.1)
    actions = holder.poll(holder.next_wakeup())
    repairs = multicast_packets(actions, SrmRepairPacket)
    assert repairs and repairs[0].payload == b"data2"
    assert holder.stats["repairs_sent"] == 1


def test_repair_recovers_and_reports_latency():
    m = make_member()
    m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    m.handle(DataPacket(group="g", seq=3, payload=b"z"), "src", 0.1)
    actions = m.handle(SrmRepairPacket(group="g", seq=2, payload=b"y"), "peer", 0.3)
    recov = [a.event for a in actions if isinstance(a, Notify) and isinstance(a.event, RecoveryComplete)]
    assert recov and recov[0].latency == pytest.approx(0.2)
    assert not m.missing


def test_duplicate_repair_counted():
    m = make_member()
    m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    m.handle(SrmRepairPacket(group="g", seq=1, payload=b"x"), "peer", 0.2)
    assert m.stats["duplicate_repairs_seen"] == 1


def test_request_rearmed_with_backoff_until_repair():
    m = make_member()
    m.handle(DataPacket(group="g", seq=1, payload=b"x"), "src", 0.0)
    m.handle(DataPacket(group="g", seq=3, payload=b"z"), "src", 0.1)
    m.poll(m.next_wakeup())  # request 1
    assert m.stats["requests_sent"] == 1
    m.poll(m.next_wakeup())  # request 2 (backed off)
    assert m.stats["requests_sent"] == 2


def test_validation():
    with pytest.raises(ValueError):
        SrmSender("g", session_interval=0.0)
    with pytest.raises(ValueError):
        SrmMember("g", d_source=0.0)
