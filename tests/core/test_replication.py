"""ReplicationManager unit tests (§2.2.3 watermarks and retries)."""

from __future__ import annotations

import pytest

from repro.core.actions import SendUnicast
from repro.core.config import ReplicationConfig
from repro.core.packets import ReplUpdatePacket
from repro.core.replication import ReplicationManager


def updates(actions):
    return [a for a in actions if isinstance(a, SendUnicast) and isinstance(a.packet, ReplUpdatePacket)]


def test_replicate_sends_to_all_replicas():
    mgr = ReplicationManager("g", ("r0", "r1", "r2"))
    actions = mgr.replicate(1, b"a", 0.0)
    assert {u.dest for u in updates(actions)} == {"r0", "r1", "r2"}
    assert mgr.stats["updates_sent"] == 3


def test_replica_seq_with_min_one():
    """replica_seq = the most up-to-date replica's cumulative ACK."""
    mgr = ReplicationManager("g", ("r0", "r1"))
    mgr.replicate(1, b"a", 0.0)
    mgr.replicate(2, b"b", 0.1)
    assert mgr.replica_seq == 0
    assert mgr.on_ack("r0", 2, 0.2)  # grew
    assert mgr.replica_seq == 2  # one replica suffices by default


def test_replica_seq_with_min_two():
    """min_replicas_acked=2: the second-most up-to-date replica governs
    ("the maximum sequential acknowledgement from the second-most
    up-to-date replica, and so forth")."""
    cfg = ReplicationConfig(min_replicas_acked=2)
    mgr = ReplicationManager("g", ("r0", "r1", "r2"), cfg)
    mgr.replicate(1, b"a", 0.0)
    mgr.on_ack("r0", 1, 0.1)
    assert mgr.replica_seq == 0  # only one replica has it
    mgr.on_ack("r1", 1, 0.2)
    assert mgr.replica_seq == 1


def test_ack_from_unknown_replica_ignored():
    mgr = ReplicationManager("g", ("r0",))
    assert not mgr.on_ack("stranger", 5, 0.0)
    assert mgr.replica_seq == 0


def test_retry_unacked_updates():
    cfg = ReplicationConfig(update_retry=0.5)
    mgr = ReplicationManager("g", ("r0",), cfg)
    mgr.replicate(1, b"a", 0.0)
    actions = mgr.poll(0.6)
    sent = updates(actions)
    assert sent and sent[0].packet.seq == 1
    assert mgr.stats["update_retries"] == 1


def test_ack_cancels_retries():
    cfg = ReplicationConfig(update_retry=0.5)
    mgr = ReplicationManager("g", ("r0",), cfg)
    mgr.replicate(1, b"a", 0.0)
    mgr.on_ack("r0", 1, 0.1)
    assert mgr.poll(0.6) == []
    assert mgr.next_wakeup() is None


def test_retry_cap_drops_entry():
    cfg = ReplicationConfig(update_retry=0.1, max_update_retries=2)
    mgr = ReplicationManager("g", ("r0",), cfg)
    mgr.replicate(1, b"a", 0.0)
    assert updates(mgr.poll(0.15))  # retry 1
    assert updates(mgr.poll(0.30))  # retry 2
    assert not updates(mgr.poll(0.45))  # capped: replica presumed dead


def test_no_replicas_is_inert():
    mgr = ReplicationManager("g", ())
    assert mgr.replicate(1, b"a", 0.0) == []
    assert mgr.replica_seq == 0
    assert mgr.next_wakeup() is None


def test_acked_by():
    mgr = ReplicationManager("g", ("r0",))
    assert mgr.acked_by("r0") is None
    mgr.on_ack("r0", 3, 0.0)
    assert mgr.acked_by("r0") == 3


def test_stale_ack_does_not_regress():
    mgr = ReplicationManager("g", ("r0",))
    mgr.on_ack("r0", 5, 0.0)
    mgr.on_ack("r0", 2, 0.1)  # reordered, stale
    assert mgr.acked_by("r0") == 5
