"""ReplicationManager unit tests (§2.2.3 watermarks and retries)."""

from __future__ import annotations

import pytest

from repro.core.actions import SendUnicast
from repro.core.config import ReplicationConfig
from repro.core.packets import ReplUpdatePacket
from repro.core.replication import ReplicationManager


def updates(actions):
    return [a for a in actions if isinstance(a, SendUnicast) and isinstance(a.packet, ReplUpdatePacket)]


def test_replicate_sends_to_all_replicas():
    mgr = ReplicationManager("g", ("r0", "r1", "r2"))
    actions = mgr.replicate(1, b"a", 0.0)
    assert {u.dest for u in updates(actions)} == {"r0", "r1", "r2"}
    assert mgr.stats["updates_sent"] == 3


def test_replica_seq_with_min_one():
    """replica_seq = the most up-to-date replica's cumulative ACK."""
    mgr = ReplicationManager("g", ("r0", "r1"))
    mgr.replicate(1, b"a", 0.0)
    mgr.replicate(2, b"b", 0.1)
    assert mgr.replica_seq == 0
    assert mgr.on_ack("r0", 2, 0.2)  # grew
    assert mgr.replica_seq == 2  # one replica suffices by default


def test_replica_seq_with_min_two():
    """min_replicas_acked=2: the second-most up-to-date replica governs
    ("the maximum sequential acknowledgement from the second-most
    up-to-date replica, and so forth")."""
    cfg = ReplicationConfig(min_replicas_acked=2)
    mgr = ReplicationManager("g", ("r0", "r1", "r2"), cfg)
    mgr.replicate(1, b"a", 0.0)
    mgr.on_ack("r0", 1, 0.1)
    assert mgr.replica_seq == 0  # only one replica has it
    mgr.on_ack("r1", 1, 0.2)
    assert mgr.replica_seq == 1


def test_ack_from_unknown_replica_ignored():
    mgr = ReplicationManager("g", ("r0",))
    assert not mgr.on_ack("stranger", 5, 0.0)
    assert mgr.replica_seq == 0


def test_retry_unacked_updates():
    cfg = ReplicationConfig(update_retry=0.5)
    mgr = ReplicationManager("g", ("r0",), cfg)
    mgr.replicate(1, b"a", 0.0)
    actions = mgr.poll(0.6)
    sent = updates(actions)
    assert sent and sent[0].packet.seq == 1
    assert mgr.stats["update_retries"] == 1


def test_ack_cancels_retries():
    cfg = ReplicationConfig(update_retry=0.5)
    mgr = ReplicationManager("g", ("r0",), cfg)
    mgr.replicate(1, b"a", 0.0)
    mgr.on_ack("r0", 1, 0.1)
    assert mgr.poll(0.6) == []
    assert mgr.next_wakeup() is None


def test_retry_cap_drops_entry():
    cfg = ReplicationConfig(update_retry=0.1, max_update_retries=2)
    mgr = ReplicationManager("g", ("r0",), cfg)
    mgr.replicate(1, b"a", 0.0)
    assert updates(mgr.poll(0.15))  # retry 1
    assert updates(mgr.poll(0.30))  # retry 2
    assert not updates(mgr.poll(0.45))  # capped: replica presumed dead


def test_no_replicas_is_inert():
    mgr = ReplicationManager("g", ())
    assert mgr.replicate(1, b"a", 0.0) == []
    assert mgr.replica_seq == 0
    assert mgr.next_wakeup() is None


def test_acked_by():
    mgr = ReplicationManager("g", ("r0",))
    assert mgr.acked_by("r0") is None
    mgr.on_ack("r0", 3, 0.0)
    assert mgr.acked_by("r0") == 3


def test_stale_ack_does_not_regress():
    mgr = ReplicationManager("g", ("r0",))
    mgr.on_ack("r0", 5, 0.0)
    mgr.on_ack("r0", 2, 0.1)  # reordered, stale
    assert mgr.acked_by("r0") == 5


# -- commit-point membership & terms (DESIGN.md §10) ----------------------


def test_updates_carry_term_and_commit_point():
    mgr = ReplicationManager("g", ("r0", "r1"), epoch=3)
    mgr.on_ack("r0", 1, 0.0, epoch=3)
    actions = mgr.replicate(2, b"b", 0.1)
    for u in updates(actions):
        assert u.packet.log_epoch == 3
        assert u.packet.commit_seq == 1  # min_replicas_acked=1: r0's prefix


def test_stale_epoch_ack_is_discarded():
    mgr = ReplicationManager("g", ("r0",), epoch=3)
    assert not mgr.on_ack("r0", 4, 0.0, epoch=2)
    assert mgr.commit_seq == 0
    assert mgr.stats["stale_epoch_acks"] == 1
    # epoch 0 = legacy/unversioned follower: always accepted
    assert mgr.on_ack("r0", 4, 0.1, epoch=0)
    assert mgr.commit_seq == 4


def test_adopt_adds_member_counting_as_empty():
    cfg = ReplicationConfig(min_replicas_acked=1)
    mgr = ReplicationManager("g", ("r0",), cfg, epoch=2)
    mgr.on_ack("r0", 3, 0.0, epoch=2)
    assert mgr.adopt("r1", 0.1)
    assert not mgr.adopt("r1", 0.2)  # idempotent
    assert set(mgr.members) == {"r0", "r1"}
    assert mgr.acked_by("r1") is None
    assert mgr.commit_seq == 3  # m=1: the newcomer doesn't drag it down
    assert mgr.stats["members_adopted"] == 1


def test_backfill_is_batched_and_acks_advance_window():
    mgr = ReplicationManager("g", (), epoch=2)
    batch = mgr.BACKFILL_BATCH
    mgr.adopt("late", 0.0)
    gap = mgr.missing_for("late", 200)
    assert len(gap) == batch
    assert gap[0] == 1
    mgr.on_ack("late", batch, 0.1, epoch=2)
    nxt = mgr.missing_for("late", 200)
    assert nxt[0] == batch + 1


def test_replicate_to_skips_outstanding_entries():
    mgr = ReplicationManager("g", ("r0",), epoch=2)
    first = mgr.replicate_to("r0", 1, b"a", 0.0)
    assert updates(first) and mgr.stats["backfills"] == 1
    again = mgr.replicate_to("r0", 1, b"a", 0.1)
    assert updates(again) == []  # already in flight, pacing holds


# -- re-adoption after a follower restart ---------------------------------


def test_readopt_resets_stale_progress():
    """Re-adopting a member that carries progress must start it fresh:
    the old watermark belongs to a previous incarnation and would both
    inflate the commit point and starve the backfill."""
    mgr = ReplicationManager("g", ("r0",), epoch=2)
    mgr.replicate(1, b"a", 0.0)
    mgr.on_ack("r0", 1, 0.1, epoch=2)
    assert mgr.commit_seq == 1
    assert not mgr.adopt("r0", 0.2)  # not new, but reset
    assert mgr.acked_by("r0") is None
    assert mgr.commit_seq == 0
    assert mgr.stats["members_readopted"] == 1
    assert mgr.missing_for("r0", 1) == [1]  # backfill restarts from 1


def test_readopt_cancels_pending_retries():
    cfg = ReplicationConfig(update_retry=0.5)
    mgr = ReplicationManager("g", ("r0",), cfg, epoch=2)
    mgr.replicate(1, b"a", 0.0)  # outstanding, retry armed
    assert not mgr.adopt("r0", 0.1)
    assert mgr.stats["members_readopted"] == 1
    # The stale entry's retry died with the old incarnation's state.
    assert updates(mgr.poll(0.6)) == []
    assert mgr.next_wakeup() is None


def test_readopt_without_progress_is_inert():
    mgr = ReplicationManager("g", (), epoch=2)
    assert mgr.adopt("r0", 0.0)
    assert not mgr.adopt("r0", 0.1)  # no progress yet: plain idempotence
    assert mgr.stats["members_readopted"] == 0


def test_note_regression_detects_restarted_follower():
    """A cumulative ACK strictly below the watermark = the follower lost
    its log; the manager must stop counting the vanished prefix."""
    mgr = ReplicationManager("g", ("r0",), epoch=2)
    mgr.replicate(1, b"a", 0.0)
    mgr.replicate(2, b"b", 0.1)
    mgr.on_ack("r0", 2, 0.2, epoch=2)
    assert mgr.commit_seq == 2
    assert mgr.note_regression("r0", 0, 0.3, epoch=2)
    assert mgr.commit_seq == 0
    assert mgr.acked_by("r0") is None
    assert mgr.stats["members_readopted"] == 1
    # The follower's next honest ACK rebuilds from its true position.
    mgr.on_ack("r0", 0, 0.3, epoch=2)
    assert mgr.missing_for("r0", 2) == [1, 2]


def test_note_regression_ignores_equal_and_foreign_epoch():
    mgr = ReplicationManager("g", ("r0",), epoch=2)
    mgr.on_ack("r0", 3, 0.0, epoch=2)
    assert not mgr.note_regression("r0", 3, 0.1, epoch=2)  # no regression
    assert not mgr.note_regression("r0", 1, 0.2, epoch=1)  # foreign term
    assert not mgr.note_regression("stranger", 0, 0.3, epoch=2)
    assert mgr.acked_by("r0") == 3
    assert mgr.stats["members_readopted"] == 0
