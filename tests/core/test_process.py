"""Multi-group process tests (§2.2.1 footnote 5)."""

from __future__ import annotations

import pytest

from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import DataPacket, LogAckPacket, NackPacket, RetransPacket
from repro.core.process import MultiGroupProcess
from repro.core.actions import SendUnicast


def unicasts(actions, ptype):
    return [a for a in actions if isinstance(a, SendUnicast) and isinstance(a.packet, ptype)]


def build_dual_role_process() -> tuple[MultiGroupProcess, LogServer, LogServer]:
    """One process: primary for group A, secondary for group B."""
    process = MultiGroupProcess()
    cfg = LbrmConfig()
    primary_a = LogServer("A", addr_token="proc", config=cfg,
                          role=LoggerRole.PRIMARY, source="srcA", level=0)
    secondary_b = LogServer("B", addr_token="proc", config=cfg,
                            role=LoggerRole.SECONDARY, parent="primaryB",
                            source="srcB", level=1)
    process.add("A", primary_a)
    process.add("B", secondary_b)
    return process, primary_a, secondary_b


def test_dispatch_by_group():
    process, primary_a, secondary_b = build_dual_role_process()
    actions_a = process.handle(DataPacket(group="A", seq=1, payload=b"a"), "srcA", 0.0)
    actions_b = process.handle(DataPacket(group="B", seq=1, payload=b"b"), "srcB", 0.0)
    # Group A is primary: it ACKs the source.
    assert unicasts(actions_a, LogAckPacket)
    # Group B is secondary: no LOG_ACK, it just logs.
    assert not unicasts(actions_b, LogAckPacket)
    assert 1 in primary_a.log and 1 in secondary_b.log


def test_dual_role_serves_nacks_per_group():
    process, primary_a, secondary_b = build_dual_role_process()
    process.handle(DataPacket(group="A", seq=1, payload=b"a"), "srcA", 0.0)
    actions = process.handle(NackPacket(group="A", seqs=(1,)), "rx", 0.1)
    assert unicasts(actions, RetransPacket)
    # A NACK for B's unseen sequence goes upstream to B's parent.
    actions = process.handle(NackPacket(group="B", seqs=(5,)), "rx", 0.2)
    upstream = unicasts(actions, NackPacket)
    assert upstream and upstream[0].dest == "primaryB"


def test_unknown_group_counted_and_dropped():
    process, *_ = build_dual_role_process()
    actions = process.handle(DataPacket(group="C", seq=1, payload=b"c"), "src", 0.0)
    assert actions == []
    assert process.stats["unknown_group_packets"] == 1


def test_wakeups_merge_across_children():
    process, primary_a, secondary_b = build_dual_role_process()
    primary_a.timers.set(("x",), 5.0)
    secondary_b.timers.set(("y",), 3.0)
    assert process.next_wakeup() == 3.0


def test_poll_reaches_all_children():
    process, primary_a, secondary_b = build_dual_role_process()
    # secondary B has an upstream retry pending after a gap
    process.handle(DataPacket(group="B", seq=1, payload=b"b"), "srcB", 0.0)
    process.handle(DataPacket(group="B", seq=3, payload=b"b3"), "srcB", 0.1)
    due = process.next_wakeup()
    assert due is not None
    actions = process.poll(due)
    assert unicasts(actions, NackPacket)  # the retry went out


def test_multiple_machines_per_group():
    from repro.core.receiver import LbrmReceiver

    process = MultiGroupProcess()
    rx1 = LbrmReceiver("G", logger_chain=("l",))
    rx2 = LbrmReceiver("G", logger_chain=("l",))
    process.add("G", rx1)
    process.add("G", rx2)
    process.handle(DataPacket(group="G", seq=1, payload=b"x"), "src", 0.0)
    assert rx1.tracker.has(1) and rx2.tracker.has(1)
    assert len(process) == 2


def test_remove():
    process, primary_a, secondary_b = build_dual_role_process()
    process.remove("B", secondary_b)
    assert process.groups == frozenset({"A"})
    process.handle(DataPacket(group="B", seq=1, payload=b"b"), "srcB", 0.0)
    assert process.stats["unknown_group_packets"] == 1


def test_retrans_channel_packets_route_to_data_group():
    """A RETRANS on the channel names the data group; a process hosting
    the channel subscription must route it to the data-group machines."""
    from repro.core.config import ReceiverConfig
    from repro.core.receiver import LbrmReceiver

    process = MultiGroupProcess()
    rx = LbrmReceiver("G", ReceiverConfig(retrans_channel_fallback=2.0),
                      logger_chain=("l",))
    process.add("G", rx)
    process.handle(DataPacket(group="G", seq=1, payload=b"a"), "src", 0.0)
    process.handle(DataPacket(group="G", seq=3, payload=b"c"), "src", 0.1)
    # repair arrives via the channel (packet.group is the data group)
    process.handle(RetransPacket(group="G", seq=2, payload=b"b"), "src", 0.5)
    assert rx.tracker.has(2)


def test_sim_integration_dual_role():
    """Two groups, two sources, one logging process in both roles."""
    from repro.core.receiver import LbrmReceiver
    from repro.core.sender import LbrmSender
    from repro.simnet import BurstLoss, Network, RngStreams, SimNode, Simulator

    sim = Simulator()
    net = Network(sim, streams=RngStreams(8))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    cfg = LbrmConfig()

    # group A's source and its primary-at-the-process; group B's primary
    # lives elsewhere (s0) and the process is B's site secondary.
    primary_b_host = net.add_host("primaryB", s0)
    primary_b = LogServer("B", addr_token="primaryB", config=cfg,
                          role=LoggerRole.PRIMARY, source="srcB", level=0)
    SimNode(net, primary_b_host, [primary_b]).start()

    proc_host = net.add_host("proc", s1)
    process = MultiGroupProcess()
    process.add("A", LogServer("A", addr_token="proc", config=cfg,
                               role=LoggerRole.PRIMARY, source="srcA", level=0))
    process.add("B", LogServer("B", addr_token="proc", config=cfg,
                               role=LoggerRole.SECONDARY, parent="primaryB",
                               source="srcB", level=1))
    SimNode(net, proc_host, [process]).start()

    src_a_host = net.add_host("srcA", s1)
    sender_a = LbrmSender("A", cfg, primary="proc", addr_token="srcA")
    node_a = SimNode(net, src_a_host, [sender_a])
    node_a.start()
    src_b_host = net.add_host("srcB", s0)
    sender_b = LbrmSender("B", cfg, primary="primaryB", addr_token="srcB")
    node_b = SimNode(net, src_b_host, [sender_b])
    node_b.start()

    rx_host = net.add_host("rx", s1)
    rx_a = LbrmReceiver("A", cfg.receiver, logger_chain=("proc",), heartbeat=cfg.heartbeat)
    rx_b = LbrmReceiver("B", cfg.receiver, logger_chain=("proc", "primaryB"),
                        heartbeat=cfg.heartbeat)
    rx_proc = MultiGroupProcess()
    rx_proc.add("A", rx_a)
    rx_proc.add("B", rx_b)
    SimNode(net, rx_host, [rx_proc]).start()

    sim.run_until(0.1)
    node_a.send_app(sender_a, b"from A")
    node_b.send_app(sender_b, b"from B")
    sim.run_until(1.0)
    assert rx_a.tracker.has(1) and rx_b.tracker.has(1)
    # sources released via their respective primaries
    assert sender_a.released_up_to == 1
    assert sender_b.released_up_to == 1

    # B loses a packet at s1; the dual-role process serves it locally
    # (recovering from its upstream if it missed it too).
    rx_host.inbound_loss = BurstLoss([(sim.now, sim.now + 0.05)])
    node_b.send_app(sender_b, b"B second")
    sim.run_until(5.0)
    assert rx_b.tracker.has(2)
