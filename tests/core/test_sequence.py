"""Sequence tracker unit tests: gap detection, heartbeat semantics."""

from __future__ import annotations

import pytest

from repro.core.sequence import SequenceTracker


def test_first_observation_sets_baseline():
    t = SequenceTracker()
    report = t.observe_data(5)
    assert report.is_new
    assert report.new_gaps == ()
    assert t.highest == 5
    assert t.missing == frozenset()


def test_in_order_stream_has_no_gaps():
    t = SequenceTracker()
    for seq in range(1, 20):
        report = t.observe_data(seq)
        assert report.is_new
        assert report.new_gaps == ()
    assert t.missing == frozenset()


def test_gap_detected_on_jump():
    t = SequenceTracker()
    t.observe_data(1)
    report = t.observe_data(5)
    assert report.new_gaps == (2, 3, 4)
    assert t.missing == frozenset({2, 3, 4})


def test_retransmission_fills_gap():
    t = SequenceTracker()
    t.observe_data(1)
    t.observe_data(4)
    report = t.observe_data(2)
    assert report.is_new and report.filled_gap
    assert t.missing == frozenset({3})


def test_duplicate_detected_and_counted():
    t = SequenceTracker()
    t.observe_data(1)
    report = t.observe_data(1)
    assert not report.is_new
    assert t.duplicates == 1


def test_recovered_then_duplicated():
    t = SequenceTracker()
    t.observe_data(1)
    t.observe_data(3)
    t.observe_data(2)
    report = t.observe_data(2)
    assert not report.is_new
    assert t.duplicates == 1


def test_heartbeat_reveals_gap():
    """The canonical single-loss case: data lost, first heartbeat exposes it."""
    t = SequenceTracker()
    t.observe_data(1)
    report = t.observe_heartbeat(2)  # data 2 was dropped
    assert not report.is_new
    assert report.new_gaps == (2,)
    assert t.missing == frozenset({2})


def test_heartbeat_repeat_is_silent():
    t = SequenceTracker()
    t.observe_data(3)
    report = t.observe_heartbeat(3)
    assert report.new_gaps == ()


def test_heartbeat_zero_before_first_data():
    t = SequenceTracker()
    report = t.observe_heartbeat(0)
    assert report.new_gaps == ()
    assert not t.started


def test_heartbeat_midstream_join_marks_current_missing():
    """Joining during idle: the heartbeat's seq itself was never received."""
    t = SequenceTracker()
    report = t.observe_heartbeat(7)
    assert report.new_gaps == (7,)
    assert t.missing == frozenset({7})
    # The retransmission then fills it.
    assert t.observe_data(7).filled_gap


def test_abandon_stops_tracking():
    t = SequenceTracker()
    t.observe_data(1)
    t.observe_data(5)
    t.abandon((2, 3))
    assert t.missing == frozenset({4})


def test_abandoned_sequences_are_not_held():
    """Giving up on recovery must not read as 'received' (§2: the
    receiver can estimate how much information it has lost)."""
    t = SequenceTracker()
    t.observe_data(1)
    t.observe_data(4)
    t.abandon((2,))
    assert not t.has(2)
    assert t.abandoned == frozenset({2})


def test_late_arrival_after_abandon_is_fresh():
    t = SequenceTracker()
    t.observe_data(1)
    t.observe_data(4)
    t.abandon((2,))
    report = t.observe_data(2)
    assert report.is_new and report.filled_gap
    assert t.has(2)
    assert t.abandoned == frozenset()


def test_abandon_of_never_missing_seq_is_noop():
    t = SequenceTracker()
    t.observe_data(1)
    t.abandon((1, 99))
    assert t.has(1)
    assert t.abandoned == frozenset()


def test_has_reflects_holdings():
    t = SequenceTracker()
    t.observe_data(2)
    t.observe_data(5)
    assert t.has(2) and t.has(5)
    assert not t.has(3)
    assert not t.has(1)  # before baseline
    assert not t.has(6)  # beyond highest


def test_rejects_nonpositive_data_seq():
    t = SequenceTracker()
    with pytest.raises(ValueError):
        t.observe_data(0)
    with pytest.raises(ValueError):
        t.observe_heartbeat(-1)


def test_large_gap():
    t = SequenceTracker()
    t.observe_data(1)
    report = t.observe_data(1001)
    assert len(report.new_gaps) == 999
    assert len(t.missing) == 999
