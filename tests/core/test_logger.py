"""LogServer unit tests for all three roles."""

from __future__ import annotations

import random

import pytest

from repro.core.actions import JoinGroup, Notify, SendMulticast, SendUnicast
from repro.core.config import LbrmConfig, LoggerConfig
from repro.core.events import DesignatedAcker, PromotedToPrimary, Remulticast
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import (
    AckerResponsePacket,
    AckerSelectPacket,
    DataAckPacket,
    DataPacket,
    DiscoveryQueryPacket,
    DiscoveryReplyPacket,
    HeartbeatPacket,
    LogAckPacket,
    NackPacket,
    ProbePacket,
    ProbeReplyPacket,
    PromotePacket,
    ReplAckPacket,
    ReplStatusQueryPacket,
    ReplUpdatePacket,
    RetransPacket,
)

_NO_SEQ = 2**64 - 1


def unicasts(actions, ptype=None):
    out = [a for a in actions if isinstance(a, SendUnicast)]
    if ptype is not None:
        out = [a for a in out if isinstance(a.packet, ptype)]
    return out


def multicasts(actions, ptype=None):
    out = [a for a in actions if isinstance(a, SendMulticast)]
    if ptype is not None:
        out = [a for a in out if isinstance(a.packet, ptype)]
    return out


def data(seq, payload=b"p"):
    return DataPacket(group="g", seq=seq, payload=payload)


def make_secondary(**kwargs) -> LogServer:
    defaults = dict(role=LoggerRole.SECONDARY, parent="primary", source="source", level=1)
    defaults.update(kwargs)
    return LogServer("g", addr_token="sec", config=LbrmConfig(), **defaults)


def make_primary(replicas=()) -> LogServer:
    return LogServer(
        "g", addr_token="prim", config=LbrmConfig(),
        role=LoggerRole.PRIMARY, source="source", replicas=replicas, level=0,
    )


class TestLoggingAndServing:
    def test_data_logged(self):
        logger = make_secondary()
        logger.handle(data(1), "source", 0.0)
        assert 1 in logger.log
        assert logger.stats["logged"] == 1

    def test_nack_served_from_log(self):
        logger = make_secondary()
        logger.handle(data(1), "source", 0.0)
        actions = logger.handle(NackPacket(group="g", seqs=(1,)), "rx1", 0.1)
        replies = unicasts(actions, RetransPacket)
        assert len(replies) == 1
        assert replies[0].dest == "rx1"
        assert replies[0].packet.seq == 1
        assert replies[0].packet.payload == b"p"

    def test_nack_for_unknown_goes_upstream_and_pends(self):
        logger = make_secondary()
        actions = logger.handle(NackPacket(group="g", seqs=(5,)), "rx1", 0.1)
        upstream = unicasts(actions, NackPacket)
        assert upstream and upstream[0].dest == "primary"
        assert upstream[0].packet.seqs == (5,)
        # When the retransmission arrives, the pending requester is served.
        actions = logger.handle(RetransPacket(group="g", seq=5, payload=b"x"), "primary", 0.2)
        replies = unicasts(actions, RetransPacket)
        # self_lost => site-wide re-multicast instead of unicast
        remote = multicasts(actions, RetransPacket)
        assert replies or remote

    def test_own_gap_recovered_from_parent(self):
        """§2.2.1: secondary loggers call back to the primary for losses."""
        logger = make_secondary()
        logger.handle(data(1), "source", 0.0)
        actions = logger.handle(data(3), "source", 0.1)
        upstream = unicasts(actions, NackPacket)
        assert upstream and upstream[0].packet.seqs == (2,)
        assert logger.stats["upstream_nacks"] == 1

    def test_heartbeat_gap_triggers_upstream(self):
        logger = make_secondary()
        logger.handle(data(1), "source", 0.0)
        actions = logger.handle(HeartbeatPacket(group="g", seq=2, hb_index=1), "source", 0.3)
        assert unicasts(actions, NackPacket)

    def test_upstream_retry_until_capped(self):
        cfg = LbrmConfig(logger=LoggerConfig(upstream_retry=0.1, max_upstream_retries=2))
        logger = LogServer("g", addr_token="sec", config=cfg,
                           role=LoggerRole.SECONDARY, parent="primary")
        logger.handle(data(1), "source", 0.0)
        logger.handle(data(3), "source", 0.1)  # initial upstream NACK
        retry1 = logger.poll(0.25)
        assert unicasts(retry1, NackPacket)
        retry2 = logger.poll(0.40)
        assert unicasts(retry2, NackPacket)
        retry3 = logger.poll(0.55)
        assert not unicasts(retry3, NackPacket)  # cap reached

    def test_remulticast_after_threshold_requests(self):
        cfg = LbrmConfig(logger=LoggerConfig(remulticast_threshold=3, site_ttl=1))
        logger = LogServer("g", addr_token="sec", config=cfg, role=LoggerRole.SECONDARY)
        logger.handle(data(1), "source", 0.0)
        logger.handle(NackPacket(group="g", seqs=(1,)), "rx1", 0.10)
        logger.handle(NackPacket(group="g", seqs=(1,)), "rx2", 0.11)
        actions = logger.handle(NackPacket(group="g", seqs=(1,)), "rx3", 0.12)
        remote = multicasts(actions, RetransPacket)
        assert len(remote) == 1
        assert remote[0].ttl == 1  # scoped to the site
        assert any(isinstance(a, Notify) and isinstance(a.event, Remulticast) for a in actions)

    def test_primary_seq_is_contiguous_watermark(self):
        logger = make_secondary()
        logger.handle(data(1), "source", 0.0)
        logger.handle(data(3), "source", 0.1)
        assert logger.primary_seq == 1
        logger.handle(RetransPacket(group="g", seq=2, payload=b"x"), "primary", 0.2)
        assert logger.primary_seq == 3


class TestPrimary:
    def test_acks_source_on_data(self):
        primary = make_primary()
        actions = primary.handle(data(1), "source", 0.0)
        acks = unicasts(actions, LogAckPacket)
        assert acks and acks[0].dest == "source"
        assert acks[0].packet.primary_seq == 1
        assert acks[0].packet.replica_seq == 1  # no replicas: own seq governs

    def test_replicates_to_replicas(self):
        primary = make_primary(replicas=("r0", "r1"))
        actions = primary.handle(data(1), "source", 0.0)
        updates = unicasts(actions, ReplUpdatePacket)
        assert {u.dest for u in updates} == {"r0", "r1"}
        acks = unicasts(actions, LogAckPacket)
        assert acks[0].packet.replica_seq == 0  # nothing replicated yet

    def test_replica_ack_advances_replica_seq(self):
        primary = make_primary(replicas=("r0",))
        primary.handle(data(1), "source", 0.0)
        actions = primary.handle(ReplAckPacket(group="g", cum_seq=1), "r0", 0.1)
        acks = unicasts(actions, LogAckPacket)
        assert acks and acks[0].packet.replica_seq == 1

    def test_replication_retry_on_silence(self):
        primary = make_primary(replicas=("r0",))
        primary.handle(data(1), "source", 0.0)
        actions = primary.poll(1.0)
        retries = unicasts(actions, ReplUpdatePacket)
        assert retries and retries[0].dest == "r0"


class TestReplica:
    def make_replica(self) -> LogServer:
        return LogServer("g", addr_token="r0", config=LbrmConfig(), role=LoggerRole.REPLICA)

    def test_replica_does_not_join_group(self):
        replica = self.make_replica()
        assert replica.start(0.0) == []

    def test_repl_update_acked_cumulatively(self):
        replica = self.make_replica()
        actions = replica.handle(ReplUpdatePacket(group="g", seq=1, payload=b"a"), "prim", 0.0)
        acks = unicasts(actions, ReplAckPacket)
        assert acks[0].packet.cum_seq == 1
        actions = replica.handle(ReplUpdatePacket(group="g", seq=3, payload=b"c"), "prim", 0.1)
        assert unicasts(actions, ReplAckPacket)[0].packet.cum_seq == 1  # gap at 2
        actions = replica.handle(ReplUpdatePacket(group="g", seq=2, payload=b"b"), "prim", 0.2)
        assert unicasts(actions, ReplAckPacket)[0].packet.cum_seq == 3

    def test_empty_replica_acks_sentinel(self):
        replica = self.make_replica()
        actions = replica.handle(ReplStatusQueryPacket(group="g"), "source", 0.0)
        assert unicasts(actions, ReplAckPacket)[0].packet.cum_seq == _NO_SEQ

    def test_promotion(self):
        replica = self.make_replica()
        replica.handle(ReplUpdatePacket(group="g", seq=1, payload=b"a"), "prim", 0.0)
        actions = replica.handle(PromotePacket(group="g", from_seq=2), "source", 1.0)
        assert replica.role is LoggerRole.PRIMARY
        assert any(isinstance(a, JoinGroup) for a in actions)
        promoted = [a for a in actions if isinstance(a, Notify) and isinstance(a.event, PromotedToPrimary)]
        assert promoted and promoted[0].event.from_seq == 2
        # As new primary it now acks the source for handover updates.
        actions = replica.handle(ReplUpdatePacket(group="g", seq=2, payload=b"b"), "source", 1.1)
        assert unicasts(actions, ReplAckPacket)
        assert unicasts(actions, LogAckPacket)

    def test_promote_ignored_by_secondary(self):
        logger = make_secondary()
        actions = logger.handle(PromotePacket(group="g", from_seq=1), "source", 0.0)
        assert actions == []
        assert logger.role is LoggerRole.SECONDARY


class TestStatAckParticipation:
    def test_volunteers_with_probability_one(self):
        logger = make_secondary(rng=random.Random(1))
        actions = logger.handle(AckerSelectPacket(group="g", epoch=3, p_ack=1.0, k=5), "source", 0.0)
        responses = unicasts(actions, AckerResponsePacket)
        assert responses and responses[0].packet.epoch == 3
        assert any(isinstance(a, Notify) and isinstance(a.event, DesignatedAcker) for a in actions)

    def test_never_volunteers_at_probability_zero(self):
        logger = make_secondary(rng=random.Random(1))
        actions = logger.handle(AckerSelectPacket(group="g", epoch=3, p_ack=0.0, k=5), "source", 0.0)
        assert actions == []

    def test_designated_acker_acks_epoch_data(self):
        logger = make_secondary(rng=random.Random(1))
        logger.handle(AckerSelectPacket(group="g", epoch=3, p_ack=1.0, k=5), "source", 0.0)
        actions = logger.handle(DataPacket(group="g", seq=1, payload=b"p", epoch=3), "source", 0.1)
        acks = unicasts(actions, DataAckPacket)
        assert acks and acks[0].dest == "source"
        assert acks[0].packet.seq == 1 and acks[0].packet.epoch == 3

    def test_non_designated_does_not_ack(self):
        logger = make_secondary(rng=random.Random(1))
        actions = logger.handle(DataPacket(group="g", seq=1, payload=b"p", epoch=3), "source", 0.1)
        assert not unicasts(actions, DataAckPacket)

    def test_acks_remulticast_repairs_too(self):
        """Figure 8: after the re-multicast the source gets all its ACKs."""
        logger = make_secondary(rng=random.Random(1))
        logger.handle(AckerSelectPacket(group="g", epoch=3, p_ack=1.0, k=5), "source", 0.0)
        actions = logger.handle(RetransPacket(group="g", seq=2, payload=b"p", epoch=3), "source", 0.2)
        assert unicasts(actions, DataAckPacket)

    def test_probe_reply_probabilistic(self):
        logger = make_secondary(rng=random.Random(1))
        actions = logger.handle(ProbePacket(group="g", probe_id=1, p_ack=1.0), "source", 0.0)
        assert unicasts(actions, ProbeReplyPacket)
        actions = logger.handle(ProbePacket(group="g", probe_id=2, p_ack=0.0), "source", 0.1)
        assert not actions

    def test_primary_does_not_volunteer(self):
        primary = make_primary()
        actions = primary.handle(AckerSelectPacket(group="g", epoch=1, p_ack=1.0, k=5), "source", 0.0)
        assert not unicasts(actions, AckerResponsePacket)


class TestDiscovery:
    def test_answers_discovery_query(self):
        logger = make_secondary()
        actions = logger.handle(DiscoveryQueryPacket(group="g", ttl=1), "rx9", 0.0)
        replies = unicasts(actions, DiscoveryReplyPacket)
        assert replies and replies[0].dest == "rx9"
        assert replies[0].packet.logger_addr == "sec"
        assert replies[0].packet.level == 1

    def test_replica_stays_hidden(self):
        replica = LogServer("g", addr_token="r", config=LbrmConfig(), role=LoggerRole.REPLICA)
        actions = replica.handle(DiscoveryQueryPacket(group="g", ttl=1), "rx9", 0.0)
        assert actions == []
