"""Retransmission-channel extension tests (§7)."""

from __future__ import annotations

import pytest

from repro.core.actions import SendMulticast
from repro.core.errors import ConfigError
from repro.core.packets import RetransPacket
from repro.core.retranschannel import (
    RetransChannelConfig,
    RetransChannelSender,
    retrans_group,
)


def channel_sends(actions):
    return [a for a in actions if isinstance(a, SendMulticast)]


def test_retrans_group_naming():
    assert retrans_group("dis/terrain/1") == "dis/terrain/1/retrans"


def test_lifetime_is_backoff_sum():
    cfg = RetransChannelConfig(copies=4, initial_delay=0.25, backoff=2.0)
    assert cfg.lifetime == pytest.approx(0.25 + 0.5 + 1.0 + 2.0)


def test_config_validation():
    with pytest.raises(ConfigError):
        RetransChannelConfig(copies=0)
    with pytest.raises(ConfigError):
        RetransChannelConfig(initial_delay=0.0)
    with pytest.raises(ConfigError):
        RetransChannelConfig(backoff=0.5)


def test_copies_at_backed_off_offsets():
    sender = RetransChannelSender("g", RetransChannelConfig(copies=3, initial_delay=0.25))
    sender.on_data_sent(1, b"payload", 0, now=0.0)
    offsets = []
    while sender.next_wakeup() is not None:
        due = sender.next_wakeup()
        actions = sender.poll(due)
        if channel_sends(actions):
            offsets.append(due)
    assert offsets == pytest.approx([0.25, 0.75, 1.75])
    assert sender.stats["channel_copies_sent"] == 3


def test_copies_carry_retrans_packets_on_channel_group():
    sender = RetransChannelSender("g")
    sender.on_data_sent(7, b"data7", epoch=3, now=0.0)
    actions = sender.poll(sender.next_wakeup())
    send = channel_sends(actions)[0]
    assert send.group == "g/retrans"
    assert isinstance(send.packet, RetransPacket)
    assert send.packet.seq == 7
    assert send.packet.payload == b"data7"
    assert send.packet.epoch == 3
    assert send.packet.group == "g"  # packet names the *data* group


def test_interleaved_packets_tracked_independently():
    sender = RetransChannelSender("g", RetransChannelConfig(copies=2, initial_delay=0.25))
    sender.on_data_sent(1, b"a", 0, now=0.0)
    sender.on_data_sent(2, b"b", 0, now=0.1)
    sent = []
    while sender.next_wakeup() is not None:
        actions = sender.poll(sender.next_wakeup())
        sent += [a.packet.seq for a in channel_sends(actions)]
    assert sorted(sent) == [1, 1, 2, 2]


class TestReceiverChannelMode:
    def make(self):
        from repro.core.config import ReceiverConfig
        from repro.core.receiver import LbrmReceiver

        cfg = ReceiverConfig(retrans_channel_fallback=2.0)
        return LbrmReceiver("g", cfg, logger_chain=("logger",))

    def test_gap_joins_channel_instead_of_nacking(self):
        from repro.core.actions import JoinGroup, SendUnicast
        from repro.core.packets import DataPacket

        rx = self.make()
        rx.start(0.0)
        rx.handle(DataPacket(group="g", seq=1, payload=b"a"), "src", 0.1)
        actions = rx.handle(DataPacket(group="g", seq=3, payload=b"c"), "src", 0.2)
        joins = [a for a in actions if isinstance(a, JoinGroup)]
        nacks = [a for a in actions if isinstance(a, SendUnicast)]
        assert joins and joins[0].group == "g/retrans"
        assert not nacks

    def test_channel_repair_completes_and_leaves(self):
        from repro.core.actions import LeaveGroup
        from repro.core.packets import DataPacket, RetransPacket

        rx = self.make()
        rx.start(0.0)
        rx.handle(DataPacket(group="g", seq=1, payload=b"a"), "src", 0.1)
        rx.handle(DataPacket(group="g", seq=3, payload=b"c"), "src", 0.2)
        actions = rx.handle(RetransPacket(group="g", seq=2, payload=b"b"), "src", 0.5)
        leaves = [a for a in actions if isinstance(a, LeaveGroup)]
        assert leaves and leaves[0].group == "g/retrans"
        assert rx.stats["nacks_sent"] == 0
        assert not rx.missing

    def test_fallback_nack_after_channel_ages_out(self):
        from repro.core.actions import SendUnicast
        from repro.core.packets import DataPacket, NackPacket

        rx = self.make()
        rx.start(0.0)
        rx.handle(DataPacket(group="g", seq=1, payload=b"a"), "src", 0.1)
        rx.handle(DataPacket(group="g", seq=3, payload=b"c"), "src", 0.2)
        # nothing arrives on the channel; fallback timer at 0.2 + 2.0
        actions = rx.poll(2.3)
        nacks = [a for a in actions
                 if isinstance(a, SendUnicast) and isinstance(a.packet, NackPacket)]
        assert nacks and nacks[0].dest == "logger"


def test_sender_integration_over_simnet():
    """End to end: channel repairs the loss; no NACK is ever sent."""
    from repro.core.config import LbrmConfig, ReceiverConfig
    from repro.core.logger import LoggerRole, LogServer
    from repro.core.receiver import LbrmReceiver
    from repro.core.sender import LbrmSender
    from repro.simnet import BurstLoss, Network, RngStreams, SimNode, Simulator

    sim = Simulator()
    net = Network(sim, streams=RngStreams(4))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    cfg = LbrmConfig()
    channel_cfg = RetransChannelConfig()
    prim_host = net.add_host("primary", s0)
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="src", level=0)
    SimNode(net, prim_host, [primary]).start()
    src_host = net.add_host("src", s0)
    sender = LbrmSender("g", cfg, primary="primary",
                        retrans_channel=channel_cfg, addr_token="src")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    rx_host = net.add_host("rx", s1)
    receiver = LbrmReceiver(
        "g",
        ReceiverConfig(retrans_channel_fallback=channel_cfg.lifetime + 0.5),
        logger_chain=("primary",),
        heartbeat=cfg.heartbeat,
    )
    SimNode(net, rx_host, [receiver]).start()

    sim.run_until(0.1)
    src_node.send_app(sender, b"one")
    sim.run_until(1.0)
    rx_host.inbound_loss = BurstLoss([(sim.now, sim.now + 0.05)])
    src_node.send_app(sender, b"two")
    sim.run_until(10.0)
    assert receiver.tracker.has(2)
    assert receiver.stats["nacks_sent"] == 0
    assert receiver.stats.get("channel_joins") == 1
    assert not receiver._on_channel  # left once whole
