"""Quantitative check of §2.3.2's statistical detection model.

"For example, if there are 20 Designated Ackers in a configuration with
500 sites, it is possible, although unlikely, to receive all the
acknowledgements yet have 480 sites that missed the data."

With k ackers drawn uniformly from N sites and a fraction f of sites
losing a packet, the source misses the event iff every acker sits in
the clean fraction: P(miss) = C((1-f)N, k) / C(N, k).  We drive the
engine directly over many seeded trials and compare the observed
detection rate against that hypergeometric prediction.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.config import StatAckConfig
from repro.core.packets import AckerResponsePacket, AckerSelectPacket, DataAckPacket
from repro.core.retransmit import RetransmitDecision
from repro.core.statack import StatAckSource

N_SITES = 200
TRIALS = 400


def p_miss(n: int, k: int, f: float) -> float:
    clean = int(round((1.0 - f) * n))
    if k > clean:
        return 0.0
    return math.comb(clean, k) / math.comb(n, k)


def run_trials(k: int, loss_fraction: float, seed: int = 1) -> float:
    """Observed detection rate over many independent loss patterns."""
    rng = random.Random(seed)
    detections = 0
    sites = [f"site{i}" for i in range(N_SITES)]
    for trial in range(TRIALS):
        engine = StatAckSource("g", StatAckConfig(k_ackers=k, epoch_length=10_000),
                               rng=random.Random(trial))
        engine.seed_group_size(float(N_SITES))
        actions = engine.start(0.0)
        select = next(a.packet for a in actions
                      if hasattr(a, "packet") and isinstance(a.packet, AckerSelectPacket))
        # Each site volunteers with p_ack (the protocol's selection);
        # resample until at least one acker exists so every trial counts.
        ackers: list[str] = []
        while not ackers:
            ackers = [s for s in sites if rng.random() < select.p_ack]
        for acker in ackers:
            engine.handle(AckerResponsePacket(group="g", epoch=select.epoch), acker, 0.01)
        engine.poll(engine.next_wakeup())

        lost = set(rng.sample(sites, int(N_SITES * loss_fraction)))
        engine.on_data_sent(1, 1.0)
        for acker in ackers:
            if acker not in lost:
                engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1),
                              acker, 1.02)
        _, orders = engine.poll(1.0 + 10.0)
        if orders and orders[0].decision is not RetransmitDecision.NONE:
            detections += 1
    return detections / TRIALS


@pytest.mark.parametrize(
    "k,loss_fraction",
    [(5, 0.3), (10, 0.2), (20, 0.1), (3, 0.5)],
)
def test_detection_rate_matches_hypergeometric(k, loss_fraction):
    observed = run_trials(k, loss_fraction)
    # The engine's acker count is Binomial(N, k/N) rather than exactly k;
    # use the binomial-mixture approximation (1-f)^K averaged over K,
    # which for p = k/N collapses to (1 - f·k/N)^N ≈ exp(-f·k).
    predicted = 1.0 - math.exp(-loss_fraction * k)
    assert observed == pytest.approx(predicted, abs=0.08), (
        f"k={k}, f={loss_fraction}: observed {observed:.3f}, predicted {predicted:.3f}"
    )


def test_paper_500_site_anecdote():
    """20 ackers, 480 of 500 sites lost: missing it is 'possible,
    although unlikely' — the probability is astronomically small."""
    assert p_miss(500, 20, 480 / 500) < 1e-20
    # and with a mild 10% loss it is still caught 7 times out of 8:
    assert 1 - p_miss(500, 20, 0.1) > 0.85
