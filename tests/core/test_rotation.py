"""Rotating-logger tests (§2.2.1's Chang-Maxemchuk-style alternative)."""

from __future__ import annotations

import pytest

from repro.core.actions import SendUnicast
from repro.core.config import LbrmConfig, ReceiverConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import DataPacket, NackPacket, RetransPacket
from repro.core.rotation import RotatingLogServer, RotationSchedule


class TestSchedule:
    def test_round_robin_order_is_sorted_and_cyclic(self):
        schedule = RotationSchedule(("b", "a", "c"), period=10.0)
        assert schedule.members == ("a", "b", "c")
        assert schedule.on_duty(0.0) == "a"
        assert schedule.on_duty(10.0) == "b"
        assert schedule.on_duty(20.0) == "c"
        assert schedule.on_duty(30.0) == "a"

    def test_identical_on_every_host(self):
        """Determinism = no coordination traffic."""
        s1 = RotationSchedule(("x", "y"), period=5.0)
        s2 = RotationSchedule(("y", "x"), period=5.0)
        for t in (0.0, 4.9, 5.0, 12.3, 100.0):
            assert s1.on_duty(t) == s2.on_duty(t)

    def test_next_handoff(self):
        schedule = RotationSchedule(("a", "b"), period=10.0)
        assert schedule.next_handoff(0.0) == 10.0
        assert schedule.next_handoff(9.99) == 10.0
        assert schedule.next_handoff(10.0) == 20.0

    def test_duty_spans_cover_interval(self):
        schedule = RotationSchedule(("a", "b"), period=10.0)
        spans = schedule.duty_spans(5.0, 25.0)
        assert spans == [("a", 5.0, 10.0), ("b", 10.0, 20.0), ("a", 20.0, 25.0)]

    def test_epoch_offset(self):
        schedule = RotationSchedule(("a", "b"), period=10.0, epoch=3.0)
        assert schedule.on_duty(3.0) == "a"
        assert schedule.on_duty(13.0) == "b"

    def test_validation(self):
        with pytest.raises(ValueError):
            RotationSchedule((), period=10.0)
        with pytest.raises(ValueError):
            RotationSchedule(("a",), period=0.0)

    def test_single_member_always_on_duty(self):
        schedule = RotationSchedule(("only",), period=5.0)
        for t in (0.0, 4.9, 5.0, 123.4):
            assert schedule.on_duty(t) == "only"
        assert schedule.next_handoff(0.0) == 5.0

    def test_duplicate_members_deduped(self):
        schedule = RotationSchedule(("a", "a", "b"), period=10.0)
        assert schedule.members == ("a", "b")
        assert schedule.on_duty(10.0) == "b"

    def test_handoff_boundary_is_half_open(self):
        schedule = RotationSchedule(("a", "b"), period=10.0)
        assert schedule.on_duty(9.999999) == "a"
        assert schedule.on_duty(10.0) == "b"

    def test_duty_spans_empty_interval(self):
        schedule = RotationSchedule(("a", "b"), period=10.0)
        assert schedule.duty_spans(5.0, 5.0) == []

    def test_before_epoch_still_deterministic(self):
        """Clock skew can put a host slightly before the shared epoch;
        the slot arithmetic must keep every host agreeing."""
        s1 = RotationSchedule(("a", "b", "c"), period=10.0, epoch=100.0)
        s2 = RotationSchedule(("c", "b", "a"), period=10.0, epoch=100.0)
        for t in (99.9, 95.0, 0.0):
            assert s1.on_duty(t) == s2.on_duty(t)


def make_rotating(host: str, members=("h0", "h1")) -> RotatingLogServer:
    inner = LogServer("g", addr_token=host, config=LbrmConfig(),
                      role=LoggerRole.SECONDARY, parent="primary", source="source")
    return RotatingLogServer(inner, host, RotationSchedule(members, period=10.0))


class TestRotatingLogServer:
    def test_logs_regardless_of_duty(self):
        server = make_rotating("h1")  # h0 on duty at t=0
        server.handle(DataPacket(group="g", seq=1, payload=b"x"), "source", 0.0)
        assert 1 in server.inner.log

    def test_serves_nack_only_on_duty(self):
        server = make_rotating("h0")
        server.handle(DataPacket(group="g", seq=1, payload=b"x"), "source", 0.0)
        # on duty (t in [0, 10)): serves
        actions = server.handle(NackPacket(group="g", seqs=(1,)), "rx", 1.0)
        assert [a for a in actions if isinstance(a, SendUnicast) and isinstance(a.packet, RetransPacket)]
        # off duty (t in [10, 20)): silent
        actions = server.handle(NackPacket(group="g", seqs=(1,)), "rx", 11.0)
        assert actions == []
        assert server.stats["deferred_off_duty"] == 1

    def test_member_validation(self):
        with pytest.raises(ValueError):
            make_rotating("stranger")

    def test_duty_resumes_after_the_ring_comes_back_around(self):
        server = make_rotating("h0")
        server.handle(DataPacket(group="g", seq=1, payload=b"x"), "source", 0.0)
        nack = NackPacket(group="g", seqs=(1,))
        assert server.handle(nack, "rx", 1.0) != []  # h0's turn
        assert server.handle(nack, "rx", 11.0) == []  # h1's turn
        assert server.handle(nack, "rx", 21.0) != []  # h0 again
        assert server.stats == {"served_on_duty": 2, "deferred_off_duty": 1}


def test_rotation_over_simnet_load_is_shared():
    """Two hosts take turns serving a chatty receiver; both end up with
    complete logs and each served roughly its duty share."""
    from repro.core.receiver import LbrmReceiver
    from repro.core.sender import LbrmSender
    from repro.simnet import BurstLoss, Network, RngStreams, SimNode, Simulator

    sim = Simulator()
    net = Network(sim, streams=RngStreams(12))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    cfg = LbrmConfig()

    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="source", level=0)
    SimNode(net, net.add_host("primary", s0), [primary]).start()
    sender = LbrmSender("g", cfg, primary="primary", addr_token="source")
    src_node = SimNode(net, net.add_host("source", s0), [sender])
    src_node.start()

    members = ("h0", "h1")
    schedule = RotationSchedule(members, period=4.0)
    rotating = {}
    for host in members:
        inner = LogServer("g", addr_token=host, config=cfg,
                          role=LoggerRole.SECONDARY, parent="primary", source="source",
                          rng=net.streams.stream(f"rot:{host}"))
        server = RotatingLogServer(inner, host, schedule)
        rotating[host] = server
        SimNode(net, net.add_host(host, s1), [server]).start()

    # a receiver that loses every 3rd packet and NACKs whoever is on duty
    rx_host = net.add_host("rx", s1)
    receiver = LbrmReceiver("g", ReceiverConfig(), logger_chain=(),
                            source="source", heartbeat=cfg.heartbeat)
    rx_node = SimNode(net, rx_host, [receiver])
    rx_node.start()

    sim.run_until(0.1)
    for i in range(24):
        # point the receiver's chain at the on-duty host before each send
        receiver.set_logger_chain((schedule.on_duty(sim.now), "primary"))
        if i % 3 == 2:
            rx_host.inbound_loss = BurstLoss([(sim.now, sim.now + 0.05)])
        else:
            rx_host.inbound_loss = None
        src_node.send_app(sender, f"p{i}".encode())
        sim.run_until(sim.now + 1.0)
    sim.run_until(sim.now + 5.0)

    assert receiver.missing == frozenset()
    assert receiver.tracker.highest == 24
    # both members logged everything and both did some serving
    for host, server in rotating.items():
        assert server.inner.primary_seq == 24, host
    served = {h: s.stats["served_on_duty"] for h, s in rotating.items()}
    assert all(count > 0 for count in served.values()), served


def test_failover_across_rotation_boundary_keeps_logs_complete():
    """Crash the primary log in the window between a rotation duty
    hand-off and the first post-rotation append: the replica must take
    over, the rotating members' logs must stay complete (I3), and the
    stream must keep flowing through the newly on-duty member."""
    from repro.chaos.invariants import InvariantLedger
    from repro.core.config import ReplicationConfig
    from repro.core.sender import LbrmSender
    from repro.simnet import Network, RngStreams, SimNode, Simulator

    sim = Simulator()
    net = Network(sim, streams=RngStreams(7))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    cfg = LbrmConfig(replication=ReplicationConfig(
        update_retry=0.1, primary_timeout=0.6, failover_wait=0.2,
    ))

    replica = LogServer("g", addr_token="replica0", config=cfg,
                        role=LoggerRole.REPLICA, source="source")
    SimNode(net, net.add_host("replica0", s0), [replica]).start()
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="source", level=0,
                        replicas=("replica0",))
    primary_node = SimNode(net, net.add_host("primary", s0), [primary])
    primary_node.start()
    sender = LbrmSender("g", cfg, primary="primary", replicas=("replica0",),
                        addr_token="source")
    src_node = SimNode(net, net.add_host("source", s0), [sender])
    src_node.start()

    members = ("h0", "h1")
    schedule = RotationSchedule(members, period=1.0)  # hand-off at t=1.0
    rotating = {}
    for host in members:
        inner = LogServer("g", addr_token=host, config=cfg,
                          role=LoggerRole.SECONDARY, parent="primary", source="source",
                          rng=net.streams.stream(f"rot:{host}"))
        server = RotatingLogServer(inner, host, schedule)
        rotating[host] = server
        SimNode(net, net.add_host(host, s1), [server]).start()

    # Pre-boundary stream while h0 is on duty.
    sim.run_until(0.1)
    src_node.send_app(sender, b"a")
    sim.run_until(0.55)
    src_node.send_app(sender, b"b")
    sim.run_until(0.9)
    assert sender.released_up_to == 2  # replicated + committed before the crash

    # The duty ring hands h0 -> h1 at t=1.0; the primary dies right at
    # that boundary, before any post-rotation append reaches it.
    assert schedule.next_handoff(sim.now) == 1.0
    sim.schedule(1.0, primary_node.crash)
    sim.run_until(1.15)
    assert schedule.on_duty(sim.now) == "h1"
    src_node.send_app(sender, b"c")  # first post-rotation append: primary is dead
    sim.run_until(4.0)  # detection (0.6s) + vote + promote + handover

    # Failover landed: the replica owns the dangling tail.
    assert sender.primary == "replica0"
    assert replica.role is LoggerRole.PRIMARY
    assert replica.primary_seq == 3
    assert sender.released_up_to == 3

    # I3 across the boundary: every rotating member's log is complete,
    # and the logger the sender now trusts covers everything released.
    ledger = InvariantLedger(cfg.heartbeat)
    for host, server in rotating.items():
        ledger.check_log_completeness(sim.now, host, server.inner.primary_seq, 3)
    ledger.check_current_primary(
        sim.now, "replica0", replica.primary_seq, sender.released_up_to
    )
    assert ledger.violations == []

    # Service follows the duty ring, not the dead primary: a NACK that
    # spans the boundary is served by whoever is on duty and deferred
    # by the other member.
    on_duty = schedule.on_duty(sim.now)
    off_duty = "h0" if on_duty == "h1" else "h1"
    nack = NackPacket(group="g", seqs=(2, 3))
    served = rotating[on_duty].handle(nack, "rx", sim.now)
    retrans = [a.packet for a in served
               if isinstance(a, SendUnicast) and isinstance(a.packet, RetransPacket)]
    assert sorted(p.seq for p in retrans) == [2, 3]
    assert rotating[off_duty].handle(nack, "rx", sim.now) == []
    assert rotating[off_duty].stats["deferred_off_duty"] == 1
