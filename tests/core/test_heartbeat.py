"""Variable-heartbeat schedule tests against the paper's §2.1 description."""

from __future__ import annotations

import pytest

from repro.core.config import HeartbeatConfig
from repro.core.heartbeat import (
    FixedHeartbeatSchedule,
    VariableHeartbeatSchedule,
    heartbeat_times,
    make_schedule,
)


def test_first_heartbeat_h_min_after_data():
    s = VariableHeartbeatSchedule(HeartbeatConfig(h_min=0.25))
    assert s.on_data(10.0) == pytest.approx(10.25)


def test_backoff_doubles_each_heartbeat():
    s = VariableHeartbeatSchedule(HeartbeatConfig(h_min=0.25, backoff=2.0, h_max=32.0))
    s.on_data(0.0)
    assert s.on_heartbeat(0.25) == pytest.approx(0.75)  # h = 0.5
    assert s.on_heartbeat(0.75) == pytest.approx(1.75)  # h = 1.0
    assert s.on_heartbeat(1.75) == pytest.approx(3.75)  # h = 2.0


def test_interval_caps_at_h_max():
    s = VariableHeartbeatSchedule(HeartbeatConfig(h_min=1.0, backoff=4.0, h_max=8.0))
    s.on_data(0.0)
    s.on_heartbeat(1.0)  # h -> 4
    s.on_heartbeat(5.0)  # h -> 8 (16 capped)
    assert s.current_interval == pytest.approx(8.0)
    s.on_heartbeat(13.0)
    assert s.current_interval == pytest.approx(8.0)  # stays capped


def test_data_resets_interval():
    s = VariableHeartbeatSchedule(HeartbeatConfig(h_min=0.25, backoff=2.0))
    s.on_data(0.0)
    for t in (0.25, 0.75, 1.75):
        s.on_heartbeat(t)
    assert s.current_interval > 0.25
    s.on_data(2.0)
    assert s.current_interval == pytest.approx(0.25)
    assert s.next_due == pytest.approx(2.25)


def test_figure3_timeline():
    """The Figure 3 pattern: beats cluster after data, spread out later."""
    cfg = HeartbeatConfig(h_min=0.25, backoff=2.0, h_max=32.0)
    beats = heartbeat_times(cfg, [0.0, 120.0])
    assert beats[:7] == pytest.approx([0.25, 0.75, 1.75, 3.75, 7.75, 15.75, 31.75])
    assert beats[7:] == pytest.approx([63.75, 95.75])
    assert len(beats) == 9  # the 53.3x denominator


def test_heartbeat_preempted_by_data():
    """dt < h_min: every heartbeat is preempted, none transmitted."""
    cfg = HeartbeatConfig(h_min=0.25)
    beats = heartbeat_times(cfg, [0.0, 0.2, 0.4, 0.6])
    assert beats == []


def test_heartbeat_times_respects_horizon():
    cfg = HeartbeatConfig()
    beats = heartbeat_times(cfg, [0.0], until=2.0)
    assert beats == pytest.approx([0.25, 0.75, 1.75])


def test_heartbeat_times_requires_sorted_input():
    with pytest.raises(ValueError):
        heartbeat_times(HeartbeatConfig(), [1.0, 0.5])


def test_heartbeat_times_empty_input():
    assert heartbeat_times(HeartbeatConfig(), []) == []


def test_fixed_schedule_constant_period():
    s = FixedHeartbeatSchedule(0.25)
    assert s.on_data(0.0) == pytest.approx(0.25)
    assert s.on_heartbeat(0.25) == pytest.approx(0.5)
    assert s.on_heartbeat(0.5) == pytest.approx(0.75)


def test_fixed_schedule_rejects_bad_interval():
    with pytest.raises(ValueError):
        FixedHeartbeatSchedule(0.0)


def test_make_schedule_degenerates_fixed():
    fixed = make_schedule(HeartbeatConfig(h_min=0.5, h_max=0.5, backoff=1.0))
    assert isinstance(fixed, FixedHeartbeatSchedule)
    assert fixed.interval == 0.5
    variable = make_schedule(HeartbeatConfig())
    assert isinstance(variable, VariableHeartbeatSchedule)


def test_variable_always_fewer_or_equal_packets_than_fixed():
    """§2.1.2: variable count <= fixed count for any dt (same h_min)."""
    cfg = HeartbeatConfig(h_min=0.25, backoff=2.0, h_max=32.0)
    for dt in (0.1, 0.3, 1.0, 5.0, 60.0, 120.0, 1000.0):
        variable = len(heartbeat_times(cfg, [0.0, dt]))
        fixed = len(heartbeat_times(HeartbeatConfig(h_min=0.25, h_max=0.25, backoff=1.0), [0.0, dt]))
        assert variable <= fixed
