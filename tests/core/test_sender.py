"""LbrmSender unit tests: sequencing, heartbeats, buffer release, failover."""

from __future__ import annotations

import pytest

from repro.core.actions import Notify, SendMulticast, SendUnicast
from repro.core.config import LbrmConfig, ReplicationConfig
from repro.core.events import PrimaryFailover, SourceBufferReleased
from repro.core.packets import (
    DataPacket,
    HeartbeatPacket,
    LogAckPacket,
    NackPacket,
    PrimaryInfoPacket,
    PrimaryQueryPacket,
    PromotePacket,
    ReplAckPacket,
    ReplStatusQueryPacket,
    ReplUpdatePacket,
    RetransPacket,
)
from repro.core.sender import FailoverPhase, LbrmSender


def multicasts(actions):
    return [a for a in actions if isinstance(a, SendMulticast)]


def unicasts(actions):
    return [a for a in actions if isinstance(a, SendUnicast)]


def make_sender(**kwargs) -> LbrmSender:
    return LbrmSender("g", LbrmConfig(), primary="primary", **kwargs)


def test_send_assigns_increasing_sequence():
    s = make_sender()
    a1 = s.send(b"one", 0.0)
    a2 = s.send(b"two", 1.0)
    assert multicasts(a1)[0].packet.seq == 1
    assert multicasts(a2)[0].packet.seq == 2
    assert s.seq == 2


def test_data_retained_until_log_ack():
    s = make_sender()
    s.send(b"one", 0.0)
    assert s.unacked == 1
    actions = s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=0), "primary", 0.01)
    # No replicas configured: the primary's own ACK releases.
    assert s.unacked == 0
    assert s.released_up_to == 1
    released = [a for a in actions if isinstance(a, Notify) and isinstance(a.event, SourceBufferReleased)]
    assert released and released[0].event.seq == 1


def test_with_replicas_release_waits_for_replica_seq():
    s = make_sender(replicas=("r0",))
    s.send(b"one", 0.0)
    s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=0), "primary", 0.01)
    assert s.unacked == 1  # replica hasn't confirmed
    s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=1), "primary", 0.02)
    assert s.unacked == 0


def test_log_ack_from_stranger_ignored():
    s = make_sender()
    s.send(b"one", 0.0)
    s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=1), "impostor", 0.01)
    assert s.unacked == 1


def test_heartbeat_fires_after_h_min():
    s = make_sender()
    s.send(b"one", 0.0)
    assert s.next_wakeup() == pytest.approx(0.25)
    actions = s.poll(0.25)
    beats = [a for a in multicasts(actions) if isinstance(a.packet, HeartbeatPacket)]
    assert len(beats) == 1
    assert beats[0].packet.seq == 1
    assert beats[0].packet.hb_index == 1


def test_heartbeat_index_increments_and_resets():
    s = make_sender()
    s.send(b"one", 0.0)
    s.poll(0.25)
    actions = s.poll(0.75)
    hb = multicasts(actions)[0].packet
    assert hb.hb_index == 2
    s.send(b"two", 1.0)
    actions = s.poll(1.25)
    hb = multicasts(actions)[0].packet
    assert hb.hb_index == 1  # reset by data


def test_primary_query_answered():
    s = make_sender()
    actions = s.handle(PrimaryQueryPacket(group="g"), "rx1", 0.0)
    replies = unicasts(actions)
    assert len(replies) == 1
    assert isinstance(replies[0].packet, PrimaryInfoPacket)
    assert replies[0].packet.primary_addr == "primary"
    assert replies[0].dest == "rx1"


class TestFailover:
    def make(self):
        cfg = LbrmConfig(replication=ReplicationConfig(primary_timeout=1.0, failover_wait=0.2))
        s = LbrmSender("g", cfg, primary="primary", replicas=("r0", "r1"))
        s.start(0.0)
        return s

    def test_healthy_when_acks_flow(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=1), "primary", 0.1)
        s.poll(1.0)
        assert s.failover_phase is FailoverPhase.HEALTHY

    def test_timeout_queries_replicas(self):
        s = self.make()
        s.send(b"x", 0.0)
        actions = s.poll(2.5)  # primary never acked, check fires past 1.0s age
        queries = [a for a in unicasts(actions) if isinstance(a.packet, ReplStatusQueryPacket)]
        assert {q.dest for q in queries} == {"r0", "r1"}
        assert s.failover_phase is FailoverPhase.QUERYING

    def test_most_up_to_date_replica_promoted(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.send(b"y", 0.1)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=1), "r1", 2.6)
        s.handle(ReplAckPacket(group="g", cum_seq=2**64 - 1), "r0", 2.6)  # r0 has nothing
        actions = s.poll(2.8)  # failover_wait elapsed
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert len(promotes) == 1
        assert promotes[0].dest == "r1"
        assert promotes[0].packet.from_seq == 2
        assert s.primary == "r1"
        events = [a.event for a in actions if isinstance(a, Notify) and isinstance(a.event, PrimaryFailover)]
        assert events and events[0].new_primary == "r1"
        # Handover pushes the buffered tail (seq 2).
        updates = [a for a in unicasts(actions) if isinstance(a.packet, ReplUpdatePacket)]
        assert [u.packet.seq for u in updates] == [2]

    def test_handover_completion_releases(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=2**64 - 1), "r0", 2.6)
        s.poll(2.8)
        assert s.failover_phase is FailoverPhase.HANDOVER
        s.handle(ReplAckPacket(group="g", cum_seq=1), s.primary, 3.0)
        assert s.failover_phase is FailoverPhase.HEALTHY
        assert s.stats["failovers"] == 1

    def test_no_votes_aborts_failover(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        actions = s.poll(2.8)  # vote window closes, nobody answered
        assert s.failover_phase is FailoverPhase.HEALTHY
        assert s.primary == "primary"  # unchanged; will retry later
        assert not unicasts(actions) or all(
            not isinstance(a.packet, PromotePacket) for a in unicasts(actions)
        )

    def test_no_replicas_never_fails_over(self):
        cfg = LbrmConfig(replication=ReplicationConfig(primary_timeout=1.0))
        s = LbrmSender("g", cfg, primary="primary")
        s.start(0.0)
        s.send(b"x", 0.0)
        s.poll(5.0)
        assert s.failover_phase is FailoverPhase.HEALTHY

    def test_vote_order_does_not_matter(self):
        """A stale replica answering first must not win the vote."""
        s = self.make()
        s.send(b"x", 0.0)
        s.send(b"y", 0.1)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=2**64 - 1), "r0", 2.55)  # stale, first
        s.handle(ReplAckPacket(group="g", cum_seq=2), "r1", 2.6)
        actions = s.poll(2.8)
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert promotes[0].dest == "r1"
        assert promotes[0].packet.from_seq == 3
        # r1 already holds everything: no tail to push, handover is instant.
        assert s.failover_phase is FailoverPhase.HEALTHY

    def test_equal_prefixes_promote_lowest_token(self):
        """Regression: the old `max()` over the vote dict promoted whoever
        answered *first* on an exact tie.  Equal committed prefixes must
        deterministically elect the lowest node id."""
        s = self.make()
        s.send(b"x", 0.0)
        s.send(b"y", 0.1)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=2), "r1", 2.55)  # r1 answers first
        s.handle(ReplAckPacket(group="g", cum_seq=2), "r0", 2.6)
        actions = s.poll(2.8)
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert promotes[0].dest == "r0"
        assert s.primary == "r0"

    def test_higher_commit_breaks_equal_cum(self):
        """Between equal received prefixes, the higher *committed* prefix
        wins — promotion prefers commitment over mere receipt."""
        s = self.make()
        s.send(b"x", 0.0)
        s.send(b"y", 0.1)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=2, commit_seq=1), "r0", 2.55)
        s.handle(ReplAckPacket(group="g", cum_seq=2, commit_seq=2), "r1", 2.6)
        actions = s.poll(2.8)
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert promotes[0].dest == "r1"

    def test_promotion_advances_epoch_past_every_vote(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=1, log_epoch=3), "r0", 2.6)
        s.handle(ReplAckPacket(group="g", cum_seq=1, log_epoch=1), "r1", 2.6)
        actions = s.poll(2.8)
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert promotes[0].packet.log_epoch == 4
        assert s.log_epoch == 4
        events = [a.event for a in actions
                  if isinstance(a, Notify) and isinstance(a.event, PrimaryFailover)]
        assert events[0].log_epoch == 4
        assert events[0].high_seq == 1

    def test_promote_packet_names_surviving_members(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=1), "r0", 2.6)
        s.handle(ReplAckPacket(group="g", cum_seq=0), "r1", 2.6)
        actions = s.poll(2.8)
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert promotes[0].dest == "r0"
        # r1 survives as a follower the new primary must adopt.
        assert promotes[0].packet.members == "r1"

    def test_stale_epoch_log_ack_never_releases(self):
        """A revived pre-failover primary acking in its old term must not
        move the release point, even if it spoofs the current address."""
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=1), "r0", 2.6)
        s.poll(2.8)
        assert s.primary == "r0" and s.log_epoch == 2
        s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=1, log_epoch=1), "r0", 3.0)
        assert s.released_up_to == 0
        s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=1, log_epoch=2), "r0", 3.1)
        assert s.released_up_to == 1

    def test_vote_from_non_replica_ignored(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=5), "impostor", 2.6)
        s.poll(2.8)
        assert s.failover_phase is FailoverPhase.HEALTHY
        assert s.primary == "primary"

    def test_aborted_vote_retries_and_eventually_promotes(self):
        """Simultaneous failure: primary and both replicas dark at once.
        The vote aborts, but the watchdog keeps retrying; a replica that
        comes back wins the next round."""
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)  # QUERYING
        s.poll(2.8)  # nobody answered: abort back to HEALTHY
        assert s.failover_phase is FailoverPhase.HEALTHY
        actions = s.poll(4.0)  # data still outstanding: the check re-fires
        queries = [a for a in unicasts(actions) if isinstance(a.packet, ReplStatusQueryPacket)]
        assert {q.dest for q in queries} == {"r0", "r1"}
        s.handle(ReplAckPacket(group="g", cum_seq=1), "r1", 4.1)
        actions = s.poll(4.3)
        promotes = [a for a in unicasts(actions) if isinstance(a.packet, PromotePacket)]
        assert promotes and promotes[0].dest == "r1"
        assert s.primary == "r1"

    def test_promoted_replica_inherits_backfill_rights(self):
        s = self.make()
        s.send(b"x", 0.0)
        s.poll(2.5)
        s.handle(ReplAckPacket(group="g", cum_seq=1), "r1", 2.6)
        s.poll(2.8)
        assert s.primary == "r1"
        # The demoted primary may no longer tap the buffer; the new one may.
        assert s.handle(NackPacket(group="g", seqs=(1,)), "primary", 3.0) == []
        actions = s.handle(NackPacket(group="g", seqs=(1,)), "r1", 3.1)
        assert [a.packet.seq for a in unicasts(actions)] == [1]


class TestPrimaryBackfill:
    """§2.2.3: the source is the primary log's upstream.  A NACK from the
    log the source trusts is served from the reliability buffer (or the
    short-horizon cache) — without this a primary that misses a multicast
    packet could wedge the release point forever."""

    def test_nack_from_primary_served_from_buffer(self):
        s = make_sender()
        s.send(b"one", 0.0)
        s.send(b"two", 0.1)
        actions = s.handle(NackPacket(group="g", seqs=(1, 2)), "primary", 0.5)
        retrans = [a for a in unicasts(actions) if isinstance(a.packet, RetransPacket)]
        assert [(r.dest, r.packet.seq, r.packet.payload) for r in retrans] == [
            ("primary", 1, b"one"),
            ("primary", 2, b"two"),
        ]
        assert s.stats["log_backfills"] == 2

    def test_nack_from_stranger_ignored(self):
        s = make_sender()
        s.send(b"one", 0.0)
        assert s.handle(NackPacket(group="g", seqs=(1,)), "site1-logger", 0.5) == []
        assert s.stats["log_backfills"] == 0

    def test_unheld_seq_skipped(self):
        s = make_sender()
        s.send(b"one", 0.0)
        actions = s.handle(NackPacket(group="g", seqs=(1, 99)), "primary", 0.5)
        assert [a.packet.seq for a in unicasts(actions)] == [1]

    def test_released_seq_served_from_recent_cache(self):
        # The short-horizon cache only exists with statack enabled.
        s = make_sender(enable_statack=True)
        s.send(b"one", 0.0)
        s.handle(LogAckPacket(group="g", primary_seq=1, replica_seq=0), "primary", 0.1)
        assert s.unacked == 0  # released from the reliability buffer...
        actions = s.handle(NackPacket(group="g", seqs=(1,)), "primary", 0.5)
        assert [a.packet.seq for a in unicasts(actions)] == [1]  # ...yet still served


def test_no_primary_means_no_retention():
    """Co-located logging: the node's own LogServer holds the data."""
    s = LbrmSender("g", LbrmConfig(), primary=None)
    s.send(b"x", 0.0)
    assert s.unacked == 0
