"""TimerSet and ProtocolMachine base-class tests."""

from __future__ import annotations

from repro.core.machine import ProtocolMachine, TimerSet


def test_set_and_pop_due_in_deadline_order():
    timers = TimerSet()
    timers.set("b", 2.0)
    timers.set("a", 1.0)
    timers.set("c", 3.0)
    assert timers.pop_due(2.5) == ["a", "b"]
    # Popped timers are gone; the nothing-due result is any empty
    # sequence (a shared tuple on the fast path).
    assert list(timers.pop_due(2.5)) == []
    assert "c" in timers


def test_set_replaces_deadline():
    timers = TimerSet()
    timers.set("x", 5.0)
    timers.set("x", 1.0)
    assert timers.deadline("x") == 1.0
    assert len(timers) == 1


def test_cancel():
    timers = TimerSet()
    timers.set("x", 1.0)
    timers.cancel("x")
    timers.cancel("never-set")  # no-op
    assert list(timers.pop_due(10.0)) == []


def test_cancel_prefix():
    timers = TimerSet()
    timers.set(("nack", 1), 1.0)
    timers.set(("nack", 2), 2.0)
    timers.set(("maxit",), 3.0)
    timers.cancel_prefix(("nack",))
    assert timers.pop_due(10.0) == [("maxit",)]


def test_next_deadline():
    timers = TimerSet()
    assert timers.next_deadline() is None
    timers.set("a", 7.0)
    timers.set("b", 3.0)
    assert timers.next_deadline() == 3.0


def test_exact_deadline_fires():
    timers = TimerSet()
    timers.set("a", 1.0)
    assert timers.pop_due(1.0) == ["a"]


def test_machine_next_wakeup_reads_timers():
    machine = ProtocolMachine()
    assert machine.next_wakeup() is None
    machine.timers.set("t", 4.0)
    assert machine.next_wakeup() == 4.0
