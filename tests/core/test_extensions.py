"""Tests for the §7 small-packet repeat and multi-level hierarchy."""

from __future__ import annotations

import pytest

from repro.core.actions import SendMulticast
from repro.core.config import HeartbeatConfig, LbrmConfig
from repro.core.packets import DataPacket, HeartbeatPacket
from repro.core.sender import LbrmSender
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def multicast_packets(actions, ptype):
    return [a.packet for a in actions if isinstance(a, SendMulticast) and isinstance(a.packet, ptype)]


class TestSmallPacketRepeat:
    def make(self, repeat_max=64) -> LbrmSender:
        cfg = LbrmConfig(heartbeat=HeartbeatConfig(repeat_payload_max=repeat_max))
        return LbrmSender("g", cfg, primary=None)

    def test_small_payload_repeated_instead_of_heartbeat(self):
        sender = self.make()
        sender.send(b"small", 0.0)
        actions = sender.poll(sender.next_wakeup())
        repeats = multicast_packets(actions, DataPacket)
        assert repeats and repeats[0].seq == 1 and repeats[0].payload == b"small"
        assert not multicast_packets(actions, HeartbeatPacket)
        assert sender.stats.get("data_repeats_sent") == 1

    def test_large_payload_uses_plain_heartbeat(self):
        sender = self.make(repeat_max=4)
        sender.send(b"this payload is too large", 0.0)
        actions = sender.poll(sender.next_wakeup())
        assert multicast_packets(actions, HeartbeatPacket)
        assert not multicast_packets(actions, DataPacket)

    def test_disabled_by_default(self):
        sender = LbrmSender("g", LbrmConfig(), primary=None)
        sender.send(b"x", 0.0)
        actions = sender.poll(sender.next_wakeup())
        assert multicast_packets(actions, HeartbeatPacket)

    def test_repeats_follow_backoff_schedule(self):
        sender = self.make()
        sender.send(b"x", 0.0)
        times = []
        for _ in range(4):
            due = sender.next_wakeup()
            times.append(due)
            sender.poll(due)
        assert times == pytest.approx([0.25, 0.75, 1.75, 3.75])

    def test_receiver_watchdog_tracks_repeats(self):
        """Duplicates of the newest packet advance the adaptive watchdog
        like heartbeats, so no spurious FreshnessLost during backoff."""
        from repro.core.config import ReceiverConfig
        from repro.core.events import FreshnessLost
        from repro.core.receiver import LbrmReceiver

        hb = HeartbeatConfig(repeat_payload_max=64)
        rx = LbrmReceiver("g", ReceiverConfig(), logger_chain=("l",), heartbeat=hb)
        rx.start(0.0)
        pkt = DataPacket(group="g", seq=1, payload=b"x")
        rx.handle(pkt, "src", 0.0)
        for t in (0.25, 0.75, 1.75, 3.75):
            rx.handle(pkt, "src", t)  # sender repeats in heartbeat slots
        # next repeat due at 7.75; watchdog = 2 * 4.0 after 3.75
        actions = rx.poll(3.75 + 7.9)
        lost = [a for a in actions if hasattr(a, "event") and isinstance(a.event, FreshnessLost)]
        assert lost == []

    def test_lost_final_packet_self_repairs_without_nack(self):
        """The §7 rationale: 'This would reduce retransmission requests.'"""
        cfg = LbrmConfig(heartbeat=HeartbeatConfig(repeat_payload_max=256))
        dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=2,
                                            config=cfg, seed=44))
        dep.start()
        dep.advance(0.1)
        dep.send(b"warm")
        dep.advance(1.0)
        now = dep.sim.now
        dep.network.site("site1").tail_down.loss = BurstLoss([(now, now + 0.05)])
        dep.send(b"final small update")
        dep.advance(3.0)
        assert dep.receivers_with(2) == len(dep.receivers)
        # The heartbeat-slot repeat repaired it: zero NACK traffic.
        site1_receivers = dep.receivers[:2]
        assert all(rx.stats["nacks_sent"] == 0 for rx in site1_receivers)


class TestMultiLevelHierarchy:
    def test_regional_loggers_built(self):
        dep = LbrmDeployment(DeploymentSpec(n_sites=6, receivers_per_site=1,
                                            region_size=3, seed=9))
        assert len(dep.regional_loggers) == 2
        assert dep.receivers[0].logger_chain == ("site1-logger", "region0-logger", "primary")
        assert dep.receivers[5].logger_chain == ("site6-logger", "region1-logger", "primary")

    def test_no_regions_by_default(self):
        dep = LbrmDeployment(DeploymentSpec(n_sites=4, receivers_per_site=1, seed=9))
        assert dep.regional_loggers == []

    def test_widespread_loss_primary_sees_one_nack_per_region(self):
        """'A multi-level hierarchy of logging servers may be used to
        further reduce NACK bandwidth in large groups' (§7)."""
        def primary_nacks(region_size):
            dep = LbrmDeployment(DeploymentSpec(n_sites=12, receivers_per_site=2,
                                                region_size=region_size, seed=13))
            dep.start()
            dep.advance(0.2)
            dep.send(b"warm")
            dep.advance(1.0)
            now = dep.sim.now
            for i in range(1, 13):
                dep.network.site(f"site{i}").tail_down.loss = BurstLoss([(now, now + 0.05)])
            dep.send(b"lost")
            dep.advance(10.0)
            assert dep.receivers_with(2) == len(dep.receivers)
            return dep.primary.stats["nacks_received"]

        flat = primary_nacks(0)
        regional = primary_nacks(4)
        assert flat == 12  # one per site logger
        assert regional == 3  # one per regional logger

    def test_recovery_works_through_all_levels(self):
        dep = LbrmDeployment(DeploymentSpec(n_sites=4, receivers_per_site=2,
                                            region_size=2, seed=14))
        dep.start()
        dep.advance(0.2)
        dep.send(b"a")
        dep.advance(1.0)
        now = dep.sim.now
        dep.network.site("site3").tail_down.loss = BurstLoss([(now, now + 0.05)])
        dep.send(b"b")
        dep.advance(5.0)
        assert dep.receivers_with(2) == len(dep.receivers)
        # regional logger at site3's region also holds the full log
        assert all(len(l.log) == 2 for l in dep.regional_loggers)
