"""LbrmReceiver unit tests: delivery, loss detection, NACKs, escalation."""

from __future__ import annotations

import pytest

from repro.core.actions import Deliver, JoinGroup, Notify, SendUnicast
from repro.core.config import HeartbeatConfig, ReceiverConfig
from repro.core.events import (
    FreshnessLost,
    FreshnessRestored,
    LoggerUnreachable,
    LossDetected,
    RecoveryComplete,
    RecoveryFailed,
)
from repro.core.packets import (
    DataPacket,
    HeartbeatPacket,
    NackPacket,
    PrimaryInfoPacket,
    PrimaryQueryPacket,
    RetransPacket,
)
from repro.core.receiver import LbrmReceiver


def deliveries(actions):
    return [a for a in actions if isinstance(a, Deliver)]


def nacks(actions):
    return [a for a in actions if isinstance(a, SendUnicast) and isinstance(a.packet, NackPacket)]


def events(actions, etype):
    return [a.event for a in actions if isinstance(a, Notify) and isinstance(a.event, etype)]


def make_receiver(**kwargs) -> LbrmReceiver:
    defaults = {"logger_chain": ("site-logger", "primary"), "source": "source"}
    defaults.update(kwargs)
    return LbrmReceiver("g", ReceiverConfig(), **defaults)


def data(seq, payload=b"p"):
    return DataPacket(group="g", seq=seq, payload=payload)


def test_start_joins_group():
    r = make_receiver()
    actions = r.start(0.0)
    assert any(isinstance(a, JoinGroup) and a.group == "g" for a in actions)


def test_in_order_data_delivered_immediately():
    r = make_receiver()
    r.start(0.0)
    actions = r.handle(data(1, b"hello"), "source", 0.1)
    d = deliveries(actions)
    assert len(d) == 1 and d[0].payload == b"hello" and not d[0].recovered


def test_gap_triggers_immediate_nack_to_local_logger():
    """§6: an LBRM receiver "immediately requests a packet from its local
    logging server" — no suppression delay."""
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    actions = r.handle(data(3), "source", 0.2)
    sent = nacks(actions)
    assert len(sent) == 1
    assert sent[0].dest == "site-logger"
    assert sent[0].packet.seqs == (2,)
    assert events(actions, LossDetected)[0].seqs == (2,)


def test_later_data_not_delayed_by_gap():
    """Receiver-reliable: fresh data is never held for ordering."""
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    actions = r.handle(data(3), "source", 0.2)
    assert deliveries(actions)[0].seq == 3


def test_retrans_completes_recovery_with_latency():
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    r.handle(data(3), "source", 0.2)
    actions = r.handle(RetransPacket(group="g", seq=2, payload=b"r"), "site-logger", 0.25)
    d = deliveries(actions)
    assert d[0].recovered and d[0].seq == 2
    done = events(actions, RecoveryComplete)
    assert done[0].seq == 2
    assert done[0].latency == pytest.approx(0.05)
    assert r.missing == frozenset()


def test_heartbeat_reveals_single_loss():
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    actions = r.handle(HeartbeatPacket(group="g", seq=2, hb_index=1), "source", 0.35)
    assert nacks(actions)[0].packet.seqs == (2,)


def test_duplicate_data_counted_not_redelivered():
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    actions = r.handle(data(1), "source", 0.2)
    assert deliveries(actions) == []
    assert r.stats["duplicates"] == 1


def test_nack_retry_then_escalate_to_primary():
    cfg = ReceiverConfig(nack_retry=0.5, max_nack_retries=1)
    r = LbrmReceiver("g", cfg, logger_chain=("site-logger", "primary"), source="source")
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    r.handle(data(3), "source", 0.2)  # NACK #1 to site-logger
    actions = r.poll(0.7)  # retry: NACK #2 to site-logger
    assert nacks(actions)[0].dest == "site-logger"
    actions = r.poll(1.2)  # retries exhausted -> escalate
    unreachable = events(actions, LoggerUnreachable)
    assert unreachable and unreachable[0].logger == "site-logger"
    actions = r.poll(1.2 + 0.001)
    sent = nacks(actions)
    assert sent and sent[0].dest == "primary"


def test_whole_chain_dead_asks_source_for_primary():
    cfg = ReceiverConfig(nack_retry=0.1, max_nack_retries=0)
    r = LbrmReceiver("g", cfg, logger_chain=("site-logger",), source="source")
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    r.handle(data(3), "source", 0.2)  # NACK 1 (attempt at level 0)
    actions = r.poll(0.31)  # attempts exhausted, no next level
    queries = [
        a for a in actions if isinstance(a, SendUnicast) and isinstance(a.packet, PrimaryQueryPacket)
    ]
    assert queries and queries[0].dest == "source"
    # Source answers; the receiver extends its chain and retries there.
    r.handle(PrimaryInfoPacket(group="g", primary_addr="new-primary"), "source", 0.35)
    actions = r.poll(0.36)
    sent = nacks(actions)
    assert sent and sent[0].dest == "new-primary"


def test_recovery_abandoned_after_everything_fails():
    cfg = ReceiverConfig(nack_retry=0.1, max_nack_retries=0)
    r = LbrmReceiver("g", cfg, logger_chain=("only-logger",))  # no source fallback
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    r.handle(data(3), "source", 0.2)
    actions = r.poll(0.31)
    failed = events(actions, RecoveryFailed)
    assert failed and failed[0].seq == 2
    assert r.missing == frozenset()  # tracker told to forget it
    assert r.stats["recovery_failures"] == 1


def test_application_abandon():
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    r.handle(data(4), "source", 0.2)
    r.abandon((2, 3))
    assert r.missing == frozenset()
    assert r.poll(10.0) == [] or all(not nacks([a]) for a in r.poll(10.0))


def test_freshness_lost_and_restored():
    r = LbrmReceiver("g", ReceiverConfig(max_idle_time=0.25, watchdog_slack=2.0),
                     logger_chain=("l",))
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    actions = r.poll(0.7)  # silence > 2 * 0.25 after last packet
    lost = events(actions, FreshnessLost)
    assert lost and not r.fresh
    silence = events(actions, LossDetected)
    assert silence and silence[0].via_silence and silence[0].seqs == ()
    actions = r.handle(data(2), "source", 1.0)
    restored = events(actions, FreshnessRestored)
    assert restored and r.fresh


def test_adaptive_watchdog_follows_backoff():
    """Knowing the sender's schedule: after heartbeat i, silence allowance
    is slack * min(h_min*backoff^i, h_max), not the fixed MaxIT."""
    hb_cfg = HeartbeatConfig(h_min=0.25, backoff=2.0, h_max=32.0)
    r = LbrmReceiver("g", ReceiverConfig(), logger_chain=("l",), heartbeat=hb_cfg)
    r.start(0.0)
    r.handle(data(1), "source", 0.0)
    r.handle(HeartbeatPacket(group="g", seq=1, hb_index=3), "source", 1.75)
    # Next heartbeat due in h_min * 2^3 = 2.0s; watchdog = 2 * 2.0 = 4.0s.
    actions = r.poll(1.75 + 3.9)
    assert events(actions, FreshnessLost) == []
    actions = r.poll(1.75 + 4.1)
    assert events(actions, FreshnessLost)


def test_nack_batching_many_gaps():
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    actions = r.handle(data(100), "source", 0.2)
    sent = nacks(actions)
    total = sum(len(n.packet.seqs) for n in sent)
    assert total == 98
    assert all(len(n.packet.seqs) <= NackPacket.MAX_SEQS for n in sent)
    assert len(sent) == 2  # 64 + 34


def test_set_logger_chain_rebinds_levels():
    r = make_receiver()
    r.start(0.0)
    r.handle(data(1), "source", 0.1)
    r.handle(data(3), "source", 0.2)
    r.set_logger_chain(("other-logger",))
    actions = r.poll(1.0)
    sent = nacks(actions)
    assert sent and sent[0].dest == "other-logger"
