"""Retransmission policy tests (§2.3.2 source, §2.2.1 site)."""

from __future__ import annotations

import pytest

from repro.core.config import LoggerConfig, StatAckConfig
from repro.core.retransmit import (
    RetransmitDecision,
    SiteRequestTracker,
    SourceRetransmitPolicy,
)


class TestSourcePolicy:
    def test_all_acks_present_means_none(self):
        policy = SourceRetransmitPolicy()
        assert policy.decide(0, 20, 500) is RetransmitDecision.NONE

    def test_paper_500_site_example(self):
        """"with a 500 site configuration, each Designated Acker represents
        25 sites so multicast is warranted if even a single
        acknowledgement is lost."""
        policy = SourceRetransmitPolicy()
        assert policy.decide(1, 20, 500) is RetransmitDecision.MULTICAST

    def test_paper_20_site_example(self):
        """"with a 20 site configuration, it is feasible for each logging
        server to acknowledge" — missing ACKs name the sites: unicast."""
        policy = SourceRetransmitPolicy()
        assert policy.decide(1, 20, 20) is RetransmitDecision.UNICAST

    def test_threshold_boundary(self):
        policy = SourceRetransmitPolicy(StatAckConfig(sites_per_acker_multicast=2.0))
        assert policy.decide(1, 10, 20) is RetransmitDecision.MULTICAST  # exactly 2/acker
        assert policy.decide(1, 10, 19) is RetransmitDecision.UNICAST

    def test_no_expected_ackers_is_none(self):
        policy = SourceRetransmitPolicy()
        assert policy.decide(0, 0, 500) is RetransmitDecision.NONE
        assert policy.decide(3, 0, 500) is RetransmitDecision.NONE


class TestSiteTracker:
    def test_threshold_triggers_once(self):
        tracker = SiteRequestTracker(LoggerConfig(remulticast_threshold=3))
        assert not tracker.record(5, "rx1", now=0.0)
        assert not tracker.record(5, "rx2", now=0.01)
        assert tracker.record(5, "rx3", now=0.02)  # third distinct: fire
        assert not tracker.record(5, "rx4", now=0.03)  # already fired


    def test_duplicate_requester_not_counted_twice(self):
        tracker = SiteRequestTracker(LoggerConfig(remulticast_threshold=2))
        assert not tracker.record(5, "rx1", now=0.0)
        assert not tracker.record(5, "rx1", now=0.01)
        assert tracker.record(5, "rx2", now=0.02)

    def test_self_lost_fires_immediately(self):
        """If the logger itself lost the packet, the whole site did."""
        tracker = SiteRequestTracker(LoggerConfig(remulticast_threshold=3))
        assert tracker.record(5, "rx1", now=0.0, self_lost=True)

    def test_window_resets(self):
        tracker = SiteRequestTracker(LoggerConfig(remulticast_threshold=2), window=1.0)
        assert not tracker.record(5, "rx1", now=0.0)
        # Request far outside the window starts a fresh count.
        assert not tracker.record(5, "rx2", now=5.0)
        assert tracker.record(5, "rx3", now=5.1)

    def test_requesters_view(self):
        tracker = SiteRequestTracker()
        tracker.record(9, "a", 0.0)
        tracker.record(9, "b", 0.1)
        assert tracker.requesters(9) == frozenset({"a", "b"})
        assert tracker.requesters(10) == frozenset()

    def test_sweep_clears_stale_windows(self):
        tracker = SiteRequestTracker(window=1.0)
        tracker.record(9, "a", 0.0)
        tracker.sweep(10.0)
        assert tracker.requesters(9) == frozenset()

    def test_independent_sequences(self):
        tracker = SiteRequestTracker(LoggerConfig(remulticast_threshold=2))
        assert not tracker.record(1, "a", 0.0)
        assert not tracker.record(2, "a", 0.0)
        assert tracker.record(1, "b", 0.1)
        assert tracker.record(2, "b", 0.1)
