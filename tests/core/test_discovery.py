"""Expanding-ring discovery client tests (§2.2.1)."""

from __future__ import annotations

import pytest

from repro.core.actions import Notify, SendMulticast
from repro.core.config import DiscoveryConfig
from repro.core.discovery import DiscoveryClient
from repro.core.events import LoggerDiscovered
from repro.core.packets import DiscoveryQueryPacket, DiscoveryReplyPacket


def queries(actions):
    return [a for a in actions if isinstance(a, SendMulticast) and isinstance(a.packet, DiscoveryQueryPacket)]


def make_client(**kwargs) -> DiscoveryClient:
    cfg = DiscoveryConfig(**{"initial_ttl": 1, "max_ttl": 8, "query_timeout": 0.2, **kwargs})
    return DiscoveryClient("g", cfg)


def test_first_query_uses_initial_ttl():
    client = make_client()
    actions = client.start(0.0)
    sent = queries(actions)
    assert sent[0].packet.ttl == 1
    assert sent[0].ttl == 1  # transport scoping matches the packet


def test_ring_expands_on_silence():
    client = make_client()
    client.start(0.0)
    actions = client.poll(0.2)
    assert queries(actions)[0].packet.ttl == 2
    actions = client.poll(0.4)
    assert queries(actions)[0].packet.ttl == 4


def test_reply_ends_search_with_event():
    client = make_client()
    client.start(0.0)
    client.handle(DiscoveryReplyPacket(group="g", logger_addr="site-logger", level=1), "site-logger", 0.1)
    actions = client.poll(0.2)
    found = [a.event for a in actions if isinstance(a, Notify) and isinstance(a.event, LoggerDiscovered)]
    assert found and found[0].logger == "site-logger"
    assert client.found == "site-logger"
    assert client.found_level == 1
    assert not client.searching


def test_deeper_level_preferred_within_ring():
    """A site secondary (level 1) beats the primary (level 0) in range."""
    client = make_client()
    client.start(0.0)
    client.handle(DiscoveryReplyPacket(group="g", logger_addr="primary", level=0), "primary", 0.05)
    client.handle(DiscoveryReplyPacket(group="g", logger_addr="sec", level=1), "sec", 0.1)
    client.poll(0.2)
    assert client.found == "sec"


def test_exhaustion_at_max_ttl():
    client = make_client(max_ttl=4)
    client.start(0.0)
    client.poll(client.next_wakeup())  # ttl 2
    client.poll(client.next_wakeup())  # ttl 4
    client.poll(client.next_wakeup())  # silence at max
    assert client.exhausted
    assert client.found is None
    assert not client.searching


def test_reply_after_search_over_is_ignored():
    client = make_client()
    client.start(0.0)
    client.handle(DiscoveryReplyPacket(group="g", logger_addr="a", level=1), "a", 0.1)
    client.poll(0.2)
    client.handle(DiscoveryReplyPacket(group="g", logger_addr="b", level=2), "b", 0.3)
    assert client.found == "a"


def test_restart_clears_state():
    client = make_client(max_ttl=2)
    client.start(0.0)
    client.poll(client.next_wakeup())
    client.poll(client.next_wakeup())
    assert client.exhausted
    actions = client.start(1.0)
    assert queries(actions)[0].packet.ttl == 1
    assert client.searching and not client.exhausted


def test_parse_token_applied():
    client = DiscoveryClient("g", DiscoveryConfig(), parse_token=lambda t: ("host", int(t)))
    client.start(0.0)
    client.handle(DiscoveryReplyPacket(group="g", logger_addr="4242", level=1), "x", 0.1)
    client.poll(1.0)
    assert client.found == ("host", 4242)


def test_query_counter():
    client = make_client()
    client.start(0.0)
    client.poll(0.2)
    assert client.stats["queries_sent"] == 2


class TestRetryAndBackoff:
    """Loss hardening for real transports: same-ring retries, widening
    waits, and the explicit exhaustion notification."""

    def test_silent_ring_requeried_before_expansion(self):
        client = make_client(ring_retries=1)
        client.start(0.0)
        actions = client.poll(client.next_wakeup())
        assert queries(actions)[0].packet.ttl == 1  # retry, not expansion
        assert client.stats["ring_retries"] == 1
        actions = client.poll(client.next_wakeup())
        assert queries(actions)[0].packet.ttl == 2  # retries spent: expand

    def test_retry_budget_applies_per_ring(self):
        client = make_client(ring_retries=1, max_ttl=2)
        client.start(0.0)
        ttls = []
        for _ in range(4):
            actions = client.poll(client.next_wakeup())
            sent = queries(actions)
            if sent:
                ttls.append(sent[0].packet.ttl)
        assert ttls == [1, 2, 2]  # retry ring 1, expand, retry ring 2
        client.poll(client.next_wakeup())
        assert client.exhausted

    def test_timeout_backs_off_geometrically_with_cap(self):
        client = make_client(
            query_timeout=0.2, timeout_backoff=2.0, max_query_timeout=0.5, ring_retries=0
        )
        client.start(0.0)
        assert client.next_wakeup() == pytest.approx(0.2)
        now = client.next_wakeup()
        client.poll(now)  # expand; wait widens to 0.4
        assert client.next_wakeup() - now == pytest.approx(0.4)
        now = client.next_wakeup()
        client.poll(now)  # widens to 0.8 but capped at 0.5
        assert client.next_wakeup() - now == pytest.approx(0.5)

    def test_exhaustion_emits_event(self):
        from repro.core.events import DiscoveryExhausted

        client = make_client(max_ttl=2, ring_retries=1)
        client.start(0.0)
        events = []
        while client.searching:
            for action in client.poll(client.next_wakeup()):
                if isinstance(action, Notify):
                    events.append(action.event)
        exhausted = [e for e in events if isinstance(e, DiscoveryExhausted)]
        assert len(exhausted) == 1
        assert exhausted[0].max_ttl == 2
        assert exhausted[0].queries_sent == client.stats["queries_sent"] == 4

    def test_reply_during_retry_window_wins(self):
        client = make_client(ring_retries=2)
        client.start(0.0)
        client.poll(client.next_wakeup())  # first silent window: retry
        client.handle(DiscoveryReplyPacket(group="g", logger_addr="sec", level=1), "sec", 0.3)
        client.poll(client.next_wakeup())
        assert client.found == "sec"
        assert not client.searching

    def test_defaults_preserve_immediate_expansion(self):
        cfg = DiscoveryConfig()
        assert cfg.ring_retries == 0
        assert cfg.timeout_backoff == 1.0
