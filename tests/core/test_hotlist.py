"""Faulty-acker hotlist tests (§2.3.3's always-acking logger)."""

from __future__ import annotations

import random

import pytest

from repro.core.hotlist import AckerHotlist


def test_always_acker_gets_quarantined():
    hot = AckerHotlist()
    faulty = "faulty-logger"
    flagged: list = []
    for _ in range(12):
        flagged += hot.record_epoch(p_ack=0.05, responders={faulty}, known={faulty})
    assert faulty in hot.quarantined
    assert flagged.count(faulty) == 1  # flagged exactly once


def test_honest_logger_stays_clear():
    """A logger volunteering at the offered probability is never flagged."""
    rng = random.Random(7)
    hot = AckerHotlist()
    honest = "honest"
    for _ in range(500):
        responders = {honest} if rng.random() < 0.05 else set()
        hot.record_epoch(p_ack=0.05, responders=responders, known={honest})
    assert honest not in hot.quarantined


def test_high_p_ack_volunteering_is_not_suspicious():
    """Acking every epoch at p_ack = 1.0 is exactly correct behaviour."""
    hot = AckerHotlist()
    logger = "small-group-logger"
    for _ in range(50):
        hot.record_epoch(p_ack=1.0, responders={logger}, known={logger})
    assert logger not in hot.quarantined


def test_quarantine_needs_min_responses():
    hot = AckerHotlist(min_responses=4)
    eager = "eager"
    for _ in range(3):
        hot.record_epoch(p_ack=0.01, responders={eager}, known={eager})
    assert eager not in hot.quarantined  # only 3 responses so far


def test_forgive_releases_and_resets():
    hot = AckerHotlist()
    faulty = "f"
    for _ in range(12):
        hot.record_epoch(p_ack=0.05, responders={faulty}, known={faulty})
    assert hot.is_quarantined(faulty)
    hot.forgive(faulty)
    assert not hot.is_quarantined(faulty)
    # One more volunteer event must not instantly re-flag (history cleared).
    hot.record_epoch(p_ack=0.05, responders={faulty}, known={faulty})
    assert not hot.is_quarantined(faulty)


def test_non_responders_accumulate_declines():
    """A known logger that never responds builds no suspicion."""
    hot = AckerHotlist()
    quiet = "quiet"
    for _ in range(100):
        hot.record_epoch(p_ack=0.2, responders=set(), known={quiet})
    assert quiet not in hot.quarantined


def test_mixed_population():
    rng = random.Random(42)
    hot = AckerHotlist()
    known = {f"logger{i}" for i in range(20)} | {"bad"}
    for _ in range(40):
        responders = {l for l in known if l != "bad" and rng.random() < 0.1}
        responders.add("bad")  # responds to everything
        hot.record_epoch(p_ack=0.1, responders=responders, known=known)
    assert hot.quarantined == frozenset({"bad"})


def test_validation():
    with pytest.raises(ValueError):
        AckerHotlist(z_threshold=0.0)
    with pytest.raises(ValueError):
        AckerHotlist(min_responses=0)
