"""Unit tests for the k-level repair-tree model (core/hierarchy.py)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.hierarchy import (
    LoggerTree,
    TreeManager,
    build_tree,
    interior_name,
    plan_level_sizes,
)


def _manager(tree, **kwargs):
    kwargs.setdefault("fanout", 4)
    return TreeManager(tree, **kwargs)


class TestPlanLevelSizes:
    def test_flat_two_level_has_no_interior(self):
        assert plan_level_sizes(50, depth=2, fanout=8) == {}

    def test_three_level_counts(self):
        # 100 leaves, fanout 8 -> 13 hubs at level 1.
        assert plan_level_sizes(100, depth=3, fanout=8) == {1: 13}

    def test_four_level_counts(self):
        # 1000 leaves / 10 -> 100 metro hubs / 10 -> 10 region hubs.
        assert plan_level_sizes(1000, depth=4, fanout=10) == {2: 100, 1: 10}

    def test_tiny_group_never_needs_more_hubs_than_leaves(self):
        assert plan_level_sizes(1, depth=4, fanout=4) == {2: 1, 1: 1}

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            plan_level_sizes(10, depth=1, fanout=4)
        with pytest.raises(ConfigError):
            plan_level_sizes(10, depth=3, fanout=1)
        with pytest.raises(ConfigError):
            plan_level_sizes(0, depth=3, fanout=4)


class TestBuildTree:
    def test_flat_tree_parents_everything_to_root(self):
        tree = build_tree("primary", [f"site{i}-logger" for i in range(5)], depth=2, fanout=8)
        for i in range(5):
            assert tree.parent(f"site{i}-logger") == "primary"
            assert tree.chain(f"site{i}-logger") == (f"site{i}-logger", "primary")

    def test_three_level_respects_fanout(self):
        leaves = [f"site{i}-logger" for i in range(20)]
        tree = build_tree("primary", leaves, depth=3, fanout=4)
        hubs = tree.at_level(1)
        assert len(hubs) == 5
        for hub in hubs:
            assert tree.parent(hub) == "primary"
            assert 1 <= len(tree.children(hub)) <= 4
        # Every leaf hangs off exactly one hub and the grouping is contiguous.
        assert sorted(c for h in hubs for c in tree.children(h)) == sorted(leaves)
        assert tree.parent("site0-logger") == tree.parent("site1-logger")

    def test_chain_walks_every_level(self):
        leaves = [f"site{i}-logger" for i in range(16)]
        tree = build_tree("primary", leaves, depth=4, fanout=4)
        chain = tree.chain("site0-logger")
        assert chain[0] == "site0-logger"
        assert chain[-1] == "primary"
        assert len(chain) == 4
        assert [tree.level(n) for n in chain] == [3, 2, 1, 0]

    def test_interior_names_are_canonical(self):
        tree = build_tree("primary", [f"s{i}" for i in range(9)], depth=3, fanout=3)
        assert tree.at_level(1) == tuple(sorted(interior_name(1, i) for i in range(3)))

    def test_deterministic(self):
        leaves = [f"site{i}-logger" for i in range(33)]
        a = build_tree("primary", leaves, depth=3, fanout=5).to_dict()
        b = build_tree("primary", leaves, depth=3, fanout=5).to_dict()
        assert a == b


class TestLoggerTree:
    def test_reparent_moves_subtree(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = tree.at_level(1)
        leaf = tree.children(hubs[0])[0]
        tree.reparent(leaf, hubs[1])
        assert tree.parent(leaf) == hubs[1]
        assert leaf in tree.children(hubs[1])
        assert leaf not in tree.children(hubs[0])

    def test_reparent_rejects_cycles_and_bad_levels(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hub = tree.at_level(1)[0]
        leaf = tree.children(hub)[0]
        with pytest.raises(ConfigError):
            tree.reparent(hub, leaf)  # child of own descendant
        with pytest.raises(ConfigError):
            tree.reparent(leaf, tree.children(hub)[1])  # same level
        with pytest.raises(ConfigError):
            tree.reparent("primary", hub)

    def test_leaf_may_attach_directly_to_root(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        leaf = tree.at_level(2)[0]
        tree.reparent(leaf, "primary")
        assert tree.chain(leaf) == (leaf, "primary")

    def test_subtree_and_ancestry(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hub = tree.at_level(1)[0]
        sub = tree.subtree(hub)
        assert hub in sub
        assert all(tree.is_ancestor(hub, leaf) for leaf in sub if leaf != hub)
        assert tree.is_ancestor("primary", hub)
        assert not tree.is_ancestor(hub, "primary")


class TestMakespan:
    def test_empty_and_flat(self):
        tree = LoggerTree("primary")
        mgr = _manager(tree, serve_cost=0.001, seed_cost=lambda c, p: 0.05)
        assert mgr.makespan() == 0.0
        tree.add("a", "primary", 1)
        tree.add("b", "primary", 1)
        # Two children at cost 0.05: slots cost 0.001 and 0.002 serially.
        assert mgr.makespan() == pytest.approx(0.052)

    def test_tree_beats_flat_when_serialization_dominates(self):
        leaves = [f"s{i}" for i in range(64)]
        serve = 0.01
        flat = _manager(
            build_tree("primary", leaves, depth=2, fanout=8),
            fanout=64,
            serve_cost=serve,
            seed_cost=lambda c, p: 0.02,
        )
        deep = _manager(
            build_tree("primary", leaves, depth=3, fanout=8),
            fanout=8,
            serve_cost=serve,
            seed_cost=lambda c, p: 0.02,
        )
        assert deep.makespan() < flat.makespan()

    def test_measured_cost_feeds_objective(self):
        tree = LoggerTree("primary")
        tree.add("a", "primary", 1)
        mgr = _manager(tree, serve_cost=0.0, seed_cost=lambda c, p: 0.05)
        mgr.note_request("a", [1], now=0.0)
        mgr.note_repair("a", 1, now=0.4)
        assert mgr.makespan() > 0.05  # widened toward the observed 0.4s RTT


class TestRescore:
    def test_healthy_tree_is_sticky(self):
        tree = build_tree("primary", [f"s{i}" for i in range(16)], depth=3, fanout=4)
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        live = frozenset(tree.nodes)
        assert mgr.rescore(1.0, live=live) == []
        assert mgr.rescore(2.0, live=live) == []

    def test_dead_hub_reparents_children_to_surviving_hub(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=8)
        hubs = tree.at_level(1)
        assert len(hubs) == 1  # 8 leaves / fanout 8 -> one hub; force two
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = tree.at_level(1)
        dead, alive = hubs[0], hubs[1]
        orphans = tree.children(dead)
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        live = frozenset(n for n in tree.nodes if n != dead)
        moves = mgr.rescore(3.0, live=live)
        assert {m.child for m in moves} == set(orphans)
        assert all(m.new_parent == alive and m.reason == "crash" for m in moves)
        assert all(tree.parent(c) == alive for c in orphans)

    def test_all_hubs_dead_falls_back_to_root(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = set(tree.at_level(1))
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        live = frozenset(n for n in tree.nodes if n not in hubs)
        moves = mgr.rescore(3.0, live=live)
        assert {m.child for m in moves} == set(tree.at_level(2))
        assert all(m.new_parent == "primary" for m in moves)

    def test_saturated_hub_sheds_children(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = tree.at_level(1)
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        live = frozenset(tree.nodes)
        moves = mgr.rescore(3.0, live=live, saturated=frozenset({hubs[0]}))
        assert moves and all(m.reason == "saturation" for m in moves)
        assert all(tree.parent(m.child) == hubs[1] for m in moves)

    def test_cost_move_needs_hysteresis_margin(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = tree.at_level(1)
        leaf = tree.children(hubs[0])[0]
        costs = {(leaf, hubs[0]): 0.05, (leaf, hubs[1]): 0.045}
        mgr = _manager(
            tree, hysteresis=1.5, serve_cost=0.0,
            seed_cost=lambda c, p: costs.get((c, p), 0.05),
        )
        live = frozenset(tree.nodes)
        assert mgr.rescore(1.0, live=live) == []  # 10% better: inside hysteresis
        costs[(leaf, hubs[1])] = 0.01  # 5x better: move
        moves = mgr.rescore(2.0, live=live)
        assert [m.child for m in moves] == [leaf]
        assert moves[0].reason == "cost"

    def test_rescore_is_deterministic(self):
        def run():
            tree = build_tree("primary", [f"s{i}" for i in range(12)], depth=3, fanout=4)
            mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
            dead = tree.at_level(1)[0]
            live = frozenset(n for n in tree.nodes if n != dead)
            moves = mgr.rescore(1.0, live=live)
            return [m.to_dict() for m in moves], tree.to_dict()

        assert run() == run()


class TestForceReparent:
    def test_moves_to_best_alternative(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = tree.at_level(1)
        leaf = tree.children(hubs[0])[0]
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        move = mgr.force_reparent(leaf, live=frozenset(tree.nodes), now=1.0)
        assert move is not None and move.reason == "forced"
        assert tree.parent(leaf) == hubs[1]

    def test_no_alternative_returns_none(self):
        tree = build_tree("primary", [f"s{i}" for i in range(4)], depth=2, fanout=4)
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        # Only possible parent is the root it already has.
        assert mgr.force_reparent("s0", live=frozenset(tree.nodes), now=1.0) is None
        assert mgr.force_reparent("primary", live=frozenset(tree.nodes), now=1.0) is None
        assert mgr.force_reparent("missing", live=frozenset(tree.nodes), now=1.0) is None


class TestLinkMeasurement:
    def test_retry_inflates_cost(self):
        tree = build_tree("primary", [f"s{i}" for i in range(4)], depth=2, fanout=4)
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        base = mgr.cost("s0", "primary")
        mgr.note_request("s0", [1, 2], now=0.0)
        mgr.note_retry("s0", [1, 2])
        assert mgr.cost("s0", "primary") > base
        assert mgr.stats["retries_seen"] == 2

    def test_repair_after_reparent_does_not_credit_new_link(self):
        tree = build_tree("primary", [f"s{i}" for i in range(8)], depth=3, fanout=4)
        hubs = tree.at_level(1)
        leaf = tree.children(hubs[0])[0]
        mgr = _manager(tree, seed_cost=lambda c, p: 0.05)
        mgr.note_request(leaf, [7], now=0.0)
        tree.reparent(leaf, hubs[1])
        mgr.note_repair(leaf, 7, now=0.2)  # sample was for the old parent
        assert mgr.stats["rtt_samples"] == 0
