"""StatAckSource unit tests: epochs, deadlines, decisions, t_wait."""

from __future__ import annotations

import random

import pytest

from repro.core.actions import Notify, SendMulticast
from repro.core.config import StatAckConfig
from repro.core.events import EpochStarted, FaultyAckerDetected
from repro.core.packets import (
    AckerResponsePacket,
    AckerSelectPacket,
    DataAckPacket,
    ProbePacket,
    ProbeReplyPacket,
)
from repro.core.retransmit import RetransmitDecision
from repro.core.statack import StatAckPhase, StatAckSource


def multicast_packets(actions, ptype):
    return [a.packet for a in actions if isinstance(a, SendMulticast) and isinstance(a.packet, ptype)]


def make_engine(n_sl: float = 50.0, **cfg_kwargs) -> StatAckSource:
    cfg = StatAckConfig(**{"k_ackers": 10, "initial_t_wait": 0.1, **cfg_kwargs})
    engine = StatAckSource("g", cfg, rng=random.Random(0))
    engine.seed_group_size(n_sl)
    return engine


def start_epoch(engine: StatAckSource, ackers: list[str], now: float = 0.0) -> float:
    """Drive one full selection: returns the time the window closed."""
    actions = engine.start(now)
    selects = multicast_packets(actions, AckerSelectPacket)
    assert selects, "selection packet expected"
    epoch = selects[0].epoch
    for acker in ackers:
        engine.handle(AckerResponsePacket(group="g", epoch=epoch), acker, now + 0.01)
    close_at = engine.next_wakeup()
    engine.poll(close_at)
    assert engine.phase is StatAckPhase.ACTIVE
    return close_at


class TestSelection:
    def test_p_ack_is_k_over_nsl(self):
        engine = make_engine(n_sl=50.0)
        actions = engine.start(0.0)
        select = multicast_packets(actions, AckerSelectPacket)[0]
        assert select.p_ack == pytest.approx(10 / 50)
        assert select.k == 10

    def test_p_ack_capped_at_one(self):
        engine = make_engine(n_sl=4.0)
        actions = engine.start(0.0)
        assert multicast_packets(actions, AckerSelectPacket)[0].p_ack == 1.0

    def test_epoch_started_event_counts_ackers(self):
        engine = make_engine()
        actions = engine.start(0.0)
        epoch = multicast_packets(actions, AckerSelectPacket)[0].epoch
        for acker in ("a", "b", "c"):
            engine.handle(AckerResponsePacket(group="g", epoch=epoch), acker, 0.01)
        actions, _ = engine.poll(engine.next_wakeup())
        events = [a.event for a in actions if isinstance(a, Notify) and isinstance(a.event, EpochStarted)]
        assert events and events[0].expected_ackers == 3
        assert engine.designated_ackers == frozenset({"a", "b", "c"})

    def test_late_response_not_considered(self):
        """"Future ACKs from secondary loggers that do not respond within
        this interval are not considered."""
        engine = make_engine()
        actions = engine.start(0.0)
        epoch = multicast_packets(actions, AckerSelectPacket)[0].epoch
        engine.handle(AckerResponsePacket(group="g", epoch=epoch), "ontime", 0.01)
        engine.poll(engine.next_wakeup())
        engine.handle(AckerResponsePacket(group="g", epoch=epoch), "tardy", 5.0)
        assert "tardy" not in engine.designated_ackers

    def test_stale_epoch_response_ignored(self):
        engine = make_engine()
        engine.start(0.0)
        engine.handle(AckerResponsePacket(group="g", epoch=99), "weird", 0.01)
        engine.poll(engine.next_wakeup())
        assert "weird" not in engine.designated_ackers


class TestAckTracking:
    def test_all_acks_complete_updates_t_wait(self):
        engine = make_engine()
        start_epoch(engine, ["a", "b"])
        t0 = engine.next_wakeup() or 1.0
        engine.on_data_sent(1, 1.0)
        engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1), "a", 1.05)
        engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1), "b", 1.08)
        # First measured last-ACK time replaces the configured seed.
        assert engine.t_wait == pytest.approx(0.08)
        _, orders = engine.poll(2.0)
        assert orders == []  # nothing outstanding

    def test_missing_acks_large_group_multicast(self):
        engine = make_engine(n_sl=500.0)
        start_epoch(engine, [f"l{i}" for i in range(10)])
        engine.on_data_sent(1, 1.0)
        # only 8 of 10 ack
        for i in range(8):
            engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1), f"l{i}", 1.02)
        _, orders = engine.poll(1.0 + engine.t_wait + 0.01)
        assert len(orders) == 1
        assert orders[0].decision is RetransmitDecision.MULTICAST
        assert set(orders[0].missing_ackers) == {"l8", "l9"}

    def test_missing_acks_small_group_unicast(self):
        engine = make_engine(n_sl=10.0)
        start_epoch(engine, [f"l{i}" for i in range(10)])
        engine.on_data_sent(1, 1.0)
        for i in range(9):
            engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1), f"l{i}", 1.02)
        _, orders = engine.poll(1.0 + engine.t_wait + 0.01)
        assert orders[0].decision is RetransmitDecision.UNICAST
        assert orders[0].missing_ackers == ("l9",)

    def test_ack_from_non_designated_ignored(self):
        engine = make_engine()
        start_epoch(engine, ["a"])
        engine.on_data_sent(1, 1.0)
        engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1), "stranger", 1.01)
        _, orders = engine.poll(1.0 + engine.t_wait + 0.01)
        assert orders and orders[0].decision is not RetransmitDecision.NONE

    def test_remulticast_cap(self):
        engine = make_engine(n_sl=500.0)
        start_epoch(engine, [f"l{i}" for i in range(10)])
        now = 1.0
        engine.on_data_sent(1, now)
        for attempt in range(2, 7):
            _, orders = engine.poll(now + engine.t_wait + 0.01)
            if not orders or orders[0].decision is RetransmitDecision.NONE:
                break
            now = now + engine.t_wait + 0.02
            engine.on_remulticast_sent(1, now, attempt)
        # after MAX_REMULTICASTS the engine stops ordering multicasts
        _, orders = engine.poll(now + 10 * engine.t_wait)
        assert all(o.decision is RetransmitDecision.NONE for o in orders)

    def test_refinement_pulls_estimate_toward_truth(self):
        engine = make_engine(n_sl=100.0, alpha=0.25)
        start_epoch(engine, [f"l{i}" for i in range(10)])  # p_ack=0.1, 10 responders
        before = engine.group_size_estimate
        for seq in range(1, 30):
            engine.on_data_sent(seq, float(seq) * 10)
            for i in range(5):  # only 5 ack each packet => sample 50
                engine.handle(
                    DataAckPacket(group="g", epoch=engine.current_epoch, seq=seq), f"l{i}", seq * 10 + 0.01
                )
            engine.poll(seq * 10 + 5.0)
        assert engine.group_size_estimate < before
        assert engine.group_size_estimate == pytest.approx(50, rel=0.2)


class TestEpochRollover:
    def test_new_epoch_after_epoch_length_packets(self):
        engine = make_engine(epoch_length=3)
        start_epoch(engine, ["a"])
        for seq in (1, 2, 3):
            engine.on_data_sent(seq, float(seq))
        actions, _ = engine.poll(3.0)
        selects = multicast_packets(actions, AckerSelectPacket)
        assert selects and selects[0].epoch == engine.epoch
        # current (active) epoch unchanged until new window closes
        assert engine.current_epoch == engine.epoch - 1

    def test_active_epoch_switches_after_window(self):
        engine = make_engine(epoch_length=2)
        start_epoch(engine, ["a"])
        first = engine.current_epoch
        engine.on_data_sent(1, 1.0)
        engine.on_data_sent(2, 1.1)
        engine.poll(1.2)  # triggers selection
        engine.handle(AckerResponsePacket(group="g", epoch=engine.epoch), "b", 1.25)
        while engine.phase is not StatAckPhase.ACTIVE:
            engine.poll(engine.next_wakeup())
        assert engine.current_epoch == first + 1
        assert engine.designated_ackers == frozenset({"b"})


class TestBootstrap:
    def test_probing_then_first_epoch(self):
        engine = StatAckSource("g", StatAckConfig(k_ackers=5), rng=random.Random(1))
        actions = engine.start(0.0)
        probes = multicast_packets(actions, ProbePacket)
        assert probes and engine.phase is StatAckPhase.BOOTSTRAP
        now = 0.0
        # Simulate 20 loggers answering each probe with coin flips.
        rng = random.Random(9)
        for _ in range(40):
            if engine.phase is not StatAckPhase.BOOTSTRAP:
                break
            probe = probes[0]
            for i in range(20):
                if rng.random() < probe.p_ack:
                    engine.handle(ProbeReplyPacket(group="g", probe_id=probe.probe_id), f"l{i}", now)
            now = engine.next_wakeup()
            actions, _ = engine.poll(now)
            probes = multicast_packets(actions, ProbePacket)
            if not probes:
                break
        assert engine.phase in (StatAckPhase.SELECTING, StatAckPhase.ACTIVE)
        assert engine.group_size_estimate == pytest.approx(20, rel=0.6)


class TestHotlist:
    def test_faulty_acker_event_and_exclusion(self):
        engine = make_engine(n_sl=1000.0)  # p_ack = 0.01: volunteering every time is damning
        flagged = []
        for round_ in range(12):
            actions = engine.start(float(round_)) if round_ == 0 else None
            if actions is None:
                actions, _ = engine.poll(engine.next_wakeup() or float(round_))
            selects = multicast_packets(actions, AckerSelectPacket)
            if not selects:
                continue
            engine.handle(AckerResponsePacket(group="g", epoch=selects[0].epoch), "bad", round_ + 0.01)
            close_actions, _ = engine.poll(engine.next_wakeup())
            flagged += [
                a.event for a in close_actions
                if isinstance(a, Notify) and isinstance(a.event, FaultyAckerDetected)
            ]
            # force the next selection
            engine._packets_this_epoch = 10**9
            engine.timers.set(("new_epoch",), round_ + 0.5)
        assert flagged and flagged[0].logger == "bad"
        assert engine.hotlist.is_quarantined("bad")
