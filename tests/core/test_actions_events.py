"""Action/event helper tests."""

from __future__ import annotations

from repro.core.actions import (
    Deliver,
    JoinGroup,
    Notify,
    SendMulticast,
    SendUnicast,
    deliveries,
    notifications,
    sends,
)
from repro.core.events import LossDetected
from repro.core.packets import PrimaryQueryPacket


def make_actions():
    pkt = PrimaryQueryPacket(group="g")
    return [
        SendUnicast(dest="a", packet=pkt),
        Deliver(seq=1, payload=b"x"),
        SendMulticast(group="g", packet=pkt, ttl=1),
        Notify(LossDetected(seqs=(2,))),
        JoinGroup(group="g"),
    ]


def test_sends_filter():
    out = sends(make_actions())
    assert len(out) == 2
    assert isinstance(out[0], SendUnicast) and isinstance(out[1], SendMulticast)


def test_deliveries_filter():
    out = deliveries(make_actions())
    assert len(out) == 1 and out[0].payload == b"x"
    assert out[0].recovered is False  # default


def test_notifications_filter():
    out = notifications(make_actions())
    assert len(out) == 1
    assert isinstance(out[0].event, LossDetected)


def test_actions_are_frozen_and_hashable():
    pkt = PrimaryQueryPacket(group="g")
    a = SendUnicast(dest="a", packet=pkt)
    b = SendUnicast(dest="a", packet=pkt)
    assert a == b
    assert hash(a) == hash(b)
    assert SendMulticast(group="g", packet=pkt).ttl is None


def test_events_are_frozen():
    event = LossDetected(seqs=(1, 2), via_silence=True)
    assert event.seqs == (1, 2)
    assert event.via_silence
