"""Config validation tests: every illegal parameter is rejected eagerly."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DiscoveryConfig,
    HeartbeatConfig,
    LbrmConfig,
    LoggerConfig,
    ReceiverConfig,
    ReplicationConfig,
    StatAckConfig,
)
from repro.core.errors import ConfigError


def test_paper_defaults_match_evaluation_parameters():
    cfg = LbrmConfig.paper_defaults()
    assert cfg.heartbeat.h_min == 0.25
    assert cfg.heartbeat.h_max == 32.0
    assert cfg.heartbeat.backoff == 2.0
    assert cfg.receiver.max_idle_time == 0.25
    assert cfg.statack.alpha == pytest.approx(1 / 8)
    assert 5 <= cfg.statack.k_ackers <= 20  # "between 5 and 20 ACKs"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"h_min": 0.0},
        {"h_min": -1.0},
        {"h_max": 0.1, "h_min": 0.25},
        {"backoff": 0.5},
    ],
)
def test_heartbeat_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        HeartbeatConfig(**kwargs)


def test_heartbeat_is_fixed_flag():
    assert HeartbeatConfig(backoff=1.0).is_fixed
    assert HeartbeatConfig(h_min=1.0, h_max=1.0).is_fixed
    assert not HeartbeatConfig().is_fixed


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_idle_time": 0.0},
        {"nack_delay": -0.1},
        {"nack_retry": 0.0},
        {"max_nack_retries": -1},
        {"watchdog_slack": 0.5},
    ],
)
def test_receiver_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        ReceiverConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_packets": -1},
        {"max_bytes": -1},
        {"packet_lifetime": -1.0},
        {"remulticast_threshold": 0},
        {"site_ttl": 0},
        {"upstream_retry": 0.0},
        {"max_upstream_retries": -1},
    ],
)
def test_logger_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        LoggerConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"k_ackers": 0},
        {"alpha": 0.0},
        {"alpha": 1.5},
        {"epoch_length": 0},
        {"sites_per_acker_multicast": 0.5},
        {"initial_t_wait": 0.0},
        {"selection_wait_factor": 0.5},
        {"initial_group_size": 0.0},
    ],
)
def test_statack_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        StatAckConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_replicas_acked": 0},
        {"update_retry": 0.0},
        {"max_update_retries": -1},
        {"primary_timeout": 0.0},
        {"failover_wait": 0.0},
    ],
)
def test_replication_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        ReplicationConfig(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"initial_ttl": 0},
        {"max_ttl": 1, "initial_ttl": 4},
        {"query_timeout": 0.0},
    ],
)
def test_discovery_config_rejects(kwargs):
    with pytest.raises(ConfigError):
        DiscoveryConfig(**kwargs)


def test_configs_are_frozen():
    cfg = HeartbeatConfig()
    with pytest.raises(AttributeError):
        cfg.h_min = 1.0  # type: ignore[misc]


def test_config_error_is_lbrm_error():
    from repro.core.errors import LbrmError

    assert issubclass(ConfigError, LbrmError)
