"""Packet-log store tests: retention, caps, lifetime, disk spool."""

from __future__ import annotations

import pytest

from repro.core.errors import LogMissError
from repro.core.log_store import PacketLog


def test_append_and_get():
    log = PacketLog()
    assert log.append(1, b"one", now=0.0)
    entry = log.get(1)
    assert entry.payload == b"one"
    assert entry.logged_at == 0.0


def test_append_is_idempotent():
    log = PacketLog()
    log.append(1, b"one", now=0.0)
    assert not log.append(1, b"ONE", now=1.0)
    assert log.get(1).payload == b"one"


def test_get_missing_raises():
    log = PacketLog()
    with pytest.raises(LogMissError) as exc:
        log.get(42)
    assert exc.value.seq == 42


def test_contains_and_len():
    log = PacketLog()
    log.append(1, b"a", 0.0)
    log.append(3, b"c", 0.0)
    assert 1 in log and 3 in log and 2 not in log
    assert len(log) == 2
    assert log.lowest == 1 and log.highest == 3


def test_byte_size_tracks_payloads():
    log = PacketLog()
    log.append(1, b"abc", 0.0)
    log.append(2, b"defgh", 0.0)
    assert log.byte_size == 8


def test_max_packets_evicts_oldest():
    log = PacketLog(max_packets=3)
    for seq in range(1, 6):
        log.append(seq, bytes([seq]), 0.0)
    assert len(log) == 3
    assert log.lowest == 3
    assert log.dropped == 2
    with pytest.raises(LogMissError):
        log.get(1)


def test_max_bytes_evicts_oldest():
    log = PacketLog(max_bytes=10)
    log.append(1, b"x" * 6, 0.0)
    log.append(2, b"y" * 6, 0.0)
    assert 1 not in log and 2 in log
    assert log.byte_size <= 10


def test_lifetime_expiry():
    log = PacketLog(lifetime=5.0)
    log.append(1, b"old", 0.0)
    log.append(2, b"new", 4.0)
    assert log.expire(6.0) == 1
    assert 1 not in log and 2 in log


def test_get_with_now_applies_expiry():
    log = PacketLog(lifetime=5.0)
    log.append(1, b"old", 0.0)
    with pytest.raises(LogMissError):
        log.get(1, now=10.0)


def test_trim_below():
    log = PacketLog()
    for seq in range(1, 10):
        log.append(seq, b"p", 0.0)
    assert log.trim_below(5) == 4
    assert log.lowest == 5


def test_spool_overflow_retrievable(tmp_path):
    """Entries pushed past the memory cap survive on disk (§2's
    'writing them to disk once in-memory buffers are full')."""
    spool = tmp_path / "log.spool"
    log = PacketLog(max_packets=2, spool_path=str(spool))
    for seq in range(1, 6):
        log.append(seq, f"payload-{seq}".encode(), now=float(seq))
    assert len(log) == 5  # everything still retrievable
    assert log.dropped == 0
    entry = log.get(1)
    assert entry.payload == b"payload-1"
    assert entry.logged_at == 1.0
    # in-memory entries still work too
    assert log.get(5).payload == b"payload-5"
    log.close()


def test_spool_respects_lifetime(tmp_path):
    spool = tmp_path / "log.spool"
    log = PacketLog(max_packets=1, lifetime=2.0, spool_path=str(spool))
    log.append(1, b"a", 0.0)
    log.append(2, b"b", 1.0)  # pushes 1 to spool
    log.expire(5.0)
    assert 1 not in log and 2 not in log
    log.close()


def test_spool_trim_below(tmp_path):
    spool = tmp_path / "log.spool"
    log = PacketLog(max_packets=1, spool_path=str(spool))
    for seq in range(1, 5):
        log.append(seq, b"p", 0.0)
    log.trim_below(4)
    assert log.lowest == 4
    log.close()


def test_lowest_highest_span_memory_and_spool(tmp_path):
    spool = tmp_path / "log.spool"
    log = PacketLog(max_packets=2, spool_path=str(spool))
    for seq in (10, 11, 12, 13):
        log.append(seq, b"p", 0.0)
    assert log.lowest == 10  # in spool
    assert log.highest == 13  # in memory
    log.close()


def test_empty_log_properties():
    log = PacketLog()
    assert log.lowest is None and log.highest is None
    assert len(log) == 0 and log.byte_size == 0
