"""Estimator tests: EWMA, t_wait capping, Bolot probing, Table 2 math."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.errors import ConfigError
from repro.core.estimator import (
    EwmaEstimator,
    GroupSizeEstimator,
    TWaitEstimator,
    nsl_stddev,
    nsl_stddev_after_probes,
)


class TestEwma:
    def test_update_formula(self):
        e = EwmaEstimator(alpha=0.125, initial=1.0)
        assert e.update(9.0) == pytest.approx(0.875 * 1.0 + 0.125 * 9.0)

    def test_converges_to_constant_input(self):
        e = EwmaEstimator(alpha=0.25, initial=0.0)
        for _ in range(100):
            e.update(5.0)
        assert e.estimate == pytest.approx(5.0, rel=1e-6)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            EwmaEstimator(alpha=0.0, initial=1.0)
        with pytest.raises(ConfigError):
            EwmaEstimator(alpha=1.5, initial=1.0)

    def test_reset(self):
        e = EwmaEstimator(alpha=0.5, initial=1.0)
        e.update(10.0)
        e.reset(2.0)
        assert e.estimate == 2.0
        assert e.samples == 0


class TestTWait:
    def test_first_measurement_replaces_seed(self):
        """The configured initial is a guess; the first measured RTT
        replaces it outright instead of being EWMA-blended into it."""
        t = TWaitEstimator(alpha=0.125, initial=0.1)
        t.record_last_ack(0.18)
        assert t.t_wait == pytest.approx(0.18)

    def test_paper_formula(self):
        t = TWaitEstimator(alpha=0.125, initial=0.1)
        t.record_last_ack(0.1)  # bootstrap measurement = the seed value
        t.record_last_ack(0.18)
        assert t.t_wait == pytest.approx(0.125 * 0.18 + 0.875 * 0.1)

    def test_sample_capped_at_twice_t_wait(self):
        """"up to time 2×t_wait" — a huge outlier contributes the cap."""
        t = TWaitEstimator(alpha=0.5, initial=0.1)
        t.record_last_ack(0.1)
        t.record_last_ack(100.0)
        assert t.t_wait == pytest.approx(0.5 * 0.2 + 0.5 * 0.1)

    def test_first_sample_capped_by_seeded_window(self):
        """Even the bootstrap replacement honours the 2×t_wait cap."""
        t = TWaitEstimator(alpha=0.125, initial=0.1)
        t.record_last_ack(100.0)
        assert t.t_wait == pytest.approx(0.2)

    def test_zero_first_sample_keeps_window_positive(self):
        t = TWaitEstimator(initial=0.1)
        t.record_last_ack(0.0)
        assert t.t_wait > 0.0
        assert t.cap > 0.0

    def test_rejects_negative_sample(self):
        t = TWaitEstimator()
        with pytest.raises(ValueError):
            t.record_last_ack(-0.1)

    def test_rejects_bad_initial(self):
        with pytest.raises(ConfigError):
            TWaitEstimator(initial=0.0)


class TestGroupSize:
    def _run_bootstrap(self, n: int, seed: int = 0, **kwargs) -> GroupSizeEstimator:
        """Simulate probing against n loggers with independent coins."""
        rng = random.Random(seed)
        est = GroupSizeEstimator(**kwargs)
        while not est.converged:
            probe = est.next_round()
            assert probe is not None
            replies = sum(1 for _ in range(n) if rng.random() < probe.p_ack)
            est.record_round(probe.probe_id, replies)
        return est

    def test_bootstrap_converges_near_truth(self):
        est = self._run_bootstrap(500, seed=3)
        assert est.converged
        assert est.estimate == pytest.approx(500, rel=0.5)

    def test_probe_probability_ramps_up(self):
        est = GroupSizeEstimator(initial_p=0.01, ramp=4.0)
        first = est.next_round()
        est.record_round(first.probe_id, 0)
        second = est.next_round()
        assert second.p_ack == pytest.approx(0.04)
        assert second.probe_id == first.probe_id + 1

    def test_small_group_hits_p_equal_one(self):
        """A 3-logger group: probing escalates to p=1 and counts exactly."""
        est = self._run_bootstrap(3, confident_replies=10)
        assert est.estimate == pytest.approx(3, abs=0.01)

    def test_stale_probe_id_ignored(self):
        est = GroupSizeEstimator()
        probe = est.next_round()
        est.record_round(probe.probe_id + 7, 100)  # bogus id
        assert not est.converged
        assert est.next_round().probe_id == probe.probe_id

    def test_extra_probes_are_requested(self):
        est = GroupSizeEstimator(initial_p=0.5, confident_replies=5, extra_probes=2)
        p1 = est.next_round()
        est.record_round(p1.probe_id, 50)  # confident immediately
        assert not est.converged  # two repeats outstanding
        p2 = est.next_round()
        assert p2.p_ack == pytest.approx(0.5)  # same p, repeated
        est.record_round(p2.probe_id, 60)
        p3 = est.next_round()
        est.record_round(p3.probe_id, 40)
        assert est.converged
        assert est.estimate == pytest.approx((100 + 120 + 80) / 3)

    def test_refine_ewma(self):
        est = GroupSizeEstimator(alpha=0.125)
        est.seed(100.0)
        est.refine(5, 0.1)  # sample 50
        assert est.estimate == pytest.approx(0.875 * 100 + 0.125 * 50)

    def test_refine_rejects_bad_p(self):
        est = GroupSizeEstimator()
        with pytest.raises(ValueError):
            est.refine(5, 0.0)

    def test_refine_floors_at_one(self):
        est = GroupSizeEstimator(alpha=1.0)
        est.seed(10.0)
        est.refine(0, 1.0)
        assert est.estimate == 1.0

    def test_seed_skips_bootstrap(self):
        est = GroupSizeEstimator()
        est.seed(42.0)
        assert est.converged
        assert est.next_round() is None
        assert est.estimate == 42.0


class TestTable2Math:
    def test_sigma1_formula(self):
        assert nsl_stddev(500, 0.04) == pytest.approx(math.sqrt(500 * 0.96 / 0.04))

    def test_probe_averaging_rows(self):
        """Table 2: 1.0, 0.707, 0.577, 0.5, 0.447 of sigma_1."""
        sigma1 = nsl_stddev(500, 0.04)
        expected = [1.0, 0.707, 0.577, 0.5, 0.447]
        for probes, factor in zip(range(1, 6), expected):
            assert nsl_stddev_after_probes(500, 0.04, probes) == pytest.approx(
                sigma1 * factor, rel=1e-3
            )

    def test_zero_variance_at_p_one(self):
        assert nsl_stddev(500, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            nsl_stddev(500, 0.0)
        with pytest.raises(ValueError):
            nsl_stddev(-1, 0.5)
        with pytest.raises(ValueError):
            nsl_stddev_after_probes(500, 0.5, 0)


class TestTWaitWiden:
    """Loss-episode widening: bounded growth, sample-driven decay."""

    def test_widen_inflates_t_wait(self):
        t = TWaitEstimator(initial=0.1)
        base = t.t_wait
        t.widen(2.0)
        assert t.t_wait == pytest.approx(base * 2.0)
        assert t.base == pytest.approx(base)  # EWMA untouched

    def test_widen_capped_at_max_widen(self):
        t = TWaitEstimator(initial=0.1, max_widen=4.0)
        for _ in range(50):
            t.widen(1.5)
        assert t.boost == pytest.approx(4.0)
        assert t.t_wait == pytest.approx(0.1 * 4.0)

    def test_fresh_samples_decay_boost(self):
        t = TWaitEstimator(initial=0.1, max_widen=16.0)
        for _ in range(10):
            t.widen(2.0)
        assert t.boost == pytest.approx(16.0)
        for _ in range(40):
            t.record_last_ack(0.1)
        assert t.boost == pytest.approx(1.0)
        assert t.t_wait == pytest.approx(0.1, rel=0.05)

    def test_decay_is_geometric(self):
        t = TWaitEstimator(initial=0.1)
        t.record_last_ack(0.1)  # bootstrap: decay applies to later samples
        t.widen(4.0)
        t.record_last_ack(0.1)
        assert t.boost == pytest.approx(1.0 + 3.0 * 0.5)

    def test_widen_before_first_measurement_is_a_search_not_evidence(self):
        """A pre-measurement widen() loop (Acker Selection kept coming up
        empty) inflates the guess so an ACK can finally arrive — but once
        one does, the measurement wins outright: no residual boost, no
        seed bias left in the EWMA."""
        t = TWaitEstimator(alpha=0.125, initial=0.01, max_widen=16.0)
        for _ in range(10):
            t.widen(2.0)
        assert t.boost == pytest.approx(16.0)
        t.record_last_ack(0.12)  # true RTT, well inside the widened window
        assert t.base == pytest.approx(0.12)
        assert t.boost == pytest.approx(1.0)
        assert t.t_wait == pytest.approx(0.12)

    def test_decay_never_undercuts_fresh_evidence(self):
        """The boost halves per sample, but t_wait must still cover the
        (capped) arrival time just folded in — otherwise the very next
        collection window is a guaranteed miss."""
        t = TWaitEstimator(alpha=0.125, initial=0.1, max_widen=16.0)
        t.record_last_ack(0.1)
        t.widen(8.0)  # loss episode: window now 0.8
        last = t.record_last_ack(0.75)  # last ACK genuinely arrived at 0.75
        assert last >= 0.75
        assert t.boost <= 16.0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            TWaitEstimator(max_widen=0.5)
        t = TWaitEstimator()
        with pytest.raises(ValueError):
            t.widen(1.0)

    def test_statack_config_carries_cap(self):
        from repro.core.config import StatAckConfig

        assert StatAckConfig().t_wait_max_widen == 16.0
        with pytest.raises(Exception):
            StatAckConfig(t_wait_max_widen=0.5)
