"""Wire-format unit tests: round-trips, malformed input, registry rules."""

from __future__ import annotations

import pytest

from repro.core import packets as P
from repro.core.errors import DecodeError, EncodeError


ALL_PACKETS = [
    P.DataPacket(group="g", seq=7, payload=b"hello", epoch=2),
    P.DataPacket(group="terrain/bridge/17", seq=1, payload=b"", epoch=0),
    P.HeartbeatPacket(group="g", seq=7, hb_index=3, epoch=2),
    P.HeartbeatPacket(group="g", seq=0, hb_index=1),
    P.NackPacket(group="g", seqs=(1,)),
    P.NackPacket(group="g", seqs=tuple(range(1, 65))),
    P.RetransPacket(group="g", seq=9, payload=b"x" * 1000, epoch=5),
    P.LogAckPacket(group="g", primary_seq=9, replica_seq=5),
    P.AckerSelectPacket(group="g", epoch=4, p_ack=0.03125, k=10),
    P.AckerResponsePacket(group="g", epoch=4),
    P.DataAckPacket(group="g", epoch=4, seq=7),
    P.ProbePacket(group="g", probe_id=1, p_ack=0.1),
    P.ProbeReplyPacket(group="g", probe_id=1),
    P.DiscoveryQueryPacket(group="g", ttl=4),
    P.DiscoveryReplyPacket(group="g", logger_addr="site1-logger", level=1),
    P.ReplUpdatePacket(group="g", seq=3, payload=b"abc"),
    P.ReplAckPacket(group="g", cum_seq=3),
    P.PrimaryQueryPacket(group="g"),
    P.PrimaryInfoPacket(group="g", primary_addr="10.0.0.1:4242"),
    P.PromotePacket(group="g", from_seq=4),
    P.ReplStatusQueryPacket(group="g"),
]


@pytest.mark.parametrize("packet", ALL_PACKETS, ids=lambda p: type(p).__name__ + str(ALL_PACKETS.index(p) if p in ALL_PACKETS else ""))
def test_roundtrip(packet):
    assert P.decode(P.encode(packet)) == packet


def test_roundtrip_preserves_group_unicode():
    packet = P.DataPacket(group="grüppe/µ", seq=1, payload=b"p")
    assert P.decode(P.encode(packet)).group == "grüppe/µ"


def test_decode_rejects_short_datagram():
    with pytest.raises(DecodeError):
        P.decode(b"LB")


def test_decode_rejects_bad_magic():
    data = bytearray(P.encode(P.PrimaryQueryPacket(group="g")))
    data[0:2] = b"XX"
    with pytest.raises(DecodeError):
        P.decode(bytes(data))


def test_decode_rejects_bad_version():
    data = bytearray(P.encode(P.PrimaryQueryPacket(group="g")))
    data[2] = 99
    with pytest.raises(DecodeError):
        P.decode(bytes(data))


def test_decode_rejects_unknown_type():
    data = bytearray(P.encode(P.PrimaryQueryPacket(group="g")))
    data[3] = 200
    with pytest.raises(DecodeError):
        P.decode(bytes(data))


def test_decode_rejects_truncated_body():
    data = P.encode(P.DataPacket(group="g", seq=1, payload=b"abcdef"))
    with pytest.raises(DecodeError):
        P.decode(data[:-3])


def test_decode_error_carries_data():
    try:
        P.decode(b"nope")
    except DecodeError as exc:
        assert exc.data == b"nope"
    else:  # pragma: no cover
        pytest.fail("expected DecodeError")


def test_nack_requires_sequences():
    with pytest.raises(EncodeError):
        P.NackPacket(group="g", seqs=()).encode_body()


def test_nack_enforces_max_batch():
    too_many = tuple(range(1, P.NackPacket.MAX_SEQS + 2))
    with pytest.raises(EncodeError):
        P.NackPacket(group="g", seqs=too_many).encode_body()


def test_oversized_payload_rejected():
    with pytest.raises(EncodeError):
        P.encode(P.DataPacket(group="g", seq=1, payload=b"x" * 70_000))


def test_oversized_group_rejected():
    with pytest.raises(EncodeError):
        P.encode(P.PrimaryQueryPacket(group="g" * 300))


def test_registry_rejects_duplicate_type():
    with pytest.raises(EncodeError):

        @P.register_packet
        class Dup(P.DataPacket):
            TYPE = P.PacketType.DATA

        del Dup  # pragma: no cover


def test_sequence_numbers_are_64_bit():
    packet = P.DataPacket(group="g", seq=2**63 + 5, payload=b"")
    assert P.decode(P.encode(packet)).seq == 2**63 + 5


def test_p_ack_round_trips_exactly():
    packet = P.AckerSelectPacket(group="g", epoch=1, p_ack=1.0 / 3.0, k=5)
    assert P.decode(P.encode(packet)).p_ack == pytest.approx(1.0 / 3.0, abs=0)


def test_heartbeat_zero_seq_legal():
    """A heartbeat before any data repeats sequence 0 (source idle)."""
    packet = P.HeartbeatPacket(group="g", seq=0, hb_index=4)
    assert P.decode(P.encode(packet)) == packet
