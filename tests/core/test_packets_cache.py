"""Codec memoization tests: correctness, accounting, and safety.

The encode/decode memos (``repro.core.packets``) are a pure performance
layer — every test here pins a way they could silently stop being one:
cached bytes drifting from the uncached path, a mutable packet escaping
into the cache, counters lying about hit rates, or the FIFO bound not
holding.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.baselines.senderreliable import PosAckDataPacket, PosAckPacket
from repro.baselines.srm import SrmRepairPacket, SrmRequestPacket, SrmSessionPacket
from repro.core import packets as P

from .test_packets import ALL_PACKETS

# One sample instance per registered extension type; together with
# ALL_PACKETS this must cover the full registry (enforced below).
EXTENSION_PACKETS = [
    PosAckDataPacket(group="g", seq=3, payload=b"pos"),
    PosAckPacket(group="g", cum_seq=3),
    SrmSessionPacket(group="g", seq=12),
    SrmRequestPacket(group="g", seq=11),
    SrmRepairPacket(group="g", seq=11, payload=b"repair"),
]

EVERY_PACKET = ALL_PACKETS + EXTENSION_PACKETS


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test sees empty, enabled memos and leaves none behind."""
    P.set_codec_caches(encode=True, decode=True)
    P.clear_codec_caches()
    yield
    P.set_codec_caches(encode=True, decode=True)
    P.clear_codec_caches()


def test_samples_cover_every_registered_type():
    """If a new packet type is registered, this file must learn about it."""
    sampled = {type(p).TYPE for p in EVERY_PACKET}
    assert sampled == set(P._REGISTRY), (
        "sample list out of sync with the packet registry; add an instance "
        f"for {sorted(set(P._REGISTRY) - sampled)}"
    )


@pytest.mark.parametrize("packet", EVERY_PACKET, ids=lambda p: type(p).__name__)
def test_cached_encode_is_bit_identical(packet):
    """Memoized bytes == uncached bytes, on miss and on hit."""
    expected = P.encode_uncached(packet)
    assert P.encode(packet) == expected  # miss path
    assert P.encode(packet) == expected  # hit path


@pytest.mark.parametrize("packet", EVERY_PACKET, ids=lambda p: type(p).__name__)
def test_cached_decode_matches_uncached(packet):
    wire = P.encode_uncached(packet)
    assert P.decode(wire) == P.decode_uncached(wire) == packet


def test_decode_hit_returns_shared_instance():
    """Identical datagrams decode to one frozen object, not copies."""
    wire = P.encode_uncached(P.DataPacket(group="g", seq=1, payload=b"x"))
    assert P.decode(wire) is P.decode(bytes(wire))


@pytest.mark.parametrize("packet", EVERY_PACKET, ids=lambda p: type(p).__name__)
def test_packets_are_immutable(packet):
    """Memoization is only sound because packets cannot be mutated."""
    field = dataclasses.fields(packet)[0].name
    with pytest.raises(dataclasses.FrozenInstanceError):
        setattr(packet, field, "mutated")


def test_stats_count_hits_and_misses():
    packet = P.HeartbeatPacket(group="g", seq=5, hb_index=1)
    P.encode(packet)
    P.encode(packet)
    P.encode(packet)
    stats = P.codec_cache_stats()["encode"]
    assert stats["misses"] == 1
    assert stats["hits"] == 2
    assert stats["size"] == 1


def test_hits_mirror_into_obs_counters():
    """While a registry is recording, every hit/miss bumps a counter."""
    packet = P.NackPacket(group="g", seqs=(4, 5))
    with obs.recording() as reg:
        P.encode(packet)
        P.encode(packet)
        wire = P.encode_uncached(packet)
        P.decode(wire)
        P.decode(wire)
        assert reg.counter_value("packets.encode_cache", result="miss") == 1
        assert reg.counter_value("packets.encode_cache", result="hit") == 1
        assert reg.counter_value("packets.decode_cache", result="miss") == 1
        assert reg.counter_value("packets.decode_cache", result="hit") == 1


def test_counters_rebind_across_recording_windows():
    """A fresh registry per window sees only its own window's traffic."""
    packet = P.ProbePacket(group="g", probe_id=2, p_ack=0.5)
    with obs.recording() as first:
        P.encode(packet)
    with obs.recording() as second:
        P.encode(packet)
        assert second.counter_value("packets.encode_cache", result="hit") == 1
        assert second.counter_value("packets.encode_cache", result="miss") == 0
    assert first.counter_value("packets.encode_cache", result="miss") == 1


def test_hits_off_recording_skip_registry_entirely():
    """With obs uninstalled the memo still counts locally (cheap ints)."""
    packet = P.DataAckPacket(group="g", epoch=1, seq=2)
    P.encode(packet)
    P.encode(packet)
    assert P.codec_cache_stats()["encode"] == {
        "hits": 1,
        "misses": 1,
        "size": 1,
        "enabled": True,
    }


def test_disabled_cache_takes_uncached_path():
    P.set_codec_caches(encode=False, decode=False)
    packet = P.DataPacket(group="g", seq=9, payload=b"raw")
    wire = P.encode(packet)
    assert wire == P.encode_uncached(packet)
    assert P.decode(wire) == packet
    stats = P.codec_cache_stats()
    assert stats["encode"] == {"hits": 0, "misses": 0, "size": 0, "enabled": False}
    assert stats["decode"] == {"hits": 0, "misses": 0, "size": 0, "enabled": False}


def test_encode_cache_is_fifo_bounded():
    """The memo never outgrows max_entries; oldest entries age out."""
    bound = P._ENCODE_CACHE.max_entries
    first = P.DataPacket(group="g", seq=0, payload=b"")
    P.encode(first)
    for seq in range(1, bound + 1):
        P.encode(P.DataPacket(group="g", seq=seq, payload=b""))
    stats = P.codec_cache_stats()["encode"]
    assert stats["size"] == bound
    assert first not in P._ENCODE_CACHE.entries  # evicted first-in
    P.encode(first)
    assert P.codec_cache_stats()["encode"]["misses"] == bound + 2
