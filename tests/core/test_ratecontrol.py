"""AIMD rate controller tests (§5 future work)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigError
from repro.core.ratecontrol import AimdRateController, RateControlConfig


def test_defaults_start_at_initial_rate():
    ctl = AimdRateController()
    assert ctl.rate == 10.0
    assert ctl.suggested_interval() == pytest.approx(0.1)


def test_additive_increase_on_success():
    ctl = AimdRateController(RateControlConfig(initial_rate=10, additive_increase=2.0))
    ctl.on_success()
    assert ctl.rate == 12.0


def test_multiplicative_decrease_on_loss():
    ctl = AimdRateController(RateControlConfig(initial_rate=100, multiplicative_decrease=0.5))
    ctl.on_loss()
    assert ctl.rate == 50.0
    ctl.on_loss()
    assert ctl.rate == 25.0


def test_rate_bounded():
    cfg = RateControlConfig(initial_rate=1.0, min_rate=1.0, max_rate=5.0)
    ctl = AimdRateController(cfg)
    for _ in range(100):
        ctl.on_success()
    assert ctl.rate == 5.0
    for _ in range(100):
        ctl.on_loss()
    assert ctl.rate == 1.0


def test_sawtooth_under_periodic_loss():
    """Classic AIMD behaviour: climbs, halves, climbs again."""
    ctl = AimdRateController(RateControlConfig(initial_rate=10, max_rate=100))
    peaks = []
    for _ in range(5):
        for _ in range(20):
            ctl.on_success()
        peaks.append(ctl.rate)
        ctl.on_loss()
    assert all(p > 10 for p in peaks)
    assert ctl.rate < peaks[-1]


def test_pacing():
    ctl = AimdRateController(RateControlConfig(initial_rate=10))
    assert ctl.can_send(0.0)
    ctl.note_send(0.0)
    assert not ctl.can_send(0.05)
    assert ctl.can_send(0.11)
    assert ctl.earliest_send(0.05) == pytest.approx(0.1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_rate": 0.0},
        {"max_rate": 0.05, "min_rate": 0.1},
        {"initial_rate": 0.01},
        {"additive_increase": 0.0},
        {"multiplicative_decrease": 1.0},
        {"multiplicative_decrease": 0.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigError):
        RateControlConfig(**kwargs)


def test_sender_requires_statack():
    from repro.core.config import LbrmConfig
    from repro.core.sender import LbrmSender

    with pytest.raises(ConfigError):
        LbrmSender("g", LbrmConfig(), primary=None, rate_control=RateControlConfig())


def test_sender_integration_slows_under_loss():
    """End-to-end over simnet: sustained loss halves the advised rate;
    a clean network lets it climb back."""
    from repro.core.config import LbrmConfig, StatAckConfig
    from repro.simnet import BernoulliLoss, DeploymentSpec, LbrmDeployment, NoLoss

    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=5, epoch_length=1000))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=10, receivers_per_site=1, enable_statack=True, config=cfg, seed=15,
    ))
    # Rebuild the sender with rate control (deployment doesn't expose it).
    from repro.core.sender import LbrmSender

    sender = LbrmSender(
        cfg and dep.spec.group, cfg, primary="primary",
        enable_statack=True, rate_control=RateControlConfig(initial_rate=10),
        addr_token="source", rng=dep.streams.stream("sender2"),
    )
    dep.source_node.machines[0] = sender
    dep.sender = sender
    dep.start()
    dep.advance(3.0)
    ctl = sender.rate_controller
    assert ctl is not None

    # lossy period: every site's tail drops 60% of packets
    for site in dep.receiver_sites:
        site.tail_down.loss = BernoulliLoss(0.6, dep.streams.stream(f"loss:{site.name}"))
    for _ in range(25):
        dep.send(b"x")
        dep.advance(0.5)
    lossy_rate = ctl.rate
    assert lossy_rate < 10.0
    assert ctl.stats["loss_signals"] > 0

    # clean period: rate climbs back
    for site in dep.receiver_sites:
        site.tail_down.loss = NoLoss()
    for _ in range(25):
        dep.send(b"x")
        dep.advance(0.5)
    assert ctl.rate > lossy_rate
