"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Log-Based Receiver-Reliable Multicast" in out
    assert "h_min=0.25" in out


def test_headline(capsys):
    assert main(["headline"]) == 0
    out = capsys.readouterr().out
    assert "53.2x" in out
    assert "500,000" in out


def test_quickstart_demo(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "delivered to 20/20" in out


def test_metrics_text(capsys):
    assert main(["metrics", "--sites", "2", "--receivers", "2", "--trace", "5"]) == 0
    out = capsys.readouterr().out
    assert "counters (" in out
    assert "histograms (" in out
    assert "receiver.recovery_latency" in out
    assert "sender.data_sent{node=source}" in out
    assert "trace (emitted=" in out


def test_metrics_json(capsys):
    import json

    assert main(["metrics", "--json", "--sites", "2", "--receivers", "2"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"]["sender.data_sent{node=source}"] == 10
    assert snap["histograms"]["receiver.recovery_latency"]["count"] > 0
    assert snap["trace"]["emitted"] > 0


def test_metrics_leaves_observability_off(capsys):
    from repro import obs

    assert main(["metrics", "--sites", "2", "--receivers", "2"]) == 0
    capsys.readouterr()
    assert not obs.registry().enabled


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_lists_all_demos():
    parser = build_parser()
    help_text = parser.format_help()
    for cmd in ("quickstart", "dis", "ticker", "failover", "live", "web", "headline", "metrics", "bench", "chaos"):
        assert cmd in help_text


def test_chaos_quick_writes_json(tmp_path, capsys):
    import json

    assert main([
        "chaos", "--quick", "--seed", "4", "--runs", "1", "--engine", "fast",
        "--out", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign" in out and "violations=0" in out
    report = json.loads((tmp_path / "CHAOS_seed4.json").read_text())
    assert report["campaign"]["tier"] == "quick"
    assert report["totals"]["violations"] == 0
    assert report["failures"] == []


def test_chaos_sabotage_exits_nonzero(tmp_path, capsys):
    assert main([
        "chaos", "--quick", "--seed", "4", "--runs", "1", "--engine", "fast",
        "--sabotage", "logger-retrans", "--out", str(tmp_path),
    ]) == 1
    out = capsys.readouterr().out
    assert "FAILURE" in out and "--seed 4" in out


def test_bench_quick_writes_json(tmp_path, capsys):
    import json

    assert main([
        "bench", "--quick", "--only", "logger_throughput", "--out", str(tmp_path)
    ]) == 0
    out = capsys.readouterr().out
    assert "logger_throughput" in out and "speedup" in out
    result = json.loads((tmp_path / "BENCH_logger_throughput.json").read_text())
    assert result["tier"] == "quick"
    assert set(result["engines"]) == {"fast", "reference"}
    # The harness asserts cross-engine agreement before writing.
    assert result["engines"]["fast"]["checks"] == result["engines"]["reference"]["checks"]
    assert result["speedup"] > 0


def test_bench_rejects_unknown_scenario(tmp_path, capsys):
    assert main(["bench", "--quick", "--only", "nonsense", "--out", str(tmp_path)]) == 2
    assert "unknown scenario" in capsys.readouterr().err
