"""CLI smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "Log-Based Receiver-Reliable Multicast" in out
    assert "h_min=0.25" in out


def test_headline(capsys):
    assert main(["headline"]) == 0
    out = capsys.readouterr().out
    assert "53.2x" in out
    assert "500,000" in out


def test_quickstart_demo(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "delivered to 20/20" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_parser_lists_all_demos():
    parser = build_parser()
    help_text = parser.format_help()
    for cmd in ("quickstart", "dis", "ticker", "failover", "live", "web", "headline"):
        assert cmd in help_text
