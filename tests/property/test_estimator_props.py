"""Property-based estimator tests: convergence and bounds."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import EwmaEstimator, GroupSizeEstimator, TWaitEstimator


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.0, max_value=100.0),
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50),
)
def test_ewma_stays_within_sample_hull(alpha, initial, samples):
    """The estimate never leaves [min, max] of everything seen so far."""
    est = EwmaEstimator(alpha=alpha, initial=initial)
    seen = [initial]
    for sample in samples:
        est.update(sample)
        seen.append(sample)
        assert min(seen) - 1e-9 <= est.estimate <= max(seen) + 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50))
def test_t_wait_always_positive(samples):
    est = TWaitEstimator(alpha=0.125, initial=0.1)
    for sample in samples:
        est.record_last_ack(sample)
        assert est.t_wait > 0


#: Interleaved operations on a TWaitEstimator: a float is an RTT sample
#: for record_last_ack, None is a widen() call.
_TWAIT_OPS = st.lists(
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6)),
    min_size=1,
    max_size=40,
)


@given(st.floats(min_value=1.5, max_value=32.0), _TWAIT_OPS)
def test_boost_bounded_under_any_interleaving(max_widen, ops):
    """boost stays in [1, max_widen] and t_wait stays positive no matter
    how widen() calls and RTT samples interleave — including widen()
    storms before the first measurement ever arrives."""
    est = TWaitEstimator(alpha=0.125, initial=0.1, max_widen=max_widen)
    for op in ops:
        if op is None:
            est.widen()
        else:
            est.record_last_ack(op)
        assert 1.0 <= est.boost <= max_widen * (1 + 1e-9)
        assert est.t_wait > 0


@given(st.floats(min_value=0.01, max_value=1.0), st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
def test_t_wait_growth_bounded_by_doubling(alpha, samples):
    """With no widening in play, the 2x sample cap bounds growth: the
    bootstrap step at most doubles t_wait (replacement capped at
    2×seed), every later update multiplies it by at most (1+alpha)."""
    est = TWaitEstimator(alpha=alpha, initial=0.1)
    for i, sample in enumerate(samples):
        before = est.t_wait
        est.record_last_ack(sample)
        # Relative slack: at t_wait magnitudes around 1e4 the float error
        # of the update itself exceeds any absolute epsilon.
        bound = 2.0 if i == 0 else (1 + alpha)
        assert est.t_wait <= before * bound * (1 + 1e-9) + 1e-12


@given(st.floats(min_value=1.5, max_value=32.0), _TWAIT_OPS.filter(lambda ops: any(op is not None for op in ops)))
def test_decay_never_undercuts_recorded_evidence(max_widen, ops):
    """While a widening episode decays, folding in a sample leaves the
    window covering the (capped) arrival time just observed — unless
    honouring it would breach the max_widen safety bound, which always
    takes precedence.  (Steady state, boost == 1, is the pure EWMA.)"""
    est = TWaitEstimator(alpha=0.125, initial=0.1, max_widen=max_widen)
    for op in ops:
        if op is None:
            est.widen()
            continue
        decaying = est.boost > 1.0
        capped = min(op, est.cap)
        est.record_last_ack(op)
        if decaying:
            assert est.t_wait >= min(capped, est.base * max_widen) - 1e-9


@given(
    st.floats(min_value=0.001, max_value=10.0),
    st.integers(min_value=0, max_value=20),
    st.floats(min_value=0.0, max_value=1e3),
)
def test_first_measurement_replaces_seed(initial, widens, rtt):
    """However the seed was widened beforehand, the first real sample
    becomes the base outright (capped, floored at a positive epsilon)
    and clears the boost."""
    est = TWaitEstimator(alpha=0.125, initial=initial, max_widen=16.0)
    for _ in range(widens):
        est.widen()
    cap_before = est.cap
    est.record_last_ack(rtt)
    assert est.boost == 1.0
    assert est.base == pytest.approx(max(min(rtt, cap_before), 1e-6))
    assert est.t_wait > 0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=2000), st.integers(min_value=0, max_value=1000))
def test_bootstrap_always_terminates(n, seed):
    """Probing converges for every group size (including tiny ones)."""
    rng = random.Random(seed)
    est = GroupSizeEstimator()
    rounds = 0
    while not est.converged:
        probe = est.next_round()
        assert probe is not None
        replies = sum(1 for _ in range(n) if rng.random() < probe.p_ack)
        est.record_round(probe.probe_id, replies)
        rounds += 1
        assert rounds < 50, "bootstrap failed to converge"
    assert est.estimate >= 1.0


@given(
    st.floats(min_value=1.0, max_value=10_000.0),
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.001, max_value=1.0),
)
def test_refine_never_below_one(seeded, k_prime, p_ack):
    est = GroupSizeEstimator()
    est.seed(seeded)
    est.refine(k_prime, p_ack)
    assert est.estimate >= 1.0
