"""Property-based estimator tests: convergence and bounds."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import EwmaEstimator, GroupSizeEstimator, TWaitEstimator


@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.0, max_value=100.0),
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50),
)
def test_ewma_stays_within_sample_hull(alpha, initial, samples):
    """The estimate never leaves [min, max] of everything seen so far."""
    est = EwmaEstimator(alpha=alpha, initial=initial)
    seen = [initial]
    for sample in samples:
        est.update(sample)
        seen.append(sample)
        assert min(seen) - 1e-9 <= est.estimate <= max(seen) + 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50))
def test_t_wait_always_positive(samples):
    est = TWaitEstimator(alpha=0.125, initial=0.1)
    for sample in samples:
        est.record_last_ack(sample)
        assert est.t_wait > 0


@given(st.floats(min_value=0.01, max_value=1.0), st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
def test_t_wait_growth_bounded_by_doubling(alpha, samples):
    """The 2x cap means one update multiplies t_wait by at most (1+alpha)."""
    est = TWaitEstimator(alpha=alpha, initial=0.1)
    for sample in samples:
        before = est.t_wait
        est.record_last_ack(sample)
        # Relative slack: at t_wait magnitudes around 1e4 the float error
        # of the update itself exceeds any absolute epsilon.
        assert est.t_wait <= before * (1 + alpha) * (1 + 1e-9) + 1e-12


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=2000), st.integers(min_value=0, max_value=1000))
def test_bootstrap_always_terminates(n, seed):
    """Probing converges for every group size (including tiny ones)."""
    rng = random.Random(seed)
    est = GroupSizeEstimator()
    rounds = 0
    while not est.converged:
        probe = est.next_round()
        assert probe is not None
        replies = sum(1 for _ in range(n) if rng.random() < probe.p_ack)
        est.record_round(probe.probe_id, replies)
        rounds += 1
        assert rounds < 50, "bootstrap failed to converge"
    assert est.estimate >= 1.0


@given(
    st.floats(min_value=1.0, max_value=10_000.0),
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.001, max_value=1.0),
)
def test_refine_never_below_one(seeded, k_prime, p_ack):
    est = GroupSizeEstimator()
    est.seed(seeded)
    est.refine(k_prime, p_ack)
    assert est.estimate >= 1.0
