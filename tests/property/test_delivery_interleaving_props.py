"""Interleaving properties: loss, reordering, and duplication are safe.

The receiver-reliable contract (§1-§2): whatever order the network
delivers, repeats, or drops packets in, the receiver must (a) deliver
each sequence exactly once, (b) never un-deliver data it already has,
and (c) account every undelivered interior sequence as missing.  The
log store's matching contract: an entry is retrievable with its
original payload from first append until lifetime expiry, under any
interleaving of appends and expiry sweeps.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import LogMissError
from repro.core.log_store import PacketLog
from repro.core.sequence import SequenceTracker

# One network-level occurrence: a data arrival (possibly a duplicate or a
# reordered retransmission) or a heartbeat asserting the source's highest.
arrival = st.one_of(
    st.tuples(st.just("data"), st.integers(min_value=1, max_value=60)),
    st.tuples(st.just("hb"), st.integers(min_value=0, max_value=60)),
)
interleavings = st.lists(arrival, min_size=1, max_size=120)


def _baseline(ops) -> int | None:
    """The tracker's baseline: the first seq that starts it — data with
    any seq, or a heartbeat with seq > 0 (idle heartbeats don't count)."""
    for kind, seq in ops:
        if kind == "data" or seq > 0:
            return seq
    return None


def _drive(tracker: SequenceTracker, ops) -> list[int]:
    delivered: list[int] = []
    for op, seq in ops:
        if op == "data":
            if tracker.observe_data(seq).is_new:
                delivered.append(seq)
        else:
            tracker.observe_heartbeat(seq)
    return delivered


@given(interleavings)
def test_each_sequence_delivered_at_most_once(ops):
    delivered = _drive(SequenceTracker(), ops)
    assert len(delivered) == len(set(delivered))


@given(interleavings)
def test_delivered_data_is_never_lost(ops):
    """has() is monotone: once delivered, a sequence stays delivered
    through any further interleaving of arrivals."""
    tracker = SequenceTracker()
    held: set[int] = set()
    for op, seq in ops:
        if op == "data":
            tracker.observe_data(seq)
        else:
            tracker.observe_heartbeat(seq)
        now_held = {s for s in range(1, 62) if tracker.has(s)}
        assert held <= now_held, f"previously held {held - now_held} vanished"
        held = now_held


@given(interleavings)
def test_missing_accounts_every_undelivered_interior_seq(ops):
    tracker = SequenceTracker()
    delivered = set(_drive(tracker, ops))
    if not tracker.started:
        assert tracker.missing == frozenset()
        return
    first = _baseline(ops)
    interior = set(range(first, tracker.highest + 1))
    assert set(tracker.missing) == interior - delivered
    # and nothing both delivered and missing
    assert not (delivered & set(tracker.missing))


@given(interleavings, st.randoms(use_true_random=False))
def test_recovery_in_any_order_converges(ops, rng):
    """Replaying the missing set as retransmissions — shuffled and
    duplicated arbitrarily — always empties it, and afterwards every
    interior sequence is held."""
    tracker = SequenceTracker()
    _drive(tracker, ops)
    repairs = list(tracker.missing) * 2  # every repair arrives twice
    rng.shuffle(repairs)
    for seq in repairs:
        tracker.observe_data(seq)
    assert tracker.missing == frozenset()
    if tracker.started:
        for seq in range(_baseline(ops), tracker.highest + 1):
            assert tracker.has(seq)


# -- log store: append/expiry interleavings ---------------------------------

LIFETIME = 10.0

log_ops = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),  # time step
        st.one_of(
            st.tuples(
                st.just("append"),
                st.integers(min_value=1, max_value=40),
                st.binary(max_size=16),
            ),
            st.tuples(st.just("expire")),
        ),
    ),
    min_size=1,
    max_size=80,
)


@given(log_ops)
def test_log_store_expiry_interleaving_never_loses_live_data(timeline):
    """Under any interleaving of appends and expiry sweeps, an entry is
    retrievable with its first-appended payload exactly while it is
    within its lifetime, and gone afterwards."""
    log = PacketLog(lifetime=LIFETIME)
    model: dict[int, tuple[bytes, float]] = {}  # seq -> (payload, logged_at)
    now = 0.0
    for step, op in timeline:
        now += step
        if op[0] == "append":
            _, seq, payload = op
            if log.append(seq, payload, now=now):
                model[seq] = (payload, now)
            else:
                # idempotent: a re-append never overwrites
                assert seq in model or seq not in log
        else:
            log.expire(now)
            cutoff = now - LIFETIME
            model = {
                s: (p, t) for s, (p, t) in model.items() if t >= cutoff
            }
        # every live model entry is retrievable, byte-identical
        for seq, (payload, _) in model.items():
            assert log.get(seq).payload == payload
    # final sweep: anything past its lifetime must be unreachable
    log.expire(now + 2 * LIFETIME)
    for seq in model:
        try:
            log.get(seq)
        except LogMissError:
            continue
        raise AssertionError(f"seq {seq} survived full expiry")


@given(log_ops)
def test_log_store_len_matches_model(timeline):
    log = PacketLog(lifetime=LIFETIME)
    model: dict[int, float] = {}
    now = 0.0
    for step, op in timeline:
        now += step
        if op[0] == "append":
            _, seq, payload = op
            if log.append(seq, payload, now=now):
                model[seq] = now
        else:
            expired = log.expire(now)
            cutoff = now - LIFETIME
            doomed = {s for s, t in model.items() if t < cutoff}
            assert expired == len(doomed)
            for s in doomed:
                del model[s]
        assert len(log) == len(model)
        assert (log.lowest is None) == (not model)
        if model:
            assert log.lowest == min(model)
            assert log.highest == max(model)
