"""Property tests for the bundle framing codec (transport fast path).

A bundle is pure framing: each frame is one complete single-packet
datagram, byte-identical to an unbundled send.  These properties pin
the two guarantees the aio transport builds on:

* totality of the roundtrip — any sequence of encoded packets (every
  registered type) survives ``encode_bundle`` → ``iter_bundle`` →
  ``decode_from`` unchanged, and the frames alias the bundle buffer
  (zero copies) without depending on it after decode;
* rejection safety — truncated, bit-flipped, or garbage bundle bytes
  either parse as *something* or raise :class:`DecodeError`, never a
  raw ``struct.error``/``IndexError`` that would crash a receive
  callback, and ``iter_bundle`` validates the whole frame table before
  yielding anything (no half-dispatched bundles).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import packets as P
from repro.core.errors import DecodeError, EncodeError

# Strategies derived from each class's WIRE declaration (the same
# derivation test_codec_conformance.py uses), so a newly registered
# packet type is fuzzed through the bundle path automatically.
_GROUPS = st.text(min_size=1, max_size=24).filter(lambda s: len(s.encode()) <= 255)

_KIND_VALUES = {
    "u8": st.integers(min_value=0, max_value=2**8 - 1),
    "u16": st.integers(min_value=0, max_value=2**16 - 1),
    "u32": st.integers(min_value=0, max_value=2**32 - 1),
    "u64": st.integers(min_value=0, max_value=2**64 - 1),
    "f64": st.floats(allow_nan=False, width=64),
    "bytes": st.binary(max_size=256),
    "str": st.text(max_size=24).filter(lambda s: len(s.encode()) <= 255),
    "u64seq": st.lists(
        st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=16
    ).map(tuple),
}


def _packet_strategy(cls):
    wire = cls.__dict__.get("WIRE") or ()
    spec = {"group": _GROUPS}
    for name, kind in wire:
        spec[name] = _KIND_VALUES[kind]
    return st.fixed_dictionaries(spec).map(lambda kw: cls(**kw))


_ALL_CLASSES = [cls for _, cls in sorted(P._REGISTRY.items())]
_PACKETS = st.one_of([_packet_strategy(cls) for cls in _ALL_CLASSES])
_PACKET_LISTS = st.lists(_PACKETS, min_size=1, max_size=12)


@settings(max_examples=200, deadline=None)
@given(_PACKET_LISTS)
def test_bundle_roundtrip_every_registered_type(pkts):
    """encode_bundle → iter_bundle → decode_from is the identity."""
    wires = [P.encode_uncached(p) for p in pkts]
    bundle = P.encode_bundle(wires)
    assert P.is_bundle(bundle)
    frames = P.iter_bundle(bundle)
    assert [bytes(f) for f in frames] == wires
    assert [P.decode_from(f) for f in frames] == pkts


@settings(max_examples=100, deadline=None)
@given(_PACKET_LISTS)
def test_decoded_packets_survive_buffer_reuse(pkts):
    """decode_from materializes packets: scribbling over the receive
    buffer afterwards (as a recv ring does) must not corrupt them."""
    wires = [P.encode_uncached(p) for p in pkts]
    buf = bytearray(P.encode_bundle(wires))
    decoded = [P.decode_from(f) for f in P.iter_bundle(buf)]
    buf[:] = b"\xaa" * len(buf)
    assert decoded == pkts


@settings(max_examples=150, deadline=None)
@given(_PACKET_LISTS, st.data())
def test_truncated_bundle_always_raises_decode_error(pkts, data):
    """Any proper prefix of a bundle fails atomically in iter_bundle."""
    bundle = P.encode_bundle([P.encode_uncached(p) for p in pkts])
    cut = data.draw(st.integers(min_value=1, max_value=len(bundle)))
    with pytest.raises(DecodeError):
        P.iter_bundle(bundle[: len(bundle) - cut])


def test_every_truncation_point_of_trailing_frame_raises():
    """Exhaustive (not sampled) sweep over a multi-frame bundle: cutting
    at *any* byte — mid frame body, mid the final frame's u16 length
    prefix, or right after it — raises DecodeError.  A short final
    length-prefix in particular must never be read as "frame of length
    <first byte>" or silently dropped."""
    wires = [
        P.encode_uncached(P.ProbeReplyPacket(group="g", probe_id=i))
        for i in range(1, 4)
    ]
    bundle = P.encode_bundle(wires)
    assert P.iter_bundle(bundle)  # sanity: intact bundle parses
    for end in range(P.BUNDLE_OVERHEAD, len(bundle)):
        with pytest.raises(DecodeError):
            P.iter_bundle(bundle[:end])


def test_one_byte_final_length_prefix_raises():
    """The sharpest trailing truncation: all but one byte of the final
    frame's length prefix is gone, so reading a u16 there would run off
    the buffer.  The frame-table validation must reject it eagerly."""
    wires = [
        P.encode_uncached(P.ProbeReplyPacket(group="g", probe_id=1)),
        P.encode_uncached(P.ReplAckPacket(group="g", cum_seq=9)),
    ]
    bundle = P.encode_bundle(wires)
    short = bundle[: len(bundle) - len(wires[-1]) - 1]  # 1 byte of u16 left
    with pytest.raises(DecodeError, match="frame length"):
        P.iter_bundle(short)


@settings(max_examples=150, deadline=None)
@given(_PACKET_LISTS, st.data())
def test_truncated_final_packet_in_honest_frame_raises(pkts, data):
    """A bundle whose framing is intact but whose *final datagram* was
    truncated before bundling: iter_bundle hands the short frame over
    (the frame table is honest about its length), and decode_from must
    then raise — never return a partially-populated packet."""
    wires = [P.encode_uncached(p) for p in pkts]
    cut = data.draw(st.integers(min_value=1, max_value=len(wires[-1]) - 1))
    wires[-1] = wires[-1][:-cut]
    frames = P.iter_bundle(P.encode_bundle(wires))
    assert [P.decode_from(f) for f in frames[:-1]] == pkts[:-1]
    with pytest.raises(DecodeError):
        P.decode_from(frames[-1])


@settings(max_examples=150, deadline=None)
@given(_PACKET_LISTS, st.binary(min_size=1, max_size=8))
def test_trailing_garbage_rejected(pkts, suffix):
    bundle = P.encode_bundle([P.encode_uncached(p) for p in pkts])
    with pytest.raises(DecodeError):
        P.iter_bundle(bundle + suffix)


@settings(max_examples=200, deadline=None)
@given(_PACKET_LISTS, st.data())
def test_flipped_byte_never_escapes_decode_error(pkts, data):
    """Single-byte corruption anywhere in a bundle either still parses
    (flip landed in a payload) or raises DecodeError at iter_bundle or
    decode_from — never struct.error, UnicodeDecodeError, IndexError."""
    bundle = bytearray(P.encode_bundle([P.encode_uncached(p) for p in pkts]))
    index = data.draw(st.integers(min_value=0, max_value=len(bundle) - 1))
    bundle[index] ^= data.draw(st.integers(min_value=1, max_value=255))
    try:
        frames = P.iter_bundle(bytes(bundle))
    except DecodeError:
        return
    for frame in frames:
        try:
            packet = P.decode_from(frame)
        except DecodeError:
            continue
        assert isinstance(packet, P.Packet)


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=192))
def test_garbage_never_crashes_iter_bundle(data):
    try:
        frames = P.iter_bundle(data)
    except DecodeError:
        return
    for frame in frames:
        try:
            P.decode_from(frame)
        except DecodeError:
            pass


@settings(max_examples=100, deadline=None)
@given(_PACKETS)
def test_single_packet_wire_is_never_mistaken_for_a_bundle(pkt):
    """The magics ('LB' packet vs 'Lb' bundle) are disjoint: a plain
    datagram never takes the bundle branch and vice versa."""
    wire = P.encode_uncached(pkt)
    assert not P.is_bundle(wire)
    bundle = P.encode_bundle([wire])
    with pytest.raises(DecodeError):
        P.decode_from(bundle)


def test_encode_bundle_rejects_empty_and_oversized():
    wire = P.encode_uncached(P.ProbeReplyPacket(group="g", probe_id=1))
    with pytest.raises(EncodeError):
        P.encode_bundle([])
    with pytest.raises(EncodeError):
        P.encode_bundle([wire] * (P.MAX_BUNDLE_FRAMES + 1))
    # The cap itself is fine.
    frames = P.iter_bundle(P.encode_bundle([wire] * P.MAX_BUNDLE_FRAMES))
    assert len(frames) == P.MAX_BUNDLE_FRAMES


def test_iter_bundle_rejects_zero_count_and_bad_version():
    wire = P.encode_uncached(P.ProbeReplyPacket(group="g", probe_id=1))
    bundle = bytearray(P.encode_bundle([wire]))
    zero = bytes(bundle[:3]) + b"\x00"  # header with count=0, no frames
    with pytest.raises(DecodeError):
        P.iter_bundle(zero)
    bundle[2] ^= 0xFF  # version byte
    with pytest.raises(DecodeError):
        P.iter_bundle(bytes(bundle))


def test_bundle_overhead_constants_match_the_wire():
    """The TX coalescer budgets datagrams with these constants; they
    must equal the actual framing cost."""
    w1 = P.encode_uncached(P.ProbeReplyPacket(group="g", probe_id=1))
    w2 = P.encode_uncached(P.ReplAckPacket(group="g", cum_seq=9))
    bundle = P.encode_bundle([w1, w2])
    expected = (
        P.BUNDLE_OVERHEAD
        + len(w1) + P.BUNDLE_FRAME_OVERHEAD
        + len(w2) + P.BUNDLE_FRAME_OVERHEAD
    )
    assert len(bundle) == expected
