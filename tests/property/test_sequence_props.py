"""Property-based tests for SequenceTracker invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequence import SequenceTracker

seqs = st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=100)


@given(seqs)
def test_missing_is_exactly_unobserved_interior(observed):
    tracker = SequenceTracker()
    for seq in observed:
        tracker.observe_data(seq)
    first, high = observed[0], max(observed)
    expected_missing = set(range(first, high + 1)) - set(observed)
    # Sequences below the baseline are never "missing".
    expected_missing = {s for s in expected_missing if s >= first}
    assert set(tracker.missing) == expected_missing
    assert tracker.highest == high


@given(seqs)
def test_each_sequence_new_at_most_once(observed):
    tracker = SequenceTracker()
    new_count: dict[int, int] = {}
    for seq in observed:
        report = tracker.observe_data(seq)
        if report.is_new:
            new_count[seq] = new_count.get(seq, 0) + 1
    assert all(count == 1 for count in new_count.values())
    # duplicates accounted exactly
    assert tracker.duplicates == len(observed) - len(new_count)


@given(seqs)
def test_has_matches_observation(observed):
    tracker = SequenceTracker()
    for seq in observed:
        tracker.observe_data(seq)
    for seq in range(1, max(observed) + 2):
        if observed[0] <= seq <= max(observed) and seq in set(observed):
            assert tracker.has(seq)
        elif seq < observed[0] or seq > max(observed):
            assert not tracker.has(seq)


@given(seqs, st.integers(min_value=1, max_value=250))
def test_heartbeat_never_delivers_but_extends(observed, hb_seq):
    tracker = SequenceTracker()
    for seq in observed:
        tracker.observe_data(seq)
    high_before = tracker.highest
    report = tracker.observe_heartbeat(hb_seq)
    assert not report.is_new
    assert tracker.highest == max(high_before, hb_seq)
    if hb_seq > high_before:
        assert set(report.new_gaps) == set(range(high_before + 1, hb_seq + 1))


@given(seqs)
def test_observing_all_gaps_clears_missing(observed):
    tracker = SequenceTracker()
    for seq in observed:
        tracker.observe_data(seq)
    for seq in list(tracker.missing):
        tracker.observe_data(seq)
    assert tracker.missing == frozenset()


@given(seqs, seqs)
def test_abandon_is_idempotent_and_complete(observed, abandoned):
    tracker = SequenceTracker()
    for seq in observed:
        tracker.observe_data(seq)
    tracker.abandon(abandoned)
    tracker.abandon(abandoned)
    assert not (set(abandoned) & set(tracker.missing))
