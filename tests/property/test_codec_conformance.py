"""Differential codec conformance: struct fast path vs legacy spec.

The per-field ``encode_body`` / ``decode_body`` methods are the
executable wire-format specification; the precompiled ``struct`` codecs
are the fast path the hot loops actually run.  This suite fuzzes every
registered packet type — the strategies are derived from each class's
``WIRE`` declaration, so a new packet type is covered the moment it is
registered — and asserts the two paths are indistinguishable:

* identical bytes out of ``encode`` for identical packets,
* identical packets out of ``decode`` for identical bytes,
* identical rejection of truncated, extended, and garbage datagrams,
  always via :class:`DecodeError` — a raw ``struct.error`` escaping
  either path is a crash bug in a transport callback.

A ``DecodeError`` from one mode with a successful parse in the other
would let a mixed fleet (old decoder, new encoder or vice versa)
disagree about what is on the wire, so every assertion here runs the
same input through both modes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import packets as P
from repro.core.errors import DecodeError

# -- strategies derived from the WIRE specs ----------------------------------

_GROUPS = st.text(min_size=1, max_size=24).filter(lambda s: len(s.encode()) <= 255)

_KIND_VALUES = {
    "u8": st.integers(min_value=0, max_value=2**8 - 1),
    "u16": st.integers(min_value=0, max_value=2**16 - 1),
    "u32": st.integers(min_value=0, max_value=2**32 - 1),
    "u64": st.integers(min_value=0, max_value=2**64 - 1),
    "f64": st.floats(allow_nan=False, width=64),
    "bytes": st.binary(max_size=512),
    "str": st.text(max_size=24).filter(lambda s: len(s.encode()) <= 255),
    "u64seq": st.lists(
        st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=32
    ).map(tuple),
}


def _packet_strategy(cls):
    wire = cls.__dict__.get("WIRE") or ()
    spec = {"group": _GROUPS}
    for name, kind in wire:
        spec[name] = _KIND_VALUES[kind]
    return st.fixed_dictionaries(spec).map(lambda kw: cls(**kw))


# Every registered type, in wire-type order.  The one_of covers the
# whole registry in each property; the parametrized tests below pin the
# per-class cases so a failure names the offending type directly.
_ALL_CLASSES = [cls for _, cls in sorted(P._REGISTRY.items())]
_PACKETS = st.one_of([_packet_strategy(cls) for cls in _ALL_CLASSES])


def _with_mode(mode, fn):
    """Run ``fn`` under a codec mode, restoring the process default."""
    prior = P.codec_mode()
    P.set_codec_mode(mode)
    try:
        return fn()
    finally:
        P.set_codec_mode(prior)


def _decode_both(data):
    """Decode under both modes; return (struct_outcome, legacy_outcome).

    Outcomes are ``("ok", packet)`` or ``("error", message)``.  Only
    :class:`DecodeError` counts as rejection — anything else (above all
    ``struct.error``) propagates and fails the test.
    """
    outcomes = []
    for mode in ("struct", "legacy"):
        try:
            packet = _with_mode(mode, lambda: P.decode_uncached(data))
        except DecodeError:
            outcomes.append(("error",))
        else:
            outcomes.append(("ok", packet))
    return outcomes


@pytest.mark.parametrize("cls", _ALL_CLASSES, ids=lambda c: c.__name__)
def test_every_registered_type_has_a_struct_codec(cls):
    """The fast path may never silently fall back for a registered type."""
    assert cls in P._STRUCT_ENCODERS
    assert int(cls.TYPE) in P._STRUCT_DECODERS


@settings(max_examples=300, deadline=None)
@given(_PACKETS)
def test_struct_and_legacy_encodings_identical(pkt):
    wire_struct = _with_mode("struct", lambda: P.encode_uncached(pkt))
    wire_legacy = _with_mode("legacy", lambda: P.encode_uncached(pkt))
    assert wire_struct == wire_legacy


@settings(max_examples=300, deadline=None)
@given(_PACKETS)
def test_struct_and_legacy_roundtrip_identical(pkt):
    wire = _with_mode("legacy", lambda: P.encode_uncached(pkt))
    via_struct = _with_mode("struct", lambda: P.decode_uncached(wire))
    via_legacy = _with_mode("legacy", lambda: P.decode_uncached(wire))
    assert type(via_struct) is type(pkt)
    assert via_struct == pkt
    assert via_legacy == pkt


@settings(max_examples=150, deadline=None)
@given(_PACKETS, st.data())
def test_truncation_rejected_identically(pkt, data):
    """Any proper prefix of a valid datagram fails in both modes."""
    wire = _with_mode("struct", lambda: P.encode_uncached(pkt))
    cut = data.draw(st.integers(min_value=1, max_value=len(wire)))
    struct_out, legacy_out = _decode_both(wire[: len(wire) - cut])
    # Cutting from a correct encoding can never leave a shorter valid
    # parse (every body codec checks exact length), so both must reject.
    assert struct_out == ("error",)
    assert legacy_out == ("error",)


@settings(max_examples=150, deadline=None)
@given(_PACKETS, st.binary(min_size=1, max_size=8))
def test_trailing_garbage_rejected_identically(pkt, suffix):
    wire = _with_mode("struct", lambda: P.encode_uncached(pkt))
    struct_out, legacy_out = _decode_both(wire + suffix)
    assert struct_out == ("error",)
    assert legacy_out == ("error",)


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=128))
def test_garbage_outcomes_identical(data):
    """Arbitrary bytes: both modes agree — same packet or both reject."""
    struct_out, legacy_out = _decode_both(data)
    assert struct_out == legacy_out


@settings(max_examples=150, deadline=None)
@given(_PACKETS, st.data())
def test_flipped_byte_never_escapes_decode_error(pkt, data):
    """Single-byte corruption parses as *something* or raises DecodeError.

    The interesting corruptions are in-structure (length fields, type
    byte, count words) — exactly where a naive codec lets struct.error
    or UnicodeDecodeError out.  _decode_both re-raises anything that is
    not a DecodeError.
    """
    wire = bytearray(_with_mode("struct", lambda: P.encode_uncached(pkt)))
    index = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    wire[index] ^= flip
    struct_out, legacy_out = _decode_both(bytes(wire))
    if struct_out[0] == "ok" and legacy_out[0] == "ok":
        assert struct_out[1] == legacy_out[1]


# -- input normalization (the transport hands us whatever it has) ------------


def test_decode_accepts_bytearray_and_memoryview():
    """Regression: asyncio transports deliver bytearray/memoryview.

    The memoized ``decode`` probes a dict keyed by wire bytes; an
    unhashable bytearray used to raise TypeError before normalization.
    Both views must parse, hit the same memo entry as the bytes input,
    and never poison the cache with a non-bytes key.
    """
    pkt = P.DataPacket(group="g", seq=7, payload=b"payload", epoch=3)
    wire = P.encode(pkt)
    P.clear_codec_caches()
    from_bytes = P.decode(wire)
    from_bytearray = P.decode(bytearray(wire))
    from_memoryview = P.decode(memoryview(wire))
    assert from_bytes == from_bytearray == from_memoryview == pkt
    # All three probes resolved to one cached object (one miss, two hits)
    # and the memo holds only hashable bytes keys.
    assert from_bytes is from_bytearray is from_memoryview
    stats = P.codec_cache_stats()["decode"]
    assert stats["size"] >= 1
    assert all(type(k) is bytes for k in P._DECODE_CACHE.entries)


def test_decode_uncached_accepts_bytearray_and_memoryview():
    pkt = P.NackPacket(group="g", seqs=(4, 9))
    wire = P.encode_uncached(pkt)
    assert P.decode_uncached(bytearray(wire)) == pkt
    assert P.decode_uncached(memoryview(wire)) == pkt


def test_decode_rejects_malformed_bytearray_with_decode_error():
    with pytest.raises(DecodeError):
        P.decode(bytearray(b"\x00\x01\x02"))
    with pytest.raises(DecodeError):
        P.decode_uncached(memoryview(b"LBRM-but-not-really"))
