"""Property tests need hypothesis; skip the directory gracefully without it.

hypothesis is an optional dev dependency (``pip install -e .[dev]``) —
a bare install must still be able to run the rest of the suite.
"""

try:
    import hypothesis  # noqa: F401
except ImportError:  # pragma: no cover - exercised only on bare installs
    collect_ignore_glob = ["test_*.py"]
