"""Property tests: no sampled fault schedule ever breaks the oracle.

The chaos campaign's sampler promises *recoverable by construction*:
every schedule it can emit describes a world LBRM is supposed to
survive.  Hypothesis explores that promise two ways —

* seed-driven: any sampler seed yields a schedule that runs clean on a
  2-site deployment under **both** engines, with bit-identical end
  states (the engine-equivalence guarantee extends to faulted runs);
* structure-driven: hand-built schedules of gentle receiver-side faults
  (crash/restart blips, pauses, short partitions, corruption windows)
  never violate the invariants either, independent of the sampler.

Any shrunk counterexample here is a protocol bug with a ready-made
reproducer schedule.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import Fault, FaultSchedule
from repro.chaos.campaign import TIERS, run_case, sample_schedule

_SHAPE = TIERS["quick"]  # 2 sites x 2 receivers, 1 replica, 10 packets

_SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _run_both(schedule: FaultSchedule, case_seed: int):
    fast = run_case(_SHAPE, schedule, case_seed, engine="fast")
    reference = run_case(_SHAPE, schedule, case_seed, engine="reference")
    return fast, reference


@_SLOW
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_sampled_schedules_never_violate_under_either_engine(seed: int):
    schedule = sample_schedule(random.Random(f"chaos-props:{seed}"), _SHAPE)
    fast, reference = _run_both(schedule, case_seed=seed)
    assert fast.violations == [], (schedule.to_dict(), [v.to_dict() for v in fast.violations])
    assert reference.violations == [], (
        schedule.to_dict(), [v.to_dict() for v in reference.violations],
    )
    assert fast.digest == reference.digest, schedule.to_dict()


# Gentle hand-built faults on the 2-site world: every crash is paired
# with a restart, every pause with a resume, partitions stay short, and
# corruption targets a receiver — mirroring the sampler's recoverability
# rules without reusing its code.
_RECEIVERS = [f"site{i}-rx{j}" for i in range(1, 3) for j in range(2)]


def _times(n=1):
    return st.floats(min_value=1.0, max_value=6.0, allow_nan=False).map(lambda t: round(t, 3))


_BLIP = st.tuples(
    st.sampled_from(_RECEIVERS),
    _times(),
    st.floats(min_value=0.3, max_value=1.5, allow_nan=False),
    st.sampled_from(["crash", "pause"]),
).map(
    lambda t: [
        Fault(t[3], t[1], t[0]),
        Fault({"crash": "restart", "pause": "resume"}[t[3]], round(t[1] + t[2], 3), t[0]),
    ]
)

_PARTITION = st.tuples(
    st.sampled_from(["site1", "site2"]),
    _times(),
    st.floats(min_value=0.3, max_value=1.5, allow_nan=False),
).map(lambda t: [Fault("partition", t[1], t[0], duration=round(t[2], 3))])

_CORRUPT = st.tuples(
    st.sampled_from(_RECEIVERS),
    _times(),
    st.floats(min_value=0.3, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.05, max_value=0.3, allow_nan=False),
).map(lambda t: [Fault("corrupt", t[1], t[0], duration=round(t[2], 3), amount=round(t[3], 3))])

_SCHEDULES = st.lists(
    st.one_of(_BLIP, _PARTITION, _CORRUPT), min_size=0, max_size=3
).flatmap(
    lambda groups: st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda s: FaultSchedule(
            faults=tuple(f for group in groups for f in group), seed=s
        )
    )
)


@_SLOW
@given(schedule=_SCHEDULES, case_seed=st.integers(min_value=0, max_value=2**16))
def test_structured_schedules_never_violate(schedule: FaultSchedule, case_seed: int):
    fast, reference = _run_both(schedule, case_seed)
    assert fast.violations == [], (schedule.to_dict(), [v.to_dict() for v in fast.violations])
    assert reference.violations == [], (
        schedule.to_dict(), [v.to_dict() for v in reference.violations],
    )
    assert fast.digest == reference.digest, schedule.to_dict()


@settings(max_examples=20, deadline=None)
@given(
    faults=st.lists(
        st.builds(
            Fault,
            kind=st.sampled_from(["crash", "partition", "corrupt", "skew"]),
            at=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            target=st.just("site1"),
            duration=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            amount=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        max_size=6,
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_schedule_roundtrips_and_stays_sorted(faults, seed):
    """Schedules are values: dict round-trips preserve them, faults stay
    time-sorted, and ``without`` only ever shrinks."""
    schedule = FaultSchedule(faults=tuple(faults), seed=seed)
    assert FaultSchedule.from_dict(schedule.to_dict()) == schedule
    times = [f.at for f in schedule.faults]
    assert times == sorted(times)
    for index in range(len(schedule)):
        assert len(schedule.without(index)) == len(schedule) - 1
