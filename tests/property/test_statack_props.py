"""Property-based statistical-acknowledgement invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StatAckConfig
from repro.core.packets import AckerResponsePacket, AckerSelectPacket, DataAckPacket
from repro.core.retransmit import RetransmitDecision
from repro.core.statack import StatAckPhase, StatAckSource


def build(n_sl: float, k: int) -> StatAckSource:
    engine = StatAckSource("g", StatAckConfig(k_ackers=k, epoch_length=10_000),
                           rng=random.Random(0))
    engine.seed_group_size(n_sl)
    return engine


def run_epoch(engine: StatAckSource, acker_names: list[str]) -> None:
    actions = engine.start(0.0)
    epoch = next(a.packet.epoch for a in actions if hasattr(a, "packet")
                 and isinstance(a.packet, AckerSelectPacket))
    for name in acker_names:
        engine.handle(AckerResponsePacket(group="g", epoch=epoch), name, 0.01)
    engine.poll(engine.next_wakeup())


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1000.0),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=30),
)
def test_p_ack_always_valid(n_sl, k, n_ackers):
    """p_ack = k/N_sl clamped to (0, 1] for any estimate."""
    engine = build(n_sl, k)
    actions = engine.start(0.0)
    select = next(a.packet for a in actions if hasattr(a, "packet")
                  and isinstance(a.packet, AckerSelectPacket))
    assert 0.0 < select.p_ack <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=20),
    st.floats(min_value=10.0, max_value=1000.0),
)
def test_decision_none_iff_all_acks(n_ackers, n_acking, n_sl):
    """At the deadline: NONE iff no ACK is missing; a shortfall always
    produces MULTICAST or UNICAST; missing_ackers named exactly."""
    n_acking = min(n_acking, n_ackers)
    engine = build(n_sl, 10)
    names = [f"l{i}" for i in range(n_ackers)]
    run_epoch(engine, names)
    engine.on_data_sent(1, 1.0)
    for name in names[:n_acking]:
        engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=1),
                      name, 1.01)
    _, orders = engine.poll(1.0 + 10.0)
    if n_acking == n_ackers:
        assert all(o.decision is RetransmitDecision.NONE for o in orders)
    else:
        assert len(orders) == 1
        assert orders[0].decision in (RetransmitDecision.MULTICAST, RetransmitDecision.UNICAST)
        assert set(orders[0].missing_ackers) == set(names[n_acking:])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40))
def test_t_wait_stays_positive_and_bounded(samples):
    """However adversarial the ACK timings, t_wait stays in (0, 60]."""
    engine = build(50.0, 10)
    run_epoch(engine, ["a", "b"])
    now = 1.0
    for i, sample in enumerate(samples):
        seq = i + 1
        engine.on_data_sent(seq, now)
        engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=seq), "a",
                      now + sample)
        engine.handle(DataAckPacket(group="g", epoch=engine.current_epoch, seq=seq), "b",
                      now + sample)
        now += 10.0
        engine.poll(now)
        assert 0.0 < engine.t_wait <= 60.0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_foreign_epoch_acks_never_counted(epoch):
    engine = build(50.0, 10)
    run_epoch(engine, ["a"])
    if epoch == engine.current_epoch:
        return
    engine.on_data_sent(1, 1.0)
    engine.handle(DataAckPacket(group="g", epoch=epoch, seq=1), "a", 1.01)
    _, orders = engine.poll(1.0 + 10.0)
    # the ack was ignored: the deadline still reports a shortfall
    assert orders and orders[0].decision is not RetransmitDecision.NONE
