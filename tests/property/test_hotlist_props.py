"""Property-based hotlist tests: honest loggers survive, cheats do not."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotlist import AckerHotlist


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.02, max_value=0.5),
    st.integers(min_value=0, max_value=10_000),
)
def test_honest_logger_never_quarantined(p_ack, seed):
    """A logger volunteering exactly at the offered probability must
    survive hundreds of epochs (false-positive guard)."""
    rng = random.Random(seed)
    hot = AckerHotlist()
    for _ in range(300):
        responders = {"honest"} if rng.random() < p_ack else set()
        hot.record_epoch(p_ack, responders, {"honest"})
    assert "honest" not in hot.quarantined


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.01, max_value=0.25))
def test_always_acker_always_caught(p_ack):
    """Volunteering every epoch at small p_ack is always detected, fast."""
    hot = AckerHotlist()
    caught_after = None
    for epoch in range(1, 64):
        hot.record_epoch(p_ack, {"cheat"}, {"cheat"})
        if hot.is_quarantined("cheat"):
            caught_after = epoch
            break
    assert caught_after is not None
    assert caught_after <= 32  # within one sliding window


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=0.3),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=2, max_value=20),
)
def test_population_fp_rate_low(p_ack, seed, n_honest):
    """Across a whole honest population and 200 epochs, quarantines are
    rare (allowing for the 4-sigma tail)."""
    rng = random.Random(seed)
    hot = AckerHotlist()
    known = {f"l{i}" for i in range(n_honest)}
    for _ in range(200):
        responders = {l for l in known if rng.random() < p_ack}
        hot.record_epoch(p_ack, responders, known)
    assert len(hot.quarantined) <= max(1, n_honest // 10)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_quarantine_is_sticky_until_forgiven(seed):
    rng = random.Random(seed)
    hot = AckerHotlist()
    for _ in range(40):
        hot.record_epoch(0.05, {"cheat"}, {"cheat"})
    assert hot.is_quarantined("cheat")
    # behaving well afterwards does not auto-release
    for _ in range(100):
        hot.record_epoch(0.05, set(), {"cheat"})
    assert hot.is_quarantined("cheat")
    hot.forgive("cheat")
    assert not hot.is_quarantined("cheat")
