"""Property tests for the commit-point state machine and failover.

Three guarantees the LLFT-grade protocol rests on, checked over random
interleavings rather than hand-picked cases:

* the committed prefix (``ReplicationManager.commit_seq``) only ever
  ratchets upward under appends and acks (stale-epoch acks included);
  an adoption may lower it — a (re-)adopted member counts as holding
  nothing until its first ack — but never raise it;
* promotion never elects a stale-epoch primary and is independent of
  vote arrival order (equal prefixes break to the lowest node token);
* the timer-wheel and pure-heap engines produce byte-identical failover
  end states for the same seed and crash point.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.sweep import TIERS, enumerate_crash_points, run_crash_case
from repro.core.actions import Notify, SendUnicast
from repro.core.config import LbrmConfig, ReplicationConfig
from repro.core.events import PrimaryFailover
from repro.core.packets import PromotePacket, ReplAckPacket
from repro.core.replication import ReplicationManager
from repro.core.sender import LbrmSender

_NO_SEQ = 2**64 - 1

# -- commit-point state machine ------------------------------------------

# One operation against the manager: an append fan-out, a follower ack
# (possibly from a wrong epoch), or a post-promotion adoption.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append")),
        st.tuples(
            st.just("ack"),
            st.integers(min_value=0, max_value=3),   # follower index
            st.integers(min_value=0, max_value=40),  # cumulative prefix
            st.integers(min_value=0, max_value=4),   # claimed epoch
        ),
        st.tuples(st.just("adopt"), st.integers(min_value=0, max_value=3)),
    ),
    max_size=60,
)


def _run_ops(ops, *, epoch: int = 2, min_acked: int = 1):
    mgr = ReplicationManager(
        "g",
        ("f0", "f1"),
        ReplicationConfig(min_replicas_acked=min_acked),
        epoch=epoch,
    )
    seq = 0
    commits = [mgr.commit_seq]
    for op in ops:
        if op[0] == "append":
            seq += 1
            mgr.replicate(seq, b"p", float(seq))
        elif op[0] == "ack":
            _, idx, cum, claimed = op
            members = mgr.members
            follower = members[idx % len(members)]
            before = mgr.commit_seq
            grew = mgr.on_ack(follower, cum, float(seq), epoch=claimed)
            if claimed and claimed != mgr.epoch:
                # Stale/foreign term: must not have moved the commit point.
                assert mgr.commit_seq == before
                assert not grew
        else:
            mgr.adopt(f"f{op[1]}", float(seq))
        commits.append(mgr.commit_seq)
    return mgr, commits


@given(_ops)
def test_commit_point_never_regresses(ops):
    """Appends and acks only move the commit point up.  An adopt() may
    move it *down* — re-adopting a member wipes its (possibly stale)
    progress, the honest direction for a crash-restarted follower — but
    must never move it up."""
    _, commits = _run_ops(ops)
    for op, before, after in zip(ops, commits, commits[1:]):
        if op[0] == "adopt":
            assert after <= before
        else:
            assert after >= before


@given(_ops, st.integers(min_value=1, max_value=2))
def test_commit_point_is_mth_highest_acked_prefix(ops, min_acked):
    mgr, _ = _run_ops(ops, min_acked=min_acked)
    acked = sorted(mgr.acked_by(m) or 0 for m in mgr.members)
    expected = acked[-min(min_acked, len(acked))]
    assert mgr.commit_seq == expected


@given(_ops)
def test_adoption_is_conservative(ops):
    """A freshly adopted follower counts as holding nothing, so adopting
    can only lower (never raise) the commit point."""
    mgr, _ = _run_ops(ops)
    before = mgr.commit_seq
    mgr.adopt("newcomer", 99.0)
    assert mgr.commit_seq <= before


# -- promotion: deterministic, never stale-epoch ---------------------------

_votes = st.dictionaries(
    keys=st.sampled_from(["r0", "r1", "r2"]),
    values=st.tuples(
        st.integers(min_value=-1, max_value=6),  # cum prefix (-1 = nothing)
        st.integers(min_value=0, max_value=6),   # commit point
        st.integers(min_value=0, max_value=4),   # epoch the follower is in
    ),
    min_size=1,
    max_size=3,
)


def _elect(votes: dict, order: list[str]):
    """Drive a real sender through QUERYING with ``votes`` arriving in
    ``order``; returns (winner, promote_packet, failover_event)."""
    cfg = LbrmConfig(replication=ReplicationConfig(primary_timeout=1.0, failover_wait=0.2))
    s = LbrmSender("g", cfg, primary="primary", replicas=tuple(sorted(votes)))
    s.start(0.0)
    for i in range(7):
        s.send(f"p{i}".encode(), 0.01 * i)
    s.poll(2.5)  # primary silent: QUERYING
    for name in order:
        cum, commit, epoch = votes[name]
        packet = ReplAckPacket(
            group="g",
            cum_seq=_NO_SEQ if cum < 0 else cum,
            commit_seq=commit,
            log_epoch=epoch,
        )
        s.handle(packet, name, 2.6)
    actions = s.poll(2.8)
    promotes = [
        a for a in actions
        if isinstance(a, SendUnicast) and isinstance(a.packet, PromotePacket)
    ]
    events = [
        a.event for a in actions
        if isinstance(a, Notify) and isinstance(a.event, PrimaryFailover)
    ]
    assert len(promotes) == 1 and len(events) == 1
    return promotes[0].dest, promotes[0].packet, events[0]


@given(_votes)
def test_election_is_independent_of_vote_arrival_order(votes):
    orders = list(itertools.permutations(votes))
    results = [_elect(votes, list(order)) for order in orders]
    winners = {winner for winner, _, _ in results}
    assert len(winners) == 1
    expected = min(votes, key=lambda a: (-votes[a][0], -votes[a][1], a))
    assert winners == {expected}


@given(_votes)
def test_elected_epoch_is_strictly_beyond_every_vote(votes):
    winner, promote, event = _elect(votes, sorted(votes))
    highest_seen = max([1] + [v[2] for v in votes.values()])
    assert promote.log_epoch > highest_seen
    assert event.log_epoch == promote.log_epoch
    assert event.new_primary == winner


@given(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
)
def test_equal_prefixes_break_to_lowest_token(cum, commit):
    votes = {"r2": (cum, commit, 1), "r0": (cum, commit, 1), "r1": (cum, commit, 1)}
    for order in ([["r2", "r1", "r0"], ["r0", "r1", "r2"], ["r1", "r0", "r2"]]):
        winner, _, _ = _elect(votes, order)
        assert winner == "r0"


# -- wheel vs heap: identical failover traces ------------------------------


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=0, max_value=2**20),
)
def test_engines_produce_identical_failover_end_states(seed, pick):
    shape = TIERS["micro"]
    points = enumerate_crash_points(shape, seed, "fast")
    assert points == enumerate_crash_points(shape, seed, "reference")
    crash_at = points[pick % len(points)]
    fast = run_crash_case(shape, seed, crash_at, "fast")
    reference = run_crash_case(shape, seed, crash_at, "reference")
    assert not fast.violations and not reference.violations
    assert fast.digest == reference.digest
    assert (fast.promoted, fast.log_epoch) == (reference.promoted, reference.log_epoch)
