"""Property-based wire-format tests: roundtrip totality, decode safety."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import packets as P
from repro.core.errors import DecodeError

groups = st.text(min_size=1, max_size=40).filter(lambda s: len(s.encode()) <= 255)
seqs = st.integers(min_value=0, max_value=2**64 - 1)
payloads = st.binary(max_size=2048)
epochs = st.integers(min_value=0, max_value=2**32 - 1)
probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(groups, seqs.filter(lambda s: s > 0), payloads, epochs)
def test_data_roundtrip(group, seq, payload, epoch):
    pkt = P.DataPacket(group=group, seq=seq, payload=payload, epoch=epoch)
    assert P.decode(P.encode(pkt)) == pkt


@given(groups, seqs, st.integers(min_value=0, max_value=2**32 - 1), epochs)
def test_heartbeat_roundtrip(group, seq, hb_index, epoch):
    pkt = P.HeartbeatPacket(group=group, seq=seq, hb_index=hb_index, epoch=epoch)
    assert P.decode(P.encode(pkt)) == pkt


@given(groups, st.lists(seqs.filter(lambda s: s > 0), min_size=1, max_size=64, unique=True))
def test_nack_roundtrip(group, seq_list):
    pkt = P.NackPacket(group=group, seqs=tuple(seq_list))
    assert P.decode(P.encode(pkt)) == pkt


@given(groups, epochs, probs, st.integers(min_value=1, max_value=1000))
def test_acker_select_roundtrip(group, epoch, p_ack, k):
    pkt = P.AckerSelectPacket(group=group, epoch=epoch, p_ack=p_ack, k=k)
    decoded = P.decode(P.encode(pkt))
    assert decoded.epoch == epoch and decoded.k == k
    assert decoded.p_ack == p_ack  # doubles are exact on the wire


@given(st.binary(max_size=256))
def test_decode_never_crashes_on_garbage(data):
    """decode raises DecodeError or returns a packet — never anything else."""
    try:
        packet = P.decode(data)
    except DecodeError:
        return
    assert isinstance(packet, P.Packet)


@given(groups, seqs.filter(lambda s: s > 0), payloads)
def test_truncation_always_detected(group, seq, payload):
    data = P.encode(P.DataPacket(group=group, seq=seq, payload=payload))
    for cut in range(1, min(len(data), 24)):
        truncated = data[: len(data) - cut]
        try:
            decoded = P.decode(truncated)
        except DecodeError:
            continue
        # A shorter valid parse is only possible if the payload length
        # field still described the truncated body — impossible here
        # because we cut from a correct encoding.
        raise AssertionError(f"truncated packet decoded: {decoded!r}")
