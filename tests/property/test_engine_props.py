"""Property tests: the timer-wheel engine matches the pure-heap spec.

Both engines are driven through identical operation sequences —
schedule, cancel, reschedule, chained scheduling from inside callbacks,
staggered ``run_until`` — and must execute the surviving events in
exactly the same ``(time, tie)`` order at the same clock readings.
:class:`~repro.simnet.engine.ReferenceSimulator` is the executable
specification; any divergence is a wheel bug.

A dedicated case drives tombstone compaction (tiny ``compact_min``):
compaction rebinds no state the run loop holds, so cancelling from
inside callbacks mid-run must not lose or reorder events — the exact
failure mode a stale-queue-reference bug produces.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import ReferenceSimulator, Simulator

# One operation per list element:
#   ("schedule", delay, chain)  chain > 0 => the callback schedules a
#                               follow-up chain more events, 0.003s apart
#   ("cancel", index)           cancel the index-th schedule (mod count)
#   ("run", dt)                 advance the clock by dt
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            st.integers(min_value=0, max_value=3),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("run"), st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
    ),
    min_size=1,
    max_size=60,
)


def _drive(sim, ops) -> list[tuple[float, int, float]]:
    """Apply ``ops`` to ``sim``; return (time, label, now) per firing."""
    fired: list[tuple[float, int, float]] = []
    handles: list = []
    label = iter(range(10**6))

    def fire(tag: int, chain: int) -> None:
        fired.append((sim.now, tag, sim.now))
        for i in range(chain):
            handles.append(sim.schedule(sim.now + 0.003 * (i + 1), fire, next(label), 0))

    for op in ops:
        if op[0] == "schedule":
            handles.append(sim.schedule(sim.now + op[1], fire, next(label), op[2]))
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        else:
            sim.run_until(sim.now + op[1])
    sim.run_until(sim.now + 10.0)  # drain everything still pending
    return fired


@settings(max_examples=150, deadline=None)
@given(_OPS)
def test_wheel_matches_reference_order(ops):
    """Identical op sequences fire identical (now, label) traces."""
    assert _drive(Simulator(), ops) == _drive(ReferenceSimulator(), ops)


@settings(max_examples=75, deadline=None)
@given(_OPS)
def test_wheel_matches_reference_under_compaction(ops):
    """Same, with compaction forced after a handful of tombstones."""
    wheel = Simulator(compact_min=2, compact_ratio=0.0)
    assert _drive(wheel, ops) == _drive(ReferenceSimulator(), ops)


@settings(max_examples=50, deadline=None)
@given(_OPS)
def test_wheel_accounting_matches_reference(ops):
    """processed/pending agree after any interleaving; tombstones drain."""
    wheel, ref = Simulator(), ReferenceSimulator()
    _drive(wheel, ops)
    _drive(ref, ops)
    assert wheel.processed == ref.processed
    assert wheel.pending == ref.pending == 0
    assert wheel.tombstones == 0  # fully drained queues hold no shells


@settings(max_examples=50, deadline=None)
@given(_OPS, st.floats(min_value=0.001, max_value=0.25))
def test_wheel_granularity_is_behavior_free(ops, granularity):
    """Slot width is a performance knob, never an ordering decision."""
    coarse = Simulator(wheel_granularity=granularity, wheel_slots=16)
    assert _drive(coarse, ops) == _drive(ReferenceSimulator(), ops)
