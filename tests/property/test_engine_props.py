"""Property tests: the timer-wheel engine matches the pure-heap spec.

Both engines are driven through identical operation sequences —
schedule, cancel, reschedule, chained scheduling from inside callbacks,
staggered ``run_until`` — and must execute the surviving events in
exactly the same ``(time, tie)`` order at the same clock readings.
:class:`~repro.simnet.engine.ReferenceSimulator` is the executable
specification; any divergence is a wheel bug.

A dedicated case drives tombstone compaction (tiny ``compact_min``):
compaction rebinds no state the run loop holds, so cancelling from
inside callbacks mid-run must not lose or reorder events — the exact
failure mode a stale-queue-reference bug produces.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import ReferenceSimulator, Simulator

# One operation per list element:
#   ("schedule", delay, chain)  chain > 0 => the callback schedules a
#                               follow-up chain more events, 0.003s apart
#   ("cancel", index)           cancel the index-th schedule (mod count)
#   ("run", dt)                 advance the clock by dt
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            st.integers(min_value=0, max_value=3),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("run"), st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
    ),
    min_size=1,
    max_size=60,
)


def _drive(sim, ops) -> list[tuple[float, int, float]]:
    """Apply ``ops`` to ``sim``; return (time, label, now) per firing."""
    fired: list[tuple[float, int, float]] = []
    handles: list = []
    label = iter(range(10**6))

    def fire(tag: int, chain: int) -> None:
        fired.append((sim.now, tag, sim.now))
        for i in range(chain):
            handles.append(sim.schedule(sim.now + 0.003 * (i + 1), fire, next(label), 0))

    for op in ops:
        if op[0] == "schedule":
            handles.append(sim.schedule(sim.now + op[1], fire, next(label), op[2]))
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        else:
            sim.run_until(sim.now + op[1])
    sim.run_until(sim.now + 10.0)  # drain everything still pending
    return fired


@settings(max_examples=150, deadline=None)
@given(_OPS)
def test_wheel_matches_reference_order(ops):
    """Identical op sequences fire identical (now, label) traces."""
    assert _drive(Simulator(), ops) == _drive(ReferenceSimulator(), ops)


@settings(max_examples=75, deadline=None)
@given(_OPS)
def test_wheel_matches_reference_under_compaction(ops):
    """Same, with compaction forced after a handful of tombstones."""
    wheel = Simulator(compact_min=2, compact_ratio=0.0)
    assert _drive(wheel, ops) == _drive(ReferenceSimulator(), ops)


@settings(max_examples=50, deadline=None)
@given(_OPS)
def test_wheel_accounting_matches_reference(ops):
    """processed/pending agree after any interleaving; tombstones drain."""
    wheel, ref = Simulator(), ReferenceSimulator()
    _drive(wheel, ops)
    _drive(ref, ops)
    assert wheel.processed == ref.processed
    assert wheel.pending == ref.pending == 0
    assert wheel.tombstones == 0  # fully drained queues hold no shells


@settings(max_examples=50, deadline=None)
@given(_OPS, st.floats(min_value=0.001, max_value=0.25))
def test_wheel_granularity_is_behavior_free(ops, granularity):
    """Slot width is a performance knob, never an ordering decision."""
    coarse = Simulator(wheel_granularity=granularity, wheel_slots=16)
    assert _drive(coarse, ops) == _drive(ReferenceSimulator(), ops)


# -- freelist + accounting under adversarial interleavings -------------------
#
# The event-record pool recycles ScheduledEvent shells the moment the
# run loop proves no outside reference survives.  The properties below
# drive the pool as hard as possible — handles dropped immediately
# (maximal recycling), cancels from inside callbacks, run_until budgets
# that stop mid-timestamp — and assert the three things a freelist bug
# would break: execution order still matches the reference engine, a
# cancelled event never fires (no shell "resurrection"), and the
# pending/tombstone gauges never go negative or drift from the spec's.

# ("schedule", delay, chain, keep)   keep=False drops the handle at once
# ("cancel", index)                  cancel the index-th *kept* handle
# ("cancel_inside", delay, index)    schedule a canceller firing at delay
# ("run", dt, budget)                run_until(now+dt, max_events=budget)
_CHURN_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            st.integers(min_value=0, max_value=2),
            st.booleans(),
        ),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(
            st.just("cancel_inside"),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            st.integers(min_value=0, max_value=200),
        ),
        st.tuples(
            st.just("run"),
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
        ),
    ),
    min_size=1,
    max_size=60,
)


def _drive_churn(sim, ops, check_gauges=None):
    """Apply churn ops; return (fired labels in order, wrongly-fired set)."""
    fired: list[tuple[float, int]] = []
    kept: list = []
    # label -> handle for every schedule, so cancellation can be tracked
    # even after the shell is recycled; labels are never reused.
    cancelled_unfired: set[int] = set()
    fired_labels: set[int] = set()
    label = iter(range(10**6))

    def cancel_kept(index: int) -> None:
        if not kept:
            return
        tag, handle = kept[index % len(kept)]
        if tag not in fired_labels and tag not in cancelled_unfired:
            if not handle.cancelled:
                cancelled_unfired.add(tag)
        handle.cancel()

    def fire(tag: int, chain: int) -> None:
        fired.append((sim.now, tag))
        fired_labels.add(tag)
        for i in range(chain):
            # Chained events drop their handles immediately: the only
            # reference lives inside the engine, so the shell recycles
            # the moment it fires.
            sim.schedule(sim.now + 0.003 * (i + 1), fire, next(label), 0)

    def canceller(tag: int, index: int) -> None:
        fired.append((sim.now, tag))
        fired_labels.add(tag)
        cancel_kept(index)

    for op in ops:
        if op[0] == "schedule":
            tag = next(label)
            handle = sim.schedule(sim.now + op[1], fire, tag, op[2])
            if op[3]:
                kept.append((tag, handle))
            del handle  # unkept shells may recycle as soon as they fire
        elif op[0] == "cancel":
            cancel_kept(op[1])
        elif op[0] == "cancel_inside":
            tag = next(label)
            kept.append((tag, sim.schedule(sim.now + op[1], canceller, tag, op[2])))
        else:
            sim.run_until(sim.now + op[1], max_events=op[2])
        if check_gauges is not None:
            check_gauges(sim)
    sim.run_until(sim.now + 10.0)
    return fired, fired_labels & cancelled_unfired


@settings(max_examples=150, deadline=None)
@given(_CHURN_OPS)
def test_freelist_never_resurrects_cancelled_events(ops):
    """Maximal recycling + cancels from callbacks: order still matches
    the reference, and nothing cancelled-before-due ever fires."""
    wheel_fired, wheel_wrong = _drive_churn(Simulator(), ops)
    ref_fired, ref_wrong = _drive_churn(ReferenceSimulator(), ops)
    assert wheel_wrong == set()
    assert ref_wrong == set()
    assert wheel_fired == ref_fired


@settings(max_examples=100, deadline=None)
@given(_CHURN_OPS)
def test_accounting_never_negative_under_churn(ops):
    """pending/tombstones/peak/freelist stay sane after every single op."""
    def gauges(sim):
        assert sim.pending >= 0
        assert sim.tombstones >= 0
        assert sim.peak_pending >= sim.pending
        assert 0 <= sim.freelist_size <= 8192

    wheel = Simulator(compact_min=4, compact_ratio=0.5)
    wheel_fired, _ = _drive_churn(wheel, ops, check_gauges=gauges)
    ref = ReferenceSimulator()
    ref_fired, _ = _drive_churn(ref, ops)
    assert wheel_fired == ref_fired
    # Fully drained: live accounting returns to zero and agrees.
    assert wheel.pending == ref.pending == 0
    assert wheel.processed == ref.processed


@settings(max_examples=100, deadline=None)
@given(_CHURN_OPS, st.integers(min_value=0, max_value=5))
def test_run_until_budget_matches_reference(ops, budget):
    """Stopping mid-timestamp via max_events leaves identical state."""
    wheel, ref = Simulator(), ReferenceSimulator()
    for sim in (wheel, ref):
        fired = []
        for i, op in enumerate(ops):
            if op[0] == "schedule":
                sim.schedule(sim.now + op[1], fired.append, i)
        sim.run_until(sim.now + 1.0, max_events=budget)
        sim._budget_fired = list(fired)  # stash for comparison below
    assert wheel._budget_fired == ref._budget_fired
    assert wheel.processed == ref.processed
    assert wheel.pending == ref.pending


def test_freelist_reuse_is_invisible_to_stale_handles():
    """A recycled shell must not let an old handle cancel a new event.

    The pool only recycles shells with no surviving references, so a
    handle the driver still holds can never alias a newer event — this
    pins that invariant from the outside: cancel-after-fire on a kept
    handle is a no-op forever.
    """
    sim = Simulator()
    fired: list[str] = []
    first = sim.schedule(1.0, fired.append, "first")
    sim.run_until(2.0)
    assert fired == ["first"]
    # Shell churn: many drop-at-once events force pool traffic.
    for _ in range(64):
        sim.schedule(sim.now + 0.001, fired.append, "churn")
    sim.run_until(sim.now + 1.0)
    later = sim.schedule(sim.now + 1.0, fired.append, "later")
    first.cancel()  # stale handle: must not touch the recycled shell
    assert not later.cancelled
    sim.run_until(sim.now + 2.0)
    assert fired[-1] == "later"
