"""Property-based tests for PacketLog invariants."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import LogMissError
from repro.core.log_store import PacketLog

entries = st.lists(
    st.tuples(st.integers(min_value=1, max_value=100), st.binary(max_size=64)),
    min_size=1,
    max_size=60,
)


@given(entries)
def test_get_returns_first_append(items):
    log = PacketLog()
    first: dict[int, bytes] = {}
    for seq, payload in items:
        log.append(seq, payload, now=0.0)
        first.setdefault(seq, payload)
    for seq, payload in first.items():
        assert log.get(seq).payload == payload


@given(entries, st.integers(min_value=1, max_value=10))
def test_max_packets_cap_holds(items, cap):
    log = PacketLog(max_packets=cap)
    for seq, payload in items:
        log.append(seq, payload, now=0.0)
    assert len(log) <= cap


@given(entries, st.integers(min_value=1, max_value=10))
def test_spool_preserves_everything(items, cap):
    import tempfile, os

    with tempfile.TemporaryDirectory() as tmp:
        log = PacketLog(max_packets=cap, spool_path=os.path.join(tmp, "spool"))
        first: dict[int, bytes] = {}
        for seq, payload in items:
            log.append(seq, payload, now=0.0)
            first.setdefault(seq, payload)
        for seq, payload in first.items():
            assert log.get(seq).payload == payload
        assert log.dropped == 0
        log.close()


@given(entries)
def test_byte_size_matches_contents(items):
    log = PacketLog()
    stored: dict[int, bytes] = {}
    for seq, payload in items:
        if log.append(seq, payload, now=0.0):
            stored[seq] = payload
    assert log.byte_size == sum(len(p) for p in stored.values())


@given(entries, st.integers(min_value=1, max_value=100))
def test_trim_below_leaves_no_lower_seq(items, cutoff):
    log = PacketLog()
    for seq, payload in items:
        log.append(seq, payload, now=0.0)
    log.trim_below(cutoff)
    low = log.lowest
    assert low is None or low >= cutoff
    for seq in range(1, cutoff):
        try:
            log.get(seq)
        except LogMissError:
            continue
        raise AssertionError(f"seq {seq} survived trim_below({cutoff})")
