"""Property-based tests of the variable-heartbeat schedule (§2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.heartbeat_math import (
    fixed_heartbeat_count,
    overhead_ratio,
    variable_heartbeat_count,
)
from repro.core.config import HeartbeatConfig
from repro.core.heartbeat import heartbeat_times

h_mins = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)
backoffs = st.floats(min_value=1.0, max_value=5.0, allow_nan=False)
dts = st.floats(min_value=0.01, max_value=500.0, allow_nan=False)


def config(h_min, backoff, h_max_factor=128.0) -> HeartbeatConfig:
    return HeartbeatConfig(h_min=h_min, h_max=h_min * h_max_factor, backoff=backoff)


@given(h_mins, backoffs, dts)
def test_variable_never_beats_more_than_fixed(h_min, backoff, dt):
    """The paper's §2.1.2 claim, for all parameters."""
    cfg = config(h_min, backoff)
    assert variable_heartbeat_count(dt, cfg) <= fixed_heartbeat_count(dt, h_min)


@given(h_mins, backoffs, dts)
def test_intervals_monotone_and_capped(h_min, backoff, dt):
    cfg = config(h_min, backoff)
    beats = heartbeat_times(cfg, [0.0, dt])
    if not beats:
        return
    gaps = [beats[0]] + [beats[i] - beats[i - 1] for i in range(1, len(beats))]
    for i in range(1, len(gaps)):
        assert gaps[i] >= gaps[i - 1] - 1e-9  # non-decreasing
        assert gaps[i] <= cfg.h_max + 1e-9


@given(h_mins, backoffs, dts)
def test_first_beat_at_h_min(h_min, backoff, dt):
    cfg = config(h_min, backoff)
    beats = heartbeat_times(cfg, [0.0, dt])
    if dt > h_min:  # exact float comparison matches the generator's preemption rule
        assert beats and beats[0] == pytest.approx(h_min)
    else:
        assert beats == []


@given(h_mins, backoffs, dts)
def test_closed_form_matches_simulation(h_min, backoff, dt):
    """The analysis module's count equals the schedule generator's."""
    cfg = config(h_min, backoff)
    analytic = variable_heartbeat_count(dt, cfg)
    simulated = len(heartbeat_times(cfg, [0.0, dt]))
    assert abs(analytic - simulated) <= 1  # float-edge tolerance


@given(h_mins, st.floats(min_value=1.05, max_value=5.0), st.floats(min_value=1.05, max_value=5.0))
def test_bigger_backoff_never_more_overhead(h_min, b1, b2):
    """Table 1's monotonicity: larger backoff => fewer (or equal) beats."""
    lo, hi = sorted((b1, b2))
    dt = 120.0
    n_lo = variable_heartbeat_count(dt, config(h_min, lo))
    n_hi = variable_heartbeat_count(dt, config(h_min, hi))
    assert n_hi <= n_lo


@given(dts)
def test_ratio_at_least_one(dt):
    assert overhead_ratio(dt) >= 1.0
