"""Every example script must run clean — they are deliverables."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "dis_terrain",
        "web_invalidation",
        "stock_ticker",
        "failover_demo",
        "asyncio_live",
        "multi_group",
    } <= names
