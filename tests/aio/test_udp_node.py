"""End-to-end asyncio tests: the real UDP transport on loopback.

These exercise actual sockets (unicast + multicast join on 127.0.0.1).
Timings are generous: wall-clock tests on shared CI machines jitter.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioNode, GroupDirectory, addr_token, parse_token
from repro.core.config import LbrmConfig, ReceiverConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/aio/e2e"


def test_addr_token_roundtrip():
    assert parse_token(addr_token(("127.0.0.1", 4242))) == ("127.0.0.1", 4242)


def test_parse_token_rejects_garbage():
    with pytest.raises(ValueError):
        parse_token("no-port")
    with pytest.raises(ValueError):
        parse_token("host:notanumber")


async def _build_trio(directory: GroupDirectory, cfg: LbrmConfig):
    """Start logger, sender, receiver nodes wired together."""
    logger_node = AioNode(directory=directory)
    await logger_node.start()
    logger = LogServer(GROUP, addr_token=logger_node.token, config=cfg,
                       role=LoggerRole.PRIMARY, level=0)
    logger_node.machines.append(logger)
    await logger_node.run_machine(logger.start, logger_node.now)

    sender_node = AioNode(directory=directory)
    await sender_node.start()
    sender = LbrmSender(GROUP, cfg, primary=logger_node.address,
                        addr_token=sender_node.token)
    sender_node.machines.append(sender)
    await sender_node.run_machine(sender.start, sender_node.now)
    logger.set_source(sender_node.address)

    rx_node = AioNode(directory=directory)
    await rx_node.start()
    receiver = LbrmReceiver(GROUP, cfg.receiver,
                            logger_chain=(logger_node.address,),
                            heartbeat=cfg.heartbeat, parse_token=parse_token)
    rx_node.machines.append(receiver)
    await rx_node.run_machine(receiver.start, rx_node.now)

    return (logger_node, logger), (sender_node, sender), (rx_node, receiver)


def test_multicast_delivery_and_log_ack():
    asyncio.run(_run_multicast_delivery())


async def _run_multicast_delivery():
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.42.1", free_udp_port())
    cfg = LbrmConfig()
    (ln, logger), (sn, sender), (rn, receiver) = await _build_trio(directory, cfg)
    try:
        await asyncio.sleep(0.05)
        await sn.send(sender, b"real multicast payload")
        delivery = await asyncio.wait_for(rn.delivery_queue.get(), 2.0)
        assert delivery.payload == b"real multicast payload"
        assert not delivery.recovered
        # Give the LOG_ACK a moment to come back.
        await asyncio.sleep(0.1)
        assert sender.released_up_to == 1
        assert 1 in logger.log
    finally:
        for node in (ln, sn, rn):
            await node.close()


def test_heartbeats_flow_over_udp():
    asyncio.run(_run_heartbeats())


async def _run_heartbeats():
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.42.2", free_udp_port())
    cfg = LbrmConfig()
    (ln, logger), (sn, sender), (rn, receiver) = await _build_trio(directory, cfg)
    try:
        await asyncio.sleep(0.05)
        await sn.send(sender, b"x")
        await asyncio.wait_for(rn.delivery_queue.get(), 2.0)
        await asyncio.sleep(0.4)  # h_min=0.25: at least one heartbeat
        assert receiver.stats["heartbeats_received"] >= 1
    finally:
        for node in (ln, sn, rn):
            await node.close()


def test_recovery_over_udp_after_simulated_drop():
    asyncio.run(_run_recovery())


async def _run_recovery():
    """Force a real loss: the receiver leaves the multicast group while one
    packet is sent, rejoins, and the next packet reveals the gap — NACK
    recovery then pulls the missed payload from the logger over UDP."""
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.42.3", free_udp_port())
    cfg = LbrmConfig()
    (ln, logger), (sn, sender), (rn, receiver) = await _build_trio(directory, cfg)
    # Faster NACK retry so the test completes quickly.
    receiver._config = ReceiverConfig(nack_retry=0.2)

    try:
        await asyncio.sleep(0.05)
        await sn.send(sender, b"baseline")  # seq 1: establishes tracking
        d = await asyncio.wait_for(rn.delivery_queue.get(), 2.0)
        assert d.payload == b"baseline"

        rn.leave_group(GROUP)  # walk out of radio range
        await asyncio.sleep(0.02)
        await sn.send(sender, b"missed")  # seq 2: dropped for this receiver
        await asyncio.sleep(0.05)
        await rn.join_group(GROUP)  # reconnect
        await asyncio.sleep(0.02)

        await sn.send(sender, b"fresh")  # seq 3 reveals the gap at 2
        payloads = set()
        for _ in range(2):
            d = await asyncio.wait_for(rn.delivery_queue.get(), 3.0)
            payloads.add((d.payload, d.recovered))
        assert (b"fresh", False) in payloads
        assert (b"missed", True) in payloads
        assert receiver.stats["recoveries"] == 1
    finally:
        for node in (ln, sn, rn):
            await node.close()
