"""Expanding-ring discovery under logger failure, on real sockets.

TTL does not scope on loopback — every ring hears every query — so ring
distance is emulated the way the simulator does it: a filter in front of
the far logger drops discovery queries whose carried TTL is below its
ring, exactly as a TTL-expired packet would never arrive.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioCluster, AioNode, GroupDirectory, parse_token
from repro.core.config import DiscoveryConfig, LbrmConfig
from repro.core.discovery import DiscoveryClient
from repro.core.events import DiscoveryExhausted, LoggerDiscovered
from repro.core.logger import LoggerRole, LogServer
from repro.core.packets import DiscoveryQueryPacket

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/discovery/failover"


def _directory(tag: int) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.46.%d" % tag, free_udp_port())
    return directory


class _RingFilter:
    """Wrap a machine so it only hears discovery queries from ring >= N,
    emulating TTL scoping that loopback multicast cannot provide."""

    def __init__(self, machine, min_ttl: int) -> None:
        self._machine = machine
        self._min_ttl = min_ttl

    def handle(self, packet, src, now):
        if isinstance(packet, DiscoveryQueryPacket) and packet.ttl < self._min_ttl:
            return []
        return self._machine.handle(packet, src, now)

    def poll(self, now):
        return self._machine.poll(now)

    def start(self, now):
        return self._machine.start(now)

    def next_wakeup(self):
        return self._machine.next_wakeup()


async def _start_logger(directory, cfg, *, min_ttl: int = 1) -> tuple[AioNode, LogServer]:
    node = AioNode(directory=directory)
    await node.start()
    logger = LogServer(GROUP, addr_token=node.token, config=cfg,
                       role=LoggerRole.SECONDARY, level=1)
    node.machines.append(_RingFilter(logger, min_ttl) if min_ttl > 1 else logger)
    await node.run_machine(logger.start, node.now)
    return node, logger


def test_dead_first_ring_logger_found_in_next_ring():
    asyncio.run(_run_ring_failover())


async def _run_ring_failover():
    directory = _directory(1)
    cfg = LbrmConfig()
    ring1_node, _ = await _start_logger(directory, cfg, min_ttl=1)
    ring2_node, _ = await _start_logger(directory, cfg, min_ttl=2)

    # The nearest logger dies before the receiver goes looking.
    await ring1_node.close()

    client_node = AioNode(directory=directory)
    await client_node.start()
    client = DiscoveryClient(
        GROUP,
        DiscoveryConfig(
            initial_ttl=1, max_ttl=4, query_timeout=0.25,
            ring_retries=1, timeout_backoff=1.5, max_query_timeout=1.0,
        ),
        parse_token=parse_token,
    )
    client_node.machines.append(client)
    await client_node.run_machine(client.start, client_node.now)

    try:
        for _ in range(80):
            if client.found is not None or client.exhausted:
                break
            await asyncio.sleep(0.1)
        # Backed off in the silent first ring, then expanded and found
        # the ring-2 secondary.
        assert client.found == ring2_node.address
        assert client.stats["ring_retries"] >= 1
        assert client.stats["queries_sent"] >= 3  # ttl=1, retry, ttl=2
        events = [e for e in client_node.events if isinstance(e, LoggerDiscovered)]
        assert events and events[0].ttl == 2
    finally:
        await ring2_node.close()
        await client_node.close()


def test_all_rings_silent_falls_back_to_static_primary(monkeypatch):
    # Silence every logger's discovery responder: queries go unanswered
    # on the wire even though the loggers are otherwise healthy.
    monkeypatch.setattr(
        LogServer, "_on_discovery", lambda self, packet, src, now: []
    )
    asyncio.run(_run_static_fallback())


async def _run_static_fallback():
    async with AioCluster(
        GROUP,
        n_receivers=2,
        n_secondaries=1,
        use_discovery=True,
        discovery=DiscoveryConfig(initial_ttl=1, max_ttl=2, query_timeout=0.2),
        directory=_directory(2),
    ) as cluster:
        await cluster.wait_discovery(timeout=10.0)
        assert all(c.exhausted for c in cluster.discovery_clients)
        for node in cluster.receiver_nodes:
            assert any(isinstance(e, DiscoveryExhausted) for e in node.events)
        # §2.2.1 fallback: the statically configured primary.
        primary = cluster.primary_node.address
        for receiver in cluster.receivers:
            assert receiver.logger_chain == (primary,)
        # The fallback chain is live: the stream flows end to end.
        await cluster.publish(b"after-fallback")
        for i in range(2):
            delivered = await asyncio.wait_for(cluster.deliveries(i, 1), 5.0)
            assert delivered[0].payload == b"after-fallback"
