"""Expanding-ring discovery and statack participation over real UDP."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioNode, GroupDirectory, parse_token
from repro.core.config import DiscoveryConfig, LbrmConfig
from repro.core.discovery import DiscoveryClient
from repro.core.events import LoggerDiscovered
from repro.core.logger import LoggerRole, LogServer

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/aio/discovery"


def test_discovery_over_udp():
    asyncio.run(_run_discovery())


async def _run_discovery():
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.44.1", free_udp_port())
    cfg = LbrmConfig()

    logger_node = AioNode(directory=directory)
    await logger_node.start()
    logger = LogServer(GROUP, addr_token=logger_node.token, config=cfg,
                       role=LoggerRole.SECONDARY, level=1)
    logger_node.machines.append(logger)
    await logger_node.run_machine(logger.start, logger_node.now)

    client_node = AioNode(directory=directory)
    await client_node.start()
    client = DiscoveryClient(GROUP, DiscoveryConfig(initial_ttl=1, query_timeout=0.3),
                             parse_token=parse_token)
    client_node.machines.append(client)
    # The client must hear replies on its unicast socket and send queries
    # to the group; it also must be able to receive on the group (no-op
    # here but realistic).
    await client_node.join_group(GROUP)
    await client_node.run_machine(client.start, client_node.now)

    try:
        for _ in range(40):
            if client.found is not None or client.exhausted:
                break
            await asyncio.sleep(0.1)
        assert client.found == logger_node.address
        assert client.found_level == 1
        events = [e for e in client_node.events if isinstance(e, LoggerDiscovered)]
        assert events
    finally:
        await logger_node.close()
        await client_node.close()


def test_discovery_exhausts_with_no_logger():
    asyncio.run(_run_exhaustion())


async def _run_exhaustion():
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.44.2", free_udp_port())
    client_node = AioNode(directory=directory)
    await client_node.start()
    client = DiscoveryClient(GROUP, DiscoveryConfig(initial_ttl=1, max_ttl=2, query_timeout=0.2),
                             parse_token=parse_token)
    client_node.machines.append(client)
    await client_node.run_machine(client.start, client_node.now)
    try:
        for _ in range(30):
            if client.exhausted:
                break
            await asyncio.sleep(0.1)
        assert client.exhausted
        assert client.found is None
    finally:
        await client_node.close()
