"""k-level logger trees over real UDP (DESIGN §11).

``AioCluster(depth=3, ...)`` inserts interior repair hubs between the
site secondaries and the primary: secondaries escalate their own holes
to their hub, receivers carry the full leaf → hub → primary chain, and
a repair for a site-local loss never reaches the primary.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioCluster, AioNode, GroupDirectory
from repro.core.errors import ConfigError

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/hierarchy/e2e"


def _directory(tag: int) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.47.%d" % tag, free_udp_port())
    return directory


def test_depth_three_chains_walk_hub_then_primary():
    asyncio.run(_run_wiring())


async def _run_wiring():
    async with AioCluster(
        GROUP, n_receivers=4, n_secondaries=4, depth=3, fanout=2, directory=_directory(1)
    ) as cluster:
        # 4 leaves at fanout 2 -> 2 interior hubs under the primary.
        assert len(cluster.interior_nodes) == 2
        primary = cluster.primary_node.address
        hub_addresses = {node.address for node in cluster.interior_nodes}
        for i, receiver in enumerate(cluster.receivers):
            chain = receiver.logger_chain
            assert len(chain) == 3
            assert chain[0] == cluster.secondary_nodes[i % 4].address
            assert chain[1] in hub_addresses
            assert chain[-1] == primary
        # Secondaries escalate to their hub, hubs to the primary.
        for secondary in cluster.secondaries:
            assert secondary._parent in hub_addresses
        for hub in cluster.interior_loggers:
            assert hub._parent == primary


def test_hubs_log_the_stream():
    asyncio.run(_run_logging())


async def _run_logging():
    async with AioCluster(
        GROUP, n_receivers=2, n_secondaries=2, depth=3, fanout=2, directory=_directory(2)
    ) as cluster:
        for i in range(4):
            await cluster.publish(b"tick-%d" % i)
        for i in range(2):
            await asyncio.wait_for(cluster.deliveries(i, 4), 5.0)
        await asyncio.sleep(0.2)
        for hub in cluster.interior_loggers:
            assert hub.primary_seq == 4  # holds 1..4 contiguously


def test_site_loss_repairs_without_touching_primary():
    asyncio.run(_run_local_repair())


async def _run_local_repair():
    async with AioCluster(
        GROUP, n_receivers=2, n_secondaries=2, depth=3, fanout=2, directory=_directory(3)
    ) as cluster:
        await cluster.publish(b"seen")
        for i in range(2):
            await asyncio.wait_for(cluster.deliveries(i, 1), 3.0)

        victim = cluster.receivers[0]
        await cluster.receiver_nodes[0].close()
        await cluster.publish(b"missed-1")
        await cluster.publish(b"missed-2")
        await asyncio.wait_for(cluster.deliveries(1, 2), 3.0)
        await asyncio.sleep(0.2)

        reborn = AioNode(directory=cluster.directory)
        await reborn.start()
        cluster.receiver_nodes[0] = reborn
        reborn.machines.append(victim)
        await reborn.run_machine(victim.start, reborn.now)

        recovered = await asyncio.wait_for(cluster.deliveries(0, 2, timeout=5.0), 10.0)
        assert [d.payload for d in recovered] == [b"missed-1", b"missed-2"]
        # The site leaf held the data: neither its hub nor the primary
        # heard a NACK for this loss.
        assert cluster.primary.stats["nacks_received"] == 0
        for hub in cluster.interior_loggers:
            assert hub.stats["nacks_received"] == 0


def test_depth_requires_secondaries():
    with pytest.raises(ConfigError):
        AioCluster(GROUP, n_receivers=1, n_secondaries=0, depth=3)
    with pytest.raises(ConfigError):
        AioCluster(GROUP, n_receivers=1, depth=1)
