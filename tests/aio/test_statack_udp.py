"""Statistical acknowledgement over real UDP with live secondary loggers."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioNode, GroupDirectory, parse_token
from repro.core.config import LbrmConfig, StatAckConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.sender import LbrmSender
from repro.core.statack import StatAckPhase

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/aio/statack"


def test_statack_full_cycle_over_udp():
    asyncio.run(_run())


async def _run():
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.47.1", free_udp_port())
    cfg = LbrmConfig(statack=StatAckConfig(
        k_ackers=10, initial_t_wait=0.2, epoch_length=1000,
    ))

    primary_node = AioNode(directory=directory)
    await primary_node.start()
    primary = LogServer(GROUP, addr_token=primary_node.token, config=cfg,
                        role=LoggerRole.PRIMARY, level=0)
    primary_node.machines.append(primary)
    await primary_node.run_machine(primary.start, primary_node.now)

    sender_node = AioNode(directory=directory)
    await sender_node.start()
    sender = LbrmSender(GROUP, cfg, primary=primary_node.address,
                        enable_statack=True, addr_token=sender_node.token)
    sender_node.machines.append(sender)
    primary.set_source(sender_node.address)

    # Three secondary loggers (potential Designated Ackers).
    secondary_nodes = []
    for i in range(3):
        node = AioNode(directory=directory)
        await node.start()
        secondary = LogServer(GROUP, addr_token=node.token, config=cfg,
                              role=LoggerRole.SECONDARY,
                              parent=primary_node.address, level=1)
        secondary.set_source(sender_node.address)
        node.machines.append(secondary)
        await node.run_machine(secondary.start, node.now)
        secondary_nodes.append(node)

    # Start the sender last so its bootstrap probes find the loggers.
    await sender_node.run_machine(sender.start, sender_node.now)

    try:
        sa = sender.statack
        assert sa is not None
        # Wait for bootstrap probing + first epoch over real sockets.
        for _ in range(80):
            if sa.phase is StatAckPhase.ACTIVE and sa.designated_ackers:
                break
            await asyncio.sleep(0.1)
        assert sa.phase is StatAckPhase.ACTIVE
        # with only 3 loggers p_ack caps at 1: all three volunteer
        assert len(sa.designated_ackers) == 3
        assert sa.group_size_estimate == pytest.approx(3, abs=1.5)

        acks_before = sa.stats["acks_received"]
        await sender_node.send(sender, b"statack over UDP")
        await asyncio.sleep(0.6)
        assert sa.stats["acks_received"] - acks_before == 3
        assert sender.stats["remulticasts"] == 0
    finally:
        for node in [primary_node, sender_node, *secondary_nodes]:
            await node.close()
