"""GroupDirectory tests: determinism, ranges, overrides."""

from __future__ import annotations

import ipaddress

import pytest

from repro.aio.groupmap import GroupDirectory


def test_resolution_is_deterministic():
    a = GroupDirectory().resolve("dis/terrain/1")
    b = GroupDirectory().resolve("dis/terrain/1")
    assert a == b


def test_address_in_admin_scoped_block():
    directory = GroupDirectory()
    for group in ("a", "b", "dis/terrain/42", "quotes/ACME"):
        addr, port = directory.resolve(group)
        assert ipaddress.ip_address(addr) in ipaddress.ip_network("239.192.0.0/14")
        assert 30000 <= port < 50000


def test_distinct_groups_usually_distinct_addresses():
    directory = GroupDirectory()
    resolved = {directory.resolve(f"group/{i}") for i in range(100)}
    assert len(resolved) == 100  # SHA-256 over a /14: collisions ~never


def test_override():
    directory = GroupDirectory()
    directory.register("special", "239.255.0.1", 45000)
    assert directory.resolve("special") == ("239.255.0.1", 45000)


def test_override_validates_multicast():
    directory = GroupDirectory()
    with pytest.raises(ValueError):
        directory.register("bad", "10.0.0.1", 45000)


def test_constructor_validation():
    with pytest.raises(ValueError):
        GroupDirectory(base_network="10.0.0.0/8")
    with pytest.raises(ValueError):
        GroupDirectory(port_base=60000, port_count=20000)
    with pytest.raises(ValueError):
        GroupDirectory(port_base=0)
