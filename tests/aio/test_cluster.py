"""AioCluster end-to-end tests over real UDP."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioCluster, GroupDirectory
from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network


def _directory(tag: int) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.43.%d" % tag, free_udp_port())
    return directory


GROUP = "test/cluster/e2e"


def test_cluster_delivery():
    asyncio.run(_run_delivery())


async def _run_delivery():
    async with AioCluster(GROUP, n_receivers=3, directory=_directory(1)) as cluster:
        await asyncio.sleep(0.1)
        seq = await cluster.publish(b"hello cluster")
        assert seq == 1
        for i in range(3):
            (delivery,) = await asyncio.wait_for(cluster.deliveries(i, 1), 3.0)
            assert delivery.payload == b"hello cluster"
        await asyncio.sleep(0.1)
        assert cluster.sender.released_up_to == 1
        assert 1 in cluster.primary.log


def test_cluster_with_replicas():
    asyncio.run(_run_replicas())


async def _run_replicas():
    async with AioCluster(GROUP, n_receivers=1, n_replicas=2,
                          directory=_directory(2)) as cluster:
        await asyncio.sleep(0.1)
        await cluster.publish(b"replicated")
        await asyncio.wait_for(cluster.deliveries(0, 1), 3.0)
        await asyncio.sleep(0.2)  # replication round-trips
        assert all(1 in r.log for r in cluster.replicas)
        assert all(r.role is LoggerRole.REPLICA for r in cluster.replicas)
        # replica-safe release (§2.2.3)
        assert cluster.sender.released_up_to == 1


def test_cluster_statack_over_udp():
    asyncio.run(_run_statack())


async def _run_statack():
    """The statack engine bootstraps over real sockets.

    With no secondary loggers in this small cluster, probing simply
    converges on an empty/small group without hanging — the liveness
    property that matters here."""
    async with AioCluster(GROUP, n_receivers=1, enable_statack=True,
                          directory=_directory(3)) as cluster:
        await asyncio.sleep(0.1)
        await cluster.publish(b"x")
        (d,) = await asyncio.wait_for(cluster.deliveries(0, 1), 3.0)
        assert d.payload == b"x"
        sa = cluster.sender.statack
        assert sa is not None
        assert sa.stats["probes_sent"] >= 1


def test_double_start_rejected():
    asyncio.run(_run_double_start())


async def _run_double_start():
    cluster = AioCluster(GROUP, n_receivers=0, directory=_directory(4))
    await cluster.start()
    try:
        with pytest.raises(RuntimeError):
            await cluster.start()
    finally:
        await cluster.close()
