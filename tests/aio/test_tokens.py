"""Wire-token parsing and socket-error accounting — no sockets needed."""

from __future__ import annotations

import pytest

from repro import obs
from repro.aio.node import AioNode, addr_token, parse_token


class TestParseToken:
    def test_round_trip(self):
        assert parse_token(addr_token(("10.1.2.3", 4242))) == ("10.1.2.3", 4242)

    def test_ipv6_style_host_uses_last_colon(self):
        assert parse_token("::1:9000") == ("::1", 9000)

    def test_rejects_missing_port(self):
        with pytest.raises(ValueError):
            parse_token("hostonly")
        with pytest.raises(ValueError):
            parse_token("host:")

    def test_rejects_missing_host(self):
        with pytest.raises(ValueError):
            parse_token(":8080")

    def test_rejects_non_ascii_digits(self):
        # "٣" (ARABIC-INDIC THREE) passes str.isdigit and int(), but has
        # no business in a wire address.
        with pytest.raises(ValueError):
            parse_token("host:٣٣٣")

    def test_rejects_sign_and_whitespace(self):
        for bad in ("host:+80", "host:-80", "host: 80", "host:8 0"):
            with pytest.raises(ValueError):
                parse_token(bad)

    def test_rejects_port_above_65535(self):
        with pytest.raises(ValueError):
            parse_token("host:65536")
        assert parse_token("host:65535") == ("host", 65535)


class TestSocketErrorAccounting:
    def test_error_bumps_node_stats_and_obs_counter(self):
        with obs.recording() as reg:
            node = AioNode()
            node._socket_error(OSError("connection refused"))
            node._socket_error(OSError("host unreachable"))
            assert node.stats["socket_errors"] == 2
            assert reg.counter_value("aio.socket_errors") == 2

    def test_counter_resolved_lazily(self):
        """Recording switched on *after* construction still sees errors."""
        node = AioNode()
        with obs.recording() as reg:
            node._socket_error(OSError("late"))
            assert reg.counter_value("aio.socket_errors") == 1
