"""`repro aio-smoke` must produce a truthful JSON verdict end to end."""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.network

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def test_aio_smoke_writes_report(tmp_path):
    out = tmp_path / "AIO_SMOKE.json"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "aio-smoke",
         "--packets", "3", "--receivers", "2", "--out", str(out)],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    report = json.loads(out.read_text())
    # "skipped" is legal where multicast is unroutable; a lying "ok"
    # is not, so on capable hosts require the real verdict.
    assert report["status"] in ("ok", "skipped")
    if report["status"] == "ok":
        assert report["violations"] == []
        assert report["delivered"] == [3, 3]


def test_aio_smoke_discovery_mode(tmp_path):
    from repro.aio.smoke import multicast_available

    if not multicast_available():
        pytest.skip("no loopback multicast here")
    out = tmp_path / "AIO_SMOKE.json"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "aio-smoke", "--discovery",
         "--packets", "3", "--receivers", "2", "--out", str(out)],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    report = json.loads(out.read_text())
    assert report["status"] == "ok"
    # Every receiver resolved a logger through the expanding rings.
    assert all(s["found_level"] is not None for s in report["discovery_stats"])
