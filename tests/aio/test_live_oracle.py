"""LiveOracle: invariants I1-I4 graded on real-UDP runs.

Three directions: a healthy hierarchical cluster must come out clean, a
legal §2.2.3 primary failover must also come out clean (promotion is
*allowed*, only demotion/double-promotion is not), and an induced
protocol breach must be caught — an oracle that can't fail is not
checking anything.
"""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.aio import AioCluster, GroupDirectory
from repro.chaos.live import LiveOracle
from repro.core.config import LbrmConfig, ReplicationConfig
from repro.core.events import PrimaryFailover, PromotedToPrimary
from repro.core.logger import LoggerRole

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/live-oracle/e2e"


def _directory(tag: int) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.47.%d" % tag, free_udp_port())
    return directory


def test_healthy_hierarchical_cluster_is_clean():
    asyncio.run(_run_healthy())


async def _run_healthy():
    async with AioCluster(
        GROUP, n_receivers=3, n_secondaries=1, n_replicas=1, directory=_directory(1)
    ) as cluster:
        oracle = LiveOracle(cluster)
        oracle.install()
        for i in range(6):
            await cluster.publish(b"pkt-%d" % i)
            await asyncio.sleep(0.05)
        for i in range(3):
            await asyncio.wait_for(cluster.deliveries(i, 6), 5.0)
        await asyncio.sleep(0.3)
        oracle.assert_ok()


def test_replica_promotion_over_udp_is_clean():
    asyncio.run(_run_failover())


async def _run_failover():
    config = LbrmConfig(
        replication=ReplicationConfig(primary_timeout=0.5, failover_wait=0.2)
    )
    async with AioCluster(
        GROUP, config, n_receivers=2, n_replicas=1, directory=_directory(2)
    ) as cluster:
        oracle = LiveOracle(cluster)
        oracle.install()
        replica_addr = cluster.replica_nodes[0].address

        await cluster.publish(b"before-1")
        await cluster.publish(b"before-2")
        for i in range(2):
            await asyncio.wait_for(cluster.deliveries(i, 2), 5.0)
        await asyncio.sleep(0.3)  # replication catches up

        # Primary log dies with data about to go outstanding.
        await cluster.primary_node.close()
        await cluster.publish(b"after-1")
        await cluster.publish(b"after-2")

        # primary_timeout passes with no LogAck -> sender polls replicas
        # -> most-up-to-date replica is promoted and handed the tail.
        for _ in range(60):
            if cluster.sender.primary == replica_addr:
                break
            await asyncio.sleep(0.1)
        assert cluster.sender.primary == replica_addr
        assert any(isinstance(e, PrimaryFailover) for e in cluster.sender_node.events)

        for _ in range(30):
            if cluster.replicas[0].role is LoggerRole.PRIMARY:
                break
            await asyncio.sleep(0.1)
        assert cluster.replicas[0].role is LoggerRole.PRIMARY
        assert any(
            isinstance(e, PromotedToPrimary) for e in cluster.replica_nodes[0].events
        )
        # The promoted log holds the whole stream, including the tail
        # the dead primary never saw.
        for _ in range(30):
            if cluster.replicas[0].primary_seq == 4:
                break
            await asyncio.sleep(0.1)
        assert cluster.replicas[0].primary_seq == 4

        for i in range(2):
            await asyncio.wait_for(cluster.deliveries(i, 2), 5.0)
        await asyncio.sleep(0.2)
        # A legal failover must not read as a violation.
        oracle.assert_ok()


def test_oracle_catches_induced_silence_breach():
    asyncio.run(_run_silence_breach())


async def _run_silence_breach():
    async with AioCluster(GROUP, n_receivers=1, directory=_directory(3)) as cluster:
        oracle = LiveOracle(cluster, grace=0.2, check_interval=0.1)
        oracle.install()
        await cluster.publish(b"only-one")
        await asyncio.wait_for(cluster.deliveries(0, 1), 5.0)
        # Lobotomize the sender: its machines stop polling, so the MaxIT
        # heartbeat promise (§2.1) is silently broken while the node —
        # and the socket — stay alive.
        cluster.sender_node.machines.clear()
        hb = cluster.config.heartbeat
        await asyncio.sleep(2.0 * hb.h_min + 0.2 + 1.0)
        violations = oracle.finish()
        assert any(v.invariant == "silence" for v in violations)


def test_oracle_requires_started_cluster():
    cluster = AioCluster(GROUP, directory=_directory(4))
    oracle = LiveOracle(cluster)

    async def run():
        with pytest.raises(RuntimeError):
            oracle.install()

    asyncio.run(run())
