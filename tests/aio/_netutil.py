"""Shared plumbing for the real-UDP test suite."""

from __future__ import annotations

import socket

__all__ = ["free_udp_port"]


def free_udp_port(host: str = "127.0.0.1") -> int:
    """A UDP port that was free a moment ago — the OS picks it (bind 0).

    Used for multicast group ports, which can't be literally bound to 0
    (every member must agree on the number in advance), so tests grab a
    kernel-assigned free port instead of hard-coding one that may be
    taken on a shared CI machine.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]
    finally:
        sock.close()
