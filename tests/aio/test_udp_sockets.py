"""Socket-helper unit tests (option flags, binding, TTL)."""

from __future__ import annotations

import socket

import pytest

from repro.aio.udp import (
    make_multicast_recv_socket,
    make_multicast_send_socket,
    make_unicast_socket,
    set_multicast_ttl,
)

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network


def test_unicast_socket_bound_and_nonblocking():
    sock = make_unicast_socket()
    try:
        host, port = sock.getsockname()
        assert host == "127.0.0.1"
        assert port > 0
        assert sock.getblocking() is False
    finally:
        sock.close()


def test_unicast_socket_explicit_port():
    probe = make_unicast_socket()
    free_port = probe.getsockname()[1]
    probe.close()
    sock = make_unicast_socket(port=free_port)
    try:
        assert sock.getsockname()[1] == free_port
    finally:
        sock.close()


def test_multicast_recv_socket_joined():
    port = free_udp_port()
    sock = make_multicast_recv_socket("239.255.45.1", port)
    try:
        assert sock.getsockname()[1] == port
        assert sock.getblocking() is False
    finally:
        sock.close()


def test_two_receivers_share_group_port():
    """SO_REUSEPORT lets co-located receivers share the group port."""
    port = free_udp_port()
    a = make_multicast_recv_socket("239.255.45.2", port)
    b = make_multicast_recv_socket("239.255.45.2", port)
    a.close()
    b.close()


def test_send_socket_options():
    sock = make_multicast_send_socket(ttl=7)
    try:
        assert sock.getsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL) == 7
        assert sock.getsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_LOOP) == 1
    finally:
        sock.close()


def test_set_ttl_adjusts_and_floors_at_one():
    sock = make_multicast_send_socket()
    try:
        set_multicast_ttl(sock, 3)
        assert sock.getsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL) == 3
        set_multicast_ttl(sock, 0)  # floor: TTL 0 would never leave the host
        assert sock.getsockopt(socket.IPPROTO_IP, socket.IP_MULTICAST_TTL) == 1
    finally:
        sock.close()
