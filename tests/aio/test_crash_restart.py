"""Receiver crash/restart over real UDP.

The asyncio twin of the chaos crash+restart primitive: a receiver's
endpoint dies mid-stream, traffic continues, and the machine comes back
on a fresh socket with its sequence state intact — the log-based
recovery path (NACK → logger retransmission) must close the gap it
slept through.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioCluster, GroupDirectory
from repro.aio.node import AioNode

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/crash-restart/e2e"


def _directory(tag: int) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.44.%d" % tag, free_udp_port())
    return directory


def test_receiver_crash_restart_recovers_gap():
    asyncio.run(_run_crash_restart())


async def _run_crash_restart():
    async with AioCluster(GROUP, n_receivers=2, directory=_directory(1)) as cluster:
        await asyncio.sleep(0.1)
        await cluster.publish(b"before")
        await asyncio.wait_for(cluster.deliveries(0, 1), 3.0)
        await asyncio.wait_for(cluster.deliveries(1, 1), 3.0)

        # Crash receiver 0's endpoint; the machine (and its tracker) survive.
        victim = cluster.receivers[0]
        await cluster.receiver_nodes[0].close()

        # Traffic continues while the node is dark.
        await cluster.publish(b"during-1")
        await cluster.publish(b"during-2")
        deliveries = await asyncio.wait_for(cluster.deliveries(1, 2), 3.0)
        assert [d.payload for d in deliveries] == [b"during-1", b"during-2"]
        await asyncio.sleep(0.1)
        assert 3 in cluster.primary.log  # the log holds what the victim missed

        # Restart: same machine, fresh socket (a new dynamic port).
        reborn = AioNode(directory=cluster.directory)
        await reborn.start()
        cluster.receiver_nodes[0] = reborn
        reborn.machines.append(victim)
        await reborn.run_machine(victim.start, reborn.now)

        # The next heartbeat advertises seq 3; the receiver NACKs the
        # primary log and recovers both missed packets in order.
        recovered = await asyncio.wait_for(cluster.deliveries(0, 2, timeout=5.0), 10.0)
        assert [d.payload for d in recovered] == [b"during-1", b"during-2"]
        assert victim.missing == frozenset()
        assert victim.tracker.highest == 3
        assert victim.stats["nacks_sent"] >= 1
