"""AioNode robustness: garbage datagrams, group lifecycle, stats."""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.aio import AioNode, GroupDirectory
from repro.core.config import LbrmConfig
from repro.core.receiver import LbrmReceiver

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/aio/robust"


def test_garbage_datagrams_counted_not_fatal():
    asyncio.run(_run_garbage())


async def _run_garbage():
    directory = GroupDirectory()
    node = AioNode(directory=directory)
    await node.start()
    rx = LbrmReceiver(GROUP, LbrmConfig().receiver, logger_chain=())
    node.machines.append(rx)
    try:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        for payload in (b"", b"garbage", b"LB\x01\xff???", b"\x00" * 64):
            sock.sendto(payload, node.address)
        sock.close()
        await asyncio.sleep(0.2)
        assert node.stats["decode_errors"] >= 3  # empty UDP payloads may not arrive
        assert node.stats["rx"] == 0  # nothing valid got through
    finally:
        await node.close()


def test_join_is_idempotent_and_leave_unknown_is_noop():
    asyncio.run(_run_group_lifecycle())


async def _run_group_lifecycle():
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.46.1", free_udp_port())
    node = AioNode(directory=directory)
    await node.start()
    try:
        await node.join_group(GROUP)
        await node.join_group(GROUP)  # second join: no error, one socket
        node.leave_group(GROUP)
        node.leave_group(GROUP)  # double leave: no-op
        node.leave_group("never/joined")
    finally:
        await node.close()


def test_address_before_start_raises():
    node = AioNode()
    with pytest.raises(RuntimeError):
        _ = node.address


def test_close_cancels_wakeups():
    asyncio.run(_run_close())


async def _run_close():
    node = AioNode()
    await node.start()
    rx = LbrmReceiver(GROUP, LbrmConfig().receiver, logger_chain=())
    node.machines.append(rx)
    await node.run_machine(rx.start, node.now)  # arms the MaxIT watchdog
    await node.close()
    # after close, pending timers must not fire into dead transports
    await asyncio.sleep(0.1)
    assert node.stats["socket_errors"] == 0
