"""Site secondary loggers over real UDP: wiring, logging, local repair.

The paper's §2.2.2 hierarchy on actual sockets: receivers NACK their
site logger first, the site logger answers repairs by unicast from its
own log, and the primary only hears about losses the site cannot cover.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AioCluster, AioNode, GroupDirectory

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/secondary/e2e"


def _directory(tag: int) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.45.%d" % tag, free_udp_port())
    return directory


def test_receivers_round_robin_across_secondaries():
    asyncio.run(_run_wiring())


async def _run_wiring():
    async with AioCluster(
        GROUP, n_receivers=4, n_secondaries=2, directory=_directory(1)
    ) as cluster:
        sec0 = cluster.secondary_nodes[0].address
        sec1 = cluster.secondary_nodes[1].address
        primary = cluster.primary_node.address
        chains = [r.logger_chain for r in cluster.receivers]
        assert chains == [
            (sec0, primary), (sec1, primary), (sec0, primary), (sec1, primary)
        ]


def test_secondaries_log_the_stream():
    asyncio.run(_run_logging())


async def _run_logging():
    async with AioCluster(
        GROUP, n_receivers=2, n_secondaries=2, directory=_directory(2)
    ) as cluster:
        for i in range(4):
            await cluster.publish(b"tick-%d" % i)
        for i in range(2):
            await asyncio.wait_for(cluster.deliveries(i, 4), 5.0)
        await asyncio.sleep(0.2)
        for secondary in cluster.secondaries:
            assert secondary.primary_seq == 4  # holds 1..4 contiguously


def test_repair_comes_from_site_logger_not_primary():
    asyncio.run(_run_local_repair())


async def _run_local_repair():
    async with AioCluster(
        GROUP, n_receivers=2, n_secondaries=1, directory=_directory(3)
    ) as cluster:
        await cluster.publish(b"seen")
        await asyncio.wait_for(cluster.deliveries(0, 1), 3.0)
        await asyncio.wait_for(cluster.deliveries(1, 1), 3.0)

        # Crash receiver 0's endpoint; packets 2..3 pass it by.
        victim = cluster.receivers[0]
        await cluster.receiver_nodes[0].close()
        await cluster.publish(b"missed-1")
        await cluster.publish(b"missed-2")
        await asyncio.wait_for(cluster.deliveries(1, 2), 3.0)
        await asyncio.sleep(0.2)

        # Restart on a fresh socket: the gap is repaired via the *site*
        # logger (first hop of the chain), unicast from its log.
        reborn = AioNode(directory=cluster.directory)
        await reborn.start()
        cluster.receiver_nodes[0] = reborn
        reborn.machines.append(victim)
        await reborn.run_machine(victim.start, reborn.now)

        recovered = await asyncio.wait_for(cluster.deliveries(0, 2, timeout=5.0), 10.0)
        assert [d.payload for d in recovered] == [b"missed-1", b"missed-2"]

        site = cluster.secondaries[0]
        assert site.stats["nacks_received"] >= 1
        assert site.stats["retrans_unicast"] + site.stats["retrans_multicast"] >= 2
        # The site logger held the data, so the primary heard no NACKs.
        assert cluster.primary.stats["nacks_received"] == 0


def test_cross_group_traffic_dropped_by_name():
    asyncio.run(_run_cross_group())


async def _run_cross_group():
    # Two groups forced onto the SAME multicast address and port — the
    # collision case wildcard binds cross-deliver.  The endpoint's group
    # filter must drop the foreign traffic before it reaches machines.
    directory = GroupDirectory()
    port = free_udp_port()
    directory.register("grp/a", "239.255.45.9", port)
    directory.register("grp/b", "239.255.45.9", port)

    node_a = AioNode(directory=directory)
    node_b = AioNode(directory=directory)
    await node_a.start()
    await node_b.start()
    try:
        await node_b.join_group("grp/b")
        async with AioCluster("grp/a", n_receivers=1, directory=directory) as cluster:
            await cluster.publish(b"for-a-only")
            await asyncio.wait_for(cluster.deliveries(0, 1), 3.0)
            await asyncio.sleep(0.2)
            assert node_b.stats["group_mismatches"] >= 1
            assert node_b.stats["rx"] == 0
    finally:
        await node_a.close()
        await node_b.close()


def test_recv_socket_binds_group_address():
    """Where the platform allows it, the kernel (not just the node-level
    name filter) keeps other groups' traffic off a group socket."""
    from repro.aio.udp import make_multicast_recv_socket

    sock = make_multicast_recv_socket("239.255.45.200", free_udp_port())
    try:
        assert sock.getsockname()[0] in ("239.255.45.200", "0.0.0.0")
    finally:
        sock.close()
