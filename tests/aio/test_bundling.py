"""TX coalescing over real sockets: trace identity, MTU budget, drops.

The fast path's contract (ISSUE 8): with ``bundling=False`` the wire is
byte-identical to the pre-bundling transport; with ``bundling=True``
only the *grouping* of packets into datagrams changes — the decoded
stream every machine sees is the same trace either way.  These tests
run the real loopback sockets (unicast, so they hold on CI hosts where
multicast is unroutable) and assert on recorded wire bytes, datagram
counts, the occupancy histogram, the high-water drop policy, and the
multicast TTL cache.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.aio import AioNode, GroupDirectory
from repro.aio import node as node_mod
from repro.core import packets as P
from repro.core.actions import SendUnicast
from repro.core.packets import BUNDLE_OVERHEAD, DataPacket

pytestmark = pytest.mark.network

_NO_ACTIONS: list = []


class _Sink:
    """Records every decoded packet the node dispatches to it."""

    def __init__(self) -> None:
        self.packets = []

    def handle(self, packet, addr, now):
        self.packets.append(packet)
        return _NO_ACTIONS

    def poll(self, now):
        return _NO_ACTIONS

    def next_wakeup(self):
        return None


class _RecordingSock:
    """Wraps a real socket, keeping a copy of every datagram sent."""

    def __init__(self, sock) -> None:
        self._sock = sock
        self.wires: list[bytes] = []

    def sendto(self, wire, dest):
        self.wires.append(bytes(wire))
        return self._sock.sendto(wire, dest)

    def __getattr__(self, name):
        return getattr(self._sock, name)


async def _drain(sink: _Sink, expected: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while len(sink.packets) < expected:
        if time.monotonic() >= deadline:
            raise TimeoutError(f"drain: got {len(sink.packets)}, expected {expected}")
        await asyncio.sleep(0)


async def _run_stream(bundling: bool, payloads, expected: int | None = None,
                      **sender_kwargs):
    """Send one DataPacket per payload to a sink node; return
    (delivered packets, sender stats snapshot, recorded wires)."""
    directory = GroupDirectory()
    sink = _Sink()
    receiver = AioNode([sink], directory=directory)
    sender = AioNode([], directory=directory, bundling=bundling, **sender_kwargs)
    try:
        await receiver.start()
        await sender.start()
        recorder = _RecordingSock(sender._unicast_sock)
        sender._unicast_sock = recorder
        dest = receiver.address
        actions = [
            SendUnicast(dest=dest, packet=DataPacket(group="t/bundle", seq=i + 1,
                                                     payload=payload))
            for i, payload in enumerate(payloads)
        ]
        sender._execute_sync(actions)
        await _drain(sink, len(payloads) if expected is None else expected)
        stats = dict(sender.stats)
        occupancy = dict(sender.bundle_occupancy)
        return sink.packets, stats, occupancy, recorder.wires
    finally:
        await sender.close()
        await receiver.close()


def test_trace_identity_bundling_on_vs_off():
    """The decoded stream is identical either way; only the datagram
    grouping differs (and bundling actually coalesces)."""
    payloads = [b"p%03d" % i for i in range(40)]
    off, off_stats, _, off_wires = asyncio.run(_run_stream(False, payloads))
    on, on_stats, _, on_wires = asyncio.run(_run_stream(True, payloads))
    assert [(p.seq, p.payload) for p in off] == [(p.seq, p.payload) for p in on]
    assert off_stats["tx_datagrams"] == len(payloads)
    assert on_stats["tx_datagrams"] < off_stats["tx_datagrams"]
    assert on_stats["tx_bundles"] >= 1
    assert on_stats["tx_coalesced_packets"] == len(payloads)
    # Unbundled frames inside the bundles are the exact unbundled wires.
    rebuilt = []
    for wire in on_wires:
        if P.is_bundle(wire):
            rebuilt.extend(bytes(f) for f in P.iter_bundle(wire))
        else:
            rebuilt.append(wire)
    assert rebuilt == off_wires


def test_bundling_off_is_byte_identical_to_plain_encode():
    """bundling=False puts exactly ``encode(packet)`` on the wire — no
    framing, no reordering, one datagram per packet."""
    payloads = [b"alpha", b"beta", b"gamma"]
    delivered, _, _, wires = asyncio.run(_run_stream(False, payloads))
    expected = [
        P.encode_uncached(DataPacket(group="t/bundle", seq=i + 1, payload=pl))
        for i, pl in enumerate(payloads)
    ]
    assert wires == expected
    assert not any(P.is_bundle(w) for w in wires)
    assert [p.payload for p in delivered] == payloads


def test_single_queued_packet_ships_unframed():
    """A flush with occupancy 1 sends the bare packet wire (6 bytes
    cheaper than a 1-bundle and byte-identical to bundling=False)."""
    delivered, stats, occupancy, wires = asyncio.run(_run_stream(True, [b"solo"]))
    assert wires == [P.encode_uncached(DataPacket(group="t/bundle", seq=1,
                                                  payload=b"solo"))]
    assert stats["tx_bundles"] == 0
    assert occupancy == {1: 1}
    assert delivered[0].payload == b"solo"


def test_one_tick_burst_coalesces_into_one_datagram():
    payloads = [b"x" * 8 for _ in range(10)]
    delivered, stats, occupancy, wires = asyncio.run(_run_stream(True, payloads))
    assert len(wires) == 1 and P.is_bundle(wires[0])
    assert stats["tx_datagrams"] == 1
    assert stats["tx_bundles"] == 1
    assert stats["tx_coalesced_packets"] == 10
    assert occupancy == {10: 1}
    assert len(delivered) == 10


def test_mtu_budget_bounds_every_datagram():
    """No datagram ever exceeds max_bundle_bytes; the burst splits into
    several full bundles instead."""
    limit = 256
    payloads = [bytes([i]) * 48 for i in range(24)]
    delivered, stats, _, wires = asyncio.run(
        _run_stream(True, payloads, max_bundle_bytes=limit)
    )
    assert len(delivered) == 24
    assert stats["tx_datagrams"] == len(wires) > 1
    assert all(len(w) <= limit for w in wires)
    # Splitting preserved per-destination order.
    seqs = []
    for wire in wires:
        frames = P.iter_bundle(wire) if P.is_bundle(wire) else [wire]
        seqs.extend(P.decode_from(f).seq for f in frames)
    assert seqs == sorted(seqs)


def test_oversize_packet_flushes_queue_then_ships_alone():
    """A packet too big to share a datagram must not block or split:
    the pending bundle flushes first (ordering), then it goes alone."""
    limit = 256
    big = b"B" * (limit - BUNDLE_OVERHEAD)  # over the frame budget, under UDP's cap
    payloads = [b"s1", b"s2", big, b"s3"]
    delivered, _, occupancy, wires = asyncio.run(
        _run_stream(True, payloads, max_bundle_bytes=limit)
    )
    assert [p.payload for p in delivered] == payloads
    # Flush of [s1, s2], the lone oversize wire, then [s3] on the tick.
    assert occupancy.get(1, 0) >= 1
    assert any(len(w) > limit - BUNDLE_OVERHEAD and not P.is_bundle(w) for w in wires)


def test_high_water_drop_policy_bounds_the_queue():
    """Overflowing max_queued_packets drops (like network loss) instead
    of buffering without bound; survivors still arrive in order."""
    payloads = [b"q%02d" % i for i in range(10)]
    delivered, stats, _, _ = asyncio.run(
        _run_stream(True, payloads, expected=4, max_queued_packets=4)
    )
    assert stats["tx_bundle_drops"] == 6
    assert [p.payload for p in delivered] == payloads[:4]


def test_bundle_delay_coalesces_across_ticks():
    """With max_bundle_delay > 0 the flush timer spans event-loop ticks,
    so two temporally close bursts share one datagram."""

    async def run():
        directory = GroupDirectory()
        sink = _Sink()
        receiver = AioNode([sink], directory=directory)
        sender = AioNode([], directory=directory, bundling=True,
                         max_bundle_delay=0.05)
        try:
            await receiver.start()
            await sender.start()
            dest = receiver.address
            for seq in (1, 2):
                sender._execute_sync(
                    [SendUnicast(dest=dest,
                                 packet=DataPacket(group="t/bundle", seq=seq,
                                                   payload=b"tick"))]
                )
                await asyncio.sleep(0)  # a real tick boundary between sends
            await _drain(sink, 2)
            return dict(sender.stats)
        finally:
            await sender.close()
            await receiver.close()

    stats = asyncio.run(run())
    assert stats["tx_datagrams"] == 1
    assert stats["tx_coalesced_packets"] == 2


def test_close_flushes_pending_bundles():
    """Packets queued but not yet flushed must not be lost on close."""

    async def run():
        directory = GroupDirectory()
        sink = _Sink()
        receiver = AioNode([sink], directory=directory)
        sender = AioNode([], directory=directory, bundling=True,
                         max_bundle_delay=5.0)  # timer won't fire on its own
        try:
            await receiver.start()
            await sender.start()
            sender._execute_sync(
                [SendUnicast(dest=receiver.address,
                             packet=DataPacket(group="t/bundle", seq=1,
                                               payload=b"pending"))]
            )
            await sender.close()
            await _drain(sink, 1)
            return [p.payload for p in sink.packets]
        finally:
            await sender.close()
            await receiver.close()

    assert asyncio.run(run()) == [b"pending"]


def test_ttl_cache_skips_redundant_setsockopt(monkeypatch):
    """_apply_ttl only calls setsockopt when the TTL actually changes
    (satellite: steady-state scoped sends cost zero syscalls)."""

    async def run():
        calls = []
        real = node_mod.set_multicast_ttl
        monkeypatch.setattr(
            node_mod, "set_multicast_ttl",
            lambda sock, ttl: (calls.append(ttl), real(sock, ttl))[1],
        )
        node = AioNode([])
        try:
            await node.start()
            node._apply_ttl(1)   # startup default: already 1, no syscall
            assert calls == []
            node._apply_ttl(5)
            node._apply_ttl(5)
            node._apply_ttl(5)
            assert calls == [5]
            node._apply_ttl(2)
            node._apply_ttl(1)
            assert calls == [5, 2, 1]
        finally:
            await node.close()

    asyncio.run(run())
