"""LLFT-grade failover over real UDP: tie-breaks and a multi-process soak.

Two gaps the simulator cannot close by construction:

* the promotion tie-break must behave identically when node identities
  are real ``"host:port"`` tokens with kernel-assigned ports rather
  than tidy ``replica0``/``replica1`` names; and
* "zero committed-packet loss across failover" must hold for a receiver
  living in a **different OS process** — its own event loop, its own
  sockets — observing the group purely through the wire.
"""

from __future__ import annotations

import asyncio
import multiprocessing

import pytest

from repro.aio import AioCluster, GroupDirectory
from repro.aio.node import addr_token
from repro.chaos.live import LiveOracle
from repro.core.config import LbrmConfig, ReplicationConfig
from repro.core.events import PrimaryFailover
from repro.core.logger import LoggerRole

from tests.aio._netutil import free_udp_port

pytestmark = pytest.mark.network

GROUP = "test/failover-udp/e2e"


def _config() -> LbrmConfig:
    return LbrmConfig(
        replication=ReplicationConfig(primary_timeout=0.5, failover_wait=0.2)
    )


def _directory(tag: int, port: int | None = None) -> GroupDirectory:
    directory = GroupDirectory()
    directory.register(GROUP, "239.255.48.%d" % tag, port or free_udp_port())
    return directory


# -- tie-break on real node identities -------------------------------------


def test_udp_tie_break_promotes_lowest_token():
    asyncio.run(_run_tie_break())


async def _run_tie_break():
    async with AioCluster(
        GROUP, _config(), n_receivers=1, n_replicas=2, directory=_directory(1)
    ) as cluster:
        oracle = LiveOracle(cluster)
        oracle.install()

        await cluster.publish(b"tie-1")
        await cluster.publish(b"tie-2")
        # Force an exact tie: both replicas must hold the full prefix
        # before the primary dies, so their failover votes are equal.
        for _ in range(50):
            if all(r.primary_seq == 2 for r in cluster.replicas):
                break
            await asyncio.sleep(0.1)
        assert all(r.primary_seq == 2 for r in cluster.replicas)

        await cluster.primary_node.close()
        await cluster.publish(b"tie-3")  # unackable: triggers the failover

        # The tie must break to the lowest "host:port" token — computed
        # here exactly the way the sender computes it, so the expectation
        # holds whatever ports the kernel handed out.
        tokens = {addr_token(n.address): n.address for n in cluster.replica_nodes}
        expected = tokens[min(tokens)]
        for _ in range(80):
            if cluster.sender.primary == expected:
                break
            await asyncio.sleep(0.1)
        assert cluster.sender.primary == expected

        events = [e for e in cluster.sender_node.events if isinstance(e, PrimaryFailover)]
        assert len(events) == 1
        assert events[0].new_primary == expected
        assert events[0].log_epoch == 2

        winner = cluster.replicas[cluster.replica_nodes.index(
            next(n for n in cluster.replica_nodes if n.address == expected)
        )]
        for _ in range(50):
            if winner.role is LoggerRole.PRIMARY:
                break
            await asyncio.sleep(0.1)
        assert winner.role is LoggerRole.PRIMARY
        assert winner.log_epoch == 2

        for _ in range(50):
            if cluster.sender.released_up_to == 3:
                break
            await asyncio.sleep(0.1)
        assert cluster.sender.released_up_to == 3
        await asyncio.sleep(0.2)
        oracle.assert_ok()


# -- multi-process soak: an out-of-process receiver across a failover ------


def _receiver_child(conn, group, mcast_ip, mcast_port, source_addr, chain, expect, timeout):
    """Child-process entry point: an independent event loop joins the
    multicast group as one more receiver and reports what it delivered."""
    import asyncio as aio

    from repro.aio import GroupDirectory as Directory
    from repro.aio.node import AioNode, parse_token
    from repro.core.config import LbrmConfig as Config
    from repro.core.receiver import LbrmReceiver

    async def run():
        config = Config()
        directory = Directory()
        directory.register(group, mcast_ip, mcast_port)
        node = AioNode(directory=directory)
        await node.start()
        receiver = LbrmReceiver(
            group, config.receiver,
            logger_chain=tuple(tuple(a) for a in chain),
            source=tuple(source_addr),
            heartbeat=config.heartbeat,
            parse_token=parse_token,
        )
        node.machines.append(receiver)
        await node.run_machine(receiver.start, node.now)
        conn.send("ready")
        loop = aio.get_running_loop()
        deadline = loop.time() + timeout
        got = []
        while len(got) < expect and loop.time() < deadline:
            try:
                delivery = await aio.wait_for(node.delivery_queue.get(), 0.5)
            except aio.TimeoutError:
                continue
            got.append(delivery.seq)
        conn.send((sorted(got), sorted(receiver.missing)))
        await node.close()

    aio.run(run())
    conn.close()


def test_out_of_process_receiver_survives_promotion():
    asyncio.run(_run_multiprocess_soak())


async def _run_multiprocess_soak():
    total = 6
    mcast_ip, mcast_port = "239.255.48.2", free_udp_port()
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    async with AioCluster(
        GROUP, _config(), n_receivers=1, n_replicas=1,
        directory=_directory(2, mcast_port),
    ) as cluster:
        oracle = LiveOracle(cluster)
        oracle.install()
        proc = ctx.Process(
            target=_receiver_child,
            args=(
                child_conn, GROUP, mcast_ip, mcast_port,
                cluster.sender_node.address,
                [cluster.primary_node.address],
                total, 30.0,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        ready = await asyncio.wait_for(
            loop.run_in_executor(None, parent_conn.recv), 30.0
        )
        assert ready == "ready"

        for i in range(3):
            await cluster.publish(b"pre-%d" % i)
            await asyncio.sleep(0.05)
        await asyncio.sleep(0.3)  # replication catches up: seqs 1-3 committed

        await cluster.primary_node.close()
        for i in range(3):
            await cluster.publish(b"post-%d" % i)
            await asyncio.sleep(0.05)

        replica_addr = cluster.replica_nodes[0].address
        for _ in range(80):
            if cluster.sender.primary == replica_addr:
                break
            await asyncio.sleep(0.1)
        assert cluster.sender.primary == replica_addr
        for _ in range(80):
            if cluster.sender.released_up_to == total:
                break
            await asyncio.sleep(0.1)
        assert cluster.sender.released_up_to == total

        got, missing = await asyncio.wait_for(
            loop.run_in_executor(None, parent_conn.recv), 35.0
        )
        # Zero committed-packet loss, observed from outside the process:
        # every sequence the sender released arrived in the child.
        assert got == list(range(1, total + 1))
        assert missing == []
        proc.join(10.0)
        assert proc.exitcode == 0

        # The in-process receiver saw the same unbroken stream, and the
        # live oracle (I1-I6) signs off on the whole run.
        await asyncio.wait_for(cluster.deliveries(0, total, timeout=10.0), 15.0)
        await asyncio.sleep(0.2)
        oracle.assert_ok()
