"""Exhaustive crash-point failover sweep: the zero-loss proof (I1–I6).

The quick-tier tests here *are* the acceptance gate for the LLFT-grade
failover work: the primary is crashed at **every** distinct schedule
point of the scenario (not a sample), each replay is graded by the
full ChaosOracle — delivery (I1), silence (I2), log safety and
completeness (I3), monotone promotion (I4), and the commit-point
invariant I6 (no committed packet lost, recovery stalls bounded) —
and both simulation engines must agree on the end state of every
replay.  The ``slow``-marked tests extend the proof to the full shape
and to double failures (primary, then the freshly promoted replica).
"""

from __future__ import annotations

import json

import pytest

from repro.chaos.sweep import (
    TIERS,
    enumerate_crash_points,
    run_crash_case,
    run_sweep_campaign,
    sweep_config,
)


def _assert_clean(report: dict) -> None:
    problems = []
    for case in report["cases"]:
        for engine, result in case["engines"].items():
            for violation in result["violations"]:
                problems.append(f"crash_at={case['crash_at']} [{engine}]: {violation}")
        if not case["engines_agree"]:
            problems.append(f"crash_at={case['crash_at']}: engine digests diverge")
    assert not problems, "sweep violations:\n" + "\n".join(problems[:20])
    assert report["sweep"]["points_agree"], "engines enumerated different point lists"
    assert not report["failures"]


def test_micro_sweep_is_exhaustive_and_clean():
    """Tier-1 gate: every schedule point of the micro scenario survives a
    primary crash with zero I1–I6 violations on both engines."""
    report = run_sweep_campaign(0, tier="micro", engines=("fast", "reference"))
    assert report["totals"]["points"] > 20  # genuinely a sweep, not a sample
    assert report["sweep"]["points_truncated"] == 0
    _assert_clean(report)


def test_engines_enumerate_identical_point_lists():
    shape = TIERS["micro"]
    fast = enumerate_crash_points(shape, 3, "fast")
    reference = enumerate_crash_points(shape, 3, "reference")
    assert fast == reference
    assert fast == sorted(set(fast))  # sorted, deduplicated


def test_crash_points_cover_send_instants():
    """The crash-just-before-a-send instants are always in the point set."""
    from repro.chaos.sweep import _send_times

    shape = TIERS["micro"]
    points = set(enumerate_crash_points(shape, 0, "fast"))
    assert set(_send_times(shape)) <= points


def test_single_replay_promotes_with_new_epoch():
    shape = TIERS["micro"]
    points = enumerate_crash_points(shape, 0, "fast")
    crash_at = points[len(points) // 2]  # mid-stream, data outstanding
    outcome = run_crash_case(shape, 0, crash_at, "fast")
    assert not outcome.violations
    assert outcome.promoted == "replica0"
    assert outcome.log_epoch == 2  # configured primary was term 1


def test_same_seed_sweep_reports_are_byte_identical():
    kw = dict(tier="micro", engines=("fast",))
    first = json.dumps(run_sweep_campaign(5, **kw), sort_keys=True, indent=2)
    second = json.dumps(run_sweep_campaign(5, **kw), sort_keys=True, indent=2)
    assert first == second


def test_max_points_truncation_is_recorded_not_silent():
    report = run_sweep_campaign(0, tier="micro", engines=("fast",), max_points=10)
    assert report["totals"]["points"] == 10
    assert report["sweep"]["points_truncated"] > 0
    _assert_clean(report)


def test_sweep_detects_broken_replication():
    """Sabotage check: with replication silently disabled (followers drop
    every REPL_UPDATE) the sweep must report violations — the promoted
    primary can never catch up, tripping I6's stall bound.  Proof the
    oracle is actually wired to the replays, not rubber-stamping them."""
    from repro.core.logger import LogServer

    original = LogServer._on_repl_update
    LogServer._on_repl_update = lambda self, packet, src, now: []
    try:
        report = run_sweep_campaign(0, tier="micro", engines=("fast",))
    finally:
        LogServer._on_repl_update = original
    assert report["failures"]
    kinds = {
        v["invariant"]
        for case in report["cases"]
        for engine in case["engines"].values()
        for v in engine["violations"]
    }
    assert "failover-stall" in kinds


def test_follower_restart_readoption_and_backfill():
    """A follower that restarts empty mid-stream is detected via its
    regressed ACK, re-adopted with fresh state, and backfilled — the
    manager's watermark must never exceed what the follower actually
    holds (the stale-FollowerState bug kept the old watermark, which
    both inflated the commit point and starved the backfill)."""
    from repro.simnet.deploy import DeploymentSpec, LbrmDeployment

    config = sweep_config(min_replicas_acked=2)
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=1, receivers_per_site=1, n_replicas=2, config=config, seed=7,
    ))
    dep.start()
    for i in range(4):
        dep.advance(0.3)
        dep.send(f"pkt-{i}".encode())
    dep.advance(0.5)  # replication settles
    assert dep.primary is not None and dep.primary.replication is not None
    mgr = dep.primary.replication
    wiped, name = dep.replicas[0], dep.replica_nodes[0].name
    assert mgr.acked_by(name) == dep.sender.seq  # caught up pre-wipe

    wiped.wipe_restart(dep.sim.now)
    assert wiped.primary_seq == 0
    dep.send(b"after-restart")  # next push carries the regressed ACK back
    dep.advance(2.0)

    assert mgr.stats["members_readopted"] == 1
    assert wiped.primary_seq == dep.sender.seq  # vanished prefix backfilled
    assert mgr.acked_by(name) == wiped.primary_seq  # watermark is honest


def test_readopt_sweep_is_clean():
    """Every crash point survives a follower wipe-restart mid-stream:
    re-adoption and backfill keep I1–I6 green on both engines."""
    report = run_sweep_campaign(0, tier="micro", engines=("fast", "reference"), readopt=True)
    assert report["sweep"]["readopt"] is True
    assert report["sweep"]["shape"]["n_replicas"] >= 2
    _assert_clean(report)


@pytest.mark.slow
def test_full_sweep_is_clean():
    report = run_sweep_campaign(0, tier="full", engines=("fast", "reference"))
    assert report["totals"]["points"] > 50
    _assert_clean(report)


@pytest.mark.slow
def test_double_failure_sweep_is_clean():
    """Primary crash followed by a crash of whatever node the sender then
    trusts: with min_replicas_acked=2 the release point never passes
    what *both* replicas hold, so any crash pair must be zero-loss."""
    report = run_sweep_campaign(0, tier="quick", engines=("fast", "reference"), double=True)
    assert report["sweep"]["double"] is True
    assert report["sweep"]["shape"]["n_replicas"] >= 2
    _assert_clean(report)
    # The variant genuinely exercises second failovers: some replay must
    # end in a term beyond the first promotion's.
    assert any(
        case["engines"]["fast"]["log_epoch"] >= 3 for case in report["cases"]
    )


def test_double_failure_config_requires_two_acks():
    config = sweep_config(min_replicas_acked=2)
    assert config.replication.min_replicas_acked == 2
