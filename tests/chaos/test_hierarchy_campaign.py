"""The k-level chaos campaign: tree faults, determinism, oracle wiring."""

from __future__ import annotations

import json
import random

import pytest

from repro.chaos.controller import ChaosController
from repro.chaos.hierarchy import (
    TIERS,
    run_hierarchy_campaign,
    run_hierarchy_case,
    sample_hierarchy_schedule,
)
from repro.chaos.schedule import Fault, FaultSchedule, TREE_KINDS
from repro.simnet.deploy import DeploymentSpec, LbrmDeployment


def test_reparent_fault_needs_target():
    with pytest.raises(ValueError, match="needs a target"):
        Fault("reparent", 1.0)


def test_tree_faults_property_selects_reparents():
    schedule = FaultSchedule(faults=(
        Fault("reparent", 1.0, "site1-logger"),
        Fault("crash", 2.0, "site1-rx0"),
    ))
    assert [f.kind for f in schedule.tree_faults] == ["reparent"]
    assert TREE_KINDS == {"reparent"}


def test_reparent_fault_moves_the_edge():
    dep = LbrmDeployment(
        DeploymentSpec(n_sites=6, receivers_per_site=1, depth=3, fanout=3, seed=1)
    )
    schedule = FaultSchedule(faults=(Fault("reparent", 1.0, "site1-logger"),))
    controller = ChaosController(dep, schedule)
    controller.install()
    dep.start()
    before = dep.hierarchy.manager.tree.parent("site1-logger")
    dep.advance(2.0)
    assert controller.faults_injected == 1
    assert [f.kind for _t, f in controller.applied] == ["reparent"]
    moves = dep.hierarchy.manager.moves
    forced = [m for m in moves if m.reason == "forced"]
    assert len(forced) == 1
    assert forced[0].child == "site1-logger" and forced[0].old_parent == before
    # The mutation may later be *reverted* by the cost rescore (the hub
    # shares site1's LAN, so hysteresis clears) — that is self-healing,
    # not a bug.  What must always hold: receivers ride the current tree.
    assert dep.receivers[0].logger_chain == dep.hierarchy.manager.tree.chain("site1-logger")


def test_reparent_fault_is_uncounted_noop_on_flat_deployment():
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=1))
    assert dep.hierarchy is None
    schedule = FaultSchedule(faults=(Fault("reparent", 1.0, "site1-logger"),))
    controller = ChaosController(dep, schedule)
    controller.install()
    dep.start()
    dep.advance(2.0)
    dep.send(b"x")
    dep.advance(5.0)
    assert controller.faults_injected == 0
    assert dep.receivers_missing() == 0


def test_sampler_always_disturbs_the_tree():
    shape = TIERS["quick"]
    hubs = set(shape.hubs())
    for seed in range(12):
        schedule = sample_hierarchy_schedule(random.Random(f"t:{seed}"), shape)
        touches_tree = any(
            f.kind == "reparent" or (f.kind in {"crash", "restart"} and f.target in hubs)
            for f in schedule.faults
        )
        assert touches_tree, schedule.to_dict()
        # Recoverable by construction: never the primary or the source.
        assert all(f.target not in {"primary", "sender"} for f in schedule.faults)
        permanent_hub_crashes = sum(
            1
            for f in schedule.faults
            if f.kind == "crash" and f.target in hubs
            and not any(
                g.kind == "restart" and g.target == f.target and g.at > f.at
                for g in schedule.faults
            )
        )
        assert permanent_hub_crashes <= 1


def test_same_seed_campaigns_are_byte_identical():
    kw = dict(tier="quick", engines=("fast",), runs=2)
    first = json.dumps(run_hierarchy_campaign(7, **kw), sort_keys=True, indent=2)
    second = json.dumps(run_hierarchy_campaign(7, **kw), sort_keys=True, indent=2)
    assert first == second


def test_quick_campaign_is_clean_and_engines_agree():
    report = run_hierarchy_campaign(0, tier="quick", runs=1)
    assert report["totals"]["violations"] == 0
    assert not report["failures"]
    assert all(case["engines_agree"] for case in report["cases"])
    # The digest folds in the hierarchy snapshot, so agreement here means
    # both engines performed the same tree surgery.
    assert report["totals"]["reparents"] > 0


def test_case_digest_covers_tree_state():
    shape = TIERS["quick"]
    schedule = FaultSchedule(faults=(Fault("reparent", 2.0, "site2-logger"),))
    with_fault = run_hierarchy_case(shape, schedule, case_seed=9, engine="fast")
    without = run_hierarchy_case(shape, FaultSchedule(), case_seed=9, engine="fast")
    assert not with_fault.violations and not without.violations
    assert with_fault.reparents >= 1
    # Same receiver contents, different tree: digests must differ.
    assert with_fault.digest != without.digest
