"""ChaosController: schedules compile onto a live deployment."""

from __future__ import annotations

import pytest

from repro import obs
from repro.chaos import ChaosController, Fault, FaultSchedule
from repro.simnet import DeploymentSpec, LbrmDeployment
from repro.simnet.loss import BernoulliLoss


def _dep(**kw):
    return LbrmDeployment(DeploymentSpec(**{
        "n_sites": 2, "receivers_per_site": 1, "seed": 5, **kw,
    }))


def _arm(dep, *faults, seed=0):
    controller = ChaosController(dep, FaultSchedule(faults=tuple(faults), seed=seed))
    controller.install()
    return controller


def test_crash_and_restart_round_trip():
    dep = _dep()
    _arm(dep, Fault("crash", 1.0, "site1-rx0"), Fault("restart", 2.0, "site1-rx0"))
    dep.start()
    node = dep.node("site1-rx0")
    dep.advance(1.5)
    assert not node.alive
    dep.advance(1.0)
    assert node.alive


def test_pause_freezes_then_resume_revives():
    dep = _dep()
    _arm(dep, Fault("pause", 1.0, "site1-rx0"), Fault("resume", 2.0, "site1-rx0"))
    dep.start()
    node = dep.node("site1-rx0")
    dep.advance(1.5)
    assert node.paused and not node.alive
    dep.advance(1.0)
    assert node.alive


def test_skew_offsets_machine_clock():
    dep = _dep()
    _arm(dep, Fault("skew", 1.0, "site1-rx0", amount=0.05))
    dep.start()
    dep.advance(1.5)
    assert dep.node("site1-rx0").clock_skew == 0.05


def test_partition_composes_with_existing_loss():
    dep = _dep()
    background = BernoulliLoss(0.0, dep.streams.stream("bg"))
    dep.network.site("site1").tail_down.loss = background
    _arm(dep, Fault("partition", 1.0, "site1", duration=1.0))
    dep.start()
    model = dep.network.site("site1").tail_down.loss
    # The partition wraps the prior model rather than replacing it.
    assert model is not background
    assert model.drops(1.5)
    assert not model.drops(2.5)


def test_packet_faults_install_network_hook():
    dep = _dep()
    _arm(dep, Fault("corrupt", 1.0, "site1-rx0", duration=1.0, amount=1.0))
    assert dep.network.chaos is not None


def test_faults_counted_in_obs_registry():
    with obs.recording() as reg:
        dep = _dep()
        controller = _arm(
            dep,
            Fault("crash", 1.0, "site1-rx0"),
            Fault("restart", 2.0, "site1-rx0"),
            Fault("partition", 1.0, "site2", duration=0.5),
        )
        dep.start()
        dep.advance(3.0)
        assert controller.faults_injected == 3
        assert reg.counter_value("chaos.faults_injected") == 3


def test_double_install_rejected():
    dep = _dep()
    controller = ChaosController(dep, FaultSchedule())
    controller.install()
    with pytest.raises(RuntimeError):
        controller.install()
