"""Campaign-level guarantees: determinism, sampler discipline, detection."""

from __future__ import annotations

import json
import random

import pytest

from repro.chaos.campaign import (
    TIERS,
    minimize_schedule,
    run_campaign,
    run_case,
    sample_schedule,
)
from repro.chaos.schedule import PACKET_KINDS


def test_same_seed_campaigns_are_byte_identical():
    """The regression the loss-RNG audit protects: a reproducer seed must
    reproduce, byte for byte — violation reports included."""
    kw = dict(tier="quick", engines=("fast",), runs=2)
    first = json.dumps(run_campaign(7, **kw), sort_keys=True, indent=2)
    second = json.dumps(run_campaign(7, **kw), sort_keys=True, indent=2)
    assert first == second


def test_same_seed_sabotaged_campaigns_report_identically():
    kw = dict(tier="quick", engines=("fast",), runs=1, sabotage="logger-retrans")
    first = json.dumps(run_campaign(3, **kw), sort_keys=True, indent=2)
    second = json.dumps(run_campaign(3, **kw), sort_keys=True, indent=2)
    assert first == second


def test_sabotage_is_caught_with_reproducer():
    report = run_campaign(4, tier="quick", engines=("fast",), sabotage="logger-retrans")
    assert report["totals"]["violations"] > 0
    assert report["failures"]
    for failure in report["failures"]:
        assert "--seed 4" in failure["reproducer"]
        assert failure["minimized_schedule"]["faults"]


def test_minimized_schedule_still_fails_and_is_no_larger():
    shape = TIERS["quick"]
    index = 0
    schedule = sample_schedule(random.Random(f"chaos-campaign:4:{index}"), shape)
    case_seed = run_campaign(4, tier="quick", engines=("fast",), runs=1)["cases"][0]["case_seed"]
    minimized = minimize_schedule(shape, schedule, case_seed, "fast", "logger-retrans")
    assert len(minimized) <= len(schedule)
    outcome = run_case(shape, minimized, case_seed, "fast", "logger-retrans")
    assert outcome.violations


def test_unknown_sabotage_rejected():
    with pytest.raises(ValueError, match="unknown sabotage"):
        run_campaign(0, tier="quick", engines=("fast",), runs=1, sabotage="nope")


class TestSamplerDiscipline:
    """Schedules must be recoverable by construction."""

    def _schedules(self, shape, n=200):
        return [
            sample_schedule(random.Random(f"discipline:{i}"), shape) for i in range(n)
        ]

    def test_source_is_never_touched(self):
        for schedule in self._schedules(TIERS["full"]):
            assert all(f.target != "source" for f in schedule.faults)

    def test_corrupt_and_reorder_target_receivers_only(self):
        for schedule in self._schedules(TIERS["full"]):
            for fault in schedule.faults:
                if fault.kind in ("corrupt", "reorder"):
                    assert "-rx" in fault.target

    def test_every_crash_except_failover_has_a_restart(self):
        for schedule in self._schedules(TIERS["full"]):
            crashes = [f for f in schedule.faults if f.kind == "crash"]
            restarts = {f.target for f in schedule.faults if f.kind == "restart"}
            for crash in crashes:
                if crash.target == "primary":
                    continue  # the failover scenario: permanent by design
                assert crash.target in restarts

    def test_at_most_one_primary_side_fault(self):
        for schedule in self._schedules(TIERS["full"]):
            primary_faults = [
                f for f in schedule.faults
                if f.target == "primary" and f.kind in ("crash", "pause")
            ]
            assert len(primary_faults) <= 1

    def test_partitions_never_cut_the_source_site(self):
        for schedule in self._schedules(TIERS["full"]):
            assert all(
                f.target != "site0" for f in schedule.faults if f.kind == "partition"
            )

    def test_packet_windows_are_bounded(self):
        for schedule in self._schedules(TIERS["full"]):
            for fault in schedule.faults:
                if fault.kind in PACKET_KINDS:
                    assert 0 < fault.duration <= 2.0
