"""Unit tests for the declarative fault-schedule layer."""

from __future__ import annotations

import random

import pytest

from repro.chaos.schedule import DUPLICATE_GAP, Fault, FaultSchedule, PacketChaos


class _Pkt:
    TYPE = 1


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor", 1.0, "site1")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="must be >= 0"):
            Fault("crash", -1.0, "primary")

    def test_node_fault_needs_target(self):
        with pytest.raises(ValueError, match="needs a target"):
            Fault("crash", 1.0)

    def test_probability_amounts_bounded(self):
        with pytest.raises(ValueError, match="probability"):
            Fault("corrupt", 1.0, "rx", duration=1.0, amount=1.5)

    def test_reorder_needs_positive_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Fault("reorder", 1.0, "rx", duration=1.0, amount=0.0)

    def test_dict_roundtrip(self):
        fault = Fault("corrupt", 2.5, "site1-rx0", duration=0.4, amount=0.2)
        assert Fault.from_dict(fault.to_dict()) == fault


class TestFaultSchedule:
    def test_faults_sorted_by_time(self):
        schedule = FaultSchedule(faults=(
            Fault("restart", 3.0, "rx"), Fault("crash", 1.0, "rx"),
        ))
        assert [f.kind for f in schedule.faults] == ["crash", "restart"]

    def test_partition_windows_self_closing(self):
        schedule = FaultSchedule(faults=(Fault("partition", 1.0, "site1", duration=2.0),))
        assert schedule.partition_windows() == {"site1": [(1.0, 3.0)]}

    def test_partition_open_until_heal(self):
        schedule = FaultSchedule(faults=(
            Fault("partition", 1.0, "site1"),
            Fault("heal", 4.0, "site1"),
        ))
        assert schedule.partition_windows() == {"site1": [(1.0, 4.0)]}

    def test_partition_without_heal_is_forever(self):
        schedule = FaultSchedule(faults=(Fault("partition", 1.0, "site1"),))
        assert schedule.partition_windows() == {"site1": [(1.0, float("inf"))]}

    def test_without_removes_one_fault(self):
        schedule = FaultSchedule(faults=(
            Fault("crash", 1.0, "a"), Fault("crash", 2.0, "b"),
        ))
        assert [f.target for f in schedule.without(0).faults] == ["b"]

    def test_packet_chaos_absent_without_packet_faults(self):
        schedule = FaultSchedule(faults=(Fault("crash", 1.0, "a"),))
        assert schedule.packet_chaos() is None

    def test_packet_chaos_seed_determinism(self):
        schedule = FaultSchedule(
            faults=(Fault("corrupt", 1.0, "", duration=5.0, amount=0.5),), seed=99
        )
        a, b = schedule.packet_chaos(), schedule.packet_chaos()
        seen = [
            (a.arrivals(_Pkt(), "s", "d", t), b.arrivals(_Pkt(), "s", "d", t))
            for t in [1.1, 1.2, 1.3, 1.4, 1.5]
        ]
        assert all(x == y for x, y in seen)


class TestPacketChaos:
    def _chaos(self, fault, seed=0):
        return PacketChaos((fault,), rng=random.Random(seed))

    def test_outside_window_untouched(self):
        chaos = self._chaos(Fault("corrupt", 2.0, "", duration=1.0, amount=1.0))
        assert chaos.arrivals(_Pkt(), "s", "d", 1.5) == [1.5]
        assert chaos.arrivals(_Pkt(), "s", "d", 3.5) == [3.5]
        assert chaos.mangled == 0

    def test_corrupt_drops_in_window(self):
        chaos = self._chaos(Fault("corrupt", 2.0, "", duration=1.0, amount=1.0))
        assert chaos.arrivals(_Pkt(), "s", "d", 2.5) == []
        assert chaos.mangled == 1

    def test_duplicate_appends_copy(self):
        chaos = self._chaos(Fault("duplicate", 2.0, "", duration=1.0, amount=1.0))
        assert chaos.arrivals(_Pkt(), "s", "d", 2.5) == [2.5, 2.5 + DUPLICATE_GAP]

    def test_reorder_delays(self):
        chaos = self._chaos(Fault("reorder", 2.0, "", duration=1.0, amount=0.05))
        assert chaos.arrivals(_Pkt(), "s", "d", 2.5) == [2.55]

    def test_target_filter(self):
        chaos = self._chaos(Fault("corrupt", 2.0, "rx1", duration=1.0, amount=1.0))
        assert chaos.arrivals(_Pkt(), "s", "rx2", 2.5) == [2.5]
        assert chaos.arrivals(_Pkt(), "s", "rx1", 2.5) == []
