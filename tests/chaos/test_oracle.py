"""The invariant oracle must catch real protocol violations.

A conformance oracle is only trustworthy if it fails when the protocol
actually breaks — each test here sabotages one mechanism and asserts the
matching invariant fires (and, where relevant, that healthy runs stay
clean).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.chaos import ChaosController, ChaosOracle, Fault, FaultSchedule
from repro.core.logger import LogServer
from repro.simnet import DeploymentSpec, LbrmDeployment


def _dep(**kw):
    return LbrmDeployment(DeploymentSpec(**{
        "n_sites": 2, "receivers_per_site": 2, "seed": 9, **kw,
    }))


def _armed(dep, *faults, **oracle_kw):
    controller = ChaosController(dep, FaultSchedule(faults=tuple(faults)))
    controller.install()
    oracle = ChaosOracle(dep, controller, **oracle_kw)
    oracle.install()
    return oracle


def _stream(dep, n=4, spacing=0.4, drain=20.0):
    dep.start()
    dep.advance(0.2)
    for i in range(n):
        dep.send(f"pkt-{i}".encode())
        dep.advance(spacing)
    dep.advance(drain)


def test_clean_run_is_clean():
    dep = _dep()
    oracle = _armed(dep)
    _stream(dep)
    assert oracle.finish() == []


def test_oracle_counts_violations_in_obs_registry():
    with obs.recording() as reg:
        dep = _dep()
        oracle = _armed(dep, Fault("corrupt", 0.5, "site1-rx0", duration=3.0, amount=1.0))
        monkey = LogServer._on_nack
        LogServer._on_nack = lambda self, packet, src, now: []
        try:
            _stream(dep, drain=30.0)
        finally:
            LogServer._on_nack = monkey
        violations = oracle.finish()
        assert violations
        assert reg.counter_value("chaos.violations") == len(violations)


def test_disabled_retransmission_breaks_delivery():
    """The acceptance sabotage: loggers drop every NACK, so a blinded
    receiver can never recover — the delivery invariant must fire."""
    dep = _dep()
    oracle = _armed(dep, Fault("corrupt", 0.5, "site1-rx0", duration=3.0, amount=1.0))
    monkey = LogServer._on_nack
    LogServer._on_nack = lambda self, packet, src, now: []
    try:
        _stream(dep, drain=30.0)
    finally:
        LogServer._on_nack = monkey
    violations = oracle.finish()
    assert any(v.invariant == "delivery" and v.subject == "site1-rx0" for v in violations)


def test_silenced_sender_breaks_maxit():
    """Strip the sender's heartbeat timer mid-run: receivers are promised
    MaxIT-bounded silence (§2.1), so the oracle must object."""
    dep = _dep()
    oracle = _armed(dep, require_delivery=False, require_full_logs=False)
    dep.start()
    dep.advance(0.2)
    dep.send(b"only")
    dep.advance(0.3)
    dep.sender.timers.cancel(("heartbeat",))
    dep.advance(20.0)
    violations = oracle.finish()
    assert any(v.invariant == "silence" for v in violations)


def test_premature_release_breaks_log_safety():
    """Force the source's release point past every log: I3 fires."""
    dep = _dep()
    oracle = _armed(dep, require_delivery=False, require_full_logs=False)
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.5)
    dep.sender._released_up_to = 99
    dep.advance(2.0)
    violations = oracle.finish()
    assert any(v.invariant == "log-safety" for v in violations)


def test_double_promotion_detected():
    dep = _dep(n_replicas=1)
    oracle = _armed(dep)
    dep.start()
    oracle._on_promotion("replica0", 1, 1.0)
    oracle._on_promotion("replica0", 2, 2.0)
    assert any(
        v.invariant == "promotion" and "second time" in v.detail for v in oracle.violations
    )


def test_regressing_promotion_detected():
    dep = _dep(n_replicas=2)
    oracle = _armed(dep)
    dep.start()
    oracle._on_promotion("replica0", 5, 1.0)
    oracle._on_promotion("replica1", 3, 2.0)
    assert any(
        v.invariant == "promotion" and "from_seq 3" in v.detail for v in oracle.violations
    )


def test_crashed_receiver_is_exempt_from_delivery():
    dep = _dep()
    oracle = _armed(dep, Fault("crash", 0.5, "site1-rx0"))
    _stream(dep)
    assert oracle.finish() == []


def test_assert_ok_raises_with_reproducible_detail():
    dep = _dep()
    oracle = _armed(dep, require_full_logs=False)
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.5)
    dep.sender.timers.cancel(("heartbeat",))
    dep.advance(20.0)
    with pytest.raises(AssertionError, match="silence"):
        oracle.assert_ok()


def test_double_install_rejected():
    dep = _dep()
    oracle = ChaosOracle(dep)
    oracle.install()
    with pytest.raises(RuntimeError):
        oracle.install()
