"""Out-of-order arrival and the nack_delay timer (Appendix A).

"Whenever the client detects that one or more updates were lost, it
starts a short retransmission request timer.  This delay allows
out-of-order packets to arrive, and it prevents NACK implosion at the
source."

High link jitter reorders back-to-back packets; with nack_delay = 0 the
receiver fires a NACK for a "gap" that is merely a late packet, wasting
a request and a retransmission.  A short delay absorbs the reordering.
"""

from __future__ import annotations

import pytest

from repro.core.config import LbrmConfig, ReceiverConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender
from repro.simnet import Network, RngStreams, SimNode, Simulator


def run(nack_delay: float, seed: int = 6):
    sim = Simulator()
    streams = RngStreams(seed)
    net = Network(sim, streams=streams)
    s0 = net.add_site("s0")
    s1 = net.add_site("s1", tail_latency=0.02)
    # Heavy jitter on the receiving site's tail: up to 50 ms extra per
    # packet, far above the 10 ms packet spacing below => reordering.
    s1.tail_down.jitter = 0.05
    s1.tail_down._rng = streams.stream("jitter")

    cfg = LbrmConfig()
    prim_host = net.add_host("primary", s0)
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="src", level=0)
    SimNode(net, prim_host, [primary]).start()
    src_host = net.add_host("src", s0)
    sender = LbrmSender("g", cfg, primary="primary", addr_token="src")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    rx_host = net.add_host("rx", s1)
    receiver = LbrmReceiver("g", ReceiverConfig(nack_delay=nack_delay),
                            logger_chain=("primary",), heartbeat=cfg.heartbeat)
    SimNode(net, rx_host, [receiver]).start()
    sim.run_until(0.1)
    for i in range(40):
        src_node.send_app(sender, f"pkt{i}".encode())
        sim.run_until(sim.now + 0.01)
    sim.run_until(sim.now + 5.0)
    return receiver


def test_reordering_happens_under_jitter():
    receiver = run(nack_delay=0.0)
    # gaps were detected (late packets looked missing) ...
    assert receiver.stats["losses_detected"] > 0
    # ... yet nothing was actually lost: everything arrived.
    assert receiver.tracker.missing == frozenset()
    assert receiver.tracker.highest == 40


def test_zero_delay_wastes_nacks_on_reordering():
    receiver = run(nack_delay=0.0)
    assert receiver.stats["nacks_sent"] > 0  # spurious requests
    # the late original + the retransmission both arrive: duplicates
    assert receiver.stats["duplicates"] > 0


def test_short_delay_absorbs_reordering():
    eager = run(nack_delay=0.0)
    patient = run(nack_delay=0.06)  # just above the max jitter
    assert patient.stats["nacks_sent"] < eager.stats["nacks_sent"]
    assert patient.stats["nacks_sent"] == 0
    assert patient.tracker.missing == frozenset()


def test_delay_does_not_hurt_real_loss_recovery():
    """With a real loss, the delayed NACK still recovers the packet."""
    from repro.simnet import BurstLoss

    sim = Simulator()
    net = Network(sim, streams=RngStreams(9))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    cfg = LbrmConfig()
    prim_host = net.add_host("primary", s0)
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, source="src", level=0)
    SimNode(net, prim_host, [primary]).start()
    src_host = net.add_host("src", s0)
    sender = LbrmSender("g", cfg, primary="primary", addr_token="src")
    src_node = SimNode(net, src_host, [sender])
    src_node.start()
    rx_host = net.add_host("rx", s1)
    receiver = LbrmReceiver("g", ReceiverConfig(nack_delay=0.06),
                            logger_chain=("primary",), heartbeat=cfg.heartbeat)
    SimNode(net, rx_host, [receiver]).start()
    sim.run_until(0.1)
    src_node.send_app(sender, b"one")
    sim.run_until(1.0)
    rx_host.inbound_loss = BurstLoss([(sim.now, sim.now + 0.05)])
    src_node.send_app(sender, b"two")
    sim.run_until(5.0)
    assert receiver.tracker.has(2)
    assert receiver.stats["recoveries"] == 1
