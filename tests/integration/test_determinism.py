"""Determinism regression: seeds pin runs, observability changes nothing.

Two guarantees this suite locks in:

* A seeded simulation run is bit-reproducible — same seed, same event
  trace, same metric registry, byte-identical snapshot JSON; different
  seeds diverge (so the seed actually reaches the randomness).
* Observability is *passive* — running the same scenario with the
  registry installed and in no-op mode produces identical protocol
  outcomes (instruments are write-only from the machines' view).
"""

from __future__ import annotations

from repro import obs
from repro.core.packets import clear_codec_caches
from repro.obs.metrics import MetricsRegistry
from repro.simnet import BernoulliLoss, BurstLoss, DeploymentSpec, LbrmDeployment
from repro.simnet.topology import clear_wire_size_cache


def _cold_start() -> None:
    """Drop process-global memos so two runs see identical cache warmth.

    The codec and wire-size memos outlive a deployment; whichever run
    encodes first registers cache counters the second run would skip,
    breaking byte-identity for reasons that have nothing to do with the
    protocol.  Cold-starting both runs pins the comparison.
    """
    clear_codec_caches()
    clear_wire_size_cache()


def _run_scenario(seed: int):
    """A small lossy run: one burst outage plus seeded random loss on
    one receiver, so the seed genuinely shapes the packet history."""
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=3, seed=seed))
    dep.start()
    # A flaky receiver whose loss pattern comes from the seeded streams.
    dep.network.host("site2-rx0").inbound_loss = BernoulliLoss(
        0.3, dep.streams.stream("flaky-rx")
    )
    dep.advance(0.2)
    for i in range(4):
        dep.send(f"packet-{i}".encode())
        dep.advance(0.3)
    dep.burst_site("site1", duration=0.2)
    for i in range(4, 8):
        dep.send(f"packet-{i}".encode())
        dep.advance(0.3)
    dep.advance(8.0)
    return dep


def _record(seed: int):
    _cold_start()
    with obs.recording(MetricsRegistry()) as reg:
        dep = _run_scenario(seed)
        return reg.to_json(), reg.trace.events(), dep


def test_same_seed_is_bit_identical():
    json_a, trace_a, _ = _record(42)
    json_b, trace_b, _ = _record(42)
    assert json_a == json_b
    assert trace_a == trace_b
    assert len(trace_a) > 0, "scenario produced no trace events"


def test_different_seeds_diverge():
    json_a, trace_a, _ = _record(1)
    json_b, trace_b, _ = _record(2)
    assert json_a != json_b or trace_a != trace_b


def _protocol_outcome(dep):
    """Everything protocol-visible: per-machine stats, delivery state."""
    return {
        "sender": dict(dep.sender.stats),
        "primary": dict(dep.primary.stats),
        "site_loggers": [dict(lg.stats) for lg in dep.site_loggers],
        "receivers": [dict(r.stats) for r in dep.receivers],
        "missing": dep.receivers_missing(),
        "held": [
            [r.tracker.has(seq) for seq in range(1, 9)] for r in dep.receivers
        ],
        "trace_counts": dict(dep.trace.counts),
        "sim_events": dep.sim.processed,
    }


def test_noop_mode_changes_no_protocol_behavior():
    """The acceptance criterion: disabling metrics must not change what
    the protocol does — same deliveries, same packets, same stats."""
    obs.uninstall()
    plain = _protocol_outcome(_run_scenario(7))
    with obs.recording():
        recorded = _protocol_outcome(_run_scenario(7))
    assert plain == recorded


def test_recording_registry_agrees_with_stats_dicts():
    with obs.recording() as reg:
        dep = _run_scenario(7)
        assert reg.counter_value("sender.data_sent", node="source") == dep.sender.stats["data_sent"]
        assert reg.counter_value("receiver.data_received") == sum(
            r.stats["data_received"] for r in dep.receivers
        )
        assert reg.counter_value("sim.events_processed") == dep.sim.processed
