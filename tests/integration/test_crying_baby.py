"""The crying-baby comparison (§6): one lossy receiver under SRM vs LBRM.

"if a single link to one member of the group has a high error rate, then
all members of the multicast group must contend with a multicast request
and one or more multicast responses ... LBRM does not suffer from the
crying baby problem because retransmission requests and repairs are not
multicast unless a number of receivers lost the packet."

The shared scenario lives in :mod:`repro.simnet.scenarios` so the
benchmark harness measures exactly what these tests assert.
"""

from __future__ import annotations

import pytest

from repro.simnet.scenarios import (
    CRYING_BABY,
    run_lbrm_crying_baby,
    run_srm_crying_baby,
)

RX_PER_SITE = CRYING_BABY["rx_per_site"]


def test_srm_crying_baby_floods_the_group():
    members, innocent = run_srm_crying_baby()
    # the baby recovered...
    assert not members[0].missing
    # ...but innocent members across the WAN saw its multicast recovery
    # traffic (requests and repairs for losses that were never theirs).
    exposure = innocent.stats["duplicate_repairs_seen"]
    requests_everywhere = sum(m.stats["requests_sent"] for m in members)
    assert requests_everywhere > 0
    assert exposure > 0


def test_lbrm_keeps_baby_traffic_local():
    receivers, hosts = run_lbrm_crying_baby()
    # the baby recovered everything...
    assert not receivers[0].missing
    baby = receivers[0]
    assert baby.stats["recoveries"] > 0
    # ...and receivers at other sites saw zero recovery traffic:
    for rx in receivers[RX_PER_SITE:]:
        assert rx.stats["retrans_received"] == 0
        assert rx.stats["duplicates"] == 0


def test_lbrm_innocent_rx_packet_budget_smaller():
    """Innocent members receive ~(data + heartbeats) only under LBRM,
    while SRM exposes them to the baby's repair chatter on top."""
    members, innocent_srm = run_srm_crying_baby()
    receivers, hosts = run_lbrm_crying_baby()
    innocent_lbrm = receivers[-1]
    lbrm_overhead = innocent_lbrm.stats["retrans_received"] + innocent_lbrm.stats["duplicates"]
    srm_overhead = innocent_srm.stats["duplicate_repairs_seen"]
    assert lbrm_overhead == 0
    assert srm_overhead > 0
