"""Appendix A over the full LBRM stack on the simulated WAN.

The text-protocol messages ride as LBRM payloads; a site-wide loss of an
UPDATE is repaired by the logging hierarchy, and the browser's RELOAD
flag lights up anyway.
"""

from __future__ import annotations

import pytest

from repro.apps.webinval import BrowserClient, HttpInvalidationServer, WebMessage
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment

URL = "http://www-DSG.Stanford.EDU/groupMembers.html"


def test_web_invalidation_over_lbrm_with_loss():
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=2, seed=55))
    dep.start()
    dep.advance(0.1)

    server = HttpInvalidationServer()
    html = server.publish(URL, "<h1>v1</h1>")
    browsers = [BrowserClient() for _ in dep.receivers]
    for browser in browsers:
        browser.display(URL, html)

    # First change announces over LBRM.
    update1 = server.modify(URL, "<h1>v2</h1>")
    dep.send(update1.encode().encode("utf-8"))
    dep.advance(1.0)

    # Second change is lost at site2 — recovery must still invalidate.
    now = dep.sim.now
    dep.network.site("site2").tail_down.loss = BurstLoss([(now, now + 0.05)])
    update2 = server.modify(URL, "<h1>v3</h1>")
    dep.send(update2.encode().encode("utf-8"))
    dep.advance(3.0)

    for node, browser in zip(dep.receiver_nodes, browsers):
        for delivery in node.delivered:
            browser.on_message(WebMessage.decode(delivery.payload.decode("utf-8")))

    assert all(browser.needs_reload(URL) for browser in browsers)
    # Everyone, including site2, saw both updates (one recovered).
    assert dep.receivers_with(2) == len(dep.receivers)

    # Reloading clears the flag and serves v3.
    browsers[0].reload(URL, server.fetch(URL))
    assert not browsers[0].needs_reload(URL)
    assert "v3" in browsers[0].cached(URL)


def test_heartbeats_keep_idle_page_channel_fresh():
    """Long idle stretches cost only the backed-off heartbeats, and the
    browsers never spuriously invalidate."""
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=2, seed=56))
    dep.start()
    dep.advance(0.1)
    server = HttpInvalidationServer()
    server.publish(URL, "<h1>v1</h1>")
    update = server.modify(URL, "<h1>v2</h1>")
    dep.send(update.encode().encode("utf-8"))
    dep.advance(300.0)  # five idle minutes
    # ~7 ramp beats + ~8 at the 32s cap; a fixed scheme would send 1200.
    assert dep.sender.stats["heartbeats_sent"] <= 16
    assert all(rx.fresh for rx in dep.receivers)
