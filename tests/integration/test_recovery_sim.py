"""End-to-end recovery over the simulated WAN.

These integration tests reproduce the paper's §2.2.2 mechanics: site-wide
loss on a tail circuit, local recovery via the secondary logger, NACK
collapse, and latency differences between local and WAN recovery.

Site outages and receiver blindness are declared as chaos faults
(``partition`` / ``corrupt``); the invariant oracle rides along on every
run, with the original NACK-count and latency assertions kept as
cross-checks.
"""

from __future__ import annotations

import pytest

from repro.chaos import Fault
from repro.core.events import RecoveryComplete
from repro.core.packets import PacketType
from repro.simnet import DeploymentSpec, LbrmDeployment

from tests.integration._chaos import arm


def deployment(**kw) -> LbrmDeployment:
    return LbrmDeployment(
        DeploymentSpec(**{"n_sites": 5, "receivers_per_site": 4, "seed": 11, **kw})
    )


def test_clean_network_full_delivery():
    dep = deployment()
    oracle = arm(dep)
    dep.start()
    dep.advance(0.1)
    for i in range(5):
        dep.send(f"update-{i}".encode())
        dep.advance(0.2)
    dep.advance(1.0)
    oracle.assert_ok()
    for seq in range(1, 6):
        assert dep.receivers_with(seq) == len(dep.receivers)
    assert dep.trace.cross_site_nacks() == 0


def test_site_burst_recovers_with_one_cross_site_nack():
    """Distributed logging: a whole-site loss costs ONE NACK on the WAN
    (the secondary logger's), not one per receiver (Fig 7)."""
    dep = deployment()
    oracle = arm(dep, [Fault("partition", 1.1, "site1", duration=0.1)])
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(3.0)
    oracle.assert_ok()
    assert dep.receivers_with(2) == len(dep.receivers)
    assert dep.trace.cross_site_nacks() == 1


def test_centralized_burst_floods_wan_with_nacks():
    """Same loss without secondary loggers: every receiver NACKs the
    primary across the WAN (Fig 7a)."""
    dep = deployment(secondary_loggers=False)
    oracle = arm(dep, [Fault("partition", 1.1, "site1", duration=0.1)])
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(3.0)
    oracle.assert_ok()
    assert dep.receivers_with(2) == len(dep.receivers)
    assert dep.trace.cross_site_nacks() == 4  # one per receiver at the site


def test_local_loss_recovered_within_site():
    """A single receiver's loss is served by the site logger: zero WAN
    NACK traffic and LAN-scale latency."""
    dep = deployment()
    oracle = arm(dep, [Fault("corrupt", 1.1, "site1-rx0", duration=0.05, amount=1.0)])
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(2.0)
    oracle.assert_ok()
    assert dep.receivers_with(2) == len(dep.receivers)
    assert dep.trace.cross_site_nacks() == 0
    recoveries = [e for e in dep.receiver_nodes[0].events_of(RecoveryComplete)]
    assert recoveries
    # Detection at the h_min heartbeat; recovery RTT is LAN-scale (~4ms),
    # far below a WAN RTT (~80ms).
    assert recoveries[0].latency < 0.02


def test_wan_recovery_latency_an_order_of_magnitude_larger():
    """When the site logger also lost the packet, recovery crosses the
    WAN: latency ~80ms RTT vs ~4ms locally (§2.2.2 ping survey)."""
    dep = deployment()
    # Victim loses the packet AND the site logger never logs it: kill the
    # site logger entirely so recovery must escalate to the primary.
    oracle = arm(dep, [
        Fault("crash", 1.05, "site1-logger"),
        Fault("corrupt", 1.1, "site1-rx0", duration=0.05, amount=1.0),
    ])
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(5.0)
    oracle.assert_ok()
    node = dep.receiver_nodes[0]
    recoveries = node.events_of(RecoveryComplete)
    assert recoveries
    # escalation first burns retries on the dead site logger, then the
    # primary answers one WAN RTT later.
    assert recoveries[-1].latency > 0.07


def test_heartbeats_reveal_loss_of_final_packet():
    """Nothing follows the lost packet: only a heartbeat can reveal it."""
    dep = deployment()
    oracle = arm(dep, [Fault("partition", 1.1, "site2", duration=0.1)])
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")  # site2 misses it; no more data follows
    dep.advance(5.0)
    oracle.assert_ok()
    assert dep.receivers_with(2) == len(dep.receivers)


def test_long_burst_detection_bounded():
    """§2.1.1: detection delay after a burst <= 2 x t_burst (backoff 2)."""
    dep = deployment()
    t_burst = 2.0
    oracle = arm(dep, [Fault("partition", 1.1, "site3", duration=t_burst)])
    dep.start()
    dep.advance(0.1)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(10.0)
    oracle.assert_ok()
    node = dep.receiver_nodes[(3 - 1) * 4]  # first receiver at site3
    recoveries = node.events_of(RecoveryComplete)
    assert recoveries
    rx = dep.receivers[(3 - 1) * 4]
    assert rx.tracker.has(2)


def test_many_consecutive_losses_batched_nacks():
    dep = deployment()
    oracle = arm(dep, [Fault("partition", 0.6, "site1", duration=1.0)])
    dep.start()
    dep.advance(0.1)
    dep.send(b"seed")
    dep.advance(0.5)
    for _ in range(10):
        dep.send(b"x")
        dep.advance(0.1)
    dep.advance(5.0)
    oracle.assert_ok()
    assert dep.receivers_missing() == 0
    # Recovery happened but NACKs were batched: far fewer cross-site
    # NACKs than lost packets x receivers.
    assert dep.trace.cross_site_nacks() <= 10
