"""The motivating scenario end-to-end: the destroyed bridge (§1).

A bridge terrain entity is static for a long time, then destroyed; every
tank (receiver) must see the destruction within a fraction of a second —
even the one whose site lost the packet.
"""

from __future__ import annotations

import pytest

from repro.apps.dis import TerrainDatabase, TerrainEntity, TerrainKind
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def test_bridge_destruction_reaches_every_tank_quickly():
    dep = LbrmDeployment(DeploymentSpec(n_sites=5, receivers_per_site=4, seed=31))
    dep.start()
    dep.advance(0.1)

    bridge = TerrainEntity(17, TerrainKind.BRIDGE, 100.0, 200.0)
    databases = [TerrainDatabase() for _ in dep.receivers]

    # initial state dissemination
    dep.send(bridge.state.encode())
    dep.advance(1.0)

    # a long static period (the variable heartbeat thins out)
    dep.advance(120.0)
    heartbeats_in_idle = dep.sender.stats["heartbeats_sent"]
    assert heartbeats_in_idle <= 10  # ~9 under the variable scheme

    # the bridge is destroyed, and site2's tail circuit drops the update
    site2 = dep.network.site("site2")
    site2.tail_down.loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.05)])
    destroyed = bridge.destroy()
    send_time = dep.sim.now
    dep.send(destroyed.encode())
    dep.advance(2.0)

    # every receiver applies every delivered update to its database
    for node, db in zip(dep.receiver_nodes, databases):
        for delivery in node.delivered:
            db.apply(delivery.payload)

    for i, db in enumerate(databases):
        state = db.get(17)
        assert state is not None, f"receiver {i} never saw the bridge"
        assert state.condition == 0, f"receiver {i} still shows the bridge intact"

    # freshness: site2's recovery went detection (h_min=0.25) + local RTT
    from repro.core.events import RecoveryComplete

    site2_nodes = dep.receiver_nodes[4:8]
    latencies = [
        e.latency for node in site2_nodes for e in node.events_of(RecoveryComplete)
    ]
    assert latencies, "site2 receivers never recovered the update"
    assert max(latencies) < 0.5  # "within a fraction of a second"


def test_out_of_order_recovery_never_regresses_terrain():
    """A recovered older update must not resurrect a destroyed bridge."""
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=2, seed=32))
    dep.start()
    dep.advance(0.1)
    bridge = TerrainEntity(5, TerrainKind.BRIDGE, 0.0, 0.0)

    # Baseline traffic so the receivers are tracking the stream.
    dep.send(bridge.state.encode())
    dep.advance(1.0)

    damaged = bridge.damage(50)
    destroyed = bridge.destroy()

    # Damage update is lost at site1; destruction arrives; recovery brings
    # the damage update back later (out of order).
    site1 = dep.network.site("site1")
    site1.tail_down.loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.05)])
    dep.send(damaged.encode())
    dep.advance(0.2)
    dep.send(destroyed.encode())
    dep.advance(5.0)

    db = TerrainDatabase()
    for delivery in dep.receiver_nodes[0].delivered:
        db.apply(delivery.payload)
    assert db.get(5).condition == 0
    assert db.stats["stale_dropped"] >= 1
