"""Failure-injection suite: components die at the worst moments.

Receiver-reliability's promise is that each receiver can look after
itself whatever happens around it; these tests crash loggers mid
recovery, drop whole phases of the statack exchange, and partition sites
for long stretches, asserting the survivors converge.

Faults are declared as :class:`repro.chaos.FaultSchedule` entries and
checked by the runtime invariant oracle; each test keeps its original
scenario-specific assertions as cross-checks on top of
``oracle.assert_ok()``.
"""

from __future__ import annotations

import pytest

from repro.chaos import Fault
from repro.core.events import RecoveryFailed
from repro.simnet import BernoulliLoss, DeploymentSpec, LbrmDeployment, NoLoss

from tests.integration._chaos import arm


def deployment(**kw) -> LbrmDeployment:
    return LbrmDeployment(
        DeploymentSpec(**{"n_sites": 4, "receivers_per_site": 3, "seed": 71, **kw})
    )


def test_site_logger_dies_mid_recovery():
    """The logger answers the first NACK with silence (it just died);
    the receiver escalates to the primary and still recovers."""
    dep = deployment()
    # Timeline: send a @0.2, rx0 blind for the b send @1.2, logger dies
    # at 1.46 with rx0's NACK in flight to it.
    oracle = arm(dep, [
        Fault("corrupt", 1.2, "site1-rx0", duration=0.05, amount=1.0),
        Fault("crash", 1.46, "site1-logger"),
    ])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(20.26)
    oracle.assert_ok()
    assert dep.receivers[0].tracker.has(2)


def test_all_site_loggers_dead_still_recovers():
    dep = deployment()
    oracle = arm(dep, [
        Fault("crash", 1.1, f"site{i}-logger") for i in range(1, 5)
    ] + [
        Fault("partition", 1.2, "site2", duration=0.05),
    ])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(20.0)
    oracle.assert_ok()
    assert dep.receivers_with(2) == len(dep.receivers)


def test_primary_and_site_logger_both_dead_without_replicas():
    """Nothing can serve the packet: recovery fails *cleanly* (bounded
    retries, RecoveryFailed event, tracker stops hunting).  The oracle's
    delivery invariant is off — this world is *meant* to lose data."""
    dep = deployment()
    oracle = arm(dep, [
        Fault("crash", 1.1, "site1-logger"),
        Fault("crash", 1.1, "primary"),
        Fault("corrupt", 1.2, "site1-rx0", duration=0.05, amount=1.0),
    ], require_delivery=False)
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(1.0)
    dep.send(b"b")
    dep.advance(60.0)
    oracle.assert_ok()
    rx = dep.receivers[0]
    assert not rx.tracker.has(2)
    assert rx.missing == frozenset()  # gave up, not stuck
    failures = dep.receiver_nodes[0].events_of(RecoveryFailed)
    assert failures and failures[0].seq == 2


def test_long_partition_then_rejoin():
    """A site partitioned for 30 s misses a dozen updates; on rejoin the
    heartbeat reveals the backlog and the whole gap is recovered."""
    dep = deployment()
    oracle = arm(dep, [Fault("partition", 1.2, "site3", duration=30.0)])
    dep.start()
    dep.advance(0.2)
    dep.send(b"seed")
    dep.advance(1.0)
    for i in range(12):
        dep.send(f"during-{i}".encode())
        dep.advance(2.0)
    dep.advance(40.0)
    oracle.assert_ok()
    assert dep.receivers_missing() == 0
    assert dep.receivers_with(13) == len(dep.receivers)


def test_sustained_random_loss_converges():
    """20% Bernoulli loss on every tail for a 30-packet stream: all
    receivers end complete.  The loss models stay hand-rolled here (the
    chaos layer composes *with* them, it does not replace them); loggers
    may exhaust their default upstream-retry budget under sustained
    loss, so only the receiver-side invariants are asserted."""
    dep = deployment()
    oracle = arm(dep, require_full_logs=False)
    dep.start()
    dep.advance(0.2)
    for site in dep.receiver_sites:
        site.tail_down.loss = BernoulliLoss(0.2, dep.streams.stream(f"loss:{site.name}"))
    for i in range(30):
        dep.send(f"pkt{i}".encode())
        dep.advance(0.4)
    for site in dep.receiver_sites:
        site.tail_down.loss = NoLoss()
    dep.advance(20.0)
    oracle.assert_ok()
    assert dep.receivers_missing() == 0
    for seq in range(1, 31):
        assert dep.receivers_with(seq) == len(dep.receivers)


def test_receiver_crash_does_not_disturb_others():
    """The whole point of receiver-reliability: no receiver state at the
    source, so a dead receiver changes nothing for anyone else."""
    dep = deployment()
    oracle = arm(dep, [Fault("crash", 1.1, "site1-rx0")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(1.0)
    for i in range(5):
        dep.send(f"pkt{i}".encode())
        dep.advance(0.4)
    dep.advance(3.0)
    oracle.assert_ok()
    survivors = dep.receivers[1:]
    assert all(rx.tracker.has(6) for rx in survivors)
    assert dep.sender.unacked == 0  # source never waited for the dead receiver


def test_statack_survives_acker_crash_mid_epoch():
    """A Designated Acker dies; its missing ACKs cost at most a few
    spurious re-multicasts in the current epoch (§2.3.2: 'their effects
    are limited to the current epoch'), and the next selection excludes it.

    The fault schedule is built mid-run, once the acker draw is known —
    schedules are values, so late installation is just a later
    ``install()``."""
    from repro.core.config import LbrmConfig, StatAckConfig

    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=10, epoch_length=6))
    dep = LbrmDeployment(DeploymentSpec(n_sites=8, receivers_per_site=1,
                                        enable_statack=True, config=cfg, seed=72))
    dep.start()
    dep.advance(3.0)
    sa = dep.sender.statack
    ackers = sorted(sa.designated_ackers)
    assert ackers
    victim_name = ackers[0]
    oracle = arm(dep, [Fault("crash", dep.sim.now, victim_name)])
    for i in range(14):  # rides through at least two epoch rollovers
        dep.send(b"x")
        dep.advance(0.5)
    oracle.assert_ok()
    # the stream keeps flowing and later epochs exclude the dead logger
    assert dep.sender.stats["data_sent"] == 14
    assert victim_name not in sa.designated_ackers
