"""Statistical acknowledgement over the simulated WAN (§2.3, Figure 8)."""

from __future__ import annotations

import pytest

from repro.core.config import LbrmConfig, StatAckConfig
from repro.core.events import EpochStarted, Remulticast
from repro.core.statack import StatAckPhase
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def deployment(n_sites=20, k=10, seed=5, **kw):
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=k, epoch_length=32))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=n_sites, receivers_per_site=2, enable_statack=True,
        config=cfg, seed=seed, **kw,
    ))
    dep.start()
    dep.advance(3.0)  # bootstrap probing + first epoch selection
    return dep


def test_bootstrap_reaches_active_epoch():
    dep = deployment()
    sa = dep.sender.statack
    assert sa.phase is StatAckPhase.ACTIVE
    assert sa.epoch >= 1
    events = dep.source_node.events_of(EpochStarted)
    assert events and events[-1].expected_ackers == len(sa.designated_ackers)


def test_group_size_estimate_in_band():
    dep = deployment(n_sites=50)
    sa = dep.sender.statack
    # Unbiased estimator, sigma = sqrt(N(1-p)/p); accept a generous band.
    assert 20 <= sa.group_size_estimate <= 110


def test_clean_run_no_remulticasts():
    dep = deployment()
    for _ in range(10):
        dep.send(b"x")
        dep.advance(0.4)
    assert dep.sender.stats["remulticasts"] == 0
    assert dep.sender.statack.stats["acks_received"] > 0


def test_widespread_loss_triggers_immediate_remulticast():
    """Figure 8: missing ACKs at the t_wait deadline => re-multicast now,
    recovering every site within ~1 RTT without NACK implosion."""
    dep = deployment(n_sites=50, seed=7)
    dep.send(b"warm")
    dep.advance(1.0)
    now = dep.sim.now
    for i in range(1, 40):
        dep.network.site(f"site{i}").tail_down.loss = BurstLoss([(now, now + 0.05)])
    nacks_before = dep.trace.cross_site_nacks()
    dep.send(b"lost-everywhere")
    dep.advance(0.5)
    assert dep.sender.stats["remulticasts"] >= 1
    assert dep.receivers_with(2) == len(dep.receivers)
    # the re-multicast preempted almost all per-site NACK traffic
    assert dep.trace.cross_site_nacks() - nacks_before <= 5


def test_small_group_unicast_strategy():
    """With few sites every logger acks; a missing ACK names its site and
    the source unicasts instead of disturbing everyone (§2.3.2)."""
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=20, sites_per_acker_multicast=2.0))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=6, receivers_per_site=2, enable_statack=True, config=cfg, seed=9,
    ))
    dep.start()
    dep.advance(3.0)
    dep.send(b"warm")
    dep.advance(1.0)
    now = dep.sim.now
    dep.network.site("site3").tail_down.loss = BurstLoss([(now, now + 0.05)])
    dep.send(b"lost-at-site3")
    dep.advance(2.0)
    assert dep.sender.stats["remulticasts"] == 0
    assert dep.sender.stats["unicast_retransmits"] >= 1
    assert dep.receivers_with(2) == len(dep.receivers)


def test_epoch_rollover_in_deployment():
    cfg = LbrmConfig(statack=StatAckConfig(k_ackers=5, epoch_length=4))
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=10, receivers_per_site=1, enable_statack=True, config=cfg, seed=3,
    ))
    dep.start()
    dep.advance(3.0)
    first_epoch = dep.sender.statack.epoch
    for _ in range(12):
        dep.send(b"x")
        dep.advance(0.4)
    assert dep.sender.statack.epoch > first_epoch
    assert dep.sender.statack.stats["epochs"] >= 3


def test_t_wait_tracks_network_rtt():
    """t_wait converges near the designated-acker round-trip (~80 ms)."""
    dep = deployment(n_sites=30, seed=13)
    for _ in range(40):
        dep.send(b"x")
        dep.advance(0.4)
    # cross-site RTT in the default topology ~79 ms
    assert 0.03 <= dep.sender.statack.t_wait <= 0.2
