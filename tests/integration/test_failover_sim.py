"""Primary-log failure and replica promotion over the simulator (§2.2.3)."""

from __future__ import annotations

import pytest

from repro.core.events import PrimaryFailover, PromotedToPrimary
from repro.core.logger import LoggerRole
from repro.simnet import DeploymentSpec, LbrmDeployment


def deployment(n_replicas=2, seed=21):
    dep = LbrmDeployment(DeploymentSpec(
        n_sites=3, receivers_per_site=2, n_replicas=n_replicas, seed=seed,
    ))
    dep.start()
    dep.advance(0.2)
    return dep


def test_replication_keeps_replicas_current():
    dep = deployment()
    for i in range(5):
        dep.send(f"u{i}".encode())
        dep.advance(0.3)
    assert all(len(r.log) == 5 for r in dep.replicas)
    assert dep.sender.released_up_to == 5


def test_failover_promotes_most_up_to_date_replica():
    dep = deployment()
    dep.send(b"before")
    dep.advance(0.5)
    dep.kill_primary()
    dep.send(b"during")  # unackable: primary is dead
    dep.advance(6.0)  # primary_timeout (2s) + vote + promote + handover
    events = dep.source_node.events_of(PrimaryFailover)
    assert len(events) == 1
    new_primary = events[0].new_primary
    assert dep.sender.primary == new_primary
    promoted = [r for r in dep.replicas if r.role is LoggerRole.PRIMARY]
    assert len(promoted) == 1
    # Handover gave the new primary everything the old one never replicated.
    assert len(promoted[0].log) == 2
    assert dep.sender.unacked == 0


def test_service_continues_after_failover():
    dep = deployment()
    dep.send(b"a")
    dep.advance(0.5)
    dep.kill_primary()
    dep.send(b"b")
    dep.advance(6.0)
    dep.send(b"c")
    dep.advance(2.0)
    assert dep.receivers_with(3) == len(dep.receivers)
    assert dep.sender.released_up_to == 3


def test_receivers_recover_via_new_primary():
    """After failover, a receiver whose whole chain is stale reaches the
    source, learns the new primary, and recovers through it."""
    dep = deployment()
    dep.send(b"a")
    dep.advance(0.5)
    dep.kill_primary()
    # Also kill site1's logger so its receivers must escalate to primary.
    dep.site_logger_nodes[0].machines.clear()
    host = dep.network.host("site1-rx0")
    from repro.simnet import BurstLoss

    host.inbound_loss = BurstLoss([(dep.sim.now, dep.sim.now + 0.05)])
    dep.send(b"b")
    dep.advance(20.0)  # escalation retries + failover + PRIMARY_QUERY round
    rx = dep.receivers[0]
    assert rx.tracker.has(2)


def test_no_failover_without_outstanding_data():
    dep = deployment()
    dep.send(b"a")
    dep.advance(0.5)
    dep.kill_primary()
    dep.advance(10.0)  # idle: nothing unacked, no reason to fail over
    assert dep.source_node.events_of(PrimaryFailover) == []


def test_single_replica_failover():
    dep = deployment(n_replicas=1)
    dep.send(b"a")
    dep.advance(0.5)
    dep.kill_primary()
    dep.send(b"b")
    dep.advance(6.0)
    assert dep.replicas[0].role is LoggerRole.PRIMARY
    assert dep.sender.primary == "replica0"
