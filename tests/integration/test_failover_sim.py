"""Primary-log failure and replica promotion over the simulator (§2.2.3).

Primary deaths are declared as chaos faults; the invariant oracle
watches promotion monotonicity (a replica is promoted at most once, at
non-decreasing hand-off sequences) and log safety throughout, with each
test's original assertions kept as cross-checks.
"""

from __future__ import annotations

import pytest

from repro.chaos import Fault
from repro.core.events import PrimaryFailover, PromotedToPrimary
from repro.core.logger import LoggerRole
from repro.simnet import DeploymentSpec, LbrmDeployment
from repro.simnet.engine import ReferenceSimulator, Simulator

from tests.integration._chaos import arm


def deployment(n_replicas=2, seed=21, sim=None):
    return LbrmDeployment(DeploymentSpec(
        n_sites=3, receivers_per_site=2, n_replicas=n_replicas, seed=seed,
    ), sim=sim)


def test_replication_keeps_replicas_current():
    dep = deployment()
    oracle = arm(dep)  # no faults: the oracle is a pure conformance check
    dep.start()
    dep.advance(0.2)
    for i in range(5):
        dep.send(f"u{i}".encode())
        dep.advance(0.3)
    oracle.assert_ok()
    assert all(len(r.log) == 5 for r in dep.replicas)
    assert dep.sender.released_up_to == 5


def test_failover_promotes_most_up_to_date_replica():
    dep = deployment()
    oracle = arm(dep, [Fault("crash", 0.7, "primary")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"before")
    dep.advance(0.5)  # primary dies at 0.7, right after this window
    dep.send(b"during")  # unackable: primary is dead
    dep.advance(6.0)  # primary_timeout (2s) + vote + promote + handover
    oracle.assert_ok()
    events = dep.source_node.events_of(PrimaryFailover)
    assert len(events) == 1
    new_primary = events[0].new_primary
    assert dep.sender.primary == new_primary
    promoted = [r for r in dep.replicas if r.role is LoggerRole.PRIMARY]
    assert len(promoted) == 1
    # Handover gave the new primary everything the old one never replicated.
    assert len(promoted[0].log) == 2
    assert dep.sender.unacked == 0


def test_service_continues_after_failover():
    dep = deployment()
    oracle = arm(dep, [Fault("crash", 0.7, "primary")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.5)
    dep.send(b"b")
    dep.advance(6.0)
    dep.send(b"c")
    dep.advance(2.0)
    oracle.assert_ok()
    assert dep.receivers_with(3) == len(dep.receivers)
    assert dep.sender.released_up_to == 3


def test_receivers_recover_via_new_primary():
    """After failover, a receiver whose whole chain is stale reaches the
    source, learns the new primary, and recovers through it."""
    dep = deployment()
    oracle = arm(dep, [
        Fault("crash", 0.7, "primary"),
        # Also kill site1's logger so its receivers must escalate.
        Fault("crash", 0.7, "site1-logger"),
        Fault("corrupt", 0.7, "site1-rx0", duration=0.05, amount=1.0),
    ])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.5)
    dep.send(b"b")
    dep.advance(20.0)  # escalation retries + failover + PRIMARY_QUERY round
    oracle.assert_ok()
    rx = dep.receivers[0]
    assert rx.tracker.has(2)


def test_no_failover_without_outstanding_data():
    dep = deployment()
    oracle = arm(dep, [Fault("crash", 0.7, "primary")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.5)
    dep.advance(10.0)  # idle: nothing unacked, no reason to fail over
    oracle.assert_ok()
    assert dep.source_node.events_of(PrimaryFailover) == []


@pytest.mark.parametrize("engine", ["fast", "reference"])
def test_equal_prefix_tie_breaks_to_lowest_node_id(engine):
    """Both replicas are fully caught up when the primary dies mid-flight
    with one packet unlogged: their votes tie exactly, and promotion must
    pick replica0 (lowest node id) on either simulation engine."""
    sim = Simulator() if engine == "fast" else ReferenceSimulator()
    dep = deployment(sim=sim)
    oracle = arm(dep, [Fault("crash", 0.69, "primary")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.49)  # seq 1 fully replicated and released
    dep.send(b"b")     # at 0.69+: the primary is already dead, seq 2 hangs
    dep.advance(6.0)
    oracle.assert_ok()
    events = dep.source_node.events_of(PrimaryFailover)
    assert len(events) == 1
    assert events[0].new_primary == "replica0"
    assert events[0].log_epoch == 2
    assert dep.sender.primary == "replica0"
    assert dep.replicas[0].role is LoggerRole.PRIMARY
    assert dep.replicas[1].role is LoggerRole.REPLICA
    # The handover completed: the tie winner now holds the dangling tail.
    assert dep.replicas[0].primary_seq == 2
    assert dep.sender.unacked == 0


def test_promoted_primary_adopts_surviving_follower():
    """After promotion the new primary adopts the other replica and
    backfills it, so the commit point stays replicated (not a single
    copy) across the failover."""
    dep = deployment()
    oracle = arm(dep, [Fault("crash", 0.69, "primary")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.49)
    dep.send(b"b")
    dep.advance(6.0)
    dep.send(b"c")
    dep.advance(3.0)
    oracle.assert_ok()
    promoted = next(r for r in dep.replicas if r.role is LoggerRole.PRIMARY)
    follower = next(r for r in dep.replicas if r.role is LoggerRole.REPLICA)
    assert promoted.replication is not None
    assert promoted.replication.members  # adopted the survivor
    assert promoted.log_epoch == 2
    assert follower.log_epoch == 2  # learned the new term from the pushes
    assert follower.primary_seq == 3  # backfilled + kept current
    assert dep.sender.released_up_to == 3


def test_single_replica_failover():
    dep = deployment(n_replicas=1)
    oracle = arm(dep, [Fault("crash", 0.7, "primary")])
    dep.start()
    dep.advance(0.2)
    dep.send(b"a")
    dep.advance(0.5)
    dep.send(b"b")
    dep.advance(6.0)
    oracle.assert_ok()
    assert dep.replicas[0].role is LoggerRole.PRIMARY
    assert dep.sender.primary == "replica0"
