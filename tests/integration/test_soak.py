"""Chaos soak: random loss, random crashes, one long run, hard invariants.

A randomized schedule of tail-circuit bursts, per-receiver loss spells,
and a site-logger crash runs against a steady update stream.  At the end
of the run (loss lifted, time to converge) every surviving receiver must
hold the complete stream, the source buffer must be drained, and every
logger's log must be contiguous.
"""

from __future__ import annotations

import random

import pytest

from repro.simnet import BernoulliLoss, DeploymentSpec, LbrmDeployment, NoLoss


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_chaos_soak(seed):
    rng = random.Random(seed)
    dep = LbrmDeployment(DeploymentSpec(n_sites=5, receivers_per_site=3, seed=seed))
    dep.start()
    dep.advance(0.2)

    n_packets = 40
    crashed_logger = rng.randrange(5)
    for i in range(n_packets):
        # Random chaos before each send.
        event = rng.random()
        if event < 0.25:
            site = f"site{rng.randint(1, 5)}"
            dep.burst_site(site, rng.uniform(0.05, 1.5))
        elif event < 0.35:
            victim = rng.choice(dep.network.hosts)
            if victim.name.endswith(tuple("0123456789")) and "rx" in victim.name:
                victim.inbound_loss = BernoulliLoss(0.5, dep.streams.stream(f"v{i}"))
        elif event < 0.40 and i == 10:
            dep.kill_site_logger(crashed_logger)
        dep.send(f"payload-{i}".encode())
        dep.advance(rng.uniform(0.2, 1.0))

    # Lift all loss and let recovery converge.
    for site in dep.receiver_sites:
        site.tail_down.loss = NoLoss()
    for host in dep.network.hosts:
        host.inbound_loss = None
    dep.advance(60.0)

    # Invariant 1: every receiver holds the whole stream (or abandoned
    # cleanly if its only loggers died — with the primary alive that
    # should not happen here).
    for idx, rx in enumerate(dep.receivers):
        for seq in range(1, n_packets + 1):
            assert rx.tracker.has(seq), (
                f"receiver {idx} missing seq {seq}: {rx.stats}"
            )
        assert rx.missing == frozenset()

    # Invariant 2: the source has released everything.
    assert dep.sender.unacked == 0
    assert dep.sender.released_up_to == n_packets

    # Invariant 3: surviving loggers hold contiguous, complete logs.
    assert len(dep.primary.log) == n_packets
    for i, logger in enumerate(dep.site_loggers):
        if dep.site_logger_nodes[i].machines:
            assert logger.primary_seq == n_packets, (
                f"site logger {i} log incomplete: {logger.stats}"
            )


def test_soak_determinism():
    """The same seed gives the exact same chaos and the exact same stats."""
    def run():
        rng = random.Random(9)
        dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=2, seed=9))
        dep.start()
        dep.advance(0.2)
        for i in range(15):
            if rng.random() < 0.4:
                dep.burst_site(f"site{rng.randint(1, 3)}", rng.uniform(0.05, 0.8))
            dep.send(f"p{i}".encode())
            dep.advance(rng.uniform(0.2, 0.8))
        dep.advance(20.0)
        return (
            dep.sender.stats.copy(),
            [rx.stats.copy() for rx in dep.receivers],
            dep.trace.counts.copy(),
        )

    assert run() == run()
