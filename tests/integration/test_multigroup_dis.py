"""Fine-grained groups at (small) scale — the paper's core premise.

DIS gives every terrain entity its own multicast group (§1).  Here 30
entities × their own LBRM group run through shared infrastructure: one
dual-role logging process per site (secondary for every group), one
primary logging process for all groups, and per-entity senders hosted on
one source node — all via :class:`MultiGroupProcess`.
"""

from __future__ import annotations

import pytest

from repro.apps.dis import TerrainDatabase, TerrainEntity, TerrainKind
from repro.core.config import LbrmConfig
from repro.core.logger import LoggerRole, LogServer
from repro.core.process import MultiGroupProcess
from repro.core.receiver import LbrmReceiver
from repro.core.sender import LbrmSender
from repro.simnet import BurstLoss, Network, RngStreams, SimNode, Simulator

N_ENTITIES = 30
N_SITES = 3


@pytest.fixture
def world():
    sim = Simulator()
    streams = RngStreams(77)
    net = Network(sim, streams=streams)
    cfg = LbrmConfig()
    groups = [f"terrain/{i}" for i in range(1, N_ENTITIES + 1)]

    s0 = net.add_site("s0")
    sites = [net.add_site(f"s{i}") for i in range(1, N_SITES + 1)]

    # One primary logging process for every group.
    primary_host = net.add_host("primary", s0)
    primary_proc = MultiGroupProcess()
    for group in groups:
        primary_proc.add(group, LogServer(group, addr_token="primary", config=cfg,
                                          role=LoggerRole.PRIMARY, source="source", level=0))
    SimNode(net, primary_host, [primary_proc]).start()

    # One source node hosting every entity's sender.
    source_host = net.add_host("source", s0)
    source_proc = MultiGroupProcess()
    senders = {}
    for group in groups:
        sender = LbrmSender(group, cfg, primary="primary", addr_token="source")
        senders[group] = sender
        source_proc.add(group, sender)
    source_node = SimNode(net, source_host, [source_proc])
    source_node.start()

    # Per-site: one dual-role logging process (secondary for all groups)
    # and two receiver processes subscribing to every group.
    receivers: list[tuple[LbrmReceiver, str]] = []
    for si, site in enumerate(sites, start=1):
        logger_host = net.add_host(f"s{si}-logger", site)
        logger_proc = MultiGroupProcess()
        for group in groups:
            logger_proc.add(group, LogServer(group, addr_token=f"s{si}-logger", config=cfg,
                                             role=LoggerRole.SECONDARY, parent="primary",
                                             source="source", level=1,
                                             rng=streams.stream(f"lg{si}:{group}")))
        SimNode(net, logger_host, [logger_proc]).start()
        for ri in range(2):
            rx_host = net.add_host(f"s{si}-rx{ri}", site)
            rx_proc = MultiGroupProcess()
            for group in groups:
                rx = LbrmReceiver(group, cfg.receiver,
                                  logger_chain=(f"s{si}-logger", "primary"),
                                  source="source", heartbeat=cfg.heartbeat)
                rx_proc.add(group, rx)
                receivers.append((rx, group))
            SimNode(net, rx_host, [rx_proc]).start()

    entities = {f"terrain/{i}": TerrainEntity(i, TerrainKind.BRIDGE if i % 7 == 0 else TerrainKind.TREE, float(i), 0.0)
                for i in range(1, N_ENTITIES + 1)}
    return sim, net, source_node, senders, receivers, entities


def test_every_entity_group_disseminates(world):
    sim, net, source_node, senders, receivers, entities = world
    sim.run_until(0.1)
    for group, entity in entities.items():
        source_node.run_machine(senders[group].send, entity.state.encode(), sim.now)
        sim.run_until(sim.now + 0.01)
    sim.run_until(sim.now + 2.0)
    for rx, group in receivers:
        assert rx.tracker.has(1), f"{group} missing at a receiver"


def test_one_group_loss_recovers_without_touching_others(world):
    sim, net, source_node, senders, receivers, entities = world
    sim.run_until(0.1)
    for group, entity in entities.items():
        source_node.run_machine(senders[group].send, entity.state.encode(), sim.now)
        sim.run_until(sim.now + 0.01)
    sim.run_until(sim.now + 2.0)

    # One bridge is destroyed; s2's tail circuit drops that update only
    # (the burst is short, other groups are idle).
    bridge_group = "terrain/7"
    net.site("s2").tail_down.loss = BurstLoss([(sim.now, sim.now + 0.05)])
    state = entities[bridge_group].destroy()
    source_node.run_machine(senders[bridge_group].send, state.encode(), sim.now)
    sim.run_until(sim.now + 5.0)

    for rx, group in receivers:
        expected_high = 2 if group == bridge_group else 1
        assert rx.tracker.highest == expected_high
        assert rx.missing == frozenset(), f"{group} still missing"

    # Idle groups stayed idle: their senders emitted only their own
    # backed-off heartbeats, no recovery traffic.
    idle_sender = senders["terrain/1"]
    assert idle_sender.stats["data_sent"] == 1
    assert idle_sender.stats["remulticasts"] == 0


def test_per_group_logs_isolated(world):
    sim, net, source_node, senders, receivers, entities = world
    sim.run_until(0.1)
    for group in ("terrain/1", "terrain/2"):
        for _ in range(3):
            source_node.run_machine(senders[group].send, b"update", sim.now)
            sim.run_until(sim.now + 0.05)
    sim.run_until(sim.now + 1.0)
    primary_host = net.host("primary")
    primary_proc = primary_host.endpoint.machines[0]
    log1 = primary_proc.machines_for("terrain/1")[0].log
    log2 = primary_proc.machines_for("terrain/2")[0].log
    log3 = primary_proc.machines_for("terrain/3")[0].log
    assert len(log1) == 3 and len(log2) == 3 and len(log3) == 0
