"""Shared glue for chaos-scheduled integration tests.

``arm`` compiles a list of faults onto a deployment and attaches the
invariant oracle, so a test reads as: build world, declare what goes
wrong when, run the timeline, then ``oracle.assert_ok()`` plus whatever
scenario-specific assertions the test keeps as cross-checks.
"""

from __future__ import annotations

from repro.chaos import ChaosController, ChaosOracle, Fault, FaultSchedule
from repro.simnet.deploy import LbrmDeployment


def arm(
    dep: LbrmDeployment,
    faults: list[Fault] | tuple[Fault, ...] = (),
    **oracle_kw,
) -> ChaosOracle:
    """Install ``faults`` and an oracle on ``dep``; returns the oracle."""
    schedule = FaultSchedule(faults=tuple(faults))
    controller = ChaosController(dep, schedule)
    controller.install()
    oracle = ChaosOracle(dep, controller, **oracle_kw)
    oracle.install()
    return oracle
