"""Factory automation over the full stack (§4.4).

Sensors publish over LBRM; the site logger doubles as the audit system;
a mobile monitor walks out of range, comes back, and recovers the gap
from the logging hierarchy "without interfering with the other receivers
or affecting the on-going data flow from the source."
"""

from __future__ import annotations

import pytest

from repro.apps.factory import AuditLog, MobileMonitor, SensorReading
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def build():
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=2, seed=81))
    dep.start()
    dep.advance(0.2)
    return dep


def stream_readings(dep, sensor_id=1, count=10, interval=0.3, start=1):
    for sample in range(start, start + count):
        reading = SensorReading(sensor_id=sensor_id, metric="rpm",
                                value=1000.0 + sample, sample=sample)
        dep.send(reading.encode())
        dep.advance(interval)


def test_audit_trail_from_the_reliability_log():
    """Record-keeping is a by-product: replay the site logger's log."""
    dep = build()
    stream_readings(dep, count=8)
    dep.advance(1.0)
    audit = AuditLog(dep.site_loggers[0].log)
    trail = audit.replay()
    assert [r.sample for r in trail] == list(range(1, 9))
    assert [r.value for r in trail] == [1000.0 + s for s in range(1, 9)]


def test_mobile_monitor_reconnect_recovers_gap():
    dep = build()
    monitor = MobileMonitor()
    monitor_node = dep.receiver_nodes[0]

    stream_readings(dep, count=3)

    # walk out of range: 100% inbound loss for a while
    monitor.disconnect()
    host = dep.network.host("site1-rx0")
    host.inbound_loss = BurstLoss([(dep.sim.now, dep.sim.now + 2.0)])
    stream_readings(dep, count=4, interval=0.4, start=4)  # samples 4..7 missed

    # reconnect: inbound loss window expires; recovery backfills
    monitor.reconnect()
    stream_readings(dep, count=2, interval=0.4, start=8)  # samples 8..9
    dep.advance(5.0)

    for delivery in monitor_node.delivered:
        monitor.on_deliver(delivery.payload, delivery.recovered)

    latest = monitor.latest(1)
    assert latest is not None and latest.sample == 9
    assert monitor.stats["recovered_samples"] >= 1  # the backfilled gap
    assert monitor.stats["disconnects"] == 1

    # "without interfering with the other receivers": the other site saw
    # zero recovery traffic for the monitor's outage
    other_site_rx = dep.receivers[2]
    assert other_site_rx.stats["retrans_received"] == 0
    assert other_site_rx.missing == frozenset()


def test_dynamic_attach_without_connection_setup():
    """A new monitoring station joins mid-stream with no source-side
    state: it simply subscribes and tracks from its baseline (§4.4's
    dynamic reconfiguration)."""
    from repro.core.receiver import LbrmReceiver
    from repro.simnet import SimNode

    dep = build()
    stream_readings(dep, count=5)

    # attach a brand-new station now
    host = dep.network.add_host("late-station", dep.receiver_sites[0])
    rx = LbrmReceiver(dep.spec.group, dep.spec.config.receiver,
                      logger_chain=("site1-logger", "primary"),
                      heartbeat=dep.spec.config.heartbeat)
    node = SimNode(dep.network, host, [rx])
    node.start()
    dep.advance(0.1)

    stream_readings(dep, count=3)
    dep.advance(2.0)
    # the late station holds everything from its join onward
    assert rx.tracker.started
    assert rx.missing == frozenset()
    assert len(node.delivered) >= 3
    # and the source never knew: no per-receiver state anywhere
    assert dep.sender.unacked == 0
