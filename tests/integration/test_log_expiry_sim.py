"""Log retention policies end-to-end (§2: 'useful lifetime').

When loggers expire entries, a late retransmission request finds nothing
anywhere in the hierarchy: recovery must fail cleanly; within the
retention window it must still succeed.
"""

from __future__ import annotations

import pytest

from repro.core.config import LbrmConfig, LoggerConfig
from repro.core.events import RecoveryFailed
from repro.simnet import BurstLoss, DeploymentSpec, LbrmDeployment


def deployment(lifetime: float):
    cfg = LbrmConfig(logger=LoggerConfig(packet_lifetime=lifetime))
    dep = LbrmDeployment(DeploymentSpec(n_sites=2, receivers_per_site=2,
                                        config=cfg, seed=91))
    dep.start()
    dep.advance(0.2)
    return dep


def test_recovery_within_retention_window():
    dep = deployment(lifetime=60.0)
    dep.send(b"a")
    dep.advance(1.0)
    dep.burst_site("site1", 0.1)
    dep.send(b"b")
    dep.advance(10.0)  # well inside the 60 s lifetime
    assert dep.receivers_with(2) == len(dep.receivers)


def test_expired_entries_vanish_from_logs():
    dep = deployment(lifetime=5.0)
    dep.send(b"a")
    dep.advance(1.0)
    assert all(1 in l.log for l in dep.site_loggers)
    dep.send(b"tick")  # keeps timers churning
    dep.advance(30.0)
    # the housekeeping in LogServer.poll expired seq 1 everywhere
    assert all(1 not in l.log for l in dep.site_loggers)
    assert 1 not in dep.primary.log


def test_late_joiner_cannot_recover_expired_history():
    """A receiver that joins after history expired gives up cleanly when
    the application asks for ancient sequences."""
    from repro.core.receiver import LbrmReceiver
    from repro.simnet import SimNode

    dep = deployment(lifetime=2.0)
    dep.send(b"old-1")
    dep.send(b"old-2")
    dep.advance(20.0)  # both expired everywhere (heartbeats keep polls alive)
    dep.send(b"current")
    dep.advance(1.0)

    host = dep.network.add_host("late", dep.receiver_sites[0])
    rx = LbrmReceiver(dep.spec.group, dep.spec.config.receiver,
                      logger_chain=("site1-logger", "primary"),
                      source="source", heartbeat=dep.spec.config.heartbeat)
    node = SimNode(dep.network, host, [rx])
    node.start()
    dep.advance(0.1)
    dep.send(b"fresh")
    dep.advance(1.0)
    assert rx.tracker.has(4)

    # The application explicitly hunts for expired history: hand the
    # tracker the old gap via a crafted heartbeat observation.
    node.execute(rx._begin_recovery((1, 2), dep.sim.now, via_silence=False))
    node._reschedule()
    dep.advance(60.0)
    failures = node.events_of(RecoveryFailed)
    assert {f.seq for f in failures} == {1, 2}
    assert rx.missing == frozenset()
