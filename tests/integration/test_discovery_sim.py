"""Expanding-ring discovery over the simulated topology (§2.2.1)."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig, LbrmConfig
from repro.core.discovery import DiscoveryClient
from repro.core.events import LoggerDiscovered
from repro.core.logger import LoggerRole, LogServer
from repro.simnet import Network, RngStreams, SimNode, Simulator


def build():
    sim = Simulator()
    net = Network(sim, streams=RngStreams(1))
    s0 = net.add_site("s0")
    s1 = net.add_site("s1")
    primary_host = net.add_host("primary", s0)
    sec_host = net.add_host("sec1", s1)
    rx_host = net.add_host("rx", s1)
    cfg = LbrmConfig()
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, level=0)
    secondary = LogServer("g", addr_token="sec1", config=cfg,
                          role=LoggerRole.SECONDARY, parent="primary", level=1)
    primary_node = SimNode(net, primary_host, [primary])
    sec_node = SimNode(net, sec_host, [secondary])
    primary_node.start()
    sec_node.start()
    return sim, net, rx_host


def test_finds_local_logger_with_ttl_one():
    sim, net, rx_host = build()
    client = DiscoveryClient("g", DiscoveryConfig(initial_ttl=1, query_timeout=0.2))
    node = SimNode(net, rx_host, [client])
    node.start()
    sim.run_until(1.0)
    assert client.found == "sec1"
    found = node.events_of(LoggerDiscovered)
    assert found and found[0].ttl == 1  # first ring sufficed: it is local


def test_ring_expands_to_remote_primary_when_no_local_logger():
    sim = Simulator()
    net = Network(sim, streams=RngStreams(1))
    s0, s1 = net.add_site("s0"), net.add_site("s1")
    primary_host = net.add_host("primary", s0)
    rx_host = net.add_host("rx", s1)
    cfg = LbrmConfig()
    primary = LogServer("g", addr_token="primary", config=cfg,
                        role=LoggerRole.PRIMARY, level=0)
    SimNode(net, primary_host, [primary]).start()

    client = DiscoveryClient("g", DiscoveryConfig(initial_ttl=1, max_ttl=8, query_timeout=0.2))
    node = SimNode(net, rx_host, [client])
    node.start()
    sim.run_until(3.0)
    assert client.found == "primary"
    found = node.events_of(LoggerDiscovered)
    assert found[0].ttl >= 4  # needed a WAN-wide ring


def test_exhaustion_with_no_loggers_anywhere():
    sim = Simulator()
    net = Network(sim, streams=RngStreams(1))
    s0 = net.add_site("s0")
    rx_host = net.add_host("rx", s0)
    net.add_host("other", s0)
    client = DiscoveryClient("g", DiscoveryConfig(initial_ttl=1, max_ttl=4, query_timeout=0.1))
    node = SimNode(net, rx_host, [client])
    node.start()
    sim.run_until(2.0)
    assert client.exhausted and client.found is None


def test_discovered_chain_feeds_receiver():
    """Discovery output wires a receiver's chain at runtime."""
    sim, net, rx_host = build()
    from repro.core.receiver import LbrmReceiver

    client = DiscoveryClient("g", DiscoveryConfig(initial_ttl=1, query_timeout=0.2))
    receiver = LbrmReceiver("g", logger_chain=())
    node = SimNode(net, rx_host, [client, receiver])
    node.start()
    sim.run_until(1.0)
    assert client.found == "sec1"
    receiver.set_logger_chain((client.found, "primary"))
    assert receiver.logger_chain == ("sec1", "primary")
