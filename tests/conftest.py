"""Shared fixtures for the LBRM test suite."""

from __future__ import annotations

import pytest

from repro.core.config import LbrmConfig
from repro.simnet import DeploymentSpec, LbrmDeployment, Network, RngStreams, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim: Simulator) -> Network:
    return Network(sim, streams=RngStreams(seed=1234))


@pytest.fixture
def small_deployment() -> LbrmDeployment:
    """3 sites × 4 receivers with secondary loggers, started and settled."""
    dep = LbrmDeployment(DeploymentSpec(n_sites=3, receivers_per_site=4, seed=99))
    dep.start()
    dep.advance(0.1)
    return dep


@pytest.fixture
def paper_config() -> LbrmConfig:
    return LbrmConfig.paper_defaults()


def make_deployment(**overrides) -> LbrmDeployment:
    """Test helper: build and start a deployment with spec overrides."""
    spec = DeploymentSpec(**{"n_sites": 3, "receivers_per_site": 4, "seed": 99, **overrides})
    dep = LbrmDeployment(spec)
    dep.start()
    dep.advance(0.1)
    return dep
