"""The LBRM multicast source (§2, §2.1, §2.2.3, §2.3).

:class:`LbrmSender` multicasts application data with sequence numbers,
keeps the variable-heartbeat promise (a packet at least every MaxIT),
retains data until the primary logging server — and, when replicas are
configured, at least one replica — has acknowledged it, runs the
statistical-acknowledgement engine, and orchestrates primary-log
failover.

The sender is sans-IO: ``send()``/``handle()``/``poll()`` return
:class:`~repro.core.actions.Action` lists for the harness to execute.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from enum import Enum

from repro import obs
from repro.core.actions import Action, Address, Notify, SendMulticast, SendUnicast
from repro.core.config import LbrmConfig
from repro.core.events import PrimaryFailover, Remulticast, SourceBufferReleased
from repro.core.heartbeat import make_schedule
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    DataPacket,
    HeartbeatPacket,
    LogAckPacket,
    NackPacket,
    Packet,
    PrimaryInfoPacket,
    PrimaryQueryPacket,
    PromotePacket,
    ReplAckPacket,
    ReplStatusQueryPacket,
    ReplUpdatePacket,
    RetransPacket,
)
from repro.core.errors import ConfigError
from repro.core.ratecontrol import AimdRateController, RateControlConfig
from repro.core.retransmit import RetransmitDecision
from repro.core.retranschannel import RetransChannelConfig, RetransChannelSender
from repro.core.statack import StatAckSource

__all__ = ["LbrmSender", "FailoverPhase"]

_NO_SEQ = 2**64 - 1  # ReplAck sentinel for "nothing held yet"


class FailoverPhase(Enum):
    """Primary-log failover state (§2.2.3)."""

    HEALTHY = "healthy"
    QUERYING = "querying"  # asking replicas for their cumulative sequence
    HANDOVER = "handover"  # pushing buffered tail to the promoted replica


class LbrmSender(ProtocolMachine):
    """Multicast source with logging, heartbeats, and statistical acking.

    Parameters
    ----------
    group:
        Multicast group this source owns (LBRM groups are fine-grained,
        one source each — §1).
    primary:
        Address of the primary logging server, or ``None`` when the log
        is co-located (the application pairs the sender with a local
        :class:`~repro.core.logger.LogServer` on the same node).
    replicas:
        Addresses of the primary-log replicas, used for failover.  The
        sender may only discard data acknowledged replica-safe when any
        are configured.
    enable_statack:
        Run the §2.3 statistical-acknowledgement engine.
    addr_token:
        Stable string naming this source on the wire (used in
        PRIMARY_INFO responses); defaults to ``str(primary)`` concerns
        aside, harnesses pass the node's own token.
    format_token:
        Renders an :class:`Address` as its wire token for PRIMARY_INFO
        replies.  The simulator's addresses are already strings, so the
        default ``str`` is the identity there; asyncio harnesses pass
        :func:`repro.aio.node.addr_token` so a ``(host, port)`` tuple
        crosses the wire in the ``host:port`` form receivers can parse.
    """

    def __init__(
        self,
        group: str,
        config: LbrmConfig | None = None,
        *,
        primary: Address | None = None,
        replicas: tuple[Address, ...] = (),
        enable_statack: bool = False,
        retrans_channel: "RetransChannelConfig | None" = None,
        rate_control: "RateControlConfig | None" = None,
        addr_token: str = "source",
        format_token=None,
        rng: random.Random | None = None,
    ) -> None:
        super().__init__()
        self._group = group
        self._config = config or LbrmConfig()
        self._primary = primary
        self._replicas = tuple(replicas)
        self._addr_token = addr_token
        self._format_token = format_token or str
        # String-seeded: deterministic run to run without an explicit
        # RNG (str seeds hash stably), and sans-IO core stays free of
        # simulator imports.
        self._rng = rng or random.Random("repro.core.sender")

        self._seq = 0
        self._hb_index = 0
        self._last_payload: bytes | None = None
        self._schedule = make_schedule(self._config.heartbeat)
        self._unacked: "OrderedDict[int, bytes]" = OrderedDict()
        self._unacked_sent_at: dict[int, float] = {}
        self._released_up_to = 0
        self._remulticast_attempts: dict[int, int] = {}
        # Short-horizon payload cache for statistical-ack retransmissions:
        # a LOG_ACK may release the reliability buffer before the t_wait
        # deadline fires, but the source must still be able to re-multicast
        # (Figure 8).  Bounded ring, oldest evicted first.
        self._recent: "OrderedDict[int, bytes]" = OrderedDict()
        self._recent_cap = 4096

        self._statack: StatAckSource | None = None
        if enable_statack:
            self._statack = StatAckSource(group, self._config.statack, rng=self._rng)

        self._rchan: RetransChannelSender | None = None
        if retrans_channel is not None:
            self._rchan = RetransChannelSender(group, retrans_channel)

        self.rate_controller: AimdRateController | None = None
        if rate_control is not None:
            if self._statack is None:
                raise ConfigError("rate control requires statistical acknowledgement")
            self.rate_controller = AimdRateController(rate_control)
            self._statack.rate_controller = self.rate_controller

        self._failover = FailoverPhase.HEALTHY
        # Vote per replica: (cumulative prefix or -1, commit point, epoch).
        self._failover_votes: dict[Address, tuple[int, int, int]] = {}
        self._handover_target: Address | None = None
        self._handover_pending: list[int] = []
        # Promotion term (DESIGN.md §10).  The configured primary serves
        # term 1; every failover moves to a term strictly above anything
        # any voter has seen, so a stale primary can never be confused
        # with the current one.
        self._log_epoch = 1

        registry = obs.registry()
        self._trace = registry.trace
        self._obs_unacked = registry.gauge("sender.unacked", node=addr_token)
        self._obs_released = registry.gauge("sender.released_up_to", node=addr_token)
        self.stats = obs.stat_counters(
            "sender",
            {
                "data_sent": 0,
                "heartbeats_sent": 0,
                "remulticasts": 0,
                "unicast_retransmits": 0,
                "log_acks": 0,
                "log_backfills": 0,
                "failovers": 0,
            },
            node=addr_token,
        )

    # -- introspection ----------------------------------------------------

    @property
    def group(self) -> str:
        return self._group

    @property
    def seq(self) -> int:
        """Sequence number of the most recent data packet (0 = none yet)."""
        return self._seq

    @property
    def primary(self) -> Address | None:
        """Current primary logging server (changes after failover)."""
        return self._primary

    @property
    def unacked(self) -> int:
        """Data packets retained awaiting a log acknowledgement."""
        return len(self._unacked)

    @property
    def released_up_to(self) -> int:
        """Highest sequence the source has safely discarded through."""
        return self._released_up_to

    @property
    def statack(self) -> StatAckSource | None:
        return self._statack

    @property
    def failover_phase(self) -> FailoverPhase:
        return self._failover

    @property
    def log_epoch(self) -> int:
        """Promotion term of the primary this source currently trusts."""
        return self._log_epoch

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        """Arm initial timers (statack bootstrap, primary liveness)."""
        actions: list[Action] = []
        if self._statack is not None:
            actions.extend(self._statack.start(now))
        if self._primary is not None:
            self.timers.set(("primary_check",), now + self._config.replication.primary_timeout)
        return actions

    def send(self, payload: bytes, now: float) -> list[Action]:
        """Multicast ``payload`` as the next data packet."""
        self._seq += 1
        self._hb_index = 0
        self._last_payload = payload
        epoch = self._statack.current_epoch if self._statack else 0
        packet = DataPacket(group=self._group, seq=self._seq, payload=payload, epoch=epoch)
        # "the source must retain the data until it has received a
        # positive acknowledgement from the logging server" (§2).
        if self._primary is not None:
            self._unacked[self._seq] = payload
            self._unacked_sent_at[self._seq] = now
        if self._statack is not None:
            self._recent[self._seq] = payload
            while len(self._recent) > self._recent_cap:
                self._recent.popitem(last=False)
        hb_at = self._schedule.on_data(now)
        if hb_at is not None:
            self.timers.set(("heartbeat",), hb_at)
        if self._statack is not None:
            self._statack.on_data_sent(self._seq, now)
        if self._rchan is not None:
            self._rchan.on_data_sent(self._seq, payload, epoch, now)
        if self.rate_controller is not None:
            self.rate_controller.note_send(now)
        self.stats["data_sent"] += 1
        self._obs_unacked.set(len(self._unacked))
        self._trace.emit(now, "sender.data", seq=self._seq, epoch=epoch)
        return [SendMulticast(group=self._group, packet=packet)]

    # -- inbound ----------------------------------------------------------

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        if isinstance(packet, LogAckPacket):
            return self._on_log_ack(packet, src, now)
        if isinstance(packet, NackPacket):
            return self._on_primary_nack(packet, src, now)
        if isinstance(packet, PrimaryQueryPacket):
            info = PrimaryInfoPacket(group=self._group, primary_addr=self._primary_token())
            return [SendUnicast(dest=src, packet=info)]
        if isinstance(packet, ReplAckPacket):
            return self._on_repl_ack(packet, src, now)
        if self._statack is not None:
            return self._statack.handle(packet, src, now)
        return []

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            kind = key[0]
            if kind == "heartbeat":
                actions.extend(self._send_heartbeat(now))
            elif kind == "primary_check":
                actions.extend(self._check_primary(now))
            elif kind == "failover_votes":
                actions.extend(self._conclude_failover_vote(now))
            elif kind == "handover_retry":
                actions.extend(self._push_handover(now))
        if self._statack is not None:
            sa_actions, orders = self._statack.poll(now)
            actions.extend(sa_actions)
            for order in orders:
                actions.extend(self._fulfil(order, now))
        if self._rchan is not None:
            actions.extend(self._rchan.poll(now))
        return actions

    def next_wakeup(self) -> float | None:
        deadlines = [self.timers.next_deadline()]
        if self._statack is not None:
            deadlines.append(self._statack.next_wakeup())
        if self._rchan is not None:
            deadlines.append(self._rchan.next_wakeup())
        live = [d for d in deadlines if d is not None]
        return min(live) if live else None

    # -- heartbeats ----------------------------------------------------------

    def _send_heartbeat(self, now: float) -> list[Action]:
        self._hb_index += 1
        epoch = self._statack.current_epoch if self._statack else 0
        hb_at = self._schedule.on_heartbeat(now)
        if hb_at is not None:
            self.timers.set(("heartbeat",), hb_at)
        # §7 extension: repeat a small last packet in the heartbeat slot
        # so an isolated loss of it repairs itself without any NACK.
        repeat_max = self._config.heartbeat.repeat_payload_max
        if repeat_max and self._seq > 0:
            payload = self._last_payload
            if payload is not None and len(payload) <= repeat_max:
                self.stats["data_repeats_sent"] = self.stats.get("data_repeats_sent", 0) + 1
                self._trace.emit(now, "sender.data_repeat", seq=self._seq)
                repeat = DataPacket(group=self._group, seq=self._seq, payload=payload, epoch=epoch)
                return [SendMulticast(group=self._group, packet=repeat)]
        packet = HeartbeatPacket(group=self._group, seq=self._seq, hb_index=self._hb_index, epoch=epoch)
        self.stats["heartbeats_sent"] += 1
        self._trace.emit(now, "sender.heartbeat", seq=self._seq, hb_index=self._hb_index)
        return [SendMulticast(group=self._group, packet=packet)]

    # -- log acknowledgement & buffer release ---------------------------------

    def _on_log_ack(self, packet: LogAckPacket, src: Address, now: float) -> list[Action]:
        if src != self._primary:
            return []  # stale ACK from a demoted primary
        if packet.log_epoch and packet.log_epoch != self._log_epoch:
            return []  # ACK from a term the source is not in (epoch 0 = legacy)
        self.stats["log_acks"] += 1
        self.timers.set(("primary_check",), now + self._config.replication.primary_timeout)
        if self._failover is not FailoverPhase.HEALTHY:
            self._failover = FailoverPhase.HEALTHY
        # Discard only what a replica also holds (§2.2.3); without
        # replicas the primary's own ACK is the release point.
        release = packet.replica_seq if self._replicas else packet.primary_seq
        return self._release(release)

    def _on_primary_nack(self, packet: NackPacket, src: Address, now: float) -> list[Action]:
        """Backfill the primary log's own multicast losses (§2.2.3).

        The source is the primary's upstream: the reliability buffer
        holds exactly the packets the log has not acknowledged yet, so a
        NACK from the log the source currently trusts is served from
        there (or from the short-horizon cache for anything already
        released).  Without this path a primary that misses a multicast
        packet could never complete its log, wedging the release point
        and every secondary's upstream recovery with it.
        """
        if src != self._primary:
            return []  # only the log the source trusts may tap the buffer
        epoch = self._statack.current_epoch if self._statack else 0
        actions: list[Action] = []
        for seq in packet.seqs:
            payload = self._payload_for(seq)
            if payload is None:
                continue
            self.stats["log_backfills"] += 1
            self._trace.emit(now, "sender.log_backfill", seq=seq)
            retrans = RetransPacket(group=self._group, seq=seq, payload=payload, epoch=epoch)
            actions.append(SendUnicast(dest=src, packet=retrans))
        return actions

    def _release(self, up_to: int) -> list[Action]:
        if up_to <= self._released_up_to:
            return []
        for seq in [s for s in self._unacked if s <= up_to]:
            del self._unacked[seq]
            self._unacked_sent_at.pop(seq, None)
        self._released_up_to = up_to
        self._obs_unacked.set(len(self._unacked))
        self._obs_released.set(up_to)
        return [Notify(SourceBufferReleased(seq=up_to))]

    # -- statistical-acknowledgement fulfilment --------------------------------

    def _fulfil(self, order, now: float) -> list[Action]:
        payload = self._payload_for(order.seq)
        if payload is None:
            return []  # already released and re-multicast is moot
        if order.decision is RetransmitDecision.MULTICAST:
            attempts = self._remulticast_attempts.get(order.seq, 1) + 1
            self._remulticast_attempts[order.seq] = attempts
            packet = RetransPacket(group=self._group, seq=order.seq, payload=payload, epoch=order.epoch)
            assert self._statack is not None
            self._statack.on_remulticast_sent(order.seq, now, attempts)
            self.stats["remulticasts"] += 1
            self._trace.emit(now, "sender.remulticast", seq=order.seq, attempts=attempts)
            return [
                SendMulticast(group=self._group, packet=packet),
                Notify(Remulticast(seq=order.seq, reason="missing statistical ACKs")),
            ]
        if order.decision is RetransmitDecision.UNICAST:
            packet = RetransPacket(group=self._group, seq=order.seq, payload=payload, epoch=order.epoch)
            self.stats["unicast_retransmits"] += len(order.missing_ackers)
            self._trace.emit(
                now, "sender.unicast_retransmit", seq=order.seq, targets=len(order.missing_ackers)
            )
            return [SendUnicast(dest=acker, packet=packet) for acker in order.missing_ackers]
        return []

    def _payload_for(self, seq: int) -> bytes | None:
        payload = self._unacked.get(seq)
        if payload is not None:
            return payload
        return self._recent.get(seq)

    # -- primary failover (§2.2.3) ---------------------------------------------

    def _check_primary(self, now: float) -> list[Action]:
        timeout = self._config.replication.primary_timeout
        self.timers.set(("primary_check",), now + timeout)
        if self._failover is not FailoverPhase.HEALTHY or not self._unacked:
            return []
        oldest = next(iter(self._unacked))
        if now - self._unacked_sent_at.get(oldest, now) < timeout:
            return []
        if not self._replicas:
            return []  # nothing to fail over to; keep retaining data
        # Primary is unresponsive with data outstanding: poll the replicas.
        self._failover = FailoverPhase.QUERYING
        self._failover_votes = {}
        self.timers.set(("failover_votes",), now + self._config.replication.failover_wait)
        query = ReplStatusQueryPacket(group=self._group)
        return [SendUnicast(dest=replica, packet=query) for replica in self._replicas]

    def _on_repl_ack(self, packet: ReplAckPacket, src: Address, now: float) -> list[Action]:
        cum = None if packet.cum_seq == _NO_SEQ else packet.cum_seq
        if self._failover is FailoverPhase.QUERYING and src in self._replicas:
            self._failover_votes[src] = (
                -1 if cum is None else cum,
                packet.commit_seq,
                packet.log_epoch,
            )
            return []
        if self._failover is FailoverPhase.HANDOVER and src == self._handover_target:
            if packet.log_epoch and packet.log_epoch < self._log_epoch:
                return []  # an answer from before the promotion reached it
            return self._advance_handover(cum or 0, now)
        return []

    def _conclude_failover_vote(self, now: float) -> list[Action]:
        if self._failover is not FailoverPhase.QUERYING:
            return []
        if not self._failover_votes:
            # No replica answered; retry the whole check later.
            self._failover = FailoverPhase.HEALTHY
            return []
        # "locates the logging server replica holding the most up-to-date
        # packets — that is, the replica associated with the most recent
        # replicated logger sequence number."  Rank by cumulative prefix,
        # then by committed prefix, and break exact ties by the lowest
        # node token so promotion is deterministic on every engine (and
        # over UDP) regardless of the order the votes arrived in.
        votes = self._failover_votes
        best = min(
            votes,
            key=lambda a: (-votes[a][0], -votes[a][1], self._format_token(a)),
        )
        best_cum = max(votes[best][0], 0)
        # The new term is strictly above anything any voter has seen, so
        # a revived pre-failover primary can never pass the epoch gates.
        self._log_epoch = max(self._log_epoch, *(v[2] for v in votes.values())) + 1
        old_primary = self._primary
        self._primary = best
        self._replicas = tuple(r for r in self._replicas if r != best)
        self._failover = FailoverPhase.HANDOVER
        self._handover_target = best
        self._handover_pending = [s for s in self._unacked if s > best_cum]
        self.stats["failovers"] += 1
        self._trace.emit(
            now, "sender.failover", new_primary=str(best),
            resend=len(self._handover_pending), log_epoch=self._log_epoch,
        )
        promote = PromotePacket(
            group=self._group,
            from_seq=best_cum + 1,
            log_epoch=self._log_epoch,
            members=",".join(self._format_token(r) for r in self._replicas),
        )
        actions: list[Action] = [
            SendUnicast(dest=best, packet=promote),
            Notify(
                PrimaryFailover(
                    old_primary=old_primary,
                    new_primary=best,
                    resent_packets=len(self._handover_pending),
                    log_epoch=self._log_epoch,
                    high_seq=self._seq,
                )
            ),
        ]
        actions.extend(self._push_handover(now))
        return actions

    def _push_handover(self, now: float) -> list[Action]:
        """Reliably transmit the buffered tail to the promoted replica."""
        if self._failover is not FailoverPhase.HANDOVER or self._handover_target is None:
            return []
        if not self._handover_pending:
            self._failover = FailoverPhase.HEALTHY
            self._handover_target = None
            return []
        self.timers.set(("handover_retry",), now + self._config.replication.update_retry)
        actions: list[Action] = []
        for seq in self._handover_pending:
            payload = self._unacked.get(seq)
            if payload is None:
                continue
            update = ReplUpdatePacket(
                group=self._group,
                seq=seq,
                payload=payload,
                log_epoch=self._log_epoch,
                commit_seq=self._released_up_to,
            )
            actions.append(SendUnicast(dest=self._handover_target, packet=update))
        return actions

    def _advance_handover(self, cum: int, now: float) -> list[Action]:
        self._handover_pending = [s for s in self._handover_pending if s > cum]
        actions = self._release(cum) if not self._replicas else []
        if not self._handover_pending:
            self._failover = FailoverPhase.HEALTHY
            self._handover_target = None
            self.timers.cancel(("handover_retry",))
        return actions

    def _primary_token(self) -> str:
        return self._format_token(self._primary) if self._primary is not None else self._addr_token
