"""k-level repair-tree model with makespan-aware construction (DESIGN §11).

The paper's architecture stops at two levels — a primary log plus one
secondary logger per site (§2.2) — which is fine at tens of sites but
makes the primary's tail circuit the repair bottleneck once site counts
reach the thousands: a site-wide loss turns into N simultaneous unicast
repair streams squeezed through one link.  Following the hierarchical
reliable-multicast literature (see PAPERS.md, "Reducing the Makespan in
Hierarchical Reliable Multicast Tree"), this module generalizes the
logger layout to an arbitrary-depth tree in which every interior logger
is simultaneously

* a **repair server** for its subtree (it answers NACKs from its
  children out of its own log), and
* a **NACK-collapsing client** of its parent (holes in its own log
  escalate upward as a single batched request, exactly like a site
  logger's upstream path today).

Three pieces live here, all transport-agnostic:

* :class:`LoggerTree` — the tree itself: parent pointers, fixed tier
  ("level") per node, chain extraction for receiver escalation, and
  cycle-checked re-parenting.
* :func:`build_tree` / :func:`plan_level_sizes` — the initial
  balanced-degree construction: leaves are grouped contiguously (site
  locality) under ``ceil(n/fanout)`` parents per level.
* :class:`TreeManager` — the runtime brain: it keeps a
  :class:`LinkEstimate` (a :class:`~repro.core.estimator.TWaitEstimator`
  plus a loss ratio) per child→parent repair link, scores candidate
  parents by the **makespan objective**, and decides re-parenting moves
  when a parent dies, saturates, or becomes grossly more expensive than
  an alternative.

The makespan objective
----------------------
A parent serves its children's repairs serially (one tail circuit), so
with per-child serve cost ``s`` the ``i``-th child (0-based, served in
decreasing order of remaining cost) finishes its subtree's repair no
earlier than ``(i+1)·s + rtt_eff(child) + makespan(child)``.  The tree's
makespan is the maximum over children, applied recursively from the
root.  ``rtt_eff`` is the measured repair RTT inflated by observed loss
(a retry doubles the effective round trip), which is precisely what the
per-link :class:`LinkEstimate` tracks.

Greedy re-scoring keeps the tree *sticky*: a child only moves when its
parent is dead or saturated, or when the best alternative beats the
incumbent by a configurable hysteresis factor — measurement noise must
not cause re-parenting churn, because every move re-points live
recovery state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.core.errors import ConfigError
from repro.core.estimator import TWaitEstimator

__all__ = [
    "LoggerTree",
    "LinkEstimate",
    "Reparent",
    "TreeManager",
    "plan_level_sizes",
    "build_tree",
    "interior_name",
]


def interior_name(level: int, index: int) -> str:
    """Canonical name for the ``index``-th interior logger at ``level``.

    Shared between the simulator deployment, the aio cluster, and the
    chaos fault sampler so a schedule can target an interior hub without
    building the deployment first.
    """
    return f"hub{level}-{index}-logger"


def plan_level_sizes(n_leaves: int, depth: int, fanout: int) -> dict[int, int]:
    """Interior-level sizes for a ``depth``-level tree over ``n_leaves``.

    Levels are numbered root=0 … leaves=``depth-1``; the returned dict
    maps each *interior* level (1 … depth-2) to the number of hubs it
    needs so no parent exceeds ``fanout`` children.  ``depth=2`` is the
    paper's flat layout and returns ``{}``.
    """
    if depth < 2:
        raise ConfigError(f"tree depth must be >= 2 (root + site loggers), got {depth}")
    if fanout < 2:
        raise ConfigError(f"fanout must be >= 2, got {fanout}")
    if n_leaves < 1:
        raise ConfigError(f"n_leaves must be >= 1, got {n_leaves}")
    sizes: dict[int, int] = {}
    below = n_leaves
    for level in range(depth - 2, 0, -1):
        count = min(below, max(1, math.ceil(below / fanout)))
        sizes[level] = count
        below = count
    return sizes


class LoggerTree:
    """Parent pointers plus fixed tiers for a logger hierarchy.

    A node's *level* is its tier in the layout (root=0, site loggers at
    the bottom) and never changes; its *parent* can move to any node of
    a strictly lower level, which is how a subtree survives the death of
    every hub at one tier (its loggers re-parent straight to the root).
    """

    def __init__(self, root: str) -> None:
        self._root = root
        self._parents: dict[str, str] = {}
        self._levels: dict[str, int] = {root: 0}
        self._children: dict[str, set[str]] = {root: set()}

    # -- construction ------------------------------------------------------

    def add(self, name: str, parent: str, level: int) -> None:
        if name in self._levels:
            raise ConfigError(f"duplicate tree node {name!r}")
        if parent not in self._levels:
            raise ConfigError(f"unknown parent {parent!r} for {name!r}")
        if level <= self._levels[parent]:
            raise ConfigError(
                f"{name!r} at level {level} cannot attach under {parent!r} "
                f"at level {self._levels[parent]}"
            )
        self._levels[name] = level
        self._parents[name] = parent
        self._children[name] = set()
        self._children[parent].add(name)

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> str:
        return self._root

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._levels))

    def __contains__(self, name: str) -> bool:
        return name in self._levels

    def parent(self, name: str) -> str | None:
        return self._parents.get(name)

    def level(self, name: str) -> int:
        return self._levels[name]

    def children(self, name: str) -> tuple[str, ...]:
        return tuple(sorted(self._children.get(name, ())))

    def at_level(self, level: int) -> tuple[str, ...]:
        return tuple(sorted(n for n, lv in self._levels.items() if lv == level))

    def chain(self, leaf: str) -> tuple[str, ...]:
        """Escalation chain from ``leaf`` up to and including the root."""
        if leaf not in self._levels:
            raise KeyError(leaf)
        out = [leaf]
        node = leaf
        while node != self._root:
            node = self._parents[node]
            out.append(node)
        return tuple(out)

    def subtree(self, name: str) -> frozenset[str]:
        """``name`` plus every descendant."""
        out = {name}
        frontier = [name]
        while frontier:
            node = frontier.pop()
            for child in self._children.get(node, ()):
                out.add(child)
                frontier.append(child)
        return frozenset(out)

    def is_ancestor(self, ancestor: str, node: str) -> bool:
        while node in self._parents:
            node = self._parents[node]
            if node == ancestor:
                return True
        return False

    # -- mutation ----------------------------------------------------------

    def reparent(self, child: str, new_parent: str) -> None:
        if child == self._root:
            raise ConfigError("cannot re-parent the root")
        if new_parent not in self._levels:
            raise ConfigError(f"unknown parent {new_parent!r}")
        if new_parent == child or self.is_ancestor(child, new_parent):
            raise ConfigError(f"re-parenting {child!r} under {new_parent!r} forms a cycle")
        if self._levels[new_parent] >= self._levels[child]:
            raise ConfigError(
                f"{child!r} (level {self._levels[child]}) cannot attach under "
                f"{new_parent!r} (level {self._levels[new_parent]})"
            )
        old = self._parents[child]
        self._children[old].discard(child)
        self._parents[child] = new_parent
        self._children[new_parent].add(child)

    def to_dict(self) -> dict:
        """Deterministic JSON-ready snapshot (sorted keys)."""
        return {
            "root": self._root,
            "levels": {n: self._levels[n] for n in sorted(self._levels)},
            "parents": {n: self._parents[n] for n in sorted(self._parents)},
        }


def build_tree(
    root: str,
    leaves: Iterable[str],
    *,
    depth: int,
    fanout: int,
    namer: Callable[[int, int], str] = interior_name,
) -> LoggerTree:
    """Balanced-degree initial construction.

    With no measurements yet every link costs the same, so the makespan
    objective reduces to degree balancing; leaves are grouped
    *contiguously* (adjacent site indices share a hub — the simulated
    WAN and real deployments both place adjacent sites near each other),
    and each interior level gets ``ceil(n/fanout)`` hubs.  Level numbers
    run root=0 … leaves=``depth-1``.
    """
    leaf_list = list(leaves)
    sizes = plan_level_sizes(len(leaf_list), depth, fanout)
    tree = LoggerTree(root)
    # Build interior levels top-down, then attach the leaves.
    parents_above: list[str] = [root]
    for level in range(1, depth - 1):
        count = sizes[level]
        names = [namer(level, i) for i in range(count)]
        for i, name in enumerate(names):
            parent = parents_above[i * len(parents_above) // count]
            tree.add(name, parent, level)
        parents_above = names
    n = len(leaf_list)
    for i, leaf in enumerate(leaf_list):
        parent = parents_above[i * len(parents_above) // n]
        tree.add(leaf, parent, depth - 1)
    return tree


class LinkEstimate:
    """Repair-RTT and loss tracking for one child→parent repair link.

    The RTT side reuses :class:`TWaitEstimator` verbatim — a repair link
    has the same dynamics as the source's ACK-collection window: clean
    request→repair round trips tighten the estimate, and a retry (the
    request or the repair was lost) widens it multiplicatively, decaying
    back once clean samples resume.  The loss ratio further inflates the
    effective cost: a link dropping half its repairs takes twice the
    round trips to finish a recovery.
    """

    __slots__ = ("_rtt", "attempts", "retries")

    def __init__(self, *, alpha: float, initial: float, max_widen: float) -> None:
        self._rtt = TWaitEstimator(alpha=alpha, initial=initial, max_widen=max_widen)
        self.attempts = 0
        self.retries = 0

    @property
    def rtt(self) -> float:
        return self._rtt.t_wait

    @property
    def loss_rate(self) -> float:
        if self.attempts <= 0:
            return 0.0
        return min(self.retries / self.attempts, 0.75)

    @property
    def cost(self) -> float:
        """Effective repair round trip: measured RTT inflated by loss."""
        return self._rtt.t_wait / (1.0 - self.loss_rate)

    def record_rtt(self, sample: float) -> None:
        self._rtt.record_last_ack(sample)

    def record_retry(self, widen: float = 1.5) -> None:
        self.retries += 1
        self._rtt.widen(widen)


@dataclass(frozen=True, slots=True)
class Reparent:
    """One applied re-parenting decision (for reports and chaos digests)."""

    child: str
    old_parent: str
    new_parent: str
    reason: str  # "crash" | "saturation" | "cost" | "forced"
    at: float

    def to_dict(self) -> dict:
        return {
            "child": self.child,
            "old_parent": self.old_parent,
            "new_parent": self.new_parent,
            "reason": self.reason,
            "at": round(self.at, 6),
        }


class TreeManager:
    """Makespan-aware scoring and re-parenting over a :class:`LoggerTree`.

    Transport-agnostic: a runtime (the simulator's ``HierarchyRuntime``
    or an aio adapter) feeds it request/repair/retry observations and
    asks it to ``rescore`` once per heartbeat epoch with the current
    live set; the manager mutates the tree and returns the applied
    :class:`Reparent` moves for the runtime to wire into the protocol
    machines (``LogServer.set_parent`` + receiver chain updates).
    """

    def __init__(
        self,
        tree: LoggerTree,
        *,
        fanout: int,
        serve_cost: float = 0.0005,
        hysteresis: float = 1.5,
        link_alpha: float = 0.125,
        max_widen: float = 16.0,
        seed_cost: Callable[[str, str], float] | None = None,
    ) -> None:
        if fanout < 2:
            raise ConfigError(f"fanout must be >= 2, got {fanout}")
        if hysteresis < 1.0:
            raise ConfigError(f"hysteresis must be >= 1, got {hysteresis}")
        self.tree = tree
        self._fanout = fanout
        self._serve_cost = serve_cost
        self._hysteresis = hysteresis
        self._link_alpha = link_alpha
        self._max_widen = max_widen
        self._seed_cost = seed_cost or (lambda child, parent: 0.05)
        self._links: dict[tuple[str, str], LinkEstimate] = {}
        self._outstanding: dict[tuple[str, int], tuple[float, str]] = {}
        self.moves: list[Reparent] = []
        self.stats = {
            "rescores": 0,
            "reparents_crash": 0,
            "reparents_saturation": 0,
            "reparents_cost": 0,
            "reparents_forced": 0,
            "rtt_samples": 0,
            "retries_seen": 0,
        }

    # -- per-link measurement ---------------------------------------------

    def link(self, child: str, parent: str) -> LinkEstimate:
        key = (child, parent)
        est = self._links.get(key)
        if est is None:
            est = LinkEstimate(
                alpha=self._link_alpha,
                initial=max(self._seed_cost(child, parent), 1e-6),
                max_widen=self._max_widen,
            )
            self._links[key] = est
        return est

    def note_request(self, child: str, seqs: Iterable[int], now: float) -> None:
        """An upstream NACK left ``child`` toward its current parent."""
        parent = self.tree.parent(child)
        if parent is None:
            return
        link = self.link(child, parent)
        for seq in seqs:
            link.attempts += 1
            self._outstanding[(child, seq)] = (now, parent)

    def note_retry(self, child: str, seqs: Iterable[int]) -> None:
        """An upstream request was re-sent: count loss on the link."""
        parent = self.tree.parent(child)
        if parent is None:
            return
        link = self.link(child, parent)
        for _seq in seqs:
            link.record_retry()
            self.stats["retries_seen"] += 1

    def has_outstanding(self, child: str, seq: int) -> bool:
        """True while a request for ``seq`` from ``child`` awaits repair."""
        return (child, seq) in self._outstanding

    def note_repair(self, child: str, seq: int, now: float) -> None:
        """A repair for ``seq`` reached ``child``: close the RTT sample."""
        entry = self._outstanding.pop((child, seq), None)
        if entry is None:
            return
        sent_at, parent = entry
        if self.tree.parent(child) == parent:
            self.link(child, parent).record_rtt(max(now - sent_at, 0.0))
            self.stats["rtt_samples"] += 1

    def cost(self, child: str, parent: str) -> float:
        link = self._links.get((child, parent))
        if link is not None and link.attempts > 0:
            return link.cost
        return max(self._seed_cost(child, parent), 1e-6)

    # -- makespan objective ------------------------------------------------

    def makespan(self, node: str | None = None) -> float:
        """Worst-case serial repair completion time of ``node``'s subtree.

        Children are served in decreasing order of remaining cost (the
        LPT order that minimizes the serial maximum); the ``i``-th slot
        adds ``(i+1)·serve_cost`` of serialization at the parent.
        """
        node = node or self.tree.root
        children = self.tree.children(node)
        if not children:
            return 0.0
        remaining = sorted(
            ((self.cost(c, node) + self.makespan(c), c) for c in children), reverse=True
        )
        worst = 0.0
        for i, (cost, _name) in enumerate(remaining):
            worst = max(worst, (i + 1) * self._serve_cost + cost)
        return worst

    # -- re-parenting ------------------------------------------------------

    def _candidates(self, child: str, live: frozenset[str]) -> list[str]:
        """Live attach points for ``child``, preferring its natural tier.

        Walk upward tier by tier: parents one level above first, then
        grandparent tier, finally the root (always a candidate of last
        resort — if the root is gone the failover machinery, not the
        tree, is responsible).  Nodes inside ``child``'s own subtree are
        never candidates (cycle).
        """
        tier = self.tree.level(child)
        below = self.tree.subtree(child)
        for level in range(tier - 1, 0, -1):
            cands = [
                n
                for n in self.tree.at_level(level)
                if n in live and n not in below
            ]
            if cands:
                open_slots = [n for n in cands if len(self.tree.children(n)) < self._fanout]
                return open_slots or cands
        return [self.tree.root]

    def _score(self, child: str, parent: str) -> float:
        load = len(self.tree.children(parent))
        if self.tree.parent(child) != parent:
            load += 1
        return self.cost(child, parent) + self._serve_cost * load

    def _apply(self, child: str, new_parent: str, reason: str, now: float) -> Reparent:
        move = Reparent(
            child=child,
            old_parent=self.tree.parent(child) or self.tree.root,
            new_parent=new_parent,
            reason=reason,
            at=now,
        )
        self.tree.reparent(child, new_parent)
        self.moves.append(move)
        self.stats[f"reparents_{reason}"] += 1
        return move

    def rescore(
        self,
        now: float,
        *,
        live: frozenset[str],
        saturated: frozenset[str] = frozenset(),
    ) -> list[Reparent]:
        """One heartbeat-epoch re-scoring pass.

        ``live`` is the set of loggers currently able to serve repairs
        (the root should be included by the caller whenever the sender
        trusts *some* primary — during a failover window it may be
        absent, in which case children of the root stay put and ride out
        the window).  ``saturated`` marks parents whose outstanding
        upstream-repair queue exceeded the configured threshold.

        Moves are applied eagerly so later decisions in the same pass
        see updated loads; iteration order (level, name) is
        deterministic across engines.
        """
        self.stats["rescores"] += 1
        self._prune_outstanding(now)
        moves: list[Reparent] = []
        order = sorted(
            (n for n in self.tree.nodes if n != self.tree.root),
            key=lambda n: (self.tree.level(n), n),
        )
        for child in order:
            parent = self.tree.parent(child)
            assert parent is not None
            parent_bad = parent not in live or parent in saturated
            cands = self._candidates(child, live)
            if parent_bad:
                # Leaving a dead/saturated parent: never pick it again,
                # and avoid piling onto another saturated hub unless it
                # is the only live option.
                alts = [p for p in cands if p != parent and p not in saturated]
                alts = alts or [p for p in cands if p != parent]
                if not alts:
                    continue
                best = min(alts, key=lambda p: (self._score(child, p), p))
                reason = "crash" if parent not in live else "saturation"
                moves.append(self._apply(child, best, reason, now))
                continue
            alts = [p for p in cands if p not in saturated or p == parent]
            if not alts:
                continue
            best = min(alts, key=lambda p: (self._score(child, p), p))
            if best != parent and (
                self._score(child, best) * self._hysteresis < self._score(child, parent)
            ):
                moves.append(self._apply(child, best, "cost", now))
        return moves

    def force_reparent(self, child: str, *, live: frozenset[str], now: float) -> Reparent | None:
        """Chaos hook: move ``child`` to its best live alternative parent.

        Returns ``None`` when no live alternative exists (the move is
        impossible, not an error — the schedule may have crashed every
        other hub).
        """
        if child not in self.tree or child == self.tree.root:
            return None
        parent = self.tree.parent(child)
        cands = [p for p in self._candidates(child, live) if p != parent]
        if not cands:
            return None
        best = min(cands, key=lambda p: (self._score(child, p), p))
        return self._apply(child, best, "forced", now)

    def _prune_outstanding(self, now: float, horizon: float = 30.0) -> None:
        if len(self._outstanding) < 4096:
            return
        stale = [k for k, (sent_at, _p) in self._outstanding.items() if now - sent_at > horizon]
        for key in stale:
            del self._outstanding[key]
