"""Logging servers — the heart of LBRM (§2, §2.2).

One class, :class:`LogServer`, plays all three roles the paper
describes, reflecting "the recursive nature of the distributed logging
architecture" the authors credit for their code reuse (§3):

* **PRIMARY** — subscribes to the source's multicast group, logs every
  packet, acknowledges the source (LOG_ACK carrying both the primary and
  replicated sequence numbers), and pushes updates to replicas.
* **SECONDARY** — a site-local logger: logs off the multicast group,
  serves its site's retransmission requests, calls back to its parent
  (the primary, or a higher secondary in a multi-level hierarchy) for
  packets it lost itself, volunteers as a Designated Acker, and answers
  probes and discovery queries.
* **REPLICA** — a passive copy fed by the primary's REPL_UPDATE stream,
  promotable to PRIMARY on failover (§2.2.3).

A secondary decides between unicast repairs and one site-scoped (TTL
bound) re-multicast based on how many distinct local receivers asked and
on whether it lost the packet itself (§2.2.1).
"""

from __future__ import annotations

import random
from enum import Enum

from repro import obs
from repro.core.actions import Action, Address, JoinGroup, Notify, SendMulticast, SendUnicast
from repro.core.config import LbrmConfig
from repro.core.events import DesignatedAcker, PromotedToPrimary, Remulticast
from repro.core.log_store import PacketLog
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    AckerResponsePacket,
    AckerSelectPacket,
    DataAckPacket,
    DataPacket,
    DiscoveryQueryPacket,
    DiscoveryReplyPacket,
    HeartbeatPacket,
    LogAckPacket,
    NackPacket,
    Packet,
    ProbePacket,
    ProbeReplyPacket,
    PromotePacket,
    ReplAckPacket,
    ReplStatusQueryPacket,
    ReplUpdatePacket,
    RetransPacket,
)
from repro.core.replication import ReplicationManager
from repro.core.retransmit import SiteRequestTracker
from repro.core.sequence import SequenceTracker

__all__ = ["LoggerRole", "LogServer"]

_NO_SEQ = 2**64 - 1  # ReplAck sentinel for "nothing held yet"


class LoggerRole(Enum):
    PRIMARY = "primary"
    SECONDARY = "secondary"
    REPLICA = "replica"


class LogServer(ProtocolMachine):
    """A logging server for one LBRM group.

    Parameters
    ----------
    group:
        Multicast group whose traffic this server logs.
    addr_token:
        Stable string naming this server on the wire (discovery replies).
    role:
        Initial role; a REPLICA may later be promoted.
    parent:
        Upstream logger to fetch missing packets from (secondaries only;
        the primary has none).
    source:
        The source's address — the primary sends LOG_ACKs there.
    replicas:
        Replica addresses (primary only).
    level:
        Hierarchy depth advertised in discovery replies (0 = primary).
    site_scoped_repairs:
        When True (the default), a secondary may answer a pile of
        requests for one sequence with a single TTL-scoped re-multicast
        (§2.2.1) — correct when its requesters share its site LAN.
        Interior hubs in a k-level tree (DESIGN §11) serve *remote*
        site loggers, which a site-scoped multicast can never reach;
        they are built with False and always unicast repairs.
    parse_token:
        Converts a wire address token back into an :class:`Address`
        (used for the membership list a PROMOTE packet carries).  The
        simulator's addresses are their own tokens, so the default is
        the identity; asyncio harnesses pass
        :func:`repro.aio.node.parse_token`.
    """

    def __init__(
        self,
        group: str,
        addr_token: str,
        config: LbrmConfig | None = None,
        *,
        role: LoggerRole = LoggerRole.SECONDARY,
        parent: Address | None = None,
        source: Address | None = None,
        replicas: tuple[Address, ...] = (),
        level: int = 1,
        site_scoped_repairs: bool = True,
        rng: random.Random | None = None,
        spool_path: str | None = None,
        parse_token=None,
    ) -> None:
        super().__init__()
        self._group = group
        self._addr_token = addr_token
        self._config = config or LbrmConfig()
        self._role = role
        self._parent = parent
        self._source = source
        self._level = level
        self._parse_token = parse_token or (lambda token: token)
        # Deterministic default (str seeds hash stably): volunteer coins
        # and jitter repeat identically run to run.
        self._rng = rng or random.Random("repro.core.logger")

        log_cfg = self._config.logger
        # Config is frozen; these are re-read once per served NACK, so
        # the two-attribute hops are baked into locals up front.
        self._lifetime = log_cfg.packet_lifetime
        self._is_secondary = role is LoggerRole.SECONDARY
        # Site-scoped re-multicast is only ever a win when the server's
        # requesters sit on its own LAN (see the class docstring).
        self._serve_local = self._is_secondary and site_scoped_repairs
        self.log = PacketLog(
            max_packets=log_cfg.max_packets,
            max_bytes=log_cfg.max_bytes,
            lifetime=log_cfg.packet_lifetime,
            spool_path=spool_path,
        )
        # In-memory log entries, read directly on the NACK service path
        # (PacketLog mutates this OrderedDict in place, never rebinds).
        self._log_entries = self.log._entries
        self.tracker = SequenceTracker()
        if role is LoggerRole.REPLICA:
            # The replication stream covers the whole log from seq 1, so
            # a replica observing seq k first genuinely misses 1..k-1 —
            # it must not adopt the receiver-style mid-stream baseline
            # and report a contiguous prefix it does not hold.
            self.tracker.expect_from(1)
        self._site_requests = SiteRequestTracker(log_cfg)
        # seq -> requesters waiting for a packet we do not hold yet.
        self._pending: dict[int, set[Address]] = {}
        # seq -> shared frozen RetransPacket for repeat repairs.
        self._retrans_memo: dict[int, RetransPacket] = {}
        # (seq, requester) -> shared single-action reply for repeat
        # unicast repairs; actions are immutable value objects and every
        # caller only iterates the returned list, so retries reuse one
        # list instance outright.
        self._unicast_memo: dict[tuple[int, Address], list] = {}
        # seq -> upstream retries performed so far.
        self._upstream_retries: dict[int, int] = {}
        # Sequences this server itself had to fetch from upstream.
        self._self_lost: set[int] = set()
        # Epochs this (secondary) server volunteered to ack.
        self._acking_epochs: set[int] = set()

        # Promotion term (DESIGN.md §10): the configured primary starts
        # the group at epoch 1; replicas learn the epoch from the pushes
        # they ack and from the PROMOTE packet that raises them.
        self._log_epoch = 1 if role is LoggerRole.PRIMARY else 0
        # Highest commit point this server has *learned* (piggybacked on
        # REPL_UPDATE pushes); its own committed prefix is capped by what
        # it actually holds (see _commit_for_ack).
        self._commit_learned = 0

        self._replication: ReplicationManager | None = None
        if role is LoggerRole.PRIMARY:
            self._replication = ReplicationManager(
                group, replicas, self._config.replication, epoch=self._log_epoch
            )

        registry = obs.registry()
        self._trace = registry.trace
        self._obs_log_packets = registry.gauge("logger.log_packets", node=addr_token)
        self._obs_log_bytes = registry.gauge("logger.log_bytes", node=addr_token)
        self.stats = obs.stat_counters(
            "logger",
            {
                "logged": 0,
                "nacks_received": 0,
                "retrans_unicast": 0,
                "retrans_multicast": 0,
                "upstream_nacks": 0,
                "log_misses": 0,
                "acks_sent": 0,
                "discovery_replies": 0,
                "probe_replies": 0,
            },
            node=addr_token,
        )

    # -- introspection ----------------------------------------------------

    @property
    def role(self) -> LoggerRole:
        return self._role

    @property
    def group(self) -> str:
        return self._group

    @property
    def addr_token(self) -> str:
        return self._addr_token

    @property
    def primary_seq(self) -> int:
        """Highest contiguous sequence this server holds (0 = none)."""
        if not self.tracker.started:
            return 0
        missing = self.tracker.missing
        if not missing:
            return self.tracker.highest
        return min(missing) - 1

    @property
    def replication(self) -> ReplicationManager | None:
        return self._replication

    @property
    def log_epoch(self) -> int:
        """Highest promotion term this server has seen (0 = none yet)."""
        return self._log_epoch

    @property
    def commit_point(self) -> int:
        """The commit point this server can vouch for.

        A primary with followers reports its replication commit point; a
        primary without followers is the only copy, so its own prefix is
        the best available notion; a follower reports its committed
        prefix (learned commit capped by what it holds).
        """
        if self._replication is not None:
            if self._replication.members:
                return self._replication.commit_seq
            return self.primary_seq
        return self._commit_for_ack()

    def _commit_for_ack(self) -> int:
        commit = self._commit_learned
        held = self.primary_seq
        return commit if commit < held else held

    def set_source(self, source: Address) -> None:
        """Install the source address (needed when ports are dynamic)."""
        self._source = source

    def set_parent(self, parent: Address) -> None:
        """Install the upstream logger address (secondaries)."""
        self._parent = parent

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        """Subscribe to the group (replicas are fed by unicast instead)."""
        if self._config.logger.packet_lifetime:
            # Periodic housekeeping bounds memory even on idle servers;
            # half the lifetime keeps staleness overshoot below 50%.
            self.timers.set(("expire",), now + self._config.logger.packet_lifetime / 2)
        if self._role is LoggerRole.REPLICA:
            return []
        return [JoinGroup(group=self._group)]

    # -- inbound ----------------------------------------------------------

    # Exact-type dispatch: packets are final frozen dataclasses, so one
    # dict probe replaces the isinstance ladder on the per-packet hot
    # path (subclasses fall through to _handle_any).  The table maps to
    # method *names*, resolved per call, so class-level monkeypatching —
    # the chaos campaign's unresponsive-logger fault swaps _on_nack —
    # keeps working.
    _HANDLER_NAMES = {
        DataPacket: "_on_data_packet",
        RetransPacket: "_on_data_packet",
        HeartbeatPacket: "_on_heartbeat",
        NackPacket: "_on_nack",
        AckerSelectPacket: "_on_acker_select",
        ProbePacket: "_on_probe",
        DiscoveryQueryPacket: "_on_discovery",
        ReplUpdatePacket: "_on_repl_update",
        ReplAckPacket: "_on_repl_ack",
        ReplStatusQueryPacket: "_on_repl_status",
        PromotePacket: "_on_promote",
    }

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        # The three packet types a busy logger actually fields get
        # identity checks ahead of the dict probe; ``self._on_*`` calls
        # still honour class-level monkeypatching.
        t = type(packet)
        if t is NackPacket:
            return self._on_nack(packet, src, now)
        if t is DataPacket:
            return self._on_data(packet.seq, packet.payload, packet.epoch, src, now)
        if t is HeartbeatPacket:
            return self._on_heartbeat(packet, src, now)
        name = self._HANDLER_NAMES.get(t)
        if name is not None:
            return getattr(self, name)(packet, src, now)
        return self._handle_any(packet, src, now)

    def _handle_any(self, packet: Packet, src: Address, now: float) -> list[Action]:
        """isinstance fallback for packet subclasses (exact types take
        the dict dispatch above)."""
        if isinstance(packet, (DataPacket, RetransPacket)):
            return self._on_data(packet.seq, packet.payload, packet.epoch, src, now)
        if isinstance(packet, HeartbeatPacket):
            return self._on_heartbeat(packet, src, now)
        if isinstance(packet, NackPacket):
            return self._on_nack(packet, src, now)
        if isinstance(packet, AckerSelectPacket):
            return self._on_acker_select(packet, src, now)
        if isinstance(packet, ProbePacket):
            return self._on_probe(packet, src, now)
        if isinstance(packet, DiscoveryQueryPacket):
            return self._on_discovery(packet, src, now)
        if isinstance(packet, ReplUpdatePacket):
            return self._on_repl_update(packet, src, now)
        if isinstance(packet, ReplAckPacket):
            return self._on_repl_ack(packet, src, now)
        if isinstance(packet, ReplStatusQueryPacket):
            return self._on_repl_status(packet, src, now)
        if isinstance(packet, PromotePacket):
            return self._on_promote(packet, src, now)
        return []

    def _on_data_packet(self, packet, src: Address, now: float) -> list[Action]:
        return self._on_data(packet.seq, packet.payload, packet.epoch, src, now)

    # -- logging the stream ----------------------------------------------------

    def _on_data(self, seq: int, payload: bytes, epoch: int, src: Address, now: float) -> list[Action]:
        actions: list[Action] = []
        report = self.tracker.observe_data(seq)
        if self.log.append(seq, payload, now):
            self.stats["logged"] += 1
            self._obs_log_packets.set(len(self.log))
            self._obs_log_bytes.set(self.log.byte_size)
            if self._replication is not None:
                actions.extend(self._replication.replicate(seq, payload, now))
        # The logger itself recovers its own losses from upstream so the
        # site's receivers can always be served locally (§2.2.1).
        actions.extend(self._request_upstream(report.new_gaps, now))
        if report.filled_gap:
            self._upstream_retries.pop(seq, None)
            self.timers.cancel(("upstream", seq))
        # Serve receivers that asked before we had the packet.
        actions.extend(self._serve_pending(seq, payload, now))
        if self._role is LoggerRole.PRIMARY:
            actions.extend(self._ack_source(now))
        if epoch in self._acking_epochs and self._source is not None:
            self.stats["acks_sent"] += 1
            ack = DataAckPacket(group=self._group, epoch=epoch, seq=seq)
            actions.append(SendUnicast(dest=self._source, packet=ack))
        return actions

    def _on_heartbeat(self, packet: HeartbeatPacket, src: Address, now: float) -> list[Action]:
        report = self.tracker.observe_heartbeat(packet.seq)
        return self._request_upstream(report.new_gaps, now)

    def _ack_source(self, now: float) -> list[Action]:
        if self._source is None:
            return []
        replica_seq = self.primary_seq
        if self._replication is not None and self._replication.members:
            replica_seq = self._replication.commit_seq
        ack = LogAckPacket(
            group=self._group,
            primary_seq=self.primary_seq,
            replica_seq=replica_seq,
            log_epoch=self._log_epoch,
        )
        return [SendUnicast(dest=self._source, packet=ack)]

    # -- serving retransmission requests -----------------------------------

    def _on_nack(self, packet: NackPacket, src: Address, now: float) -> list[Action]:
        self.stats["nacks_received"] += 1
        if self._lifetime:
            # Age out entries first so the membership test below is
            # accurate (an entry must not expire between the check and
            # the retrieval).
            self.log.expire(now)
        seqs = packet.seqs
        if len(seqs) == 1:
            # The dominant request shape — a receiver chasing a single
            # gap.  Serving it without the accumulator lists keeps the
            # saturation path allocation-free.  The in-memory entry dict
            # is probed directly; peek() still covers the spool.
            seq = seqs[0]
            entry = self._log_entries.get(seq)
            if entry is None:
                entry = self.log.peek(seq)
            if entry is not None:
                return self._repair(seq, entry, src, now)
            self.stats["log_misses"] += 1
            self._pending.setdefault(seq, set()).add(src)
            return self._request_upstream(seqs, now)
        actions: list[Action] = []
        upstream_needed: list[int] = []
        log = self.log
        for seq in seqs:
            entry = log.peek(seq)
            if entry is not None:
                actions.extend(self._repair(seq, entry, src, now))
            else:
                self.stats["log_misses"] += 1
                self._pending.setdefault(seq, set()).add(src)
                upstream_needed.append(seq)
        if upstream_needed:
            actions.extend(self._request_upstream(tuple(upstream_needed), now))
        return actions

    def _repair(self, seq: int, entry, requester: Address, now: float) -> list[Action]:
        # Popular packets (a site-wide loss) are requested many times;
        # RetransPacket is frozen, so one instance per log entry serves
        # every requester.  The payload identity check guards against a
        # re-logged entry after expiry.
        retrans = self._retrans_memo.get(seq)
        if retrans is None or retrans.payload is not entry.payload:
            retrans = RetransPacket(group=self._group, seq=seq, payload=entry.payload)
            self._retrans_memo[seq] = retrans
        # The TTL-scoped re-multicast only helps a SECONDARY repairing its
        # own site; a primary's requesters are on other sites, beyond any
        # site-local scope, so it always unicasts (group-wide re-multicast
        # is the source's statistical-ack decision, §2.3.2).
        multicast_now = self._serve_local and self._site_requests.record(
            seq, requester, now, bool(self._self_lost) and seq in self._self_lost
        )
        if multicast_now:
            # Enough of the site lost it: one TTL-scoped re-multicast
            # replaces a pile of unicasts (§2.2.1).
            self.stats["retrans_multicast"] += 1
            self._trace.emit(now, "logger.remulticast", seq=seq, reason="site-wide loss")
            return [
                SendMulticast(group=self._group, packet=retrans, ttl=self._config.logger.site_ttl),
                Notify(Remulticast(seq=seq, reason="site-wide loss")),
            ]
        self.stats["retrans_unicast"] += 1
        # NACK retries re-request the same (seq, requester) pair; the
        # packet identity check invalidates the memo when the retrans
        # instance above was rebuilt (re-logged entry).
        memo_key = (seq, requester)
        reply = self._unicast_memo.get(memo_key)
        if reply is None or reply[0].packet is not retrans:
            reply = [SendUnicast(dest=requester, packet=retrans)]
            if len(self._unicast_memo) >= 4096:
                self._unicast_memo.clear()
            self._unicast_memo[memo_key] = reply
        return reply

    def _serve_pending(self, seq: int, payload: bytes, now: float) -> list[Action]:
        waiting = self._pending.pop(seq, None)
        if not waiting:
            return []
        actions: list[Action] = []
        retrans = RetransPacket(group=self._group, seq=seq, payload=payload)
        if self._serve_local and (
            len(waiting) >= self._config.logger.remulticast_threshold or seq in self._self_lost
        ):
            self.stats["retrans_multicast"] += 1
            self._trace.emit(now, "logger.remulticast", seq=seq, reason="queued site requests")
            actions.append(
                SendMulticast(group=self._group, packet=retrans, ttl=self._config.logger.site_ttl)
            )
            actions.append(Notify(Remulticast(seq=seq, reason="queued site requests")))
        else:
            for requester in waiting:
                self.stats["retrans_unicast"] += 1
                actions.append(SendUnicast(dest=requester, packet=retrans))
        return actions

    def _request_upstream(self, gaps: tuple[int, ...], now: float) -> list[Action]:
        if self._parent is None:
            return []
        fresh = [s for s in gaps if s not in self._upstream_retries]
        if not fresh:
            return []
        self._self_lost.update(fresh)
        for seq in fresh:
            # 0 = initial request sent; only re-requests count as retries.
            self._upstream_retries[seq] = 0
            self.timers.set(("upstream", seq), now + self._config.logger.upstream_retry)
        self.stats["upstream_nacks"] += 1
        nack = NackPacket(group=self._group, seqs=tuple(sorted(fresh))[: NackPacket.MAX_SEQS])
        return [SendUnicast(dest=self._parent, packet=nack)]

    # -- statistical acknowledgement participation ---------------------------

    def _on_acker_select(self, packet: AckerSelectPacket, src: Address, now: float) -> list[Action]:
        if self._role is not LoggerRole.SECONDARY:
            return []
        if self._rng.random() >= packet.p_ack:
            return []
        self._acking_epochs.add(packet.epoch)
        # Keep only a few recent epochs; selection packets are frequent.
        if len(self._acking_epochs) > 8:
            self._acking_epochs = set(sorted(self._acking_epochs)[-8:])
        response = AckerResponsePacket(group=self._group, epoch=packet.epoch)
        return [
            SendUnicast(dest=src, packet=response),
            Notify(DesignatedAcker(epoch=packet.epoch)),
        ]

    def _on_probe(self, packet: ProbePacket, src: Address, now: float) -> list[Action]:
        if self._role is not LoggerRole.SECONDARY:
            return []
        if self._rng.random() >= packet.p_ack:
            return []
        self.stats["probe_replies"] += 1
        return [SendUnicast(dest=src, packet=ProbeReplyPacket(group=self._group, probe_id=packet.probe_id))]

    # -- discovery ----------------------------------------------------------

    def _on_discovery(self, packet: DiscoveryQueryPacket, src: Address, now: float) -> list[Action]:
        if self._role is LoggerRole.REPLICA:
            return []
        self.stats["discovery_replies"] += 1
        reply = DiscoveryReplyPacket(group=self._group, logger_addr=self._addr_token, level=self._level)
        return [SendUnicast(dest=src, packet=reply)]

    # -- replication (replica side + primary ACK intake) ----------------------

    def _on_repl_update(self, packet: ReplUpdatePacket, src: Address, now: float) -> list[Action]:
        if self._role is LoggerRole.SECONDARY:
            return []
        # Epoch gate (DESIGN.md §10): a push from a stale term — a
        # restarted pre-failover primary, or one delayed in flight across
        # a promotion — must neither enter the log bookkeeping as fresh
        # replication nor be acknowledged (an ack would let the stale
        # primary keep "committing" in a term the group has left).
        if packet.log_epoch and packet.log_epoch < self._log_epoch:
            return []
        if packet.log_epoch > self._log_epoch:
            self._log_epoch = packet.log_epoch
        if packet.commit_seq > self._commit_learned:
            self._commit_learned = packet.commit_seq
        self.tracker.observe_data(packet.seq)
        if self.log.append(packet.seq, packet.payload, now):
            self.stats["logged"] += 1
            self._obs_log_packets.set(len(self.log))
            self._obs_log_bytes.set(self.log.byte_size)
        actions: list[Action] = [SendUnicast(dest=src, packet=self._repl_ack())]
        if self._role is LoggerRole.PRIMARY:
            # Promoted primary receiving the source's handover also keeps
            # the source's buffer-release machinery moving.
            actions.extend(self._serve_pending(packet.seq, packet.payload, now))
            actions.extend(self._ack_source(now))
        return actions

    def _on_repl_ack(self, packet: ReplAckPacket, src: Address, now: float) -> list[Action]:
        if self._replication is None:
            return []
        cum = 0 if packet.cum_seq == _NO_SEQ else packet.cum_seq
        # A cumulative ACK below the recorded watermark means the
        # follower restarted with an empty log; reset its state so the
        # backfill below re-replicates the vanished prefix.
        self._replication.note_regression(src, cum, now, epoch=packet.log_epoch)
        grew = self._replication.on_ack(src, cum, now, epoch=packet.log_epoch)
        actions: list[Action] = []
        # Catch-up path: a follower behind the log's own prefix (freshly
        # adopted after a promotion, or one whose updates were dropped
        # after the retry budget) is backfilled from the log, paced one
        # batch per acknowledgement.
        for seq in self._replication.missing_for(src, self.primary_seq):
            entry = self.log.peek(seq)
            if entry is None:
                continue
            actions.extend(self._replication.replicate_to(src, seq, entry.payload, now))
        if grew:
            actions.extend(self._ack_source(now))
        return actions

    def _on_repl_status(self, packet: ReplStatusQueryPacket, src: Address, now: float) -> list[Action]:
        return [SendUnicast(dest=src, packet=self._repl_ack())]

    def _repl_ack(self) -> ReplAckPacket:
        return ReplAckPacket(
            group=self._group,
            cum_seq=self._cum_seq(),
            log_epoch=self._log_epoch,
            commit_seq=self._commit_for_ack(),
        )

    def _on_promote(self, packet: PromotePacket, src: Address, now: float) -> list[Action]:
        if self._role is not LoggerRole.REPLICA:
            return []
        if packet.log_epoch and packet.log_epoch <= self._log_epoch:
            return []  # stale promotion (a term this replica already left)
        self._role = LoggerRole.PRIMARY
        self._is_secondary = False
        self._source = src
        # The source becomes the new primary's upstream: any gap in the
        # promoted log is backfilled from the reliability buffer.
        self._parent = src
        self._level = 0
        self._log_epoch = packet.log_epoch if packet.log_epoch else self._log_epoch + 1
        members = tuple(
            self._parse_token(token) for token in packet.members.split(",") if token
        )
        self._trace.emit(
            now, "logger.promoted", node=self._addr_token,
            from_seq=packet.from_seq, log_epoch=self._log_epoch,
        )
        self._replication = ReplicationManager(
            self._group, (), self._config.replication, epoch=self._log_epoch
        )
        actions: list[Action] = [
            JoinGroup(group=self._group),
            Notify(PromotedToPrimary(from_seq=packet.from_seq, log_epoch=self._log_epoch)),
        ]
        # Adopt the surviving membership and solicit each follower's
        # progress; their answers drive the backfill in _on_repl_ack, so
        # the commit point stays replicated across the failover.
        query = ReplStatusQueryPacket(group=self._group)
        for member in members:
            self._replication.adopt(member, now)
            actions.append(SendUnicast(dest=member, packet=query))
        return actions

    def _cum_seq(self) -> int:
        cum = self.primary_seq
        return cum if cum > 0 else _NO_SEQ

    # -- fault injection ----------------------------------------------------

    def wipe_restart(self, now: float) -> None:
        """Simulate a crash + restart with **empty** durable state.

        Everything this server held vanishes: the packet log, sequence
        tracking, the learned commit point and epoch, and all transient
        repair bookkeeping.  The role is kept (a restarted replica
        rejoins as a replica).  The next acknowledgement it emits
        reports "nothing held", which is what lets the primary detect
        the regression (:meth:`ReplicationManager.note_regression`),
        re-adopt it with fresh state, and backfill the vanished prefix.
        """
        log_cfg = self._config.logger
        self.log = PacketLog(
            max_packets=log_cfg.max_packets,
            max_bytes=log_cfg.max_bytes,
            lifetime=log_cfg.packet_lifetime,
        )
        self._log_entries = self.log._entries
        self.tracker = SequenceTracker()
        if self._role is not LoggerRole.SECONDARY:
            self.tracker.expect_from(1)
        self._site_requests = SiteRequestTracker(log_cfg)
        self._pending.clear()
        self._retrans_memo.clear()
        self._unicast_memo.clear()
        self._upstream_retries.clear()
        self._self_lost.clear()
        self._acking_epochs.clear()
        self._commit_learned = 0
        self._log_epoch = 1 if self._role is LoggerRole.PRIMARY else 0
        self._obs_log_packets.set(0)
        self._obs_log_bytes.set(0)
        self._trace.emit(now, "logger.wiped", node=self._addr_token)

    # -- timers ----------------------------------------------------------

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] == "upstream":
                actions.extend(self._retry_upstream(key[1], now))
            elif key[0] == "expire":
                self.timers.set(("expire",), now + self._config.logger.packet_lifetime / 2)
        if self._replication is not None:
            actions.extend(self._replication.poll(now))
        self._site_requests.sweep(now)
        if self._lifetime:
            self.log.expire(now)
            self._obs_log_packets.set(len(self.log))
            self._obs_log_bytes.set(self.log.byte_size)
        return actions

    def next_wakeup(self) -> float | None:
        own = self.timers.next_deadline()
        if self._replication is None:
            return own
        repl = self._replication.next_wakeup()
        if own is None:
            return repl
        if repl is None:
            return own
        return min(own, repl)

    def _retry_upstream(self, seq: int, now: float) -> list[Action]:
        if seq in self.log or self._parent is None:
            self._upstream_retries.pop(seq, None)
            return []
        retries = self._upstream_retries.get(seq, 0)
        if retries >= self._config.logger.max_upstream_retries:
            self._upstream_retries.pop(seq, None)
            self._pending.pop(seq, None)
            return []
        self._upstream_retries[seq] = retries + 1
        self.timers.set(("upstream", seq), now + self._config.logger.upstream_retry)
        self.stats["upstream_nacks"] += 1
        return [SendUnicast(dest=self._parent, packet=NackPacket(group=self._group, seqs=(seq,)))]
