"""Actions emitted by sans-IO protocol machines.

Every protocol machine in :mod:`repro.core` is I/O-free: it consumes
packets and clock readings and returns a list of :class:`Action`
objects describing what the surrounding harness should do.  Two
harnesses exist — the deterministic discrete-event simulator
(:mod:`repro.simnet`) and the real asyncio UDP runtime
(:mod:`repro.aio`) — and both interpret the same action vocabulary.

Addresses are deliberately opaque: the simulator uses node-name strings
while the asyncio runtime uses ``(host, port)`` tuples.  Machines never
inspect addresses beyond equality and hashing.

Actions are value objects: immutable, hashable, compared by type and
fields.  They are built on :class:`~typing.NamedTuple` rather than
frozen dataclasses because machines mint them on every packet — a
frozen dataclass pays an ``object.__setattr__`` call per field on
construction (~3x the cost), and ``Deliver`` alone is created hundreds
of thousands of times per benchmark run.  Tuple equality ignores the
class, so each action type pins ``__eq__`` to same-type comparisons.
"""

from __future__ import annotations

from abc import ABCMeta
from typing import Hashable, NamedTuple, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.packets import Packet
    from repro.core.events import Event

__all__ = [
    "Address",
    "GroupId",
    "Action",
    "SendUnicast",
    "SendMulticast",
    "Deliver",
    "Notify",
    "JoinGroup",
    "LeaveGroup",
]

# An address is any hashable token the transport understands.
Address = Hashable
# Multicast group identifier (group address string in both harnesses).
GroupId = str


class Action(metaclass=ABCMeta):
    """Marker base class for all protocol actions.

    The concrete action types are ``NamedTuple`` subclasses (see module
    docstring), so they register here as virtual subclasses:
    ``isinstance(x, Action)`` keeps working.
    """

    __slots__ = ()


def _value_type(cls):
    """Register an action NamedTuple and give it type-strict equality.

    Plain tuple equality would make ``JoinGroup("g") == LeaveGroup("g")``
    true; actions of different types must never compare equal.  The hash
    stays the raw tuple hash (equal values ⇒ equal hashes still holds).
    """

    def __eq__(self, other, _cls=cls, _teq=tuple.__eq__):
        return type(other) is _cls and _teq(self, other) is True

    def __ne__(self, other):
        return not self.__eq__(other)

    cls.__eq__ = __eq__
    cls.__ne__ = __ne__
    cls.__hash__ = tuple.__hash__
    Action.register(cls)
    return cls


@_value_type
class SendUnicast(NamedTuple):
    """Transmit ``packet`` point-to-point to ``dest``."""

    dest: Address
    packet: "Packet"


@_value_type
class SendMulticast(NamedTuple):
    """Transmit ``packet`` to multicast ``group``.

    ``ttl`` limits propagation scope: the simulator interprets it as a
    hop count (1 = stay within the site LAN), matching the paper's use
    of the IP TTL field to keep secondary-logger re-multicasts local
    (§2.2.1).  ``None`` means unrestricted (group-wide).
    """

    group: GroupId
    packet: "Packet"
    ttl: int | None = None


@_value_type
class Deliver(NamedTuple):
    """Hand application payload up the stack.

    ``recovered`` is True when the payload arrived via a retransmission
    rather than the original multicast — applications with freshness
    semantics may treat recovered data differently (e.g. skip superseded
    updates).
    """

    seq: int
    payload: bytes
    recovered: bool = False


@_value_type
class Notify(NamedTuple):
    """Surface a protocol event (loss detected, epoch change, …)."""

    event: "Event"


@_value_type
class JoinGroup(NamedTuple):
    """Subscribe the local endpoint to multicast ``group``."""

    group: GroupId


@_value_type
class LeaveGroup(NamedTuple):
    """Unsubscribe the local endpoint from multicast ``group``."""

    group: GroupId


def sends(actions: list[Action]) -> list[Action]:
    """Filter ``actions`` down to transmissions (unicast or multicast).

    Convenience for tests and harnesses that only route traffic.
    """
    return [a for a in actions if isinstance(a, (SendUnicast, SendMulticast))]


def deliveries(actions: list[Action]) -> list[Deliver]:
    """Filter ``actions`` down to application deliveries."""
    return [a for a in actions if isinstance(a, Deliver)]


def notifications(actions: list[Action]) -> list[Notify]:
    """Filter ``actions`` down to protocol event notifications."""
    return [a for a in actions if isinstance(a, Notify)]
