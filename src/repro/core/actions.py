"""Actions emitted by sans-IO protocol machines.

Every protocol machine in :mod:`repro.core` is I/O-free: it consumes
packets and clock readings and returns a list of :class:`Action`
objects describing what the surrounding harness should do.  Two
harnesses exist — the deterministic discrete-event simulator
(:mod:`repro.simnet`) and the real asyncio UDP runtime
(:mod:`repro.aio`) — and both interpret the same action vocabulary.

Addresses are deliberately opaque: the simulator uses node-name strings
while the asyncio runtime uses ``(host, port)`` tuples.  Machines never
inspect addresses beyond equality and hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.packets import Packet
    from repro.core.events import Event

__all__ = [
    "Address",
    "GroupId",
    "Action",
    "SendUnicast",
    "SendMulticast",
    "Deliver",
    "Notify",
    "JoinGroup",
    "LeaveGroup",
]

# An address is any hashable token the transport understands.
Address = Hashable
# Multicast group identifier (group address string in both harnesses).
GroupId = str


class Action:
    """Marker base class for all protocol actions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class SendUnicast(Action):
    """Transmit ``packet`` point-to-point to ``dest``."""

    dest: Address
    packet: "Packet"


@dataclass(frozen=True, slots=True)
class SendMulticast(Action):
    """Transmit ``packet`` to multicast ``group``.

    ``ttl`` limits propagation scope: the simulator interprets it as a
    hop count (1 = stay within the site LAN), matching the paper's use
    of the IP TTL field to keep secondary-logger re-multicasts local
    (§2.2.1).  ``None`` means unrestricted (group-wide).
    """

    group: GroupId
    packet: "Packet"
    ttl: int | None = None


@dataclass(frozen=True, slots=True)
class Deliver(Action):
    """Hand application payload up the stack.

    ``recovered`` is True when the payload arrived via a retransmission
    rather than the original multicast — applications with freshness
    semantics may treat recovered data differently (e.g. skip superseded
    updates).
    """

    seq: int
    payload: bytes
    recovered: bool = False


@dataclass(frozen=True, slots=True)
class Notify(Action):
    """Surface a protocol event (loss detected, epoch change, …)."""

    event: "Event"


@dataclass(frozen=True, slots=True)
class JoinGroup(Action):
    """Subscribe the local endpoint to multicast ``group``."""

    group: GroupId


@dataclass(frozen=True, slots=True)
class LeaveGroup(Action):
    """Unsubscribe the local endpoint from multicast ``group``."""

    group: GroupId


def sends(actions: list[Action]) -> list[Action]:
    """Filter ``actions`` down to transmissions (unicast or multicast).

    Convenience for tests and harnesses that only route traffic.
    """
    return [a for a in actions if isinstance(a, (SendUnicast, SendMulticast))]


def deliveries(actions: list[Action]) -> list[Deliver]:
    """Filter ``actions`` down to application deliveries."""
    return [a for a in actions if isinstance(a, Deliver)]


def notifications(actions: list[Action]) -> list[Notify]:
    """Filter ``actions`` down to protocol event notifications."""
    return [a for a in actions if isinstance(a, Notify)]
