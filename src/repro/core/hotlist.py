"""Faulty-acker detection (§2.3.3).

"Due to software or hardware faults, a logger might disrupt the system
by, for example, responding to every Acker Selection Packet.  The source
can easily track these faults by keeping a histogram or a timed
'hot-list' of recently-active Designated Ackers.  Once a faulty logger
has been identified, its future ACKs can be ignored."

:class:`AckerHotlist` keeps, per logger, a sliding window of recent
epochs recording whether the logger volunteered and at what selection
probability.  A logger whose observed volunteer rate is wildly above the
offered probabilities (beyond a configurable z-score on the binomial
expectation) is quarantined.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.core.actions import Address

__all__ = ["AckerHotlist"]


@dataclass
class _History:
    """Per-logger sliding window of (p_ack offered, responded?) pairs."""

    window: deque = field(default_factory=lambda: deque(maxlen=32))

    def record(self, p_ack: float, responded: bool) -> None:
        self.window.append((p_ack, responded))

    @property
    def responses(self) -> int:
        return sum(1 for _, r in self.window if r)

    @property
    def expected(self) -> float:
        return sum(p for p, _ in self.window)

    @property
    def variance(self) -> float:
        return sum(p * (1.0 - p) for p, _ in self.window)


class AckerHotlist:
    """Tracks volunteer behaviour and quarantines statistical outliers.

    A logger is flagged once it has volunteered at least ``min_responses``
    times *and* its response count exceeds the binomial expectation by
    more than ``z_threshold`` standard deviations.  With the default
    window of 32 epochs and p_ack = 0.02, a correct logger volunteers
    ~0.6 times while an always-acker hits 32 — a 10-20σ excursion — so a
    6σ bar detects cheats within a dozen epochs while an honest logger's
    false-positive odds stay negligible even across hundreds of
    overlapping windows (each window's tail beyond 6σ is ~1e-6).
    """

    def __init__(self, z_threshold: float = 6.0, min_responses: int = 6) -> None:
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        if min_responses < 1:
            raise ValueError(f"min_responses must be >= 1, got {min_responses}")
        self._z = z_threshold
        self._min_responses = min_responses
        self._history: dict[Address, _History] = {}
        self._quarantined: set[Address] = set()

    @property
    def quarantined(self) -> frozenset[Address]:
        """Loggers whose ACKs the source currently ignores."""
        return frozenset(self._quarantined)

    def is_quarantined(self, logger: Address) -> bool:
        return logger in self._quarantined

    def record_epoch(self, p_ack: float, responders: set[Address], known: set[Address]) -> list[Address]:
        """Fold in one epoch's outcome.

        ``responders`` volunteered for this epoch; ``known`` is every
        logger the source has ever heard from (each non-responder in it
        counts as a declined offer).  Returns the loggers *newly*
        quarantined by this epoch.
        """
        newly_flagged: list[Address] = []
        for logger in known | responders:
            history = self._history.setdefault(logger, _History())
            history.record(p_ack, logger in responders)
            if logger in self._quarantined:
                continue
            if self._is_outlier(history):
                self._quarantined.add(logger)
                newly_flagged.append(logger)
        return newly_flagged

    def forgive(self, logger: Address) -> None:
        """Release ``logger`` from quarantine and clear its history
        (operator intervention after a repair)."""
        self._quarantined.discard(logger)
        self._history.pop(logger, None)

    def _is_outlier(self, history: _History) -> bool:
        responses = history.responses
        if responses < self._min_responses:
            return False
        expected = history.expected
        variance = history.variance
        if variance <= 0.0:
            # Offers at p=0 or p=1 carry no randomness; any excess
            # response over the deterministic expectation is a fault.
            return responses > expected
        z = (responses - expected) / math.sqrt(variance)
        return z > self._z
