"""Faulty-acker detection (§2.3.3).

"Due to software or hardware faults, a logger might disrupt the system
by, for example, responding to every Acker Selection Packet.  The source
can easily track these faults by keeping a histogram or a timed
'hot-list' of recently-active Designated Ackers.  Once a faulty logger
has been identified, its future ACKs can be ignored."

:class:`AckerHotlist` keeps, per logger, a sliding window of recent
epochs recording whether the logger volunteered and at what selection
probability.  A logger whose observed volunteer rate is wildly above the
offered probabilities (beyond a configurable z-score on the binomial
expectation) is quarantined.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.core.actions import Address

__all__ = ["AckerHotlist"]


@dataclass
class _History:
    """Per-logger sliding window of (p_ack offered, responded?) pairs."""

    window: deque = field(default_factory=lambda: deque(maxlen=32))

    def record(self, p_ack: float, responded: bool) -> None:
        self.window.append((p_ack, responded))

    @property
    def responses(self) -> int:
        return sum(1 for _, r in self.window if r)

    @property
    def expected(self) -> float:
        return sum(p for p, _ in self.window)


class AckerHotlist:
    """Tracks volunteer behaviour and quarantines statistical outliers.

    A logger is flagged once it has volunteered at least ``min_responses``
    times *and* the upper-tail probability of its response count under
    the offered probabilities is below the ``z_threshold``-sigma
    equivalent.  The tail is evaluated with a Chernoff bound on the
    Poisson-binomial distribution of the window,

        ln P(X >= k)  <=  -lam + k * (1 + ln(lam / k)),   lam = sum(p_i)

    flagged when that bound drops under ``-z_threshold**2 / 2`` (the
    exponent a z-sigma normal excursion would have).  A plain z-score on
    the normal approximation looks equivalent but is wrong exactly where
    this detector lives: with a window of 32 epochs at p_ack = 0.03 the
    expectation is ~1 response, and the Poisson tail at "6σ" (7
    responses) is ~1e-4, not 1e-9 — honest loggers would be quarantined
    within a few hundred epochs.  The exact-exponent bound keeps the
    false-positive odds genuinely negligible across hundreds of
    overlapping windows while an always-acker at p_ack = 0.05 (~2σ of
    suspicion per epoch) is still caught in about nine epochs.
    """

    def __init__(self, z_threshold: float = 6.0, min_responses: int = 6) -> None:
        if z_threshold <= 0:
            raise ValueError(f"z_threshold must be positive, got {z_threshold}")
        if min_responses < 1:
            raise ValueError(f"min_responses must be >= 1, got {min_responses}")
        self._z = z_threshold
        self._min_responses = min_responses
        self._history: dict[Address, _History] = {}
        self._quarantined: set[Address] = set()

    @property
    def quarantined(self) -> frozenset[Address]:
        """Loggers whose ACKs the source currently ignores."""
        return frozenset(self._quarantined)

    def is_quarantined(self, logger: Address) -> bool:
        return logger in self._quarantined

    def record_epoch(self, p_ack: float, responders: set[Address], known: set[Address]) -> list[Address]:
        """Fold in one epoch's outcome.

        ``responders`` volunteered for this epoch; ``known`` is every
        logger the source has ever heard from (each non-responder in it
        counts as a declined offer).  Returns the loggers *newly*
        quarantined by this epoch.
        """
        newly_flagged: list[Address] = []
        for logger in known | responders:
            history = self._history.setdefault(logger, _History())
            history.record(p_ack, logger in responders)
            if logger in self._quarantined:
                continue
            if self._is_outlier(history):
                self._quarantined.add(logger)
                newly_flagged.append(logger)
        return newly_flagged

    def forgive(self, logger: Address) -> None:
        """Release ``logger`` from quarantine and clear its history
        (operator intervention after a repair)."""
        self._quarantined.discard(logger)
        self._history.pop(logger, None)

    def _is_outlier(self, history: _History) -> bool:
        responses = history.responses
        if responses < self._min_responses:
            return False
        expected = history.expected
        if responses <= expected:
            return False
        if expected <= 0.0:
            # Every offer was at p=0: any response at all is a fault.
            return True
        log_tail = -expected + responses * (1.0 + math.log(expected / responses))
        return log_tail < -0.5 * self._z * self._z
