"""The §7 retransmission-channel extension.

"A separate multicast channel could be used for retransmissions.  The
sender would retransmit every packet on the retransmission channel n
times, using an exponential backoff scheme similar to that used for
heartbeat packets.  A client would recover a lost transmission by
subscribing to the retransmission channel, rather than requesting the
packet.  Logging servers would provide retransmissions of packets that
were no longer being transmitted on the retransmission channel."

:class:`RetransChannelSender` is embedded in
:class:`~repro.core.sender.LbrmSender` (like the statack engine): after
every data packet it multicasts ``copies`` RETRANS duplicates on the
companion group at exponentially backed-off offsets.  A receiver in
channel mode (``ReceiverConfig.retrans_channel_fallback > 0``) reacts to
a detected gap by *joining* that group instead of NACKing, falling back
to the logging hierarchy only for packets that have aged off the
channel.

The paper notes "fast multicast group subscription would be required" —
the simulator's joins are instantaneous and the asyncio runtime's are a
socket option away, so the extension is exercised in its intended
regime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import Action, SendMulticast
from repro.core.errors import ConfigError
from repro.core.machine import TimerSet
from repro.core.packets import RetransPacket

__all__ = ["RetransChannelConfig", "retrans_group", "RetransChannelSender"]


def retrans_group(group: str) -> str:
    """The companion retransmission group for a data group."""
    return f"{group}/retrans"


@dataclass(frozen=True)
class RetransChannelConfig:
    """Shape of the retransmission schedule.

    Copy i (1-based) of a packet goes out ``initial_delay * backoff**(i-1)``
    after the previous one, mirroring the heartbeat backoff.  With the
    defaults a packet lives ``0.25+0.5+1+2 = 3.75 s`` on the channel.
    """

    copies: int = 4
    initial_delay: float = 0.25
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ConfigError(f"copies must be >= 1, got {self.copies}")
        if self.initial_delay <= 0:
            raise ConfigError(f"initial_delay must be positive, got {self.initial_delay}")
        if self.backoff < 1.0:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")

    @property
    def lifetime(self) -> float:
        """Time from original transmission to the last channel copy."""
        total = 0.0
        delay = self.initial_delay
        for _ in range(self.copies):
            total += delay
            delay *= self.backoff
        return total


class RetransChannelSender:
    """Source-side scheduler of channel copies."""

    def __init__(self, group: str, config: RetransChannelConfig | None = None) -> None:
        self._group = group
        self._channel = retrans_group(group)
        self._config = config or RetransChannelConfig()
        self.timers = TimerSet()
        # seq -> (payload, epoch, copies sent so far)
        self._pending: dict[int, tuple[bytes, int, int]] = {}
        self.stats = {"channel_copies_sent": 0}

    @property
    def channel(self) -> str:
        return self._channel

    @property
    def config(self) -> RetransChannelConfig:
        return self._config

    def on_data_sent(self, seq: int, payload: bytes, epoch: int, now: float) -> None:
        """Register a freshly multicast packet for channel rebroadcast."""
        self._pending[seq] = (payload, epoch, 0)
        self.timers.set(("copy", seq), now + self._config.initial_delay)

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] != "copy":
                continue
            seq = key[1]
            entry = self._pending.get(seq)
            if entry is None:
                continue
            payload, epoch, sent = entry
            sent += 1
            self.stats["channel_copies_sent"] += 1
            actions.append(
                SendMulticast(
                    group=self._channel,
                    packet=RetransPacket(group=self._group, seq=seq, payload=payload, epoch=epoch),
                )
            )
            if sent >= self._config.copies:
                del self._pending[seq]
            else:
                self._pending[seq] = (payload, epoch, sent)
                next_delay = self._config.initial_delay * self._config.backoff**sent
                self.timers.set(("copy", seq), now + next_delay)
        return actions

    def next_wakeup(self) -> float | None:
        return self.timers.next_deadline()
