"""Statistical acknowledgement — the source-side engine (§2.3).

The multicast transmission is divided into *epochs*.  Before each epoch
the source picks ``k`` desired ACKs, computes ``p_ack = k / N_sl`` and
multicasts an Acker Selection Packet; secondary loggers volunteer with
probability ``p_ack`` and become the epoch's **Designated Ackers**.  The
source then knows exactly how many ACKs to expect per data packet; a
shortfall at the ``t_wait`` deadline triggers the retransmission policy
(§2.3.2), and the observed ACK count refines the group-size estimate
(§2.3.3).

:class:`StatAckSource` is a sans-IO component embedded in
:class:`~repro.core.sender.LbrmSender`: the sender forwards relevant
packets and wakeups here, and fulfils the returned
:class:`RetransmitOrder` records (it owns the payload buffer).

Lifecycle::

    BOOTSTRAP --(group size converged)--> SELECTING --(window closed)--> ACTIVE
                                              ^                             |
                                              +--(epoch_length packets)-----+
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro import obs
from repro.core.actions import Action, Address, Notify, SendMulticast
from repro.core.config import StatAckConfig
from repro.core.errors import StaleEpochError
from repro.core.estimator import GroupSizeEstimator, TWaitEstimator
from repro.core.events import EpochStarted, FaultyAckerDetected
from repro.core.hotlist import AckerHotlist
from repro.core.machine import TimerSet
from repro.core.packets import (
    AckerResponsePacket,
    AckerSelectPacket,
    DataAckPacket,
    ProbePacket,
    ProbeReplyPacket,
)
from repro.core.retransmit import RetransmitDecision, SourceRetransmitPolicy

__all__ = ["StatAckPhase", "RetransmitOrder", "StatAckSource"]


class StatAckPhase(Enum):
    """Where the engine is in its epoch lifecycle."""

    BOOTSTRAP = "bootstrap"  # Bolot probing for the initial N_sl estimate
    SELECTING = "selecting"  # Acker Selection Packet out, window open
    ACTIVE = "active"  # epoch running, data packets tracked


@dataclass(frozen=True, slots=True)
class RetransmitOrder:
    """Instruction to the sender produced at a packet's ACK deadline."""

    seq: int
    decision: RetransmitDecision
    missing_ackers: tuple[Address, ...]
    epoch: int


@dataclass
class _TrackedPacket:
    """ACK bookkeeping for one outstanding data packet."""

    seq: int
    epoch: int
    sent_at: float
    expected: frozenset[Address]
    acks: set[Address] = field(default_factory=set)
    last_ack_at: float | None = None
    decided: bool = False
    attempts: int = 1


class StatAckSource:
    """Epoch, acker, and deadline management for the multicast source."""

    MAX_REMULTICASTS = 3  # per-seq cap so a dead site cannot loop us forever

    def __init__(
        self,
        group: str,
        config: StatAckConfig | None = None,
        rng: random.Random | None = None,
        estimator: GroupSizeEstimator | None = None,
        hotlist: AckerHotlist | None = None,
    ) -> None:
        self._group = group
        self._config = config or StatAckConfig()
        # Deterministic default (str seeds hash stably): acker selection
        # is reproducible even when no RNG is threaded in.
        self._rng = rng or random.Random("repro.core.statack")
        self._policy = SourceRetransmitPolicy(self._config)
        self._estimator = estimator or GroupSizeEstimator(alpha=self._config.alpha)
        self._t_wait = TWaitEstimator(
            alpha=self._config.alpha,
            initial=self._config.initial_t_wait,
            max_widen=self._config.t_wait_max_widen,
        )
        self._hotlist = hotlist or AckerHotlist()
        # Optional §5 rate controller: fed one signal per tracked packet
        # (success on a complete ACK set, loss on a deadline shortfall).
        self.rate_controller = None
        self.timers = TimerSet()

        self._phase = StatAckPhase.BOOTSTRAP
        self._epoch = 0  # selection counter (may be one ahead during SELECTING)
        self._active_epoch = 0  # epoch whose Designated Ackers cover data now
        self._epoch_p_ack = 0.0
        self._designated: frozenset[Address] = frozenset()
        self._pending_responders: set[Address] = set()
        self._known_loggers: set[Address] = set()
        self._packets_this_epoch = 0
        self._tracked: dict[int, _TrackedPacket] = {}
        self._probe_replies: set[Address] = set()
        self._active_probe: int | None = None

        # Counters for the benchmark harness.
        registry = obs.registry()
        self._trace = registry.trace
        self._obs_t_wait = registry.gauge("statack.t_wait", group=group)
        self._obs_group_size = registry.gauge("statack.group_size", group=group)
        self.stats = obs.stat_counters(
            "statack",
            {
                "epochs": 0,
                "remulticasts": 0,
                "unicast_retransmits": 0,
                "acks_received": 0,
                "acks_ignored_quarantine": 0,
                "probes_sent": 0,
            },
            group=group,
        )

    # -- introspection ----------------------------------------------------

    @property
    def phase(self) -> StatAckPhase:
        return self._phase

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def current_epoch(self) -> int:
        """Epoch number the sender must stamp on outgoing data packets.

        During a concurrent re-selection this stays at the previous
        (still active) epoch until the new window closes (§2.3.1: "The
        source then switches to the new epoch for newly transmitted data
        packets" only after hearing from the new Designated Ackers).
        """
        return self._active_epoch

    @property
    def t_wait(self) -> float:
        return self._t_wait.t_wait

    @property
    def group_size_estimate(self) -> float:
        return self._estimator.estimate

    @property
    def designated_ackers(self) -> frozenset[Address]:
        return self._designated

    @property
    def hotlist(self) -> AckerHotlist:
        return self._hotlist

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        """Begin operation: Bolot probing, or selection if already seeded."""
        if self._estimator.converged:
            return self._begin_selection(now)
        return self._send_probe(now)

    def seed_group_size(self, n_sl: float) -> None:
        """Skip bootstrap probing with a statically configured group size."""
        self._estimator.seed(n_sl)

    # -- sender-facing hooks --------------------------------------------------

    def on_data_sent(self, seq: int, now: float) -> None:
        """Sender multicast data ``seq``; start its ACK collection window."""
        if self._phase is StatAckPhase.BOOTSTRAP:
            return  # no epoch yet: nothing to expect
        self._track(seq, now, attempts=1)
        self._packets_this_epoch += 1
        if (
            self._packets_this_epoch >= self._config.epoch_length
            and self._phase is StatAckPhase.ACTIVE
        ):
            # Next epoch's selection runs concurrently; the current epoch
            # keeps covering data until the new window closes (§2.3.1).
            self.timers.set(("new_epoch",), now)

    def on_remulticast_sent(self, seq: int, now: float, attempts: int) -> None:
        """Sender re-multicast ``seq``; track the repair's ACKs too (Fig 8).

        Karn's rule applies: a retransmitted packet's ACKs are ambiguous
        (they may answer the original), so re-tracked packets never feed
        the RTT estimator.  Instead, like TCP's timer backoff, each
        re-multicast widens t_wait multiplicatively — if the deadline was
        simply too short, this converges it above the true round-trip
        within a few packets, after which clean first-attempt samples
        take over.
        """
        if self._phase is StatAckPhase.BOOTSTRAP:
            return
        self._t_wait.widen(factor=1.5)
        self._sync_gauges()
        tracked = self._tracked.get(seq)
        if tracked is not None:
            tracked.attempts = attempts
            tracked.decided = False
            t_wait = self._t_wait.t_wait
            self.timers.set(("ack_deadline", seq), now + t_wait)
            self.timers.set(("rtt_cap", seq), now + 2.0 * t_wait)
        else:
            self._track(seq, now, attempts=attempts)

    def handle(self, packet, src: Address, now: float) -> list[Action]:
        """Process statack-relevant packets.  Returns protocol actions."""
        if isinstance(packet, AckerResponsePacket):
            return self._on_acker_response(packet, src, now)
        if isinstance(packet, DataAckPacket):
            return self._on_data_ack(packet, src, now)
        if isinstance(packet, ProbeReplyPacket):
            return self._on_probe_reply(packet, src, now)
        return []

    def poll(self, now: float) -> tuple[list[Action], list[RetransmitOrder]]:
        """Fire due deadlines; returns (actions, retransmission orders)."""
        actions: list[Action] = []
        orders: list[RetransmitOrder] = []
        for key in self.timers.pop_due(now):
            kind = key[0]
            if kind == "probe_window":
                actions.extend(self._close_probe_window(now))
            elif kind == "selection_window":
                actions.extend(self._close_selection_window(now))
            elif kind == "ack_deadline":
                order = self._on_ack_deadline(key[1], now)
                if order is not None:
                    orders.append(order)
            elif kind == "rtt_cap":
                self._on_rtt_cap(key[1], now)
            elif kind == "new_epoch":
                # Fires from epoch rollover (phase ACTIVE) or from an
                # empty-selection retry (phase SELECTING, window consumed);
                # never while a selection window is still open.
                if self._phase is not StatAckPhase.BOOTSTRAP and ("selection_window",) not in self.timers:
                    actions.extend(self._begin_selection(now))
        return actions, orders

    def next_wakeup(self) -> float | None:
        return self.timers.next_deadline()

    def _sync_gauges(self) -> None:
        """Publish the RTT and group-size estimator state (§2.3.3)."""
        self._obs_t_wait.set(self._t_wait.t_wait)
        self._obs_group_size.set(self._estimator.estimate)

    # -- bootstrap probing ----------------------------------------------------

    def _send_probe(self, now: float) -> list[Action]:
        round_ = self._estimator.next_round()
        if round_ is None:
            return self._begin_selection(now)
        self._active_probe = round_.probe_id
        self._probe_replies = set()
        self.stats["probes_sent"] += 1
        window = self._config.selection_wait_factor * self._t_wait.t_wait
        self.timers.set(("probe_window",), now + window)
        probe = ProbePacket(group=self._group, probe_id=round_.probe_id, p_ack=round_.p_ack)
        return [SendMulticast(group=self._group, packet=probe)]

    def _on_probe_reply(self, packet: ProbeReplyPacket, src: Address, now: float) -> list[Action]:
        if packet.probe_id == self._active_probe:
            self._probe_replies.add(src)
            self._known_loggers.add(src)
        return []

    def _close_probe_window(self, now: float) -> list[Action]:
        if self._active_probe is None:
            return []
        self._estimator.record_round(self._active_probe, len(self._probe_replies))
        self._active_probe = None
        if self._estimator.converged:
            return self._begin_selection(now)
        return self._send_probe(now)

    # -- epoch selection ----------------------------------------------------

    def _begin_selection(self, now: float) -> list[Action]:
        self._epoch += 1
        n_sl = max(self._estimator.estimate, 1.0)
        p_ack = min(1.0, self._config.k_ackers / n_sl)
        self._epoch_p_ack = p_ack
        self._pending_responders = set()
        self._phase = StatAckPhase.SELECTING
        window = self._config.selection_wait_factor * self._t_wait.t_wait
        self.timers.set(("selection_window",), now + window)
        select = AckerSelectPacket(group=self._group, epoch=self._epoch, p_ack=p_ack, k=self._config.k_ackers)
        return [SendMulticast(group=self._group, packet=select)]

    def _on_acker_response(self, packet: AckerResponsePacket, src: Address, now: float) -> list[Action]:
        self._known_loggers.add(src)
        if packet.epoch != self._epoch:
            return []  # late response to a superseded selection
        if self._phase is not StatAckPhase.SELECTING:
            return []  # "Future ACKs ... within this interval are not considered"
        self._pending_responders.add(src)
        return []

    def _close_selection_window(self, now: float) -> list[Action]:
        actions: list[Action] = []
        responders = set(self._pending_responders)
        if not responders:
            # Nobody answered within the window.  Either the group is
            # empty or t_wait is below the true round-trip (the window is
            # 2×t_wait): widen it and retry the selection, backing off
            # geometrically so a genuinely empty group stays cheap.
            self.stats["empty_selections"] = self.stats.get("empty_selections", 0) + 1
            self._t_wait.widen()
            self._phase = StatAckPhase.ACTIVE if self._active_epoch else StatAckPhase.SELECTING
            self.timers.set(("new_epoch",), now + self._config.selection_wait_factor * self._t_wait.t_wait)
            return actions
        flagged = self._hotlist.record_epoch(self._epoch_p_ack, responders, set(self._known_loggers))
        for logger in flagged:
            actions.append(Notify(FaultyAckerDetected(logger=logger, reason="volunteer rate outlier")))
        self._designated = frozenset(responders - self._hotlist.quarantined)
        self._active_epoch = self._epoch
        # The selection response doubles as a group-size probe (§2.3.3).
        if self._epoch_p_ack > 0:
            self._estimator.refine(len(responders), self._epoch_p_ack)
        self._phase = StatAckPhase.ACTIVE
        self._packets_this_epoch = 0
        self.stats["epochs"] += 1
        self._sync_gauges()
        self._trace.emit(
            now,
            "statack.epoch",
            epoch=self._epoch,
            p_ack=self._epoch_p_ack,
            ackers=len(self._designated),
        )
        actions.append(
            Notify(
                EpochStarted(
                    epoch=self._epoch,
                    p_ack=self._epoch_p_ack,
                    expected_ackers=len(self._designated),
                )
            )
        )
        return actions

    # -- per-packet ACK tracking ----------------------------------------------

    def _track(self, seq: int, now: float, attempts: int) -> None:
        if not self._designated:
            return  # nobody volunteered this epoch: nothing to expect
        self._tracked[seq] = _TrackedPacket(
            seq=seq,
            epoch=self._active_epoch,
            sent_at=now,
            expected=self._designated,
            attempts=attempts,
        )
        t_wait = self._t_wait.t_wait
        self.timers.set(("ack_deadline", seq), now + t_wait)
        self.timers.set(("rtt_cap", seq), now + 2.0 * t_wait)

    def _on_data_ack(self, packet: DataAckPacket, src: Address, now: float) -> list[Action]:
        if self._hotlist.is_quarantined(src):
            self.stats["acks_ignored_quarantine"] += 1
            return []
        tracked = self._tracked.get(packet.seq)
        if tracked is None or packet.epoch != tracked.epoch:
            return []
        if src not in tracked.expected:
            return []  # not a Designated Acker for this epoch
        self.stats["acks_received"] += 1
        tracked.acks.add(src)
        tracked.last_ack_at = now
        if tracked.acks >= tracked.expected and not tracked.decided:
            # Complete: sample RTT from the final ACK and stop the clock.
            # Karn: retransmitted packets give no RTT sample.
            tracked.decided = True
            if tracked.attempts == 1:
                self._t_wait.record_last_ack(now - tracked.sent_at)
            if self.rate_controller is not None:
                self.rate_controller.on_success()
            if self._epoch_p_ack > 0:
                # Every data packet's ACK count refines N_sl (§2.3.3).
                self._estimator.refine(len(tracked.acks), self._epoch_p_ack)
            self._sync_gauges()
            self.timers.cancel(("ack_deadline", packet.seq))
            self.timers.cancel(("rtt_cap", packet.seq))
            del self._tracked[packet.seq]
        return []

    def _on_ack_deadline(self, seq: int, now: float) -> RetransmitOrder | None:
        tracked = self._tracked.get(seq)
        if tracked is None or tracked.decided:
            return None
        tracked.decided = True
        k_prime = len(tracked.acks)
        expected = len(tracked.expected)
        if self._epoch_p_ack > 0 and expected > 0:
            self._estimator.refine(k_prime, self._epoch_p_ack)
        missing = expected - k_prime
        if self.rate_controller is not None:
            if missing > 0:
                self.rate_controller.on_loss()
            else:
                self.rate_controller.on_success()
        # The group is at least as large as the designated set itself; an
        # EWMA dip below `expected` (loss-biased samples) must not flip a
        # warranted multicast into per-acker unicasts.
        n_sl = max(self._estimator.estimate, float(expected))
        decision = self._policy.decide(missing, expected, n_sl)
        if decision is RetransmitDecision.MULTICAST and tracked.attempts > self.MAX_REMULTICASTS:
            decision = RetransmitDecision.NONE
        if decision is RetransmitDecision.MULTICAST:
            self.stats["remulticasts"] += 1
        elif decision is RetransmitDecision.UNICAST:
            self.stats["unicast_retransmits"] += 1
        missing_ackers = tuple(sorted(tracked.expected - tracked.acks, key=str))
        self._sync_gauges()
        self._trace.emit(
            now, "statack.deadline", seq=seq, missing=missing, decision=decision.value
        )
        if decision is RetransmitDecision.NONE:
            # Keep the entry until the rtt_cap timer for a late RTT sample.
            pass
        return RetransmitOrder(seq=seq, decision=decision, missing_ackers=missing_ackers, epoch=tracked.epoch)

    def _on_rtt_cap(self, seq: int, now: float) -> None:
        tracked = self._tracked.pop(seq, None)
        if tracked is None or tracked.attempts > 1:
            return  # Karn: no RTT sample from retransmitted packets
        # "rtt_new is ... the time at which the last ACK ... arrives, up to
        # time 2×t_wait": an incomplete packet contributes the cap, which
        # pushes t_wait up under loss — deliberately conservative.
        if tracked.last_ack_at is not None:
            self._t_wait.record_last_ack(tracked.last_ack_at - tracked.sent_at)
        else:
            self._t_wait.record_last_ack(now - tracked.sent_at)
        self._sync_gauges()
