"""Multi-group protocol processes.

§2.2.1, footnote 5: "When multicast sources are located at many sites,
as is the case in DIS, a single logging process may serve as the primary
logger for one group and as the secondary logger for another."

:class:`MultiGroupProcess` is a composite sans-IO machine hosting one
child machine per group and dispatching inbound packets by their
``group`` field.  It lets one OS process (one simulator node, one UDP
endpoint) be e.g. primary logger for the terrain groups it originates
and secondary logger for everything else its site subscribes to —
exactly the deployment shape DIS needs with thousands of fine-grained
groups.

Packets for groups without a registered machine are counted and dropped
(a logging process is not obliged to serve every group on its wire).
"""

from __future__ import annotations

from repro.core.actions import Action, Address
from repro.core.machine import ProtocolMachine
from repro.core.packets import Packet
from repro.core.retranschannel import retrans_group

__all__ = ["MultiGroupProcess"]


class MultiGroupProcess(ProtocolMachine):
    """A composite machine dispatching by multicast group."""

    def __init__(self) -> None:
        super().__init__()
        self._machines: dict[str, list[ProtocolMachine]] = {}
        self.stats = {"unknown_group_packets": 0}

    # -- composition ----------------------------------------------------

    def add(self, group: str, machine: ProtocolMachine) -> None:
        """Attach ``machine`` as (one of) the handler(s) for ``group``.

        Several machines may share a group (e.g. a receiver plus a
        discovery client); each sees every packet for it.
        """
        self._machines.setdefault(group, []).append(machine)

    def remove(self, group: str, machine: ProtocolMachine) -> None:
        machines = self._machines.get(group, [])
        if machine in machines:
            machines.remove(machine)
        if not machines:
            self._machines.pop(group, None)

    def machines_for(self, group: str) -> tuple[ProtocolMachine, ...]:
        return tuple(self._machines.get(group, ()))

    @property
    def groups(self) -> frozenset[str]:
        return frozenset(self._machines)

    def __len__(self) -> int:
        return sum(len(m) for m in self._machines.values())

    # -- the machine contract ---------------------------------------------

    def start(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for machines in self._machines.values():
            for machine in machines:
                start = getattr(machine, "start", None)
                if callable(start):
                    actions.extend(start(now))
        return actions

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        # A packet on a retransmission channel belongs to its data group's
        # machines (the packet's group field names the data group).
        machines = self._machines.get(packet.group)
        if machines is None:
            machines = self._machines.get(retrans_group(packet.group))
        if not machines:
            self.stats["unknown_group_packets"] += 1
            return []
        actions: list[Action] = []
        for machine in list(machines):
            actions.extend(machine.handle(packet, src, now))
        return actions

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for machines in self._machines.values():
            for machine in machines:
                actions.extend(machine.poll(now))
        return actions

    def next_wakeup(self) -> float | None:
        deadlines = [
            machine.next_wakeup()
            for machines in self._machines.values()
            for machine in machines
        ]
        live = [d for d in deadlines if d is not None]
        return min(live) if live else None
