"""Estimators for statistical acknowledgement (§2.3.2–§2.3.3).

Three estimators, all exponentially-weighted in the style the paper
attributes to Jacobson's TCP RTT estimator:

* :class:`TWaitEstimator` — the source's per-packet ACK-collection
  window: ``t'_wait = α·rtt_new + (1-α)·t_wait`` where ``rtt_new`` is
  the arrival time of the last ACK, capped at ``2·t_wait``.
* :class:`GroupSizeEstimator` — the Bolot/Turletti/Wakeman probing
  protocol that bootstraps ``N_sl`` plus the paper's per-packet EWMA
  refinement ``N' = (1-α)·N + α·k'/p_ack``.
* :func:`nsl_stddev` / :func:`nsl_stddev_after_probes` — the closed-form
  accuracy figures of Table 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import ConfigError

__all__ = [
    "EwmaEstimator",
    "TWaitEstimator",
    "ProbeRound",
    "GroupSizeEstimator",
    "nsl_stddev",
    "nsl_stddev_after_probes",
]


class EwmaEstimator:
    """Generic exponentially-weighted moving average.

    ``estimate' = (1 - alpha) * estimate + alpha * sample``
    """

    def __init__(self, alpha: float, initial: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._estimate = initial
        self._samples = 0

    @property
    def estimate(self) -> float:
        return self._estimate

    @property
    def samples(self) -> int:
        """How many samples have been folded in."""
        return self._samples

    def update(self, sample: float) -> float:
        """Fold in ``sample`` and return the new estimate."""
        self._estimate = (1.0 - self._alpha) * self._estimate + self._alpha * sample
        self._samples += 1
        return self._estimate

    def reset(self, value: float, *, samples: int = 0) -> None:
        """Hard-set the estimate (e.g. epoch restart with prior knowledge).

        ``samples`` lets the caller record how much evidence the new
        value represents (0 = a guess, 1 = one real measurement).
        """
        self._estimate = value
        self._samples = samples


#: Floor on the EWMA base: a zero-RTT first sample must never collapse
#: the window to 0 — the 2×t_wait cap would then pin every future
#: sample, and hence t_wait itself, at 0 forever.
_MIN_BASE = 1e-6


class TWaitEstimator:
    """The source's ACK-collection window estimator (§2.3.2).

    ``rtt_new`` is "the time at which the last ACK to a data packet
    arrives, up to time 2×t_wait" — the cap lets the source eventually
    assert that an ACK was genuinely lost rather than merely slow.

    Loss-episode widening is kept separate from the EWMA base: ``widen``
    grows a multiplicative *boost* on top of the RTT estimate (bounded
    by ``max_widen``), and every clean RTT sample halves the boost's
    excess — so ``t_wait`` recovers once a loss episode ends instead of
    staying inflated forever.

    Two hardening rules (property-tested):

    * The **first** measured RTT replaces the configured seed outright
      and resets the boost — EWMA-blending would keep a bad seed's bias
      for ~1/α samples, and any pre-measurement ``widen`` loop was a
      search device (no ACK could have arrived yet), not loss evidence.
    * While a widening episode decays, the decay never undercuts fresh
      evidence: after a sample is folded in, ``t_wait`` still covers
      the (capped) arrival time just observed, else the next collection
      round would be a guaranteed miss and the episode would re-widen
      in oscillation.  The ``max_widen`` safety bound takes precedence,
      and steady state (boost already 1) keeps the pure paper EWMA.
    """

    def __init__(
        self, alpha: float = 0.125, initial: float = 0.1, max_widen: float = 16.0
    ) -> None:
        if initial <= 0:
            raise ConfigError(f"initial t_wait must be positive, got {initial}")
        if max_widen < 1.0:
            raise ConfigError(f"max_widen must be >= 1, got {max_widen}")
        self._ewma = EwmaEstimator(alpha=alpha, initial=initial)
        self._max_widen = max_widen
        self._boost = 1.0

    @property
    def t_wait(self) -> float:
        return self._ewma.estimate * self._boost

    @property
    def base(self) -> float:
        """The EWMA RTT estimate alone, with no loss-episode boost."""
        return self._ewma.estimate

    @property
    def boost(self) -> float:
        """Current loss-episode multiplier on the EWMA base (>= 1)."""
        return self._boost

    @property
    def cap(self) -> float:
        """The 2×t_wait bound on an RTT sample."""
        return 2.0 * self.t_wait

    def record_last_ack(self, rtt_new: float) -> float:
        """Fold in the arrival time (relative to send) of a packet's last ACK."""
        if rtt_new < 0:
            raise ValueError(f"rtt sample must be non-negative, got {rtt_new}")
        capped = min(rtt_new, self.cap)
        if self._ewma.samples == 0:
            # Bootstrap: the first real measurement replaces the guess
            # and ends any blind pre-measurement widening episode.
            self._ewma.reset(max(capped, _MIN_BASE), samples=1)
            self._boost = 1.0
            return self.t_wait
        self._ewma.update(capped)
        # A fresh sample is evidence the loss episode has (at least
        # partly) passed: decay the widening toward 1 geometrically —
        # but the decay may not undercut the evidence just folded in
        # (an ACK observed at `capped` needs a window of at least that,
        # or the next collection round is a guaranteed miss and the
        # episode re-widens in oscillation).  Steady state (no boost)
        # is untouched: pure paper EWMA.
        decaying = self._boost > 1.0
        self._boost = 1.0 + (self._boost - 1.0) * 0.5
        if self._boost < 1.0 + 1e-9:
            self._boost = 1.0
        if decaying and self._ewma.estimate * self._boost < capped:
            self._boost = min(capped / self._ewma.estimate, self._max_widen)
        return self.t_wait

    def widen(self, factor: float = 2.0) -> float:
        """Multiplicatively inflate t_wait, bounded by ``max_widen``.

        Recovery path for a seed far below the true round-trip: when an
        Acker Selection window closes with zero responders, no ACKs can
        ever arrive to correct the estimate, so the source widens the
        window directly before retrying the selection.  The boost never
        exceeds ``max_widen`` × the EWMA base, so a persistent outage
        cannot grow ``t_wait`` without bound.
        """
        if factor <= 1.0:
            raise ValueError(f"widen factor must be > 1, got {factor}")
        self._boost = min(self._boost * factor, self._max_widen)
        return self.t_wait


@dataclass(frozen=True, slots=True)
class ProbeRound:
    """One Bolot probing round the estimator wants performed."""

    probe_id: int
    p_ack: float


class GroupSizeEstimator:
    """Estimates the number of active secondary loggers, ``N_sl``.

    Bootstrap (§2.3.3, after Bolot et al.): rounds of probes with
    increasing ``p_ack`` "to avoid causing an ACK implosion on the
    sender"; probing stops once a round yields at least
    ``confident_replies`` answers.  As the paper's "modest extension",
    the final probability is then repeated ``extra_probes`` more times
    and the estimates averaged, shrinking σ by 1/√n (Table 2).

    Steady state: every Acker Selection Packet doubles as a probe, and
    each data packet's observed ACK count ``k'`` refines the estimate via
    ``N' = (1-α)N + α·k'/p_ack``.
    """

    def __init__(
        self,
        alpha: float = 0.125,
        initial_p: float = 0.01,
        ramp: float = 4.0,
        confident_replies: int = 10,
        extra_probes: int = 2,
    ) -> None:
        if not 0.0 < initial_p <= 1.0:
            raise ConfigError(f"initial_p must be in (0, 1], got {initial_p}")
        if ramp <= 1.0:
            raise ConfigError(f"ramp must be > 1, got {ramp}")
        if confident_replies < 1:
            raise ConfigError("confident_replies must be >= 1")
        if extra_probes < 0:
            raise ConfigError("extra_probes must be >= 0")
        self._alpha = alpha
        self._p = initial_p
        self._ramp = ramp
        self._confident = confident_replies
        self._extra = extra_probes
        self._next_probe_id = 1
        self._converged = False
        self._repeat_estimates: list[float] = []
        self._repeats_left = 0
        self._estimate: float | None = None

    @property
    def converged(self) -> bool:
        """True once the bootstrap phase has produced an estimate."""
        return self._converged

    @property
    def estimate(self) -> float:
        """Current N_sl estimate (1.0 until any evidence arrives)."""
        return self._estimate if self._estimate is not None else 1.0

    def next_round(self) -> ProbeRound | None:
        """The next probe the source should multicast, or None when done."""
        if self._converged:
            return None
        probe = ProbeRound(probe_id=self._next_probe_id, p_ack=self._p)
        return probe

    def record_round(self, probe_id: int, replies: int) -> None:
        """Fold in the reply count of the probe round ``probe_id``.

        Stale probe ids (from rounds already superseded) are ignored so
        late replies cannot corrupt the ramp.
        """
        if self._converged or probe_id != self._next_probe_id:
            return
        self._next_probe_id += 1
        if self._repeats_left > 0:
            # Repeating the final probability to average down the variance.
            self._repeat_estimates.append(replies / self._p)
            self._repeats_left -= 1
            if self._repeats_left == 0:
                self._finish_bootstrap()
            return
        if replies >= self._confident:
            self._repeat_estimates = [replies / self._p]
            self._repeats_left = self._extra
            if self._repeats_left == 0:
                self._finish_bootstrap()
            return
        # Not confident yet: raise the probability and try again.
        if self._p >= 1.0:
            # Everyone was asked to reply; the group simply is this small.
            self._estimate = float(max(replies, 1))
            self._converged = True
            return
        self._p = min(1.0, self._p * self._ramp)

    def refine(self, k_prime: int, p_ack: float) -> float:
        """Steady-state EWMA refinement from a data packet's ACK count."""
        if not 0.0 < p_ack <= 1.0:
            raise ValueError(f"p_ack must be in (0, 1], got {p_ack}")
        sample = k_prime / p_ack
        if self._estimate is None:
            self._estimate = max(sample, 1.0)
        else:
            self._estimate = (1.0 - self._alpha) * self._estimate + self._alpha * sample
            self._estimate = max(self._estimate, 1.0)
        return self._estimate

    def seed(self, n_sl: float) -> None:
        """Skip bootstrap with prior knowledge (static configuration)."""
        self._estimate = max(n_sl, 1.0)
        self._converged = True

    def _finish_bootstrap(self) -> None:
        mean = sum(self._repeat_estimates) / len(self._repeat_estimates)
        self._estimate = max(mean, 1.0)
        self._converged = True


def nsl_stddev(n: float, p_ack: float) -> float:
    """σ of a single-probe N_sl estimate: √(N(1-p)/p)  (Table 2, row 1).

    With each of N loggers replying independently with probability p, the
    reply count is Binomial(N, p); the estimator replies/p then has
    variance N(1-p)/p.
    """
    if not 0.0 < p_ack <= 1.0:
        raise ValueError(f"p_ack must be in (0, 1], got {p_ack}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return math.sqrt(n * (1.0 - p_ack) / p_ack)


def nsl_stddev_after_probes(n: float, p_ack: float, probes: int) -> float:
    """σ after averaging ``probes`` independent probes: σ₁/√probes (Table 2)."""
    if probes < 1:
        raise ValueError(f"probes must be >= 1, got {probes}")
    return nsl_stddev(n, p_ack) / math.sqrt(probes)
