"""Protocol parameter bundles for LBRM components.

Every tunable named in the paper is represented here with its paper
default:

* ``h_min = 0.25`` s, ``h_max = 32`` s, ``backoff = 2`` — the variable
  heartbeat parameters used for Figures 4 and 5 and Table 1.
* ``max_idle_time`` (MaxIT) — the source's freshness guarantee (§2).
* ``k_ackers`` — desired positive ACKs per packet; the paper suggests
  5–20 (§2.3.1).
* ``ack_alpha = 1/8`` — the EWMA gain for both the group-size estimator
  and the ``t_wait`` round-trip estimator (§2.3.2–2.3.3).

Configs are frozen dataclasses: validated once in ``__post_init__`` and
safe to share between protocol machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError

__all__ = [
    "HeartbeatConfig",
    "ReceiverConfig",
    "LoggerConfig",
    "StatAckConfig",
    "ReplicationConfig",
    "DiscoveryConfig",
    "HierarchyConfig",
    "LbrmConfig",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class HeartbeatConfig:
    """Variable-heartbeat parameters (§2.1).

    ``h_min`` is the interval from a data packet to the first heartbeat;
    each subsequent heartbeat interval is multiplied by ``backoff`` until
    it reaches ``h_max``.  Setting ``backoff = 1.0`` degenerates into the
    paper's *fixed heartbeat* comparison scheme with period ``h_min``.
    """

    h_min: float = 0.25
    h_max: float = 32.0
    backoff: float = 2.0
    # §7 extension: "For small packets, it might be cost-effective to
    # retransmit the original packet instead of an empty heartbeat
    # packet.  This would reduce retransmission requests."  When > 0,
    # heartbeat slots re-send the last data packet whenever its payload
    # is at most this many bytes, so a lost final packet repairs itself
    # with no NACK at all.
    repeat_payload_max: int = 0

    def __post_init__(self) -> None:
        _require(self.h_min > 0, f"h_min must be positive, got {self.h_min}")
        _require(self.h_max >= self.h_min, f"h_max ({self.h_max}) must be >= h_min ({self.h_min})")
        _require(self.backoff >= 1.0, f"backoff must be >= 1, got {self.backoff}")
        _require(self.repeat_payload_max >= 0, "repeat_payload_max must be >= 0")

    @property
    def is_fixed(self) -> bool:
        """True when this config degenerates to a fixed-rate heartbeat."""
        return self.backoff == 1.0 or self.h_min == self.h_max


@dataclass(frozen=True)
class ReceiverConfig:
    """Receiver-side loss detection and recovery parameters.

    ``max_idle_time`` (MaxIT) is the longest silence the receiver accepts
    before declaring its state stale (§2).  ``nack_delay`` is the short
    timer from Appendix A that lets out-of-order packets arrive before a
    retransmission request is issued; the LBRM receiver proper uses 0
    (request immediately from the local logger, §6).  ``nack_retry``
    bounds how long a receiver waits for a retransmission before
    re-requesting, and ``max_nack_retries`` caps retries to one logger
    before escalating to the next logger up the hierarchy.
    """

    max_idle_time: float = 0.25
    nack_delay: float = 0.0
    nack_retry: float = 0.5
    max_nack_retries: int = 3
    watchdog_slack: float = 2.0
    # §7 extension: when > 0, a receiver reacts to a gap by joining the
    # companion retransmission channel and only falls back to NACKing its
    # logger after this many seconds (set it to the channel lifetime).
    retrans_channel_fallback: float = 0.0

    def __post_init__(self) -> None:
        _require(self.max_idle_time > 0, "max_idle_time must be positive")
        _require(self.nack_delay >= 0, "nack_delay must be non-negative")
        _require(self.nack_retry > 0, "nack_retry must be positive")
        _require(self.max_nack_retries >= 0, "max_nack_retries must be >= 0")
        _require(self.watchdog_slack >= 1.0, "watchdog_slack must be >= 1")
        _require(self.retrans_channel_fallback >= 0, "retrans_channel_fallback must be >= 0")


@dataclass(frozen=True)
class LoggerConfig:
    """Log-server behaviour (§2.2).

    ``max_packets``/``max_bytes`` bound the in-memory log (0 = unbounded);
    ``packet_lifetime`` expires entries whose useful life has passed
    (0 = keep forever).  ``remulticast_threshold`` is the number of
    distinct local NACKs for one sequence number that makes a secondary
    logger re-multicast the repair with site-local TTL instead of
    unicasting it (§2.2.1).  ``upstream_retry`` re-asks the parent logger
    if a forwarded request is not answered.
    """

    max_packets: int = 0
    max_bytes: int = 0
    packet_lifetime: float = 0.0
    remulticast_threshold: int = 3
    site_ttl: int = 1
    upstream_retry: float = 0.5
    max_upstream_retries: int = 5

    def __post_init__(self) -> None:
        _require(self.max_packets >= 0, "max_packets must be >= 0")
        _require(self.max_bytes >= 0, "max_bytes must be >= 0")
        _require(self.packet_lifetime >= 0, "packet_lifetime must be >= 0")
        _require(self.remulticast_threshold >= 1, "remulticast_threshold must be >= 1")
        _require(self.site_ttl >= 1, "site_ttl must be >= 1")
        _require(self.upstream_retry > 0, "upstream_retry must be positive")
        _require(self.max_upstream_retries >= 0, "max_upstream_retries must be >= 0")


@dataclass(frozen=True)
class StatAckConfig:
    """Statistical acknowledgement parameters (§2.3).

    ``k_ackers`` is the desired number of Designated Ackers per epoch
    (paper: 5–20).  ``alpha`` is the EWMA gain used by both the
    ``t_wait`` estimator and the group-size refinement.  ``epoch_length``
    is how many data packets an epoch covers before a new Acker Selection
    Packet is sent.  ``sites_per_acker_multicast`` is the re-multicast
    trigger: when one missing ACK statistically represents at least this
    many sites, the source re-multicasts immediately (§2.3.2).
    ``initial_t_wait`` seeds the RTT estimator before any ACKs arrive,
    and ``selection_wait_factor`` scales how long the source waits for
    ACKER_RESPONSEs after a selection packet (in multiples of t_wait).
    ``t_wait_max_widen`` caps loss-episode widening of ``t_wait`` at
    this multiple of the EWMA RTT estimate (fresh samples decay the
    widening back toward 1).
    """

    k_ackers: int = 10
    alpha: float = 0.125
    epoch_length: int = 64
    sites_per_acker_multicast: float = 2.0
    initial_t_wait: float = 0.1
    selection_wait_factor: float = 2.0
    initial_group_size: float = 1.0
    t_wait_max_widen: float = 16.0

    def __post_init__(self) -> None:
        _require(self.k_ackers >= 1, "k_ackers must be >= 1")
        _require(0.0 < self.alpha <= 1.0, "alpha must be in (0, 1]")
        _require(self.epoch_length >= 1, "epoch_length must be >= 1")
        _require(self.sites_per_acker_multicast >= 1.0, "sites_per_acker_multicast must be >= 1")
        _require(self.initial_t_wait > 0, "initial_t_wait must be positive")
        _require(self.selection_wait_factor >= 1.0, "selection_wait_factor must be >= 1")
        _require(self.initial_group_size >= 1.0, "initial_group_size must be >= 1")
        _require(self.t_wait_max_widen >= 1.0, "t_wait_max_widen must be >= 1")


@dataclass(frozen=True)
class ReplicationConfig:
    """Primary-log replication (§2.2.3).

    The primary pushes every logged packet to each replica and tracks a
    *replicated logger sequence number*: the highest sequence known to be
    held by at least ``min_replicas_acked`` replicas.  ``update_retry``
    drives retransmission of unacknowledged replica updates.
    """

    min_replicas_acked: int = 1
    update_retry: float = 0.25
    max_update_retries: int = 10
    primary_timeout: float = 2.0
    failover_wait: float = 0.5

    def __post_init__(self) -> None:
        _require(self.min_replicas_acked >= 1, "min_replicas_acked must be >= 1")
        _require(self.update_retry > 0, "update_retry must be positive")
        _require(self.max_update_retries >= 0, "max_update_retries must be >= 0")
        _require(self.primary_timeout > 0, "primary_timeout must be positive")
        _require(self.failover_wait > 0, "failover_wait must be positive")


@dataclass(frozen=True)
class DiscoveryConfig:
    """Expanding-ring scoped-multicast logger discovery (§2.2.1).

    The receiver multicasts DISCOVERY_QUERY with TTL ``initial_ttl``,
    doubling up to ``max_ttl``, waiting ``query_timeout`` per ring.  If
    nothing answers at ``max_ttl`` the caller may fall back to a
    statically configured logger address.

    On lossy transports a single silent window does not prove a ring
    empty: ``ring_retries`` re-queries the same TTL that many extra
    times before expanding, and ``timeout_backoff`` multiplies the wait
    on each successive query (retry or expansion) so a congested network
    gets progressively more room to answer.  The defaults (0 retries,
    no backoff) preserve the ideal-network behaviour the simulator's
    deterministic tests assume; real-UDP deployments pass hardened
    values.
    """

    initial_ttl: int = 1
    max_ttl: int = 32
    query_timeout: float = 0.2
    ring_retries: int = 0
    timeout_backoff: float = 1.0
    max_query_timeout: float = 5.0

    def __post_init__(self) -> None:
        _require(self.initial_ttl >= 1, "initial_ttl must be >= 1")
        _require(self.max_ttl >= self.initial_ttl, "max_ttl must be >= initial_ttl")
        _require(self.query_timeout > 0, "query_timeout must be positive")
        _require(self.ring_retries >= 0, "ring_retries must be >= 0")
        _require(self.timeout_backoff >= 1.0, "timeout_backoff must be >= 1")
        _require(
            self.max_query_timeout >= self.query_timeout,
            "max_query_timeout must be >= query_timeout",
        )


@dataclass(frozen=True)
class HierarchyConfig:
    """k-level repair-tree maintenance (DESIGN §11).

    ``rescore_interval`` is the tree re-scoring cadence — one pass per
    heartbeat epoch (the paper's ``h_min``) by default, so tree shape
    reacts on the same timescale as liveness detection.
    ``saturation_outstanding`` is the outstanding-upstream-repair queue
    depth at which an interior logger is treated as saturated and its
    children become eligible for re-parenting.  ``serve_cost`` is the
    per-child serialization term of the makespan objective (seconds a
    parent spends per child's repair batch before the next child's can
    start).  ``hysteresis`` is the stickiness factor: a child only moves
    for cost reasons when the alternative beats the incumbent by this
    multiple.  ``link_alpha``/``link_max_widen`` parameterize the
    per-link repair-RTT estimator (same EWMA family as §2.3.2).
    """

    rescore_interval: float = 0.25
    saturation_outstanding: int = 8
    serve_cost: float = 0.0005
    hysteresis: float = 1.5
    link_alpha: float = 0.125
    link_max_widen: float = 16.0

    def __post_init__(self) -> None:
        _require(self.rescore_interval > 0, "rescore_interval must be positive")
        _require(self.saturation_outstanding >= 1, "saturation_outstanding must be >= 1")
        _require(self.serve_cost >= 0, "serve_cost must be >= 0")
        _require(self.hysteresis >= 1.0, "hysteresis must be >= 1")
        _require(0.0 < self.link_alpha <= 1.0, "link_alpha must be in (0, 1]")
        _require(self.link_max_widen >= 1.0, "link_max_widen must be >= 1")


@dataclass(frozen=True)
class LbrmConfig:
    """Aggregate configuration for a full LBRM deployment."""

    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    receiver: ReceiverConfig = field(default_factory=ReceiverConfig)
    logger: LoggerConfig = field(default_factory=LoggerConfig)
    statack: StatAckConfig = field(default_factory=StatAckConfig)
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    discovery: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    @classmethod
    def paper_defaults(cls) -> "LbrmConfig":
        """The parameter set used throughout the paper's evaluation."""
        return cls()
