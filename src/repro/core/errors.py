"""Exception hierarchy for the LBRM protocol stack.

All errors raised by :mod:`repro.core` derive from :class:`LbrmError` so
applications can catch protocol failures with a single ``except`` clause
while still distinguishing configuration mistakes from wire-level
corruption or log-store misses.
"""

from __future__ import annotations

__all__ = [
    "LbrmError",
    "ConfigError",
    "DecodeError",
    "EncodeError",
    "LogMissError",
    "LogOverflowError",
    "StaleEpochError",
    "NotPrimaryError",
    "ReplicationError",
]


class LbrmError(Exception):
    """Base class for all LBRM protocol errors."""


class ConfigError(LbrmError):
    """A protocol parameter is out of its legal range.

    Raised eagerly at construction time (e.g. ``h_min <= 0`` or
    ``backoff < 1``) so misconfiguration never reaches the wire.
    """


class DecodeError(LbrmError):
    """A received datagram could not be parsed as an LBRM packet.

    Carries the offending ``data`` so transports can log or count it.
    """

    def __init__(self, message: str, data: bytes = b"") -> None:
        super().__init__(message)
        self.data = data


class EncodeError(LbrmError):
    """A packet could not be serialized (e.g. oversized payload)."""


class LogMissError(LbrmError):
    """A requested sequence number is not (or no longer) in the log."""

    def __init__(self, seq: int) -> None:
        super().__init__(f"sequence {seq} not in log")
        self.seq = seq


class LogOverflowError(LbrmError):
    """The log store refused an append because a hard cap was reached."""


class StaleEpochError(LbrmError):
    """A statistical-acknowledgement message referenced an old epoch."""

    def __init__(self, got: int, current: int) -> None:
        super().__init__(f"epoch {got} is stale (current epoch is {current})")
        self.got = got
        self.current = current


class NotPrimaryError(LbrmError):
    """A primary-only operation was invoked on a non-primary logger."""


class ReplicationError(LbrmError):
    """The replication subsystem hit an unrecoverable inconsistency."""
