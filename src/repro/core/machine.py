"""Sans-IO protocol machine base class and timer bookkeeping.

A :class:`ProtocolMachine` never touches a socket or an event loop.  The
harness (simulator or asyncio runtime) owns time and I/O and drives the
machine through exactly three entry points:

* :meth:`ProtocolMachine.handle` — a packet arrived,
* :meth:`ProtocolMachine.poll` — the clock reached a requested wakeup,
* :meth:`ProtocolMachine.next_wakeup` — when the machine next needs the
  clock.

The contract: after *any* call to ``handle``/``poll`` the harness must
re-read ``next_wakeup()`` and reschedule.  Machines must be tolerant of
early or late polls (``poll`` at any time is legal and idempotent when
nothing is due).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Address
from repro.core.packets import Packet

__all__ = ["ProtocolMachine", "TimerSet"]

# Shared nothing-due result for TimerSet.pop_due (callers only iterate).
_NO_KEYS: tuple = ()


class TimerSet:
    """Named one-shot deadlines for a protocol machine.

    Keys are arbitrary hashables (e.g. ``("nack", seq)``).  Setting a key
    replaces its previous deadline; ``pop_due`` returns and clears every
    expired timer in deadline order, which makes machine ``poll`` methods
    a simple loop over fired keys.
    """

    def __init__(self) -> None:
        self._deadlines: dict[Hashable, float] = {}
        # Cached earliest deadline; None means "recompute on next read".
        # next_deadline() runs after every packet on every machine, so it
        # cannot afford a min() over the dict each time.
        self._min: float | None = None

    def set(self, key: Hashable, deadline: float) -> None:
        """Arm (or re-arm) the timer ``key`` to fire at ``deadline``."""
        old = self._deadlines.get(key)
        self._deadlines[key] = deadline
        cached = self._min
        if cached is not None:
            if deadline <= cached:
                self._min = deadline
            elif old == cached:
                self._min = None  # may have re-armed the earliest timer later

    def cancel(self, key: Hashable) -> None:
        """Disarm ``key``; no-op if not armed."""
        removed = self._deadlines.pop(key, None)
        if removed is not None and removed == self._min:
            self._min = None

    def cancel_prefix(self, prefix: tuple) -> None:
        """Disarm every tuple-key starting with ``prefix``."""
        doomed = [k for k in self._deadlines if isinstance(k, tuple) and k[: len(prefix)] == prefix]
        for key in doomed:
            del self._deadlines[key]
        if doomed:
            self._min = None

    def deadline(self, key: Hashable) -> float | None:
        """Deadline for ``key``, or None if not armed."""
        return self._deadlines.get(key)

    def pop_due(self, now: float) -> list[Hashable]:
        """Remove and return all timers with deadline <= ``now``, soonest first.

        The nothing-due result is a shared empty sequence: every caller
        only iterates it, and the poll path hits this case once per
        packet across the fleet.
        """
        deadlines = self._deadlines
        if not deadlines:
            return _NO_KEYS
        # Polls fire for *some* machine's deadline, not necessarily this
        # one's; the cached minimum answers "nothing due" without a scan.
        cached = self._min
        if cached is not None and cached > now:
            return _NO_KEYS
        due = sorted(
            (k for k, t in deadlines.items() if t <= now),
            key=deadlines.__getitem__,
        )
        for key in due:
            del deadlines[key]
        if due:
            self._min = None
        return due

    def next_deadline(self) -> float | None:
        """Earliest armed deadline, or None when no timers are armed."""
        if not self._deadlines:
            return None
        cached = self._min
        if cached is None:
            cached = self._min = min(self._deadlines.values())
        return cached

    def __len__(self) -> int:
        return len(self._deadlines)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._deadlines


class ProtocolMachine:
    """Base class for every sans-IO protocol endpoint."""

    def __init__(self) -> None:
        self.timers = TimerSet()

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        """Process an inbound ``packet`` from ``src`` at time ``now``."""
        raise NotImplementedError

    def poll(self, now: float) -> list[Action]:
        """Run any work whose deadline has passed.  Safe to call anytime."""
        raise NotImplementedError

    def next_wakeup(self) -> float | None:
        """Absolute time of the next deadline, or None if idle."""
        return self.timers.next_deadline()
