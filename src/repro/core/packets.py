"""LBRM wire format.

Every protocol message is a frozen dataclass with a compact binary
encoding.  The common header is::

    0      2      3      4        5
    +------+------+------+--------+----------+------------------
    | 'LB' | ver  | type | grplen | group... | type-specific body
    +------+------+------+--------+----------+------------------

All integers are network byte order.  Sequence numbers are unsigned
64-bit and monotonically increasing per flow — at one packet per
millisecond that is ~584 million years before wrap, so no serial-number
arithmetic is needed (documented trade-off versus 32-bit + RFC 1982).

The simulator passes packet objects by reference (encode/decode is
exercised by tests and the asyncio transport), so a deployment and a
simulation run the exact same message vocabulary.

New packet types (e.g. the SRM baseline's messages) register themselves
with :func:`register_packet`, which keeps :func:`decode` a single entry
point for every transport.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields
from enum import IntEnum
from typing import Callable, ClassVar, Type, TypeVar

from repro import obs
from repro.core.errors import DecodeError, EncodeError

__all__ = [
    "PacketType",
    "Packet",
    "DataPacket",
    "HeartbeatPacket",
    "NackPacket",
    "RetransPacket",
    "LogAckPacket",
    "AckerSelectPacket",
    "AckerResponsePacket",
    "DataAckPacket",
    "ProbePacket",
    "ProbeReplyPacket",
    "DiscoveryQueryPacket",
    "DiscoveryReplyPacket",
    "ReplUpdatePacket",
    "ReplAckPacket",
    "PrimaryQueryPacket",
    "PrimaryInfoPacket",
    "PromotePacket",
    "ReplStatusQueryPacket",
    "encode",
    "decode",
    "encode_uncached",
    "decode_uncached",
    "register_packet",
    "codec_cache_stats",
    "clear_codec_caches",
    "set_codec_caches",
]

_MAGIC = b"LB"
_VERSION = 1
_HEADER = struct.Struct("!2sBB")
_MAX_PAYLOAD = 0xFFFF
_MAX_STR = 0xFF


class PacketType(IntEnum):
    """Discriminator byte in the common header.

    Values 0–31 are reserved for the LBRM core; 32+ for extensions
    (baselines, applications).
    """

    DATA = 1
    HEARTBEAT = 2
    NACK = 3
    RETRANS = 4
    LOG_ACK = 5
    ACKER_SELECT = 6
    ACKER_RESPONSE = 7
    DATA_ACK = 8
    PROBE = 9
    PROBE_REPLY = 10
    DISCOVERY_QUERY = 11
    DISCOVERY_REPLY = 12
    REPL_UPDATE = 13
    REPL_ACK = 14
    PRIMARY_QUERY = 15
    PRIMARY_INFO = 16
    PROMOTE = 17
    REPL_STATUS_QUERY = 18
    # Extension range (registered by other modules).
    SRM_SESSION = 32
    SRM_REQUEST = 33
    SRM_REPAIR = 34
    POSACK_DATA = 40
    POSACK_ACK = 41


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > _MAX_STR:
        raise EncodeError(f"string too long for wire ({len(raw)} > {_MAX_STR})")
    return bytes([len(raw)]) + raw


def _unpack_str(buf: memoryview, offset: int) -> tuple[str, int]:
    if offset >= len(buf):
        raise DecodeError("truncated string length")
    length = buf[offset]
    end = offset + 1 + length
    if end > len(buf):
        raise DecodeError("truncated string body")
    return bytes(buf[offset + 1 : end]).decode("utf-8"), end


def _pack_bytes(value: bytes) -> bytes:
    if len(value) > _MAX_PAYLOAD:
        raise EncodeError(f"payload too large ({len(value)} > {_MAX_PAYLOAD})")
    return struct.pack("!H", len(value)) + value


def _unpack_bytes(buf: memoryview, offset: int) -> tuple[bytes, int]:
    if offset + 2 > len(buf):
        raise DecodeError("truncated payload length")
    (length,) = struct.unpack_from("!H", buf, offset)
    end = offset + 2 + length
    if end > len(buf):
        raise DecodeError("truncated payload body")
    return bytes(buf[offset + 2 : end]), end


@dataclass(frozen=True, slots=True)
class Packet:
    """Base class: every LBRM message belongs to a multicast group."""

    group: str

    TYPE: ClassVar[PacketType]

    def encode_body(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "Packet":
        raise NotImplementedError


_REGISTRY: dict[int, Type[Packet]] = {}

P = TypeVar("P", bound=Type[Packet])


def register_packet(cls: P) -> P:
    """Class decorator adding ``cls`` to the wire-format registry."""
    ptype = int(cls.TYPE)
    existing = _REGISTRY.get(ptype)
    if existing is not None and existing is not cls:
        raise EncodeError(f"packet type {ptype} already registered to {existing.__name__}")
    _REGISTRY[ptype] = cls
    return cls


@register_packet
@dataclass(frozen=True, slots=True)
class DataPacket(Packet):
    """Original application data multicast by the source (§2).

    ``epoch`` ties the packet to the statistical-acknowledgement epoch so
    Designated Ackers know whether they must acknowledge it (§2.3.1).
    """

    seq: int
    payload: bytes
    epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.DATA

    def encode_body(self) -> bytes:
        return struct.pack("!QI", self.seq, self.epoch) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DataPacket":
        if len(buf) < 12:
            raise DecodeError("truncated DATA body")
        seq, epoch = struct.unpack_from("!QI", buf, 0)
        payload, _ = _unpack_bytes(buf, 12)
        return cls(group=group, seq=seq, payload=payload, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class HeartbeatPacket(Packet):
    """Keep-alive repeating the last data sequence number (§2).

    ``hb_index`` counts heartbeats since that data packet (Appendix A's
    ``TRANS:17.12:HEARTBEAT`` is sequence 17, index 12) and lets
    receivers de-duplicate and reason about the backoff schedule.
    """

    seq: int
    hb_index: int
    epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.HEARTBEAT

    def encode_body(self) -> bytes:
        return struct.pack("!QII", self.seq, self.hb_index, self.epoch)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "HeartbeatPacket":
        if len(buf) < 16:
            raise DecodeError("truncated HEARTBEAT body")
        seq, hb_index, epoch = struct.unpack_from("!QII", buf, 0)
        return cls(group=group, seq=seq, hb_index=hb_index, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class NackPacket(Packet):
    """Retransmission request listing missing sequence numbers.

    Sent by a receiver to its secondary logger, or by a secondary logger
    upstream to the primary (§2.2.1).  Bounded to 64 sequence numbers per
    packet; longer loss runs are requested in batches.
    """

    seqs: tuple[int, ...]

    TYPE: ClassVar[PacketType] = PacketType.NACK
    MAX_SEQS: ClassVar[int] = 64

    def encode_body(self) -> bytes:
        if not self.seqs:
            raise EncodeError("NACK must request at least one sequence")
        if len(self.seqs) > self.MAX_SEQS:
            raise EncodeError(f"NACK limited to {self.MAX_SEQS} sequences")
        return struct.pack("!H", len(self.seqs)) + struct.pack(f"!{len(self.seqs)}Q", *self.seqs)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "NackPacket":
        if len(buf) < 2:
            raise DecodeError("truncated NACK body")
        (count,) = struct.unpack_from("!H", buf, 0)
        if count == 0 or count > cls.MAX_SEQS:
            raise DecodeError(f"bad NACK count {count}")
        if len(buf) < 2 + 8 * count:
            raise DecodeError("truncated NACK sequence list")
        seqs = struct.unpack_from(f"!{count}Q", buf, 2)
        return cls(group=group, seqs=tuple(seqs))


@register_packet
@dataclass(frozen=True, slots=True)
class RetransPacket(Packet):
    """Retransmission of a logged data packet.

    Distinct from :class:`DataPacket` so receivers can account recovery
    traffic separately (the paper's RETRANS vs TRANS tags, Appendix A).
    """

    seq: int
    payload: bytes
    epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.RETRANS

    def encode_body(self) -> bytes:
        return struct.pack("!QI", self.seq, self.epoch) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "RetransPacket":
        if len(buf) < 12:
            raise DecodeError("truncated RETRANS body")
        seq, epoch = struct.unpack_from("!QI", buf, 0)
        payload, _ = _unpack_bytes(buf, 12)
        return cls(group=group, seq=seq, payload=payload, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class LogAckPacket(Packet):
    """Primary logger → source acknowledgement (§2.2.3).

    Carries both the primary logger sequence number (source may release
    its application buffer and keep processing) and the replicated
    logger sequence number (source may discard data only up to here).
    """

    primary_seq: int
    replica_seq: int

    TYPE: ClassVar[PacketType] = PacketType.LOG_ACK

    def encode_body(self) -> bytes:
        return struct.pack("!QQ", self.primary_seq, self.replica_seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "LogAckPacket":
        if len(buf) < 16:
            raise DecodeError("truncated LOG_ACK body")
        primary_seq, replica_seq = struct.unpack_from("!QQ", buf, 0)
        return cls(group=group, primary_seq=primary_seq, replica_seq=replica_seq)


@register_packet
@dataclass(frozen=True, slots=True)
class AckerSelectPacket(Packet):
    """Acker Selection Packet starting a new epoch (§2.3.1).

    Each secondary logger answers with probability ``p_ack``; responders
    become the epoch's Designated Ackers.
    """

    epoch: int
    p_ack: float
    k: int

    TYPE: ClassVar[PacketType] = PacketType.ACKER_SELECT

    def encode_body(self) -> bytes:
        return struct.pack("!IdI", self.epoch, self.p_ack, self.k)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "AckerSelectPacket":
        if len(buf) < 16:
            raise DecodeError("truncated ACKER_SELECT body")
        epoch, p_ack, k = struct.unpack_from("!IdI", buf, 0)
        return cls(group=group, epoch=epoch, p_ack=p_ack, k=k)


@register_packet
@dataclass(frozen=True, slots=True)
class AckerResponsePacket(Packet):
    """A secondary logger volunteering as Designated Acker for ``epoch``."""

    epoch: int

    TYPE: ClassVar[PacketType] = PacketType.ACKER_RESPONSE

    def encode_body(self) -> bytes:
        return struct.pack("!I", self.epoch)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "AckerResponsePacket":
        if len(buf) < 4:
            raise DecodeError("truncated ACKER_RESPONSE body")
        (epoch,) = struct.unpack_from("!I", buf, 0)
        return cls(group=group, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class DataAckPacket(Packet):
    """Designated Acker → source per-data-packet acknowledgement."""

    epoch: int
    seq: int

    TYPE: ClassVar[PacketType] = PacketType.DATA_ACK

    def encode_body(self) -> bytes:
        return struct.pack("!IQ", self.epoch, self.seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DataAckPacket":
        if len(buf) < 12:
            raise DecodeError("truncated DATA_ACK body")
        epoch, seq = struct.unpack_from("!IQ", buf, 0)
        return cls(group=group, epoch=epoch, seq=seq)


@register_packet
@dataclass(frozen=True, slots=True)
class ProbePacket(Packet):
    """Bolot-style group-size probe (§2.3.3): answer with prob ``p_ack``."""

    probe_id: int
    p_ack: float

    TYPE: ClassVar[PacketType] = PacketType.PROBE

    def encode_body(self) -> bytes:
        return struct.pack("!Id", self.probe_id, self.p_ack)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ProbePacket":
        if len(buf) < 12:
            raise DecodeError("truncated PROBE body")
        probe_id, p_ack = struct.unpack_from("!Id", buf, 0)
        return cls(group=group, probe_id=probe_id, p_ack=p_ack)


@register_packet
@dataclass(frozen=True, slots=True)
class ProbeReplyPacket(Packet):
    """Probabilistic reply to a :class:`ProbePacket`."""

    probe_id: int

    TYPE: ClassVar[PacketType] = PacketType.PROBE_REPLY

    def encode_body(self) -> bytes:
        return struct.pack("!I", self.probe_id)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ProbeReplyPacket":
        if len(buf) < 4:
            raise DecodeError("truncated PROBE_REPLY body")
        (probe_id,) = struct.unpack_from("!I", buf, 0)
        return cls(group=group, probe_id=probe_id)


@register_packet
@dataclass(frozen=True, slots=True)
class DiscoveryQueryPacket(Packet):
    """Expanding-ring scoped-multicast query for a nearby logger (§2.2.1)."""

    ttl: int

    TYPE: ClassVar[PacketType] = PacketType.DISCOVERY_QUERY

    def encode_body(self) -> bytes:
        return struct.pack("!H", self.ttl)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DiscoveryQueryPacket":
        if len(buf) < 2:
            raise DecodeError("truncated DISCOVERY_QUERY body")
        (ttl,) = struct.unpack_from("!H", buf, 0)
        return cls(group=group, ttl=ttl)


@register_packet
@dataclass(frozen=True, slots=True)
class DiscoveryReplyPacket(Packet):
    """A logger answering discovery: its address token and hierarchy level
    (0 = primary, 1 = site secondary, …)."""

    logger_addr: str
    level: int

    TYPE: ClassVar[PacketType] = PacketType.DISCOVERY_REPLY

    def encode_body(self) -> bytes:
        return struct.pack("!H", self.level) + _pack_str(self.logger_addr)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DiscoveryReplyPacket":
        if len(buf) < 2:
            raise DecodeError("truncated DISCOVERY_REPLY body")
        (level,) = struct.unpack_from("!H", buf, 0)
        logger_addr, _ = _unpack_str(buf, 2)
        return cls(group=group, logger_addr=logger_addr, level=level)


@register_packet
@dataclass(frozen=True, slots=True)
class ReplUpdatePacket(Packet):
    """Primary → replica log-entry push (§2.2.3).

    Also reused source → promoted-replica during failover to hand over
    buffered packets the failed primary never replicated.
    """

    seq: int
    payload: bytes

    TYPE: ClassVar[PacketType] = PacketType.REPL_UPDATE

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.seq) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ReplUpdatePacket":
        if len(buf) < 8:
            raise DecodeError("truncated REPL_UPDATE body")
        (seq,) = struct.unpack_from("!Q", buf, 0)
        payload, _ = _unpack_bytes(buf, 8)
        return cls(group=group, seq=seq, payload=payload)


@register_packet
@dataclass(frozen=True, slots=True)
class ReplAckPacket(Packet):
    """Replica → primary cumulative acknowledgement.

    ``cum_seq`` is the highest sequence such that the replica holds every
    packet ≤ ``cum_seq``; 2**64-1 is reserved as "nothing yet" sentinel
    (encoded) but exposed as ``cum_seq is None`` in the replication API.
    """

    cum_seq: int

    TYPE: ClassVar[PacketType] = PacketType.REPL_ACK

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.cum_seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ReplAckPacket":
        if len(buf) < 8:
            raise DecodeError("truncated REPL_ACK body")
        (cum_seq,) = struct.unpack_from("!Q", buf, 0)
        return cls(group=group, cum_seq=cum_seq)


@register_packet
@dataclass(frozen=True, slots=True)
class PrimaryQueryPacket(Packet):
    """Receiver/secondary → source: "who is the primary logger now?"

    Sent when the cached primary address stops responding (§2.2.3).
    """

    TYPE: ClassVar[PacketType] = PacketType.PRIMARY_QUERY

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PrimaryQueryPacket":
        return cls(group=group)


@register_packet
@dataclass(frozen=True, slots=True)
class PrimaryInfoPacket(Packet):
    """Source → asker: current primary logger address token."""

    primary_addr: str

    TYPE: ClassVar[PacketType] = PacketType.PRIMARY_INFO

    def encode_body(self) -> bytes:
        return _pack_str(self.primary_addr)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PrimaryInfoPacket":
        primary_addr, _ = _unpack_str(buf, 0)
        return cls(group=group, primary_addr=primary_addr)


@register_packet
@dataclass(frozen=True, slots=True)
class PromotePacket(Packet):
    """Source → replica: become the primary; serve from ``from_seq``."""

    from_seq: int

    TYPE: ClassVar[PacketType] = PacketType.PROMOTE

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.from_seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PromotePacket":
        if len(buf) < 8:
            raise DecodeError("truncated PROMOTE body")
        (from_seq,) = struct.unpack_from("!Q", buf, 0)
        return cls(group=group, from_seq=from_seq)


@register_packet
@dataclass(frozen=True, slots=True)
class ReplStatusQueryPacket(Packet):
    """Source → replica during failover: "report your cumulative log seq".

    The replica answers with a :class:`ReplAckPacket`; the source then
    promotes the most up-to-date replica (§2.2.3).
    """

    TYPE: ClassVar[PacketType] = PacketType.REPL_STATUS_QUERY

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ReplStatusQueryPacket":
        return cls(group=group)


def encode_uncached(packet: Packet) -> bytes:
    """Serialize ``packet`` to its wire representation (no memoization)."""
    header = _HEADER.pack(_MAGIC, _VERSION, int(packet.TYPE))
    return header + _pack_str(packet.group) + packet.encode_body()


def decode_uncached(data: bytes) -> Packet:
    """Parse a datagram back into a packet object (no memoization).

    Raises :class:`~repro.core.errors.DecodeError` on any malformed
    input; transports should count and drop such datagrams rather than
    crash (errors should never pass silently, but a multicast socket is
    a public place).
    """
    if len(data) < _HEADER.size:
        raise DecodeError("datagram shorter than header", data)
    magic, version, ptype = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise DecodeError(f"bad magic {magic!r}", data)
    if version != _VERSION:
        raise DecodeError(f"unsupported version {version}", data)
    cls = _REGISTRY.get(ptype)
    if cls is None:
        raise DecodeError(f"unknown packet type {ptype}", data)
    view = memoryview(data)
    group, offset = _unpack_str(view, _HEADER.size)
    return cls.decode_body(group, view[offset:])


class _CodecCache:
    """Bounded FIFO memo for one codec direction, with obs accounting.

    Safe because packets are frozen (hashable, immutable) dataclasses
    and wire strings are ``bytes``: a memoized result can never drift
    from what the uncached path would produce.  Hit/miss counts mirror
    into ``packets.<name>_cache{result=...}`` whenever a recording
    registry is installed; counters re-resolve when the installed
    registry changes (one identity check per call).
    """

    __slots__ = ("name", "max_entries", "entries", "hits", "misses", "enabled",
                 "_reg", "_mirror", "_hit_ctr", "_miss_ctr")

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        self.name = name
        self.max_entries = max_entries
        self.entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.enabled = True
        self._reg = None
        self._mirror = False  # skip no-op counter calls off-recording
        self._hit_ctr = None
        self._miss_ctr = None

    def _resolve(self) -> None:
        reg = obs.registry()
        self._reg = reg
        self._mirror = reg.enabled
        self._hit_ctr = reg.counter(f"packets.{self.name}_cache", result="hit")
        self._miss_ctr = reg.counter(f"packets.{self.name}_cache", result="miss")

    def hit(self) -> None:
        self.hits += 1
        if obs.registry() is not self._reg:
            self._resolve()
        if self._mirror:
            self._hit_ctr.inc()

    def miss(self, key, value) -> None:
        self.misses += 1
        if obs.registry() is not self._reg:
            self._resolve()
        if self._mirror:
            self._miss_ctr.inc()
        entries = self.entries
        if len(entries) >= self.max_entries:
            del entries[next(iter(entries))]
        entries[key] = value

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0


_ENCODE_CACHE = _CodecCache("encode")
_DECODE_CACHE = _CodecCache("decode")


def encode(packet: Packet) -> bytes:
    """Serialize ``packet``, memoized per (frozen) packet value.

    A multicast transmission encodes its packet once no matter the
    fan-out, and the asyncio UDP path re-sends identical heartbeats and
    retransmissions for free.
    """
    cache = _ENCODE_CACHE
    if not cache.enabled:
        return encode_uncached(packet)
    wire = cache.entries.get(packet)
    if wire is not None:
        # hit() inlined: this is the hottest line in a multicast send.
        cache.hits += 1
        if obs.registry() is not cache._reg:
            cache._resolve()
        if cache._mirror:
            cache._hit_ctr.inc()
        return wire
    wire = encode_uncached(packet)
    cache.miss(packet, wire)
    return wire


def decode(data: bytes) -> Packet:
    """Parse a datagram into a packet object, memoized per wire string.

    Identical datagrams (retransmission floods, repeated heartbeats)
    decode once and return the shared frozen packet instance.  Malformed
    input raises :class:`~repro.core.errors.DecodeError` and is never
    cached.
    """
    cache = _DECODE_CACHE
    if not cache.enabled:
        return decode_uncached(data)
    packet = cache.entries.get(data)
    if packet is not None:
        cache.hits += 1
        if obs.registry() is not cache._reg:
            cache._resolve()
        if cache._mirror:
            cache._hit_ctr.inc()
        return packet
    packet = decode_uncached(data)
    cache.miss(bytes(data), packet)
    return packet


def codec_cache_stats() -> dict:
    """Hit/miss/size accounting for both codec memos (for tests/benchmarks)."""
    return {
        "encode": {
            "hits": _ENCODE_CACHE.hits,
            "misses": _ENCODE_CACHE.misses,
            "size": len(_ENCODE_CACHE.entries),
            "enabled": _ENCODE_CACHE.enabled,
        },
        "decode": {
            "hits": _DECODE_CACHE.hits,
            "misses": _DECODE_CACHE.misses,
            "size": len(_DECODE_CACHE.entries),
            "enabled": _DECODE_CACHE.enabled,
        },
    }


def clear_codec_caches() -> None:
    """Drop all memoized encodings/decodings and zero the counters."""
    _ENCODE_CACHE.clear()
    _DECODE_CACHE.clear()


def set_codec_caches(encode: bool | None = None, decode: bool | None = None) -> None:
    """Enable/disable the codec memos (the benchmark harness's baseline
    mode turns them off to measure the pre-memoization path)."""
    if encode is not None:
        _ENCODE_CACHE.enabled = encode
        if not encode:
            _ENCODE_CACHE.clear()
    if decode is not None:
        _DECODE_CACHE.enabled = decode
        if not decode:
            _DECODE_CACHE.clear()
