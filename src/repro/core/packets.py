"""LBRM wire format.

Every protocol message is a frozen dataclass with a compact binary
encoding.  The common header is::

    0      2      3      4        5
    +------+------+------+--------+----------+------------------
    | 'LB' | ver  | type | grplen | group... | type-specific body
    +------+------+------+--------+----------+------------------

All integers are network byte order.  Sequence numbers are unsigned
64-bit and monotonically increasing per flow — at one packet per
millisecond that is ~584 million years before wrap, so no serial-number
arithmetic is needed (documented trade-off versus 32-bit + RFC 1982).

The simulator passes packet objects by reference (encode/decode is
exercised by tests and the asyncio transport), so a deployment and a
simulation run the exact same message vocabulary.

New packet types (e.g. the SRM baseline's messages) register themselves
with :func:`register_packet`, which keeps :func:`decode` a single entry
point for every transport.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, fields
from enum import IntEnum
from operator import attrgetter
from typing import Callable, ClassVar, Type, TypeVar

from repro import obs
from repro.core.errors import DecodeError, EncodeError

__all__ = [
    "PacketType",
    "Packet",
    "DataPacket",
    "HeartbeatPacket",
    "NackPacket",
    "RetransPacket",
    "LogAckPacket",
    "AckerSelectPacket",
    "AckerResponsePacket",
    "DataAckPacket",
    "ProbePacket",
    "ProbeReplyPacket",
    "DiscoveryQueryPacket",
    "DiscoveryReplyPacket",
    "ReplUpdatePacket",
    "ReplAckPacket",
    "PrimaryQueryPacket",
    "PrimaryInfoPacket",
    "PromotePacket",
    "ReplStatusQueryPacket",
    "encode",
    "decode",
    "encode_uncached",
    "decode_uncached",
    "decode_from",
    "encode_bundle",
    "iter_bundle",
    "is_bundle",
    "MAX_BUNDLE_FRAMES",
    "BUNDLE_OVERHEAD",
    "BUNDLE_FRAME_OVERHEAD",
    "register_packet",
    "codec_cache_stats",
    "clear_codec_caches",
    "set_codec_caches",
    "set_codec_mode",
    "codec_mode",
]

_MAGIC = b"LB"
_VERSION = 1
_HEADER = struct.Struct("!2sBB")
_MAX_PAYLOAD = 0xFFFF
_MAX_STR = 0xFF


class PacketType(IntEnum):
    """Discriminator byte in the common header.

    Values 0–31 are reserved for the LBRM core; 32+ for extensions
    (baselines, applications).
    """

    DATA = 1
    HEARTBEAT = 2
    NACK = 3
    RETRANS = 4
    LOG_ACK = 5
    ACKER_SELECT = 6
    ACKER_RESPONSE = 7
    DATA_ACK = 8
    PROBE = 9
    PROBE_REPLY = 10
    DISCOVERY_QUERY = 11
    DISCOVERY_REPLY = 12
    REPL_UPDATE = 13
    REPL_ACK = 14
    PRIMARY_QUERY = 15
    PRIMARY_INFO = 16
    PROMOTE = 17
    REPL_STATUS_QUERY = 18
    # Extension range (registered by other modules).
    SRM_SESSION = 32
    SRM_REQUEST = 33
    SRM_REPAIR = 34
    POSACK_DATA = 40
    POSACK_ACK = 41


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > _MAX_STR:
        raise EncodeError(f"string too long for wire ({len(raw)} > {_MAX_STR})")
    return bytes([len(raw)]) + raw


def _unpack_str(buf: memoryview, offset: int) -> tuple[str, int]:
    if offset >= len(buf):
        raise DecodeError("truncated string length")
    length = buf[offset]
    end = offset + 1 + length
    if end > len(buf):
        raise DecodeError("truncated string body")
    try:
        return bytes(buf[offset + 1 : end]).decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise DecodeError(f"string is not UTF-8: {exc}") from None


def _pack_bytes(value: bytes) -> bytes:
    if len(value) > _MAX_PAYLOAD:
        raise EncodeError(f"payload too large ({len(value)} > {_MAX_PAYLOAD})")
    return struct.pack("!H", len(value)) + value


def _unpack_bytes(buf: memoryview, offset: int) -> tuple[bytes, int]:
    if offset + 2 > len(buf):
        raise DecodeError("truncated payload length")
    (length,) = struct.unpack_from("!H", buf, offset)
    end = offset + 2 + length
    if end > len(buf):
        raise DecodeError("truncated payload body")
    return bytes(buf[offset + 2 : end]), end


@dataclass(frozen=True, slots=True)
class Packet:
    """Base class: every LBRM message belongs to a multicast group."""

    group: str
    # Memo slot for hash(packet); -1 = not yet computed (CPython hashes
    # never return -1, it is reserved for errors).  The codec memos probe
    # dicts keyed by packet values on every encode, and the generated
    # dataclass __hash__ rebuilds and re-hashes the full field tuple each
    # call — register_packet wraps it so that cost is paid once per
    # instance.  init=False/compare=False keeps the slot out of
    # __init__, __eq__, and repr.
    _hash: int = field(init=False, repr=False, compare=False, default=-1)

    TYPE: ClassVar[PacketType]

    def encode_body(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "Packet":
        raise NotImplementedError


_REGISTRY: dict[int, Type[Packet]] = {}

P = TypeVar("P", bound=Type[Packet])


def register_packet(cls: P) -> P:
    """Class decorator adding ``cls`` to the wire-format registry.

    Classes declaring a ``WIRE`` spec additionally get a precompiled
    struct codec (see :func:`_compile_struct_codec`); the rest fall back
    to their per-field ``encode_body``/``decode_body`` in both modes.
    """
    ptype = int(cls.TYPE)
    existing = _REGISTRY.get(ptype)
    if existing is not None and existing is not cls:
        raise EncodeError(f"packet type {ptype} already registered to {existing.__name__}")
    _REGISTRY[ptype] = cls
    _install_cached_hash(cls)
    _compile_struct_codec(cls)
    return cls


def _install_cached_hash(cls: Type[Packet]) -> None:
    """Wrap the generated ``__hash__`` to memoize into the ``_hash`` slot."""
    base_hash = cls.__hash__

    def __hash__(self, _base=base_hash, _set=object.__setattr__):
        h = self._hash
        if h != -1:
            return h
        h = _base(self)
        _set(self, "_hash", h)
        return h

    cls.__hash__ = __hash__


# -- struct-codec fast path --------------------------------------------------
#
# A packet class may declare ``WIRE``: a tuple of ``(field_name, kind)``
# pairs in *wire* order, from which one precompiled :class:`struct.Struct`
# codec is built at registration time.  The per-field ``encode_body`` /
# ``decode_body`` methods remain the executable conformance specification —
# the property suite fuzzes every registered type and asserts both paths
# produce identical bytes and identical values, and both reject truncated
# or garbage-suffixed datagrams with :class:`DecodeError`
# (tests/property/test_codec_conformance.py).
#
# Allowed shape: any run of fixed-width fields plus at most one
# variable-length field ("str", "bytes", or "u64seq"), which must be last.

_FIXED_FMT = {"u8": "B", "u16": "H", "u32": "I", "u64": "Q", "f64": "d"}
_VARIABLE_KINDS = frozenset({"str", "bytes", "u64seq"})

_STRUCT_ENCODERS: dict[type, Callable] = {}
_STRUCT_DECODERS: dict[int, Callable] = {}

_U16 = struct.Struct("!H")
# One precompiled "!H{n}Q" per distinct sequence-list length seen;
# bounded by MAX_SEQS in practice (counts are validated before lookup).
_U64SEQ_STRUCTS: dict[int, struct.Struct] = {}


def _u64seq_struct(count: int) -> struct.Struct:
    st = _U64SEQ_STRUCTS.get(count)
    if st is None:
        st = _U64SEQ_STRUCTS[count] = struct.Struct(f"!H{count}Q")
    return st


def _compile_struct_codec(cls: Type[Packet]) -> None:
    """Build and register the precompiled codec pair for ``cls.WIRE``."""
    wire = cls.__dict__.get("WIRE")
    if wire is None:
        return
    tname = cls.TYPE.name
    fixed_names: list[str] = []
    fmt = "!"
    tail_name: str | None = None
    tail_kind: str | None = None
    for name, kind in wire:
        if tail_kind is not None:
            raise EncodeError(f"{cls.__name__}.WIRE: variable-length field must be last")
        if kind in _VARIABLE_KINDS:
            tail_name, tail_kind = name, kind
        elif kind in _FIXED_FMT:
            fmt += _FIXED_FMT[kind]
            fixed_names.append(name)
        else:
            raise EncodeError(f"{cls.__name__}.WIRE: unknown field kind {kind!r}")

    # The 4-byte header is constant per class; group headers (header +
    # length-prefixed UTF-8 group) are memoized since deployments speak a
    # handful of groups across millions of packets.
    prefix = _HEADER.pack(_MAGIC, _VERSION, int(cls.TYPE))
    heads: dict[str, bytes] = {}

    def _head(group: str) -> bytes:
        head = heads.get(group)
        if head is None:
            raw = group.encode("utf-8")
            if len(raw) > _MAX_STR:
                raise EncodeError(f"string too long for wire ({len(raw)} > {_MAX_STR})")
            head = prefix + bytes((len(raw),)) + raw
            if len(heads) < 1024:
                heads[group] = head
        return head

    if not fixed_names:
        gfix = None
    elif len(fixed_names) == 1:
        _g1 = attrgetter(fixed_names[0])

        def gfix(p, _g1=_g1):
            return (_g1(p),)

    else:
        gfix = attrgetter(*fixed_names)

    # Decoders construct positionally (kwargs cost ~300 ns per call on a
    # frozen slots dataclass): arg_src maps each constructor position
    # after ``group`` to its index in the unpacked fixed tuple, or -1 for
    # the variable tail.  This doubles as the spec check that WIRE names
    # exactly the non-group fields.
    wire_names = set(fixed_names) | ({tail_name} if tail_name is not None else set())
    arg_src: list[int] = []
    for f in fields(cls):
        if f.name == "group" or f.name == "_hash":
            continue
        if f.name == tail_name:
            arg_src.append(-1)
        elif f.name in wire_names:
            arg_src.append(fixed_names.index(f.name))
        else:
            raise EncodeError(f"{cls.__name__}.WIRE: field {f.name!r} missing from spec")
    if len(arg_src) != len(fixed_names) + (tail_name is not None):
        raise EncodeError(f"{cls.__name__}.WIRE: spec names a non-field")
    in_order = arg_src == list(range(len(arg_src)))

    if tail_kind is None:
        body = struct.Struct(fmt)
        pack, unpack_from, size = body.pack, body.unpack_from, body.size

        if gfix is None:

            def enc(p):
                return _head(p.group)

        else:

            def enc(p):
                return _head(p.group) + pack(*gfix(p))

        if in_order:

            def dec(data, off, group):
                if len(data) != off + size:
                    raise DecodeError(f"bad {tname} body length", data)
                return cls(group, *unpack_from(data, off))

        else:

            def dec(data, off, group):
                if len(data) != off + size:
                    raise DecodeError(f"bad {tname} body length", data)
                vals = unpack_from(data, off)
                return cls(group, *[vals[i] for i in arg_src])

    elif tail_kind == "bytes":
        body = struct.Struct(fmt + "H")
        pack, unpack_from, size = body.pack, body.unpack_from, body.size
        gtail = attrgetter(tail_name)

        def enc(p):
            payload = gtail(p)
            n = len(payload)
            if n > _MAX_PAYLOAD:
                raise EncodeError(f"payload too large ({n} > {_MAX_PAYLOAD})")
            if gfix is None:
                return _head(p.group) + pack(n) + payload
            return _head(p.group) + pack(*gfix(p), n) + payload

        def dec(data, off, group):
            fend = off + size
            if len(data) < fend:
                raise DecodeError(f"truncated {tname} body", data)
            vals = unpack_from(data, off)
            end = fend + vals[-1]
            if len(data) != end:
                raise DecodeError(f"bad {tname} payload length", data)
            # bytes() materializes only the payload when ``data`` is a
            # memoryview (the zero-copy decode_from path); on the bytes
            # path the slice already is the copy and bytes() is identity.
            tailv = bytes(data[fend:end])
            return cls(group, *[tailv if i < 0 else vals[i] for i in arg_src])

    elif tail_kind == "str":
        body = struct.Struct(fmt + "B")
        pack, unpack_from, size = body.pack, body.unpack_from, body.size
        gtail = attrgetter(tail_name)

        def enc(p):
            raw = gtail(p).encode("utf-8")
            n = len(raw)
            if n > _MAX_STR:
                raise EncodeError(f"string too long for wire ({n} > {_MAX_STR})")
            if gfix is None:
                return _head(p.group) + pack(n) + raw
            return _head(p.group) + pack(*gfix(p), n) + raw

        def dec(data, off, group):
            fend = off + size
            if len(data) < fend:
                raise DecodeError(f"truncated {tname} body", data)
            vals = unpack_from(data, off)
            end = fend + vals[-1]
            if len(data) != end:
                raise DecodeError(f"bad {tname} string length", data)
            try:
                # str(buf, "utf-8") accepts memoryview slices directly
                # (decode_from), with the same UnicodeDecodeError contract
                # as bytes.decode on the plain-bytes path.
                tailv = str(data[fend:end], "utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError(f"{tname} string is not UTF-8: {exc}", data) from None
            return cls(group, *[tailv if i < 0 else vals[i] for i in arg_src])

    else:  # u64seq
        body = struct.Struct(fmt)
        pack, unpack_from, size = body.pack, body.unpack_from, body.size
        gtail = attrgetter(tail_name)
        maxn = getattr(cls, "MAX_SEQS", 0xFFFF)

        def enc(p):
            seqs = gtail(p)
            n = len(seqs)
            if n == 0:
                raise EncodeError(f"{tname} must request at least one sequence")
            if n > maxn:
                raise EncodeError(f"{tname} limited to {maxn} sequences")
            if gfix is None:
                return _head(p.group) + _u64seq_struct(n).pack(n, *seqs)
            return _head(p.group) + pack(*gfix(p)) + _u64seq_struct(n).pack(n, *seqs)

        def dec(data, off, group):
            fend = off + size
            if len(data) < fend + 2:
                raise DecodeError(f"truncated {tname} body", data)
            (n,) = _U16.unpack_from(data, fend)
            if n == 0 or n > maxn:
                raise DecodeError(f"bad {tname} count {n}", data)
            if len(data) != fend + 2 + 8 * n:
                raise DecodeError(f"bad {tname} sequence list length", data)
            tailv = _u64seq_struct(n).unpack_from(data, fend)[1:]
            if not arg_src == [-1]:
                vals = unpack_from(data, off)
                return cls(group, *[tailv if i < 0 else vals[i] for i in arg_src])
            return cls(group, tailv)

    _STRUCT_ENCODERS[cls] = enc
    _STRUCT_DECODERS[int(cls.TYPE)] = dec


@register_packet
@dataclass(frozen=True, slots=True)
class DataPacket(Packet):
    """Original application data multicast by the source (§2).

    ``epoch`` ties the packet to the statistical-acknowledgement epoch so
    Designated Ackers know whether they must acknowledge it (§2.3.1).
    """

    seq: int
    payload: bytes
    epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.DATA
    WIRE: ClassVar[tuple] = (("seq", "u64"), ("epoch", "u32"), ("payload", "bytes"))

    def encode_body(self) -> bytes:
        return struct.pack("!QI", self.seq, self.epoch) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DataPacket":
        if len(buf) < 12:
            raise DecodeError("truncated DATA body")
        seq, epoch = struct.unpack_from("!QI", buf, 0)
        payload, end = _unpack_bytes(buf, 12)
        if end != len(buf):
            raise DecodeError("trailing garbage after DATA body")
        return cls(group=group, seq=seq, payload=payload, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class HeartbeatPacket(Packet):
    """Keep-alive repeating the last data sequence number (§2).

    ``hb_index`` counts heartbeats since that data packet (Appendix A's
    ``TRANS:17.12:HEARTBEAT`` is sequence 17, index 12) and lets
    receivers de-duplicate and reason about the backoff schedule.
    """

    seq: int
    hb_index: int
    epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.HEARTBEAT
    WIRE: ClassVar[tuple] = (("seq", "u64"), ("hb_index", "u32"), ("epoch", "u32"))

    def encode_body(self) -> bytes:
        return struct.pack("!QII", self.seq, self.hb_index, self.epoch)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "HeartbeatPacket":
        if len(buf) != 16:
            raise DecodeError("bad HEARTBEAT body length")
        seq, hb_index, epoch = struct.unpack_from("!QII", buf, 0)
        return cls(group=group, seq=seq, hb_index=hb_index, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class NackPacket(Packet):
    """Retransmission request listing missing sequence numbers.

    Sent by a receiver to its secondary logger, or by a secondary logger
    upstream to the primary (§2.2.1).  Bounded to 64 sequence numbers per
    packet; longer loss runs are requested in batches.
    """

    seqs: tuple[int, ...]

    TYPE: ClassVar[PacketType] = PacketType.NACK
    MAX_SEQS: ClassVar[int] = 64
    WIRE: ClassVar[tuple] = (("seqs", "u64seq"),)

    def encode_body(self) -> bytes:
        if not self.seqs:
            raise EncodeError("NACK must request at least one sequence")
        if len(self.seqs) > self.MAX_SEQS:
            raise EncodeError(f"NACK limited to {self.MAX_SEQS} sequences")
        return struct.pack("!H", len(self.seqs)) + struct.pack(f"!{len(self.seqs)}Q", *self.seqs)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "NackPacket":
        if len(buf) < 2:
            raise DecodeError("truncated NACK body")
        (count,) = struct.unpack_from("!H", buf, 0)
        if count == 0 or count > cls.MAX_SEQS:
            raise DecodeError(f"bad NACK count {count}")
        if len(buf) != 2 + 8 * count:
            raise DecodeError("bad NACK sequence list length")
        seqs = struct.unpack_from(f"!{count}Q", buf, 2)
        return cls(group=group, seqs=tuple(seqs))


@register_packet
@dataclass(frozen=True, slots=True)
class RetransPacket(Packet):
    """Retransmission of a logged data packet.

    Distinct from :class:`DataPacket` so receivers can account recovery
    traffic separately (the paper's RETRANS vs TRANS tags, Appendix A).
    """

    seq: int
    payload: bytes
    epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.RETRANS
    WIRE: ClassVar[tuple] = (("seq", "u64"), ("epoch", "u32"), ("payload", "bytes"))

    def encode_body(self) -> bytes:
        return struct.pack("!QI", self.seq, self.epoch) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "RetransPacket":
        if len(buf) < 12:
            raise DecodeError("truncated RETRANS body")
        seq, epoch = struct.unpack_from("!QI", buf, 0)
        payload, end = _unpack_bytes(buf, 12)
        if end != len(buf):
            raise DecodeError("trailing garbage after RETRANS body")
        return cls(group=group, seq=seq, payload=payload, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class LogAckPacket(Packet):
    """Primary logger → source acknowledgement (§2.2.3).

    Carries both the primary logger sequence number (source may release
    its application buffer and keep processing) and the replicated
    logger sequence number (source may discard data only up to here).
    ``log_epoch`` is the promotion term the acking logger believes it is
    primary for; the source ignores ACKs from a stale epoch (0 = the
    pre-epoch wire form, accepted for compatibility).
    """

    primary_seq: int
    replica_seq: int
    log_epoch: int = 0

    TYPE: ClassVar[PacketType] = PacketType.LOG_ACK
    WIRE: ClassVar[tuple] = (
        ("primary_seq", "u64"),
        ("replica_seq", "u64"),
        ("log_epoch", "u32"),
    )

    def encode_body(self) -> bytes:
        return struct.pack("!QQI", self.primary_seq, self.replica_seq, self.log_epoch)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "LogAckPacket":
        if len(buf) != 20:
            raise DecodeError("bad LOG_ACK body length")
        primary_seq, replica_seq, log_epoch = struct.unpack_from("!QQI", buf, 0)
        return cls(
            group=group, primary_seq=primary_seq, replica_seq=replica_seq, log_epoch=log_epoch
        )


@register_packet
@dataclass(frozen=True, slots=True)
class AckerSelectPacket(Packet):
    """Acker Selection Packet starting a new epoch (§2.3.1).

    Each secondary logger answers with probability ``p_ack``; responders
    become the epoch's Designated Ackers.
    """

    epoch: int
    p_ack: float
    k: int

    TYPE: ClassVar[PacketType] = PacketType.ACKER_SELECT
    WIRE: ClassVar[tuple] = (("epoch", "u32"), ("p_ack", "f64"), ("k", "u32"))

    def encode_body(self) -> bytes:
        return struct.pack("!IdI", self.epoch, self.p_ack, self.k)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "AckerSelectPacket":
        if len(buf) != 16:
            raise DecodeError("bad ACKER_SELECT body length")
        epoch, p_ack, k = struct.unpack_from("!IdI", buf, 0)
        return cls(group=group, epoch=epoch, p_ack=p_ack, k=k)


@register_packet
@dataclass(frozen=True, slots=True)
class AckerResponsePacket(Packet):
    """A secondary logger volunteering as Designated Acker for ``epoch``."""

    epoch: int

    TYPE: ClassVar[PacketType] = PacketType.ACKER_RESPONSE
    WIRE: ClassVar[tuple] = (("epoch", "u32"),)

    def encode_body(self) -> bytes:
        return struct.pack("!I", self.epoch)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "AckerResponsePacket":
        if len(buf) != 4:
            raise DecodeError("bad ACKER_RESPONSE body length")
        (epoch,) = struct.unpack_from("!I", buf, 0)
        return cls(group=group, epoch=epoch)


@register_packet
@dataclass(frozen=True, slots=True)
class DataAckPacket(Packet):
    """Designated Acker → source per-data-packet acknowledgement."""

    epoch: int
    seq: int

    TYPE: ClassVar[PacketType] = PacketType.DATA_ACK
    WIRE: ClassVar[tuple] = (("epoch", "u32"), ("seq", "u64"))

    def encode_body(self) -> bytes:
        return struct.pack("!IQ", self.epoch, self.seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DataAckPacket":
        if len(buf) != 12:
            raise DecodeError("bad DATA_ACK body length")
        epoch, seq = struct.unpack_from("!IQ", buf, 0)
        return cls(group=group, epoch=epoch, seq=seq)


@register_packet
@dataclass(frozen=True, slots=True)
class ProbePacket(Packet):
    """Bolot-style group-size probe (§2.3.3): answer with prob ``p_ack``."""

    probe_id: int
    p_ack: float

    TYPE: ClassVar[PacketType] = PacketType.PROBE
    WIRE: ClassVar[tuple] = (("probe_id", "u32"), ("p_ack", "f64"))

    def encode_body(self) -> bytes:
        return struct.pack("!Id", self.probe_id, self.p_ack)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ProbePacket":
        if len(buf) != 12:
            raise DecodeError("bad PROBE body length")
        probe_id, p_ack = struct.unpack_from("!Id", buf, 0)
        return cls(group=group, probe_id=probe_id, p_ack=p_ack)


@register_packet
@dataclass(frozen=True, slots=True)
class ProbeReplyPacket(Packet):
    """Probabilistic reply to a :class:`ProbePacket`."""

    probe_id: int

    TYPE: ClassVar[PacketType] = PacketType.PROBE_REPLY
    WIRE: ClassVar[tuple] = (("probe_id", "u32"),)

    def encode_body(self) -> bytes:
        return struct.pack("!I", self.probe_id)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ProbeReplyPacket":
        if len(buf) != 4:
            raise DecodeError("bad PROBE_REPLY body length")
        (probe_id,) = struct.unpack_from("!I", buf, 0)
        return cls(group=group, probe_id=probe_id)


@register_packet
@dataclass(frozen=True, slots=True)
class DiscoveryQueryPacket(Packet):
    """Expanding-ring scoped-multicast query for a nearby logger (§2.2.1)."""

    ttl: int

    TYPE: ClassVar[PacketType] = PacketType.DISCOVERY_QUERY
    WIRE: ClassVar[tuple] = (("ttl", "u16"),)

    def encode_body(self) -> bytes:
        return struct.pack("!H", self.ttl)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DiscoveryQueryPacket":
        if len(buf) != 2:
            raise DecodeError("bad DISCOVERY_QUERY body length")
        (ttl,) = struct.unpack_from("!H", buf, 0)
        return cls(group=group, ttl=ttl)


@register_packet
@dataclass(frozen=True, slots=True)
class DiscoveryReplyPacket(Packet):
    """A logger answering discovery: its address token and hierarchy level
    (0 = primary, 1 = site secondary, …)."""

    logger_addr: str
    level: int

    TYPE: ClassVar[PacketType] = PacketType.DISCOVERY_REPLY
    WIRE: ClassVar[tuple] = (("level", "u16"), ("logger_addr", "str"))

    def encode_body(self) -> bytes:
        return struct.pack("!H", self.level) + _pack_str(self.logger_addr)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "DiscoveryReplyPacket":
        if len(buf) < 2:
            raise DecodeError("truncated DISCOVERY_REPLY body")
        (level,) = struct.unpack_from("!H", buf, 0)
        logger_addr, end = _unpack_str(buf, 2)
        if end != len(buf):
            raise DecodeError("trailing garbage after DISCOVERY_REPLY body")
        return cls(group=group, logger_addr=logger_addr, level=level)


@register_packet
@dataclass(frozen=True, slots=True)
class ReplUpdatePacket(Packet):
    """Primary → follower log-entry push (§2.2.3).

    Also reused source → promoted-replica during failover to hand over
    buffered packets the failed primary never replicated.
    ``log_epoch`` stamps the pushing primary's promotion term (followers
    reject pushes from a stale term); ``commit_seq`` piggybacks the
    primary's current commit point so followers learn how far the group
    has durably committed without extra control traffic.
    """

    seq: int
    payload: bytes
    log_epoch: int = 0
    commit_seq: int = 0

    TYPE: ClassVar[PacketType] = PacketType.REPL_UPDATE
    WIRE: ClassVar[tuple] = (
        ("seq", "u64"),
        ("log_epoch", "u32"),
        ("commit_seq", "u64"),
        ("payload", "bytes"),
    )

    def encode_body(self) -> bytes:
        return struct.pack("!QIQ", self.seq, self.log_epoch, self.commit_seq) + _pack_bytes(
            self.payload
        )

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ReplUpdatePacket":
        if len(buf) < 20:
            raise DecodeError("truncated REPL_UPDATE body")
        seq, log_epoch, commit_seq = struct.unpack_from("!QIQ", buf, 0)
        payload, end = _unpack_bytes(buf, 20)
        if end != len(buf):
            raise DecodeError("trailing garbage after REPL_UPDATE body")
        return cls(
            group=group, seq=seq, payload=payload, log_epoch=log_epoch, commit_seq=commit_seq
        )


@register_packet
@dataclass(frozen=True, slots=True)
class ReplAckPacket(Packet):
    """Follower → primary cumulative acknowledgement.

    ``cum_seq`` is the highest sequence such that the follower *durably
    holds* every packet ≤ ``cum_seq`` (a contiguous prefix — received
    but gapped packets do not count); 2**64-1 is reserved as the
    "nothing yet" sentinel (encoded) but exposed as ``cum_seq is None``
    in the replication API.  ``log_epoch`` is the highest promotion term
    the follower has seen, and ``commit_seq`` its *committed* prefix —
    ``min(learned commit point, own contiguous prefix)`` — used as the
    promotion tie-break during failover.
    """

    cum_seq: int
    log_epoch: int = 0
    commit_seq: int = 0

    TYPE: ClassVar[PacketType] = PacketType.REPL_ACK
    WIRE: ClassVar[tuple] = (
        ("cum_seq", "u64"),
        ("log_epoch", "u32"),
        ("commit_seq", "u64"),
    )

    def encode_body(self) -> bytes:
        return struct.pack("!QIQ", self.cum_seq, self.log_epoch, self.commit_seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ReplAckPacket":
        if len(buf) != 20:
            raise DecodeError("bad REPL_ACK body length")
        cum_seq, log_epoch, commit_seq = struct.unpack_from("!QIQ", buf, 0)
        return cls(group=group, cum_seq=cum_seq, log_epoch=log_epoch, commit_seq=commit_seq)


@register_packet
@dataclass(frozen=True, slots=True)
class PrimaryQueryPacket(Packet):
    """Receiver/secondary → source: "who is the primary logger now?"

    Sent when the cached primary address stops responding (§2.2.3).
    """

    TYPE: ClassVar[PacketType] = PacketType.PRIMARY_QUERY
    WIRE: ClassVar[tuple] = ()

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PrimaryQueryPacket":
        if len(buf):
            raise DecodeError("trailing garbage after PRIMARY_QUERY header")
        return cls(group=group)


@register_packet
@dataclass(frozen=True, slots=True)
class PrimaryInfoPacket(Packet):
    """Source → asker: current primary logger address token."""

    primary_addr: str

    TYPE: ClassVar[PacketType] = PacketType.PRIMARY_INFO
    WIRE: ClassVar[tuple] = (("primary_addr", "str"),)

    def encode_body(self) -> bytes:
        return _pack_str(self.primary_addr)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PrimaryInfoPacket":
        primary_addr, end = _unpack_str(buf, 0)
        if end != len(buf):
            raise DecodeError("trailing garbage after PRIMARY_INFO body")
        return cls(group=group, primary_addr=primary_addr)


@register_packet
@dataclass(frozen=True, slots=True)
class PromotePacket(Packet):
    """Source → replica: become the primary; serve from ``from_seq``.

    ``log_epoch`` is the new promotion term (strictly greater than every
    term the group has used); ``members`` carries the surviving replica
    membership as comma-joined address tokens, so the promoted primary
    adopts them as its followers and keeps the commit point replicated
    instead of falling back to a single-copy log.
    """

    from_seq: int
    log_epoch: int = 0
    members: str = ""

    TYPE: ClassVar[PacketType] = PacketType.PROMOTE
    WIRE: ClassVar[tuple] = (
        ("from_seq", "u64"),
        ("log_epoch", "u32"),
        ("members", "str"),
    )

    def encode_body(self) -> bytes:
        return struct.pack("!QI", self.from_seq, self.log_epoch) + _pack_str(self.members)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PromotePacket":
        if len(buf) < 12:
            raise DecodeError("truncated PROMOTE body")
        from_seq, log_epoch = struct.unpack_from("!QI", buf, 0)
        members, end = _unpack_str(buf, 12)
        if end != len(buf):
            raise DecodeError("trailing garbage after PROMOTE body")
        return cls(group=group, from_seq=from_seq, log_epoch=log_epoch, members=members)


@register_packet
@dataclass(frozen=True, slots=True)
class ReplStatusQueryPacket(Packet):
    """Source → replica during failover: "report your cumulative log seq".

    The replica answers with a :class:`ReplAckPacket`; the source then
    promotes the most up-to-date replica (§2.2.3).
    """

    TYPE: ClassVar[PacketType] = PacketType.REPL_STATUS_QUERY
    WIRE: ClassVar[tuple] = ()

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "ReplStatusQueryPacket":
        if len(buf):
            raise DecodeError("trailing garbage after REPL_STATUS_QUERY header")
        return cls(group=group)


# Which body codec serves encode/decode: "struct" is the precompiled
# fast path, "legacy" the per-field conformance spec.  The benchmark
# harness's reference mode selects "legacy" to measure the pre-struct
# baseline; everything else runs "struct".
_CODEC_MODE = "struct"


def set_codec_mode(mode: str) -> None:
    """Select ``"struct"`` (default) or ``"legacy"`` codecs.

    Clears both memo caches so cached objects and hit/miss stats always
    come from a single mode.
    """
    global _CODEC_MODE
    if mode not in ("struct", "legacy"):
        raise ValueError(f"codec mode must be 'struct' or 'legacy', got {mode!r}")
    _CODEC_MODE = mode
    clear_codec_caches()


def codec_mode() -> str:
    """The currently selected body codec ("struct" or "legacy")."""
    return _CODEC_MODE


def encode_uncached(packet: Packet) -> bytes:
    """Serialize ``packet`` to its wire representation (no memoization)."""
    if _CODEC_MODE == "struct":
        enc = _STRUCT_ENCODERS.get(type(packet))
        if enc is not None:
            return enc(packet)
    header = _HEADER.pack(_MAGIC, _VERSION, int(packet.TYPE))
    return header + _pack_str(packet.group) + packet.encode_body()


def decode_uncached(data: bytes) -> Packet:
    """Parse a datagram back into a packet object (no memoization).

    Raises :class:`~repro.core.errors.DecodeError` on any malformed
    input; transports should count and drop such datagrams rather than
    crash (errors should never pass silently, but a multicast socket is
    a public place).  ``bytearray``/``memoryview`` input is accepted and
    normalized to ``bytes``; :func:`decode_from` is the entry point that
    parses straight out of a caller-owned buffer without that copy.
    """
    if type(data) is not bytes:
        data = bytes(data)
    return _decode_view(data)


def decode_from(buf, offset: int = 0, length: int | None = None) -> Packet:
    """Decode one packet straight out of ``buf[offset:offset+length]``.

    Zero-copy entry point for transports that receive into preallocated
    buffers (``recvfrom_into``) or walk bundled datagrams
    (:func:`iter_bundle`): the header and fixed fields are parsed in
    place via ``unpack_from`` and only variable-length tails (payload,
    strings) are materialized into the returned packet object.  The
    result is indistinguishable from ``decode_uncached(bytes(...))`` —
    the buffer may be reused immediately after the call returns.
    Bypasses the decode memo (a buffer slice has no hashable key without
    the very copy this path exists to avoid).
    """
    view = memoryview(buf)
    if offset or length is not None:
        end = len(view) if length is None else offset + length
        view = view[offset:end]
    return _decode_view(view)


# One-entry group-name memo for the RX hot path: a receive socket sees
# the same group on (nearly) every packet, and memoryview == bytes is a
# C-level compare — so a hit replaces the per-packet UTF-8 decode and
# str allocation.  Deliberately a single entry: no hashing, no eviction,
# and a miss costs one comparison.
_LAST_GROUP_RAW: bytes = b"\xff"  # never equals valid UTF-8 group bytes
_LAST_GROUP: str = ""


def _decode_view(data) -> Packet:
    """Shared datagram parse over any buffer (``bytes`` or memoryview)."""
    global _LAST_GROUP_RAW, _LAST_GROUP
    n = len(data)
    if n < _HEADER.size:
        raise DecodeError("datagram shorter than header", bytes(data))
    magic, version, ptype = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise DecodeError(f"bad magic {magic!r}", bytes(data))
    if version != _VERSION:
        raise DecodeError(f"unsupported version {version}", bytes(data))
    cls = _REGISTRY.get(ptype)
    if cls is None:
        raise DecodeError(f"unknown packet type {ptype}", bytes(data))
    # Both modes share the header/group parse (and its error behavior).
    if n < 5:
        raise DecodeError("truncated string length", bytes(data))
    end = 5 + data[4]
    if end > n:
        raise DecodeError("truncated string body", bytes(data))
    raw = data[5:end]
    if raw == _LAST_GROUP_RAW:
        group = _LAST_GROUP
    else:
        try:
            group = str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError(f"group is not UTF-8: {exc}", bytes(data)) from None
        _LAST_GROUP_RAW, _LAST_GROUP = bytes(raw), group
    if _CODEC_MODE == "struct":
        dec = _STRUCT_DECODERS.get(ptype)
        if dec is not None:
            return dec(data, end, group)
    return cls.decode_body(group, memoryview(data)[end:])


# -- bundle framing -----------------------------------------------------------
#
# The aio transport coalesces many logical packets into one datagram to
# amortize per-datagram cost (syscall, event-loop wakeup) — the modern
# twin of DIS-era PDU bundling.  A bundle is a distinct wire object with
# its own magic (``Lb``, never confusable with a packet's ``LB``)::
#
#     0      2      3       4
#     +------+------+-------+--[ count frames ]-------------------
#     | 'Lb' | ver  | count | u16 len | datagram | u16 len | ...
#     +------+------+-------+-------------------------------------
#
# Each frame is one complete single-packet datagram, byte-identical to
# what an unbundled send would have put on the wire — so a bundle is
# pure framing, and turning bundling off changes nothing but the
# grouping.  :func:`iter_bundle` returns zero-copy memoryview slices;
# pair it with :func:`decode_from` to parse packets straight out of a
# receive buffer.

_BUNDLE_MAGIC = b"Lb"
_BUNDLE_HEADER = struct.Struct("!2sBB")
_BM0, _BM1 = _BUNDLE_MAGIC
MAX_BUNDLE_FRAMES = 255
BUNDLE_OVERHEAD = _BUNDLE_HEADER.size  # plus 2 bytes framing per packet
BUNDLE_FRAME_OVERHEAD = 2


def is_bundle(data) -> bool:
    """True when ``data`` starts with the bundle magic.

    Works on ``bytes``, ``bytearray``, and ``memoryview`` without
    copying; a transport's receive path calls this once per datagram to
    pick between :func:`decode_from` and :func:`iter_bundle`.
    """
    return len(data) >= 2 and data[0] == _BM0 and data[1] == _BM1


def encode_bundle(wires) -> bytes:
    """Frame already-encoded datagrams into one bundle datagram.

    ``wires`` is a non-empty sequence of at most ``MAX_BUNDLE_FRAMES``
    encoded packets (each ≤ 65535 bytes).  The caller owns the MTU
    budget: this function frames whatever it is given.
    """
    count = len(wires)
    if count == 0:
        raise EncodeError("bundle must carry at least one datagram")
    if count > MAX_BUNDLE_FRAMES:
        raise EncodeError(f"bundle limited to {MAX_BUNDLE_FRAMES} datagrams")
    parts = [_BUNDLE_HEADER.pack(_BUNDLE_MAGIC, _VERSION, count)]
    for wire in wires:
        n = len(wire)
        if n > _MAX_PAYLOAD:
            raise EncodeError(f"bundled datagram too large ({n} > {_MAX_PAYLOAD})")
        parts.append(_U16.pack(n))
        parts.append(wire)
    return b"".join(parts)


def iter_bundle(data) -> list:
    """Split a bundle datagram into zero-copy per-packet memoryviews.

    Validates the whole frame table eagerly — truncated or corrupt
    input always raises :class:`~repro.core.errors.DecodeError` before
    any slice is returned, so a partial bundle never half-dispatches.
    The returned slices alias ``data``: decode them (or copy) before the
    underlying receive buffer is reused.
    """
    view = memoryview(data)
    n = len(view)
    if n < _BUNDLE_HEADER.size:
        raise DecodeError("bundle shorter than header", bytes(view))
    magic, version, count = _BUNDLE_HEADER.unpack_from(view, 0)
    if magic != _BUNDLE_MAGIC:
        raise DecodeError(f"bad bundle magic {magic!r}", bytes(view))
    if version != _VERSION:
        raise DecodeError(f"unsupported bundle version {version}", bytes(view))
    if count == 0:
        raise DecodeError("empty bundle", bytes(view))
    frames = []
    off = _BUNDLE_HEADER.size
    for _ in range(count):
        if off + 2 > n:
            raise DecodeError("truncated bundle frame length", bytes(view))
        (flen,) = _U16.unpack_from(view, off)
        off += 2
        if off + flen > n:
            raise DecodeError("truncated bundle frame body", bytes(view))
        frames.append(view[off:off + flen])
        off += flen
    if off != n:
        raise DecodeError("trailing garbage after bundle", bytes(view))
    return frames


class _CodecCache:
    """Bounded FIFO memo for one codec direction, with obs accounting.

    Safe because packets are frozen (hashable, immutable) dataclasses
    and wire strings are ``bytes``: a memoized result can never drift
    from what the uncached path would produce.  Hit/miss counts mirror
    into ``packets.<name>_cache{result=...}`` whenever a recording
    registry is installed; counters re-resolve when the installed
    registry changes (one identity check per call).
    """

    __slots__ = ("name", "max_entries", "entries", "hits", "misses", "enabled",
                 "_reg", "_mirror", "_hit_ctr", "_miss_ctr")

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        self.name = name
        self.max_entries = max_entries
        self.entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.enabled = True
        self._reg = None
        self._mirror = False  # skip no-op counter calls off-recording
        self._hit_ctr = None
        self._miss_ctr = None

    def _resolve(self) -> None:
        reg = obs.registry()
        self._reg = reg
        self._mirror = reg.enabled
        self._hit_ctr = reg.counter(f"packets.{self.name}_cache", result="hit")
        self._miss_ctr = reg.counter(f"packets.{self.name}_cache", result="miss")

    def hit(self) -> None:
        self.hits += 1
        # obs._current is the module global behind obs.registry(); the
        # attribute read skips a function call on a path hit over a
        # million times per benchmark run.
        if obs._current is not self._reg:
            self._resolve()
        if self._mirror:
            self._hit_ctr.inc()

    def miss(self, key, value) -> None:
        self.misses += 1
        if obs._current is not self._reg:
            self._resolve()
        if self._mirror:
            self._miss_ctr.inc()
        entries = self.entries
        if len(entries) >= self.max_entries:
            del entries[next(iter(entries))]
        entries[key] = value

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0


_ENCODE_CACHE = _CodecCache("encode")
_DECODE_CACHE = _CodecCache("decode")


def encode(packet: Packet) -> bytes:
    """Serialize ``packet``, memoized per (frozen) packet value.

    A multicast transmission encodes its packet once no matter the
    fan-out, and the asyncio UDP path re-sends identical heartbeats and
    retransmissions for free.
    """
    cache = _ENCODE_CACHE
    if not cache.enabled:
        return encode_uncached(packet)
    wire = cache.entries.get(packet)
    if wire is not None:
        # hit() inlined: this is the hottest line in a multicast send.
        cache.hits += 1
        if obs._current is not cache._reg:
            cache._resolve()
        if cache._mirror:
            cache._hit_ctr.inc()
        return wire
    wire = encode_uncached(packet)
    cache.miss(packet, wire)
    return wire


def decode(data: bytes) -> Packet:
    """Parse a datagram into a packet object, memoized per wire string.

    Identical datagrams (retransmission floods, repeated heartbeats)
    decode once and return the shared frozen packet instance.  Malformed
    input raises :class:`~repro.core.errors.DecodeError` and is never
    cached.
    """
    cache = _DECODE_CACHE
    if not cache.enabled:
        return decode_uncached(data)
    if type(data) is not bytes:
        # bytearray/memoryview from a transport is unhashable — normalize
        # before probing the memo (decode_uncached does the same).
        data = bytes(data)
    packet = cache.entries.get(data)
    if packet is not None:
        cache.hits += 1
        if obs._current is not cache._reg:
            cache._resolve()
        if cache._mirror:
            cache._hit_ctr.inc()
        return packet
    packet = decode_uncached(data)
    cache.miss(data, packet)
    return packet


def codec_cache_stats() -> dict:
    """Hit/miss/size accounting for both codec memos (for tests/benchmarks)."""
    return {
        "encode": {
            "hits": _ENCODE_CACHE.hits,
            "misses": _ENCODE_CACHE.misses,
            "size": len(_ENCODE_CACHE.entries),
            "enabled": _ENCODE_CACHE.enabled,
        },
        "decode": {
            "hits": _DECODE_CACHE.hits,
            "misses": _DECODE_CACHE.misses,
            "size": len(_DECODE_CACHE.entries),
            "enabled": _DECODE_CACHE.enabled,
        },
    }


def clear_codec_caches() -> None:
    """Drop all memoized encodings/decodings and zero the counters."""
    _ENCODE_CACHE.clear()
    _DECODE_CACHE.clear()


def set_codec_caches(encode: bool | None = None, decode: bool | None = None) -> None:
    """Enable/disable the codec memos (the benchmark harness's baseline
    mode turns them off to measure the pre-memoization path)."""
    if encode is not None:
        _ENCODE_CACHE.enabled = encode
        if not encode:
            _ENCODE_CACHE.clear()
    if decode is not None:
        _DECODE_CACHE.enabled = decode
        if not decode:
            _DECODE_CACHE.clear()
