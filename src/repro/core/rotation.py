"""Rotating the site-logger role among local hosts (§2.2.1).

"An alternative implementation could provide distributed logging at
each site by rotating the role of log server among the local hosts in
order to distribute the load, similar to the Chang and Maxemchuk
algorithm, except that the multicast traffic originates from a source
outside the virtual ring."

Every participating host logs the group's traffic (they are receivers
anyway), but only the host *on duty* serves retransmission requests and
participates in statistical acking.  Duty passes around the site's
ring on a fixed period, deterministically from the (sorted) member set
and the clock — no coordination traffic, the Chang-Maxemchuk token
without the token.

:class:`RotationSchedule` computes who is on duty;
:class:`RotatingLogServer` wraps a :class:`~repro.core.logger.LogServer`
and gates its *serving* behaviour (NACK service, discovery replies,
acker volunteering) by duty, while logging unconditionally.  Receivers
direct their NACKs at the on-duty host via the same schedule.
"""

from __future__ import annotations

from repro.core.actions import Action, Address
from repro.core.logger import LogServer
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    AckerSelectPacket,
    DiscoveryQueryPacket,
    NackPacket,
    Packet,
    ProbePacket,
)

__all__ = ["RotationSchedule", "RotatingLogServer"]


class RotationSchedule:
    """Deterministic round-robin duty assignment for one site."""

    def __init__(self, members: tuple[str, ...], period: float = 10.0, epoch: float = 0.0) -> None:
        if not members:
            raise ValueError("rotation needs at least one member")
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        # Sorted order makes the schedule identical on every host.
        self._members = tuple(sorted(set(members)))
        self._period = period
        self._epoch = epoch

    @property
    def members(self) -> tuple[str, ...]:
        return self._members

    @property
    def period(self) -> float:
        return self._period

    def on_duty(self, now: float) -> str:
        """The member serving the logger role at time ``now``."""
        slot = int((now - self._epoch) // self._period)
        return self._members[slot % len(self._members)]

    def next_handoff(self, now: float) -> float:
        """When duty next changes hands."""
        slot = int((now - self._epoch) // self._period)
        return self._epoch + (slot + 1) * self._period

    def duty_spans(self, start: float, end: float) -> list[tuple[str, float, float]]:
        """(member, from, to) duty intervals covering [start, end)."""
        spans: list[tuple[str, float, float]] = []
        t = start
        while t < end:
            handoff = self.next_handoff(t)
            spans.append((self.on_duty(t), t, min(handoff, end)))
            t = handoff
        return spans


class RotatingLogServer(ProtocolMachine):
    """A LogServer that serves only while its host is on duty.

    ``host_name`` must be this host's name in the schedule's member set.
    Logging (DATA/RETRANS intake, upstream self-recovery) runs at all
    times so every member's log is complete when its turn comes; only
    the *service* face — NACKs, discovery, acker/probe volunteering —
    is duty-gated.
    """

    def __init__(self, inner: LogServer, host_name: str, schedule: RotationSchedule) -> None:
        super().__init__()
        if host_name not in schedule.members:
            raise ValueError(f"{host_name!r} is not in the rotation {schedule.members}")
        self._inner = inner
        self._host = host_name
        self._schedule = schedule
        self.stats = {"served_on_duty": 0, "deferred_off_duty": 0}

    @property
    def inner(self) -> LogServer:
        return self._inner

    @property
    def schedule(self) -> RotationSchedule:
        return self._schedule

    def on_duty(self, now: float) -> bool:
        return self._schedule.on_duty(now) == self._host

    # -- machine contract ----------------------------------------------------

    def start(self, now: float) -> list[Action]:
        return self._inner.start(now)

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        duty_gated = isinstance(
            packet, (NackPacket, DiscoveryQueryPacket, AckerSelectPacket, ProbePacket)
        )
        if duty_gated and not self.on_duty(now):
            self.stats["deferred_off_duty"] += 1
            return []
        if duty_gated:
            self.stats["served_on_duty"] += 1
        return self._inner.handle(packet, src, now)

    def poll(self, now: float) -> list[Action]:
        return self._inner.poll(now)

    def next_wakeup(self) -> float | None:
        return self._inner.next_wakeup()
