"""Receiver-side sequence tracking and gap detection.

The LBRM receiver recognizes loss "when it detects a gap in the sequence
numbers of received packets, or when it has not received a packet for
MaxIT" (§2).  :class:`SequenceTracker` implements the first half: it
records which sequence numbers have arrived, exposes the missing set,
and — because the protocol is receiver-reliable — never delays delivery
of fresh data waiting for retransmissions (§1: "favoring immediate
reception of the latest data over waiting for retransmission").

Sequence numbers start at 1; 0 means "nothing sent yet" (a heartbeat
with seq 0 is legal before the first data packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["SequenceTracker", "GapReport"]


@dataclass(frozen=True, slots=True)
class GapReport:
    """Outcome of observing one sequence number.

    ``is_new`` — first sighting of this sequence (deliver it).
    ``new_gaps`` — sequence numbers that just became known-missing.
    ``filled_gap`` — True when this packet repaired an earlier gap.
    """

    is_new: bool
    new_gaps: tuple[int, ...] = ()
    filled_gap: bool = False


# GapReport is frozen, so the no-gap outcomes — the per-packet common
# case — are shared instances instead of a fresh (slow, via
# object.__setattr__) dataclass construction per observation.
_NEW = GapReport(is_new=True)
_NEW_FILLED = GapReport(is_new=True, filled_gap=True)
_OLD = GapReport(is_new=False)


class SequenceTracker:
    """Tracks the per-flow sequence space at a receiver or logger.

    The tracker's invariants (exercised by property-based tests):

    * ``highest`` is the largest sequence number ever observed.
    * ``missing`` is exactly the set of s in [first_seen, highest] never
      observed.
    * every sequence is reported ``is_new`` at most once.

    A receiver may join mid-stream: the first observed sequence becomes
    the baseline and earlier history is not considered missing (late
    joiners recover old state at the application level, not here).
    """

    def __init__(self) -> None:
        self._highest = 0
        self._first = 0  # first sequence ever seen; 0 = nothing yet
        self._missing: set[int] = set()
        self._abandoned: set[int] = set()
        self._duplicates = 0

    @property
    def highest(self) -> int:
        """Largest sequence number observed so far (0 = none)."""
        return self._highest

    @property
    def missing(self) -> frozenset[int]:
        """Sequence numbers known to be lost and not yet recovered."""
        return frozenset(self._missing)

    @property
    def duplicates(self) -> int:
        """Count of redundant observations (duplicate or already-recovered)."""
        return self._duplicates

    @property
    def started(self) -> bool:
        """True once at least one sequence number has been observed."""
        return self._first != 0

    @property
    def first_seen(self) -> int:
        """First sequence number ever observed (0 = none yet).

        This is the receiver-reliability baseline: a mid-stream joiner
        owes itself the stream from here on, not earlier history.
        """
        return self._first

    def expect_from(self, seq: int = 1) -> None:
        """Declare the stream's base before any observation.

        A tracker primed with ``expect_from(1)`` treats the whole
        sequence space as owed: the first observed packet reports
        everything from ``seq`` up to it as missing, instead of the
        default mid-stream-joiner baseline.  Log replicas use this —
        the replication stream covers the entire log, so a replica
        whose first observation is ``k`` genuinely misses ``1..k-1``
        (e.g. after a restart from empty state) and must not report a
        contiguous prefix it does not hold.  No-op once started.
        """
        if seq <= 0:
            raise ValueError(f"sequence numbers start at 1, got {seq}")
        if self._first == 0:
            self._first = seq
            self._highest = seq - 1

    def observe_data(self, seq: int) -> GapReport:
        """Record arrival of data (or retransmission) with sequence ``seq``.

        Returns what changed: whether the packet is new, and which
        sequence numbers were newly discovered missing.
        """
        if seq <= 0:
            raise ValueError(f"sequence numbers start at 1, got {seq}")
        if self._first == 0:  # self.started, sans the property call
            self._first = seq
            self._highest = seq
            return _NEW
        if seq > self._highest:
            if seq == self._highest + 1:
                self._highest = seq
                return _NEW
            gaps = tuple(range(self._highest + 1, seq))
            self._missing.update(gaps)
            self._highest = seq
            return GapReport(is_new=True, new_gaps=gaps)
        if seq in self._missing:
            self._missing.discard(seq)
            return _NEW_FILLED
        if seq in self._abandoned:
            # Late arrival after the receiver gave up: still fresh data.
            self._abandoned.discard(seq)
            return _NEW_FILLED
        self._duplicates += 1
        return _OLD

    def observe_heartbeat(self, seq: int) -> GapReport:
        """Record a heartbeat repeating the source's last data sequence.

        A heartbeat carries no payload but asserts "the source has sent
        everything up to ``seq``" — so a heartbeat can *reveal* gaps
        (including the common single-loss case where the data packet
        itself was dropped and the first h_min heartbeat exposes it).
        Heartbeats never fill gaps and are never "new data".

        A heartbeat with ``seq == 0`` (source idle before first send)
        refreshes liveness only.
        """
        if seq < 0:
            raise ValueError(f"heartbeat sequence must be >= 0, got {seq}")
        if seq == 0:
            return _OLD
        if self._first == 0:  # self.started, sans the property call
            # Joined mid-stream during an idle period: baseline at seq,
            # and seq itself is missing (we never got its data).
            self._first = seq
            self._highest = seq
            self._missing.add(seq)
            return GapReport(is_new=False, new_gaps=(seq,))
        if seq > self._highest:
            gaps = tuple(range(self._highest + 1, seq + 1))
            self._missing.update(gaps)
            self._highest = seq
            return GapReport(is_new=False, new_gaps=gaps)
        return _OLD

    def abandon(self, seqs: Iterable[int]) -> None:
        """Stop tracking ``seqs`` as missing (recovery given up or data
        superseded at the application's request — receiver-reliability
        means the receiver decides).  Abandoned sequences are remembered
        as *not held*: :meth:`has` stays False for them."""
        for seq in seqs:
            if seq in self._missing:
                self._missing.discard(seq)
                self._abandoned.add(seq)

    @property
    def abandoned(self) -> frozenset[int]:
        """Sequences whose recovery was given up (never delivered)."""
        return frozenset(self._abandoned)

    def has(self, seq: int) -> bool:
        """True when ``seq`` was observed (directly or via recovery)."""
        if not self.started or seq < self._first or seq > self._highest:
            return False
        return seq not in self._missing and seq not in self._abandoned

    def __repr__(self) -> str:
        return (
            f"SequenceTracker(highest={self._highest}, "
            f"missing={sorted(self._missing)!r}, duplicates={self._duplicates})"
        )
