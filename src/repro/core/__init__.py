"""LBRM protocol core — sans-IO machines, wire format, and policies.

This package implements every mechanism in Holbrook, Singhal &
Cheriton's LBRM paper: the receiver-reliable base protocol, variable
heartbeats, distributed logging with replication and failover, and
statistical acknowledgement.  See the package-level re-exports for the
public API; :mod:`repro.simnet` and :mod:`repro.aio` provide harnesses
that carry these machines over a simulated or a real network.
"""

from repro.core.actions import (
    Action,
    Address,
    Deliver,
    GroupId,
    JoinGroup,
    LeaveGroup,
    Notify,
    SendMulticast,
    SendUnicast,
)
from repro.core.config import (
    DiscoveryConfig,
    HeartbeatConfig,
    HierarchyConfig,
    LbrmConfig,
    LoggerConfig,
    ReceiverConfig,
    ReplicationConfig,
    StatAckConfig,
)
from repro.core.hierarchy import (
    LinkEstimate,
    LoggerTree,
    Reparent,
    TreeManager,
    build_tree,
    interior_name,
    plan_level_sizes,
)
from repro.core.errors import (
    ConfigError,
    DecodeError,
    EncodeError,
    LbrmError,
    LogMissError,
    LogOverflowError,
    NotPrimaryError,
    ReplicationError,
    StaleEpochError,
)
from repro.core.heartbeat import (
    FixedHeartbeatSchedule,
    HeartbeatSchedule,
    VariableHeartbeatSchedule,
    heartbeat_times,
    make_schedule,
)
from repro.core.discovery import DiscoveryClient
from repro.core.log_store import LogEntry, PacketLog
from repro.core.logger import LoggerRole, LogServer
from repro.core.machine import ProtocolMachine, TimerSet
from repro.core.process import MultiGroupProcess
from repro.core.ratecontrol import AimdRateController, RateControlConfig
from repro.core.receiver import LbrmReceiver
from repro.core.retranschannel import RetransChannelConfig, RetransChannelSender, retrans_group
from repro.core.rotation import RotatingLogServer, RotationSchedule
from repro.core.sender import FailoverPhase, LbrmSender
from repro.core.sequence import GapReport, SequenceTracker
from repro.core.statack import RetransmitOrder, StatAckPhase, StatAckSource

__all__ = [
    # actions
    "Action",
    "Address",
    "Deliver",
    "GroupId",
    "JoinGroup",
    "LeaveGroup",
    "Notify",
    "SendMulticast",
    "SendUnicast",
    # config
    "DiscoveryConfig",
    "HeartbeatConfig",
    "HierarchyConfig",
    "LbrmConfig",
    "LoggerConfig",
    "ReceiverConfig",
    "ReplicationConfig",
    "StatAckConfig",
    # hierarchy
    "LinkEstimate",
    "LoggerTree",
    "Reparent",
    "TreeManager",
    "build_tree",
    "interior_name",
    "plan_level_sizes",
    # errors
    "ConfigError",
    "DecodeError",
    "EncodeError",
    "LbrmError",
    "LogMissError",
    "LogOverflowError",
    "NotPrimaryError",
    "ReplicationError",
    "StaleEpochError",
    # heartbeat
    "FixedHeartbeatSchedule",
    "HeartbeatSchedule",
    "VariableHeartbeatSchedule",
    "heartbeat_times",
    "make_schedule",
    # storage & machines
    "LogEntry",
    "PacketLog",
    "ProtocolMachine",
    "TimerSet",
    "GapReport",
    "SequenceTracker",
    # protocol endpoints
    "MultiGroupProcess",
    "AimdRateController",
    "RateControlConfig",
    "DiscoveryClient",
    "LoggerRole",
    "LogServer",
    "LbrmReceiver",
    "LbrmSender",
    "FailoverPhase",
    "RetransChannelConfig",
    "RetransChannelSender",
    "retrans_group",
    "RotatingLogServer",
    "RotationSchedule",
    "RetransmitOrder",
    "StatAckPhase",
    "StatAckSource",
]
