"""Primary-log replication with an explicit commit point (§2.2.3, LLFT-grade).

The primary logging server reliably pushes every logged packet to an
explicit *membership* of followers and tracks two watermarks:

* ``primary_seq`` (kept by :class:`~repro.core.logger.LogServer`) —
  highest contiguous sequence the primary itself holds (reported to the
  source so the *application* may continue), and
* ``commit_seq`` — the **commit point**: the highest sequence durably
  held (as a contiguous prefix) by at least ``min_replicas_acked``
  followers.  The source may *discard* data only up to here, so no
  committed packet can be lost by any single-node failure.

With ``min_replicas_acked = 1`` a total log loss needs the primary and
the most up-to-date follower to fail simultaneously; raising it extends
the guarantee to the second-most up-to-date follower "and so forth", as
the paper notes.

Two things distinguish this from a bare watermark tracker:

* **Epochs** — every push is stamped with the primary's promotion term
  (``log_epoch``); acknowledgements from a different term are ignored,
  so a stale primary that comes back after a failover can never advance
  the new term's commit point (see DESIGN.md §10 for the full rules).
* **Membership is dynamic** — a freshly promoted primary *adopts* the
  surviving followers (:meth:`adopt`) and backfills their missing
  prefix from its own log (:meth:`missing_for` / :meth:`replicate_to`),
  so commitment stays replicated across successive failovers instead of
  degenerating to a single copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import Action, Address, SendUnicast
from repro.core.config import ReplicationConfig
from repro.core.machine import TimerSet
from repro.core.packets import ReplUpdatePacket

__all__ = ["FollowerState", "ReplicationManager"]


@dataclass
class FollowerState:
    """Primary-side view of one follower's progress."""

    # Cumulative contiguous prefix the follower confirmed (None = none).
    acked: int | None = None
    # Highest epoch the follower has acknowledged in.
    epoch_seen: int = 0
    # Outstanding (unacked) updates: seq -> (payload, retries so far).
    outstanding: dict[int, tuple[bytes, int]] = field(default_factory=dict)
    # True when the member joined via post-promotion adoption.
    adopted: bool = False


class ReplicationManager:
    """Commit-point bookkeeping: membership, epochs, and retransmissions."""

    #: Cap on backfill pushes issued per acknowledgement, so catching a
    #: freshly adopted follower up is paced by its own ack stream rather
    #: than dumped in one burst.
    BACKFILL_BATCH = 64

    def __init__(
        self,
        group: str,
        replicas: tuple[Address, ...],
        config: ReplicationConfig | None = None,
        *,
        epoch: int = 1,
    ) -> None:
        self._group = group
        self._config = config or ReplicationConfig()
        self._epoch = epoch
        self._members: dict[Address, FollowerState] = {r: FollowerState() for r in replicas}
        self.timers = TimerSet()
        self.stats = {
            "updates_sent": 0,
            "update_retries": 0,
            "acks_received": 0,
            "stale_epoch_acks": 0,
            "members_adopted": 0,
            "members_readopted": 0,
            "backfills": 0,
        }

    # -- introspection ----------------------------------------------------

    @property
    def replicas(self) -> tuple[Address, ...]:
        return tuple(self._members)

    @property
    def members(self) -> tuple[Address, ...]:
        """The follower membership (alias of :attr:`replicas`)."""
        return tuple(self._members)

    @property
    def epoch(self) -> int:
        """The promotion term this primary replicates under."""
        return self._epoch

    @property
    def commit_seq(self) -> int:
        """The commit point: highest sequence durably held by at least
        ``min_replicas_acked`` followers (0 if none)."""
        if not self._members:
            return 0
        acked = sorted(
            (st.acked if st.acked is not None else 0) for st in self._members.values()
        )
        m = min(self._config.min_replicas_acked, len(acked))
        # m-th highest cumulative ACK: index -m from the end.
        return acked[-m]

    @property
    def replica_seq(self) -> int:
        """Release point reported to the source (the commit point)."""
        return self.commit_seq

    def acked_by(self, replica: Address) -> int | None:
        """Cumulative sequence confirmed by ``replica`` (None = none yet)."""
        state = self._members.get(replica)
        return state.acked if state is not None else None

    # -- membership ----------------------------------------------------------

    def adopt(self, member: Address, now: float) -> bool:
        """Add ``member`` to the follower membership (post-promotion).

        Returns True when the member was new.  The adopted follower's
        progress is unknown until its first acknowledgement arrives;
        until then it holds the commit point at 0, which is exactly the
        conservative behaviour the release gate needs.

        Re-adopting a member that already carries progress (a recorded
        ACK or in-flight updates) resets it to a fresh
        :class:`FollowerState`: the carried-over watermark belongs to a
        previous incarnation of the follower, and trusting it would
        both inflate the commit point and make :meth:`missing_for` skip
        the prefix the restarted follower no longer holds.
        """
        state = self._members.get(member)
        if state is not None:
            if state.acked is None and not state.outstanding:
                return False
            self._reset_member(member)
            return False
        self._members[member] = FollowerState(adopted=True)
        self.stats["members_adopted"] += 1
        return True

    def note_regression(self, replica: Address, cum_seq: int, now: float, epoch: int = 0) -> bool:
        """Detect a follower whose cumulative ACK went *backwards*.

        Acknowledgements are cumulative and monotone, so a report
        strictly below the recorded watermark means the follower lost
        its log (crash + restart with empty state).  The stale
        :class:`FollowerState` is replaced with a fresh adopted one so
        the commit point stops counting the vanished prefix and the
        backfill path re-replicates it.  Returns True when a reset
        happened.  Acks from a foreign epoch are ignored here exactly
        as :meth:`on_ack` ignores them.
        """
        state = self._members.get(replica)
        if state is None or state.acked is None:
            return False
        if epoch and epoch != self._epoch:
            return False
        if cum_seq >= state.acked:
            return False
        self._reset_member(replica)
        return True

    def _reset_member(self, member: Address) -> None:
        self._members[member] = FollowerState(adopted=True)
        self.timers.cancel(("repl_retry", member))
        self.stats["members_readopted"] += 1

    # -- operations ----------------------------------------------------------

    def replicate(self, seq: int, payload: bytes, now: float) -> list[Action]:
        """Push one logged packet to every follower (reliable until acked)."""
        actions: list[Action] = []
        update = ReplUpdatePacket(
            group=self._group,
            seq=seq,
            payload=payload,
            log_epoch=self._epoch,
            commit_seq=self.commit_seq,
        )
        for member, state in self._members.items():
            state.outstanding[seq] = (payload, 0)
            self.timers.set(("repl_retry", member), now + self._config.update_retry)
            self.stats["updates_sent"] += 1
            actions.append(SendUnicast(dest=member, packet=update))
        return actions

    def replicate_to(self, member: Address, seq: int, payload: bytes, now: float) -> list[Action]:
        """Push one packet to a single follower (the backfill path)."""
        state = self._members.get(member)
        if state is None or seq in state.outstanding:
            return []
        state.outstanding[seq] = (payload, 0)
        self.timers.set(("repl_retry", member), now + self._config.update_retry)
        self.stats["updates_sent"] += 1
        self.stats["backfills"] += 1
        update = ReplUpdatePacket(
            group=self._group,
            seq=seq,
            payload=payload,
            log_epoch=self._epoch,
            commit_seq=self.commit_seq,
        )
        return [SendUnicast(dest=member, packet=update)]

    def on_ack(self, replica: Address, cum_seq: int, now: float, epoch: int = 0) -> bool:
        """Record a cumulative follower ACK.  True if the commit point grew.

        ``epoch`` 0 is the pre-epoch wire form and always accepted; any
        other value must match this primary's term — an ack from a
        different term (a follower already serving a newer primary, or a
        delayed ack from before a promotion) must not move this term's
        commit point.
        """
        state = self._members.get(replica)
        if state is None:
            return False
        if epoch and epoch != self._epoch:
            self.stats["stale_epoch_acks"] += 1
            return False
        self.stats["acks_received"] += 1
        if epoch > state.epoch_seen:
            state.epoch_seen = epoch
        before = self.commit_seq
        if state.acked is None or cum_seq > state.acked:
            state.acked = cum_seq
        pending = state.outstanding
        for seq in [s for s in pending if s <= cum_seq]:
            del pending[seq]
        if not pending:
            self.timers.cancel(("repl_retry", replica))
        return self.commit_seq > before

    def missing_for(self, member: Address, through: int) -> list[int]:
        """Sequences ``member`` has neither acked nor in flight, up to
        ``through`` — the backfill work list for an adopted (or lagging)
        follower, capped at :attr:`BACKFILL_BATCH` per call."""
        state = self._members.get(member)
        if state is None:
            return []
        start = (state.acked or 0) + 1
        out: list[int] = []
        for seq in range(start, through + 1):
            if seq in state.outstanding:
                continue
            out.append(seq)
            if len(out) >= self.BACKFILL_BATCH:
                break
        return out

    def poll(self, now: float) -> list[Action]:
        """Retransmit updates a follower has not confirmed in time."""
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] != "repl_retry":
                continue
            member = key[1]
            state = self._members.get(member)
            if state is None or not state.outstanding:
                continue
            pending = state.outstanding
            alive: dict[int, tuple[bytes, int]] = {}
            commit = self.commit_seq
            for seq in sorted(pending):
                payload, retries = pending[seq]
                if retries >= self._config.max_update_retries:
                    continue  # follower presumed dead for this entry; drop it
                alive[seq] = (payload, retries + 1)
                self.stats["update_retries"] += 1
                actions.append(
                    SendUnicast(
                        dest=member,
                        packet=ReplUpdatePacket(
                            group=self._group,
                            seq=seq,
                            payload=payload,
                            log_epoch=self._epoch,
                            commit_seq=commit,
                        ),
                    )
                )
            state.outstanding = alive
            if alive:
                self.timers.set(("repl_retry", member), now + self._config.update_retry)
        return actions

    def next_wakeup(self) -> float | None:
        return self.timers.next_deadline()
