"""Primary-log replication (§2.2.3).

The primary logging server reliably pushes every logged packet to its
replicas and tracks two watermarks:

* ``primary_seq`` — highest contiguous sequence the primary itself holds
  (reported to the source so the *application* may continue), and
* ``replica_seq`` — highest sequence known to be held by at least
  ``min_replicas_acked`` replicas (the source may *discard* data only up
  to here).

With ``min_replicas_acked = 1`` a total log loss needs the primary and
the most up-to-date replica to fail simultaneously; raising it extends
the guarantee to the second-most up-to-date replica "and so forth", as
the paper notes.
"""

from __future__ import annotations

from repro.core.actions import Action, Address, SendUnicast
from repro.core.config import ReplicationConfig
from repro.core.machine import TimerSet
from repro.core.packets import ReplUpdatePacket

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Primary-side bookkeeping of replica progress and retransmissions."""

    def __init__(
        self,
        group: str,
        replicas: tuple[Address, ...],
        config: ReplicationConfig | None = None,
    ) -> None:
        self._group = group
        self._replicas = tuple(replicas)
        self._config = config or ReplicationConfig()
        # Per-replica cumulative ACK (None = nothing confirmed yet).
        self._acked: dict[Address, int | None] = {r: None for r in self._replicas}
        # Per-replica outstanding updates: seq -> (payload, retries so far).
        self._outstanding: dict[Address, dict[int, tuple[bytes, int]]] = {
            r: {} for r in self._replicas
        }
        self.timers = TimerSet()
        self.stats = {"updates_sent": 0, "update_retries": 0, "acks_received": 0}

    # -- introspection ----------------------------------------------------

    @property
    def replicas(self) -> tuple[Address, ...]:
        return self._replicas

    @property
    def replica_seq(self) -> int:
        """Highest sequence held by >= ``min_replicas_acked`` replicas (0 if none)."""
        if not self._replicas:
            return 0
        acked = sorted((a if a is not None else 0) for a in self._acked.values())
        m = min(self._config.min_replicas_acked, len(acked))
        # m-th highest cumulative ACK: index -m from the end.
        return acked[-m]

    def acked_by(self, replica: Address) -> int | None:
        """Cumulative sequence confirmed by ``replica`` (None = none yet)."""
        return self._acked.get(replica)

    # -- operations ----------------------------------------------------------

    def replicate(self, seq: int, payload: bytes, now: float) -> list[Action]:
        """Push one logged packet to every replica (reliable until acked)."""
        actions: list[Action] = []
        update = ReplUpdatePacket(group=self._group, seq=seq, payload=payload)
        for replica in self._replicas:
            self._outstanding[replica][seq] = (payload, 0)
            self.timers.set(("repl_retry", replica), now + self._config.update_retry)
            self.stats["updates_sent"] += 1
            actions.append(SendUnicast(dest=replica, packet=update))
        return actions

    def on_ack(self, replica: Address, cum_seq: int, now: float) -> bool:
        """Record a cumulative replica ACK.  True if ``replica_seq`` grew."""
        if replica not in self._acked:
            return False
        self.stats["acks_received"] += 1
        before = self.replica_seq
        current = self._acked[replica]
        if current is None or cum_seq > current:
            self._acked[replica] = cum_seq
        pending = self._outstanding[replica]
        for seq in [s for s in pending if s <= cum_seq]:
            del pending[seq]
        if not pending:
            self.timers.cancel(("repl_retry", replica))
        return self.replica_seq > before

    def poll(self, now: float) -> list[Action]:
        """Retransmit updates a replica has not confirmed in time."""
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] != "repl_retry":
                continue
            replica = key[1]
            pending = self._outstanding.get(replica, {})
            if not pending:
                continue
            alive: dict[int, tuple[bytes, int]] = {}
            for seq in sorted(pending):
                payload, retries = pending[seq]
                if retries >= self._config.max_update_retries:
                    continue  # replica presumed dead for this entry; drop it
                alive[seq] = (payload, retries + 1)
                self.stats["update_retries"] += 1
                actions.append(
                    SendUnicast(
                        dest=replica,
                        packet=ReplUpdatePacket(group=self._group, seq=seq, payload=payload),
                    )
                )
            self._outstanding[replica] = alive
            if alive:
                self.timers.set(("repl_retry", replica), now + self._config.update_retry)
        return actions

    def next_wakeup(self) -> float | None:
        return self.timers.next_deadline()
