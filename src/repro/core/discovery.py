"""Expanding-ring scoped-multicast logger discovery (§2.2.1).

"In our implementation, each host uses a series of scoped multicast
discovery queries to locate a nearby logging service."

:class:`DiscoveryClient` multicasts DISCOVERY_QUERY with an increasing
TTL (1, 2, 4, … up to the configured max), waiting one query timeout per
ring.  The first reply wins — with ring-by-ring expansion the first
responder is also (topologically) the nearest logger.  If the largest
ring stays silent, the client reports failure and the application falls
back to static configuration or starts a local logger, as the paper
suggests.

Replies carry the logger's address *token* (a string) plus its hierarchy
level; several replies arriving in the same ring are ranked by level so
a site secondary beats the primary when both are in range.

On real (lossy) transports one silent window does not prove a ring
empty: ``ring_retries`` re-queries the same TTL before expanding, and
``timeout_backoff`` stretches the per-query wait geometrically (capped
at ``max_query_timeout``) so congestion gets progressively more room.
Exhaustion is surfaced both as a property and as a
:class:`~repro.core.events.DiscoveryExhausted` notification so a harness
can fall back to static configuration without polling.
"""

from __future__ import annotations

from repro.core.actions import Action, Address, Notify, SendMulticast
from repro.core.config import DiscoveryConfig
from repro.core.events import DiscoveryExhausted, LoggerDiscovered
from repro.core.machine import ProtocolMachine
from repro.core.packets import DiscoveryQueryPacket, DiscoveryReplyPacket, Packet

__all__ = ["DiscoveryClient"]


class DiscoveryClient(ProtocolMachine):
    """Finds the nearest logging server for one group."""

    def __init__(
        self,
        group: str,
        config: DiscoveryConfig | None = None,
        parse_token=None,
    ) -> None:
        super().__init__()
        self._group = group
        self._config = config or DiscoveryConfig()
        self._parse_token = parse_token or (lambda token: token)
        self._ttl = 0
        self._searching = False
        self._ring_replies: list[tuple[int, Address]] = []
        self._found: Address | None = None
        self._found_level: int | None = None
        self._exhausted = False
        self._ring_attempts = 0  # queries already sent at the current TTL
        self._timeout = self._config.query_timeout
        self.stats = {"queries_sent": 0, "replies_received": 0, "ring_retries": 0}

    # -- introspection ----------------------------------------------------

    @property
    def found(self) -> Address | None:
        """Address of the discovered logger, or None."""
        return self._found

    @property
    def found_level(self) -> int | None:
        """Hierarchy level of the discovered logger (0 = primary)."""
        return self._found_level

    @property
    def exhausted(self) -> bool:
        """True when every ring up to max_ttl stayed silent."""
        return self._exhausted

    @property
    def searching(self) -> bool:
        return self._searching

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        """Begin (or restart) the expanding-ring search."""
        self._ttl = self._config.initial_ttl
        self._searching = True
        self._exhausted = False
        self._found = None
        self._found_level = None
        self._ring_replies = []
        self._ring_attempts = 0
        self._timeout = self._config.query_timeout
        return self._query(now)

    def _query(self, now: float) -> list[Action]:
        self.stats["queries_sent"] += 1
        self._ring_attempts += 1
        self.timers.set(("ring",), now + self._timeout)
        query = DiscoveryQueryPacket(group=self._group, ttl=self._ttl)
        return [SendMulticast(group=self._group, packet=query, ttl=self._ttl)]

    def _next_timeout(self) -> None:
        """Back off the per-query wait after a silent window."""
        self._timeout = min(
            self._timeout * self._config.timeout_backoff, self._config.max_query_timeout
        )

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        if not isinstance(packet, DiscoveryReplyPacket) or not self._searching:
            return []
        self.stats["replies_received"] += 1
        self._ring_replies.append((packet.level, self._parse_token(packet.logger_addr)))
        return []

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] != "ring":
                continue
            if self._ring_replies:
                # Prefer the deepest hierarchy level in range: a site
                # secondary over the primary (both "near" in this ring).
                level, logger = max(self._ring_replies, key=lambda pair: pair[0])
                self._found = logger
                self._found_level = level
                self._searching = False
                actions.append(Notify(LoggerDiscovered(logger=logger, ttl=self._ttl)))
            elif self._ring_attempts <= self._config.ring_retries:
                # The window was silent, but one silent window doesn't
                # prove the ring empty on a lossy transport: re-query the
                # same TTL (bounded) with a widened wait before expanding.
                self.stats["ring_retries"] += 1
                self._next_timeout()
                actions.extend(self._query(now))
            elif self._ttl >= self._config.max_ttl:
                self._searching = False
                self._exhausted = True
                actions.append(
                    Notify(
                        DiscoveryExhausted(
                            max_ttl=self._config.max_ttl,
                            queries_sent=self.stats["queries_sent"],
                        )
                    )
                )
            else:
                self._ttl = min(self._ttl * 2, self._config.max_ttl)
                self._ring_attempts = 0
                self._next_timeout()
                actions.extend(self._query(now))
        return actions
