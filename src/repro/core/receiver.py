"""The LBRM receiver (§2, §2.2.1, §6).

A receiver detects loss from sequence gaps or MaxIT silence, and asks
its *local* logging server for the missing packets — immediately, with
no suppression delay, because the logging hierarchy guarantees at most
one upstream request per site (this is the §6 latency advantage over
wb-style recovery).  If the local logger stops answering, the receiver
escalates to the next logger in its chain, ultimately the primary; if
even the cached primary is gone it asks the source who the new primary
is (§2.2.3).

Reliability policy belongs to the receiver: recovery can be disabled,
bounded, or abandoned per-sequence (:meth:`LbrmReceiver.abandon`)
without any protocol involvement from the source.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.actions import (
    Action,
    Address,
    Deliver,
    JoinGroup,
    LeaveGroup,
    Notify,
    SendUnicast,
)
from repro.core.config import HeartbeatConfig, ReceiverConfig
from repro.core.events import (
    FreshnessLost,
    FreshnessRestored,
    LoggerUnreachable,
    LossDetected,
    RecoveryComplete,
    RecoveryFailed,
)
from repro.core.machine import ProtocolMachine
from repro.core.packets import (
    DataPacket,
    HeartbeatPacket,
    NackPacket,
    Packet,
    PrimaryInfoPacket,
    PrimaryQueryPacket,
    RetransPacket,
)
from repro.core.sequence import SequenceTracker

__all__ = ["LbrmReceiver"]


@dataclass
class _Recovery:
    """Per-missing-sequence recovery state."""

    seq: int
    detected_at: float
    attempts: int = 0  # NACKs sent to the current chain level
    level: int = 0  # index into the logger chain
    requeries: int = 0  # PRIMARY_QUERY rounds already burned on this seq


class LbrmReceiver(ProtocolMachine):
    """Receiving endpoint of one LBRM group.

    Parameters
    ----------
    group:
        The multicast group to subscribe to.
    logger_chain:
        Recovery targets nearest-first, e.g. ``(site_logger, primary)``.
        May start empty and be filled by discovery
        (:meth:`set_logger_chain`).
    source:
        The source's address, used only to re-locate the primary after
        total chain failure (§2.2.3).  Optional.
    """

    def __init__(
        self,
        group: str,
        config: ReceiverConfig | None = None,
        *,
        logger_chain: tuple[Address, ...] = (),
        source: Address | None = None,
        heartbeat: "HeartbeatConfig | None" = None,
        parse_token=None,
    ) -> None:
        super().__init__()
        self._group = group
        self._config = config or ReceiverConfig()
        # Knowing the sender's heartbeat schedule lets the freshness
        # watchdog adapt: after the i-th heartbeat the next one is due in
        # min(h_min·backoff^i, h_max), so silence beyond slack× that is a
        # real outage — §2.1.1's "small multiple (2 in our
        # implementation)" of the loss period.  Without it the watchdog
        # uses the fixed MaxIT, suited to fixed-heartbeat senders.
        self._heartbeat = heartbeat
        # Maps wire address tokens (strings) to transport addresses: the
        # simulator's identity by default; host:port parsing under asyncio.
        self._parse_token = parse_token or (lambda token: token)
        self._chain: tuple[Address, ...] = tuple(logger_chain)
        self._source = source
        self._tracker = SequenceTracker()
        self._recoveries: dict[int, _Recovery] = {}
        self._last_rx: float | None = None
        self._on_channel = False  # subscribed to the retransmission channel
        self._repeat_count = 0  # duplicates of the newest packet seen in a row
        self._expected_interval = self._config.max_idle_time
        self._fresh = True
        self._stale_since: float | None = None
        self._awaiting_primary = False
        # The MaxIT watchdog re-arms on *every* packet, so it lives in a
        # plain attribute instead of the TimerSet: one float store per
        # packet instead of a dict write plus min-cache upkeep.
        # next_wakeup()/poll() fold it back in.
        self._maxit_deadline: float | None = None
        # (interval, watchdog timeout) per heartbeat index, memoized:
        # every arriving packet re-reads its index's schedule, and
        # caching slack·interval alongside saves the per-packet multiply.
        # (Like the pre-existing interval memo, this bakes in the config
        # at first use — reconfiguring a live receiver is unsupported.)
        self._hb_wd: dict[int, tuple[float, float]] = {}

        # Receivers are the most numerous machines (thousands in the
        # paper's deployments), so their registry counters aggregate
        # across instances; per-instance numbers stay in `stats`.
        registry = obs.registry()
        self._trace = registry.trace
        self._obs_recovery_latency = registry.histogram("receiver.recovery_latency")
        self.stats = obs.stat_counters(
            "receiver",
            {
                "data_received": 0,
                "heartbeats_received": 0,
                "retrans_received": 0,
                "duplicates": 0,
                "nacks_sent": 0,
                "losses_detected": 0,
                "recoveries": 0,
                "recovery_failures": 0,
                "freshness_losses": 0,
            },
        )

    # -- introspection ----------------------------------------------------

    @property
    def group(self) -> str:
        return self._group

    @property
    def tracker(self) -> SequenceTracker:
        return self._tracker

    @property
    def fresh(self) -> bool:
        """False while the MaxIT freshness guarantee is broken."""
        return self._fresh

    @property
    def missing(self) -> frozenset[int]:
        """Sequence numbers currently being recovered."""
        return self._tracker.missing

    @property
    def logger_chain(self) -> tuple[Address, ...]:
        return self._chain

    # -- lifecycle ----------------------------------------------------------

    def start(self, now: float) -> list[Action]:
        """Join the group and arm the MaxIT freshness watchdog."""
        self._last_rx = now
        self._expected_interval = self._config.max_idle_time
        self._maxit_deadline = now + self._watchdog_timeout()
        return [JoinGroup(group=self._group)]

    def _watchdog_timeout(self) -> float:
        return self._config.watchdog_slack * self._expected_interval

    def _hb_schedule(self, hb_index: int) -> tuple[float, float]:
        """(heartbeat interval, watchdog timeout) for one schedule index."""
        if self._heartbeat is None:
            interval = self._config.max_idle_time
        else:
            hb = self._heartbeat
            interval = min(hb.h_min * hb.backoff**hb_index, hb.h_max)
        pair = (interval, self._config.watchdog_slack * interval)
        self._hb_wd[hb_index] = pair
        return pair

    def set_logger_chain(self, chain: tuple[Address, ...]) -> None:
        """Install (or replace) the recovery chain, nearest logger first."""
        self._chain = tuple(chain)
        for recovery in self._recoveries.values():
            recovery.level = min(recovery.level, max(len(self._chain) - 1, 0))

    def abandon(self, seqs: tuple[int, ...]) -> None:
        """Application decision: stop recovering ``seqs`` (§2 — receivers
        are not obligated to retrieve every lost packet)."""
        self._tracker.abandon(seqs)
        for seq in seqs:
            self._recoveries.pop(seq, None)
            self.timers.cancel(("nack", seq))

    # -- inbound ----------------------------------------------------------

    # Exact-type dispatch: four identity checks instead of an isinstance
    # ladder on the per-packet hot path.  Plain ``self._on_*`` calls keep
    # class-level monkeypatching working and let the interpreter's
    # adaptive method caches engage; handlers take (packet, now) —
    # receivers never use the src token.
    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        t = type(packet)
        if t is DataPacket:
            return self._on_data(packet, now)
        if t is HeartbeatPacket:
            return self._on_heartbeat(packet, now)
        if t is RetransPacket:
            return self._on_retrans(packet, now)
        if t is PrimaryInfoPacket:
            return self._on_primary_info(packet, now)
        # isinstance fallback for packet subclasses.
        if isinstance(packet, DataPacket):
            return self._on_data(packet, now)
        if isinstance(packet, HeartbeatPacket):
            return self._on_heartbeat(packet, now)
        if isinstance(packet, RetransPacket):
            return self._on_retrans(packet, now)
        if isinstance(packet, PrimaryInfoPacket):
            return self._on_primary_info(packet, now)
        return []

    def _on_data(self, packet: DataPacket, now: float) -> list[Action]:
        tracker = self._tracker
        report = tracker.observe_data(packet.seq)
        if report.is_new:
            self._repeat_count = 0
            hb_index = 0
        # A non-new observation never moves ``highest``, so checking the
        # tracker *after* observe_data sees the same value the packet was
        # compared against on arrival.
        elif tracker.started and packet.seq == tracker.highest:
            # A repeat of the newest packet occupies a heartbeat slot
            # (§7's small-packet extension): advance the watchdog along
            # the sender's backoff schedule like a heartbeat would.
            self._repeat_count += 1
            hb_index = self._repeat_count
        else:
            hb_index = -1
        if hb_index >= 0:
            sched = self._hb_wd.get(hb_index)
            if sched is None:
                sched = self._hb_schedule(hb_index)
            self._expected_interval = sched[0]
            timeout = sched[1]
        else:
            timeout = self._config.watchdog_slack * self._expected_interval
        # _liveness() inlined: this runs once per arriving packet.
        self._last_rx = now
        self._maxit_deadline = now + timeout
        actions = [] if self._fresh else self._freshness_restored(now)
        self.stats["data_received"] += 1
        if report.is_new:
            # Receiver-reliable: fresh data is delivered immediately, never
            # held for in-order completion (§1, §5).
            actions.append(Deliver(packet.seq, packet.payload, report.filled_gap))
            if report.filled_gap:
                # A sender repeat (§7 small-packet extension) or a
                # re-multicast repaired this gap before our NACK did.
                recovery = self._recoveries.pop(packet.seq, None)
                self.timers.cancel(("nack", packet.seq))
                if recovery is not None:
                    self.stats["recoveries"] += 1
                    latency = now - recovery.detected_at
                    self._obs_recovery_latency.observe(latency)
                    self._trace.emit(
                        now, "receiver.recovery_complete", seq=packet.seq, latency=latency
                    )
                    actions.append(Notify(RecoveryComplete(seq=packet.seq, latency=latency)))
        else:
            self.stats["duplicates"] += 1
        if report.new_gaps:
            actions.extend(self._begin_recovery(report.new_gaps, now, via_silence=False))
        if self._on_channel:
            actions.extend(self._maybe_leave_channel())
        return actions

    def _on_heartbeat(self, packet: HeartbeatPacket, now: float) -> list[Action]:
        sched = self._hb_wd.get(packet.hb_index)
        if sched is None:
            sched = self._hb_schedule(packet.hb_index)
        self._expected_interval = sched[0]
        self._last_rx = now
        self._maxit_deadline = now + sched[1]
        actions = [] if self._fresh else self._freshness_restored(now)
        self.stats["heartbeats_received"] += 1
        report = self._tracker.observe_heartbeat(packet.seq)
        if report.new_gaps:
            actions.extend(self._begin_recovery(report.new_gaps, now, via_silence=False))
        return actions

    def _on_retrans(self, packet: RetransPacket, now: float) -> list[Action]:
        actions: list[Action] = []
        self.stats["retrans_received"] += 1
        report = self._tracker.observe_data(packet.seq)
        if report.is_new:
            actions.append(Deliver(packet.seq, packet.payload, True))
            recovery = self._recoveries.pop(packet.seq, None)
            self.timers.cancel(("nack", packet.seq))
            if recovery is not None:
                self.stats["recoveries"] += 1
                latency = now - recovery.detected_at
                self._obs_recovery_latency.observe(latency)
                self._trace.emit(
                    now, "receiver.recovery_complete", seq=packet.seq, latency=latency
                )
                actions.append(Notify(RecoveryComplete(seq=packet.seq, latency=latency)))
        else:
            self.stats["duplicates"] += 1
        if report.new_gaps:
            actions.extend(self._begin_recovery(report.new_gaps, now, via_silence=False))
        if self._on_channel:
            actions.extend(self._maybe_leave_channel())
        return actions

    def _on_primary_info(self, packet: PrimaryInfoPacket, now: float) -> list[Action]:
        """The source told us the current primary: extend the chain."""
        if not self._awaiting_primary:
            return []
        self._awaiting_primary = False
        new_primary = self._parse_token(packet.primary_addr)
        if new_primary not in self._chain:
            self._chain = self._chain + (new_primary,)
        actions: list[Action] = []
        for recovery in self._recoveries.values():
            recovery.level = len(self._chain) - 1
            recovery.attempts = 0
            self.timers.set(("nack", recovery.seq), now)
        return actions

    # -- loss detection & recovery -----------------------------------------

    def _freshness_restored(self, now: float) -> list[Action]:
        self._fresh = True
        silent = now - self._stale_since if self._stale_since is not None else 0.0
        self._stale_since = None
        return [Notify(FreshnessRestored(silent_for=silent))]

    def _begin_recovery(self, gaps: tuple[int, ...], now: float, via_silence: bool) -> list[Action]:
        if not gaps:  # the per-packet common case: nothing newly missing
            return []
        gaps = tuple(s for s in gaps if s not in self._recoveries)
        if not gaps:
            return []
        self.stats["losses_detected"] += len(gaps)
        self._trace.emit(now, "receiver.loss_detected", seqs=gaps, via_silence=via_silence)
        actions: list[Action] = [Notify(LossDetected(seqs=gaps, via_silence=via_silence))]
        fallback = self._config.retrans_channel_fallback
        if fallback > 0:
            # §7 extension: recover by listening to the retransmission
            # channel; the logging hierarchy is only a fallback for
            # packets that have aged off it.
            if not self._on_channel:
                self._on_channel = True
                self.stats["channel_joins"] = self.stats.get("channel_joins", 0) + 1
                actions.append(JoinGroup(group=f"{self._group}/retrans"))
            for seq in gaps:
                self._recoveries[seq] = _Recovery(seq=seq, detected_at=now)
                self.timers.set(("nack", seq), now + fallback)
            return actions
        for seq in gaps:
            self._recoveries[seq] = _Recovery(seq=seq, detected_at=now)
            self.timers.set(("nack", seq), now + self._config.nack_delay)
        if self._config.nack_delay == 0.0:
            actions.extend(self._fire_nacks(list(gaps), now))
        return actions

    def _maybe_leave_channel(self) -> list[Action]:
        """Unsubscribe from the retransmission channel once whole again."""
        if self._on_channel and not self._recoveries:
            self._on_channel = False
            return [LeaveGroup(group=f"{self._group}/retrans")]
        return []

    def next_wakeup(self) -> float | None:
        # Called twice per delivery (node wakeup bookkeeping).  In the
        # steady state no NACK timers are armed, so peeking at the
        # TimerSet's dict directly skips a method call on the fast path.
        timers = self.timers
        if not timers._deadlines:
            return self._maxit_deadline
        due = timers.next_deadline()
        maxit = self._maxit_deadline
        if maxit is None:
            return due
        if due is None or maxit < due:
            return maxit
        return due

    def poll(self, now: float) -> list[Action]:
        maxit = self._maxit_deadline
        if maxit is not None and maxit <= now:
            actions = self._on_maxit(now)
        else:
            actions = []
        due = self.timers.pop_due(now)
        if due:
            actions.extend(self._fire_nacks([key[1] for key in due], now))
        return actions

    def _on_maxit(self, now: float) -> list[Action]:
        idle = now - self._last_rx if self._last_rx is not None else self._config.max_idle_time
        self._maxit_deadline = now + self._watchdog_timeout()
        if not self._fresh:
            return []
        self._fresh = False
        self._stale_since = self._last_rx
        self.stats["freshness_losses"] += 1
        self._trace.emit(now, "receiver.freshness_lost", idle_for=idle)
        # Silence tells the receiver *that* it may have lost packets, not
        # which — recovery begins when the next packet reveals the gap.
        return [
            Notify(FreshnessLost(idle_for=idle)),
            Notify(LossDetected(seqs=(), via_silence=True)),
        ]

    def _fire_nacks(self, seqs: list[int], now: float) -> list[Action]:
        """Send (or retry) retransmission requests, batched per target."""
        actions: list[Action] = []
        by_target: dict[Address, list[int]] = {}
        for seq in sorted(seqs):
            recovery = self._recoveries.get(seq)
            if recovery is None:
                self.timers.cancel(("nack", seq))
                continue
            if recovery.attempts >= self._config.max_nack_retries + 1:
                actions.extend(self._escalate(recovery, now))
                continue
            target = self._target_for(recovery)
            if target is None:
                actions.extend(self._give_up(recovery, now))
                continue
            recovery.attempts += 1
            by_target.setdefault(target, []).append(seq)
            self.timers.set(("nack", seq), now + self._config.nack_retry)
        for target, batch in by_target.items():
            for start in range(0, len(batch), NackPacket.MAX_SEQS):
                chunk = tuple(batch[start : start + NackPacket.MAX_SEQS])
                self.stats["nacks_sent"] += 1
                self._trace.emit(now, "receiver.nack", target=str(target), seqs=chunk)
                actions.append(SendUnicast(dest=target, packet=NackPacket(group=self._group, seqs=chunk)))
        return actions

    def _target_for(self, recovery: _Recovery) -> Address | None:
        if not self._chain:
            return None
        level = min(recovery.level, len(self._chain) - 1)
        return self._chain[level]

    def _escalate(self, recovery: _Recovery, now: float) -> list[Action]:
        """The current logger exhausted its retries: go up the hierarchy."""
        current = self._target_for(recovery)
        actions: list[Action] = []
        if current is not None:
            actions.append(Notify(LoggerUnreachable(logger=current)))
        if recovery.level + 1 < len(self._chain):
            recovery.level += 1
            recovery.attempts = 0
            self.timers.set(("nack", recovery.seq), now)
            return actions
        if self._source is not None and recovery.requeries < 1:
            # Whole chain dead: ask the source for the current primary.
            # One re-query per recovery — if the answer is the same dead
            # primary (no replicas to fail over to), give up cleanly
            # rather than NACK forever.
            recovery.requeries += 1
            recovery.attempts = 0
            self.timers.set(("nack", recovery.seq), now + self._config.nack_retry)
            if not self._awaiting_primary:
                self._awaiting_primary = True
                actions.append(
                    SendUnicast(dest=self._source, packet=PrimaryQueryPacket(group=self._group))
                )
            return actions
        actions.extend(self._give_up(recovery, now))
        return actions

    def _give_up(self, recovery: _Recovery, now: float) -> list[Action]:
        self._recoveries.pop(recovery.seq, None)
        self.timers.cancel(("nack", recovery.seq))
        self._tracker.abandon((recovery.seq,))
        self.stats["recovery_failures"] += 1
        self._trace.emit(now, "receiver.recovery_failed", seq=recovery.seq, attempts=recovery.attempts)
        actions: list[Action] = [Notify(RecoveryFailed(seq=recovery.seq, attempts=recovery.attempts))]
        actions.extend(self._maybe_leave_channel())
        return actions

