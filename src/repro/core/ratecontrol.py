"""Sender rate control from statistical-acknowledgement feedback (§5).

"As part of our future work, we are exploring the use of the selective
acking mechanism as a resource management tool; in particular, we are
looking into use statistical acknowledgement information to slow down
the sender during periods of high loss."

:class:`AimdRateController` turns per-packet statack outcomes into an
AIMD send rate, the standard TCP-compatible control law:

* every packet whose full Designated-Acker set acknowledged it is a
  congestion-free signal → additive rate increase;
* every packet with missing ACKs at the deadline is a loss signal →
  multiplicative rate decrease.

The controller is advisory (receiver-reliable sources are not flow
controlled by the protocol): the application reads
:meth:`suggested_interval` — or :meth:`earliest_send` for a concrete
clock reading — and paces itself.  :class:`~repro.core.sender.LbrmSender`
hosts one when given a :class:`RateControlConfig` and feeds it from the
statack engine automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError

__all__ = ["RateControlConfig", "AimdRateController"]


@dataclass(frozen=True)
class RateControlConfig:
    """AIMD parameters in the rate domain (packets/second)."""

    initial_rate: float = 10.0
    min_rate: float = 0.1
    max_rate: float = 1000.0
    additive_increase: float = 1.0  # pkt/s added per fully-ACKed packet
    multiplicative_decrease: float = 0.5  # rate factor per loss signal

    def __post_init__(self) -> None:
        if self.min_rate <= 0:
            raise ConfigError(f"min_rate must be positive, got {self.min_rate}")
        if self.max_rate < self.min_rate:
            raise ConfigError("max_rate must be >= min_rate")
        if not self.min_rate <= self.initial_rate <= self.max_rate:
            raise ConfigError("initial_rate must lie within [min_rate, max_rate]")
        if self.additive_increase <= 0:
            raise ConfigError("additive_increase must be positive")
        if not 0.0 < self.multiplicative_decrease < 1.0:
            raise ConfigError("multiplicative_decrease must be in (0, 1)")


class AimdRateController:
    """Additive-increase / multiplicative-decrease pacing advisor."""

    def __init__(self, config: RateControlConfig | None = None) -> None:
        self._config = config or RateControlConfig()
        self._rate = self._config.initial_rate
        self._last_send: float | None = None
        self.stats = {"loss_signals": 0, "success_signals": 0}

    @property
    def rate(self) -> float:
        """Current allowed send rate in packets/second."""
        return self._rate

    def suggested_interval(self) -> float:
        """Seconds the application should wait between sends."""
        return 1.0 / self._rate

    def on_success(self) -> None:
        """A packet's full Designated-Acker set acknowledged it."""
        self.stats["success_signals"] += 1
        self._rate = min(self._rate + self._config.additive_increase, self._config.max_rate)

    def on_loss(self) -> None:
        """Missing ACKs at the t_wait deadline: the network is losing."""
        self.stats["loss_signals"] += 1
        self._rate = max(self._rate * self._config.multiplicative_decrease, self._config.min_rate)

    def note_send(self, now: float) -> None:
        """Record a transmission for :meth:`earliest_send` pacing."""
        self._last_send = now

    def earliest_send(self, now: float) -> float:
        """Earliest time the next packet should go out (>= now)."""
        if self._last_send is None:
            return now
        return max(now, self._last_send + self.suggested_interval())

    def can_send(self, now: float) -> bool:
        """True when pacing permits a transmission at ``now``."""
        return self.earliest_send(now) <= now
