"""Retransmission strategy selection (§2.3.2 and §2.2.1).

Two decisions are made in LBRM about *how* to repair a loss:

* The **source**, on a statistical-acknowledgement deadline, chooses
  between an immediate multicast retransmission (missing ACKs represent
  many sites), targeted unicasts (small group, every logger acks), or
  doing nothing and letting NACK-driven recovery handle stragglers.
* A **secondary logger**, fielding requests for one packet from its
  site, chooses between unicast replies and one site-scoped (TTL-bound)
  re-multicast once enough distinct receivers have asked — or
  immediately when the logger itself also lost the packet, since that
  implies the whole site did (§2.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro import obs
from repro.core.actions import Address
from repro.core.config import LoggerConfig, StatAckConfig

__all__ = [
    "RetransmitDecision",
    "SourceRetransmitPolicy",
    "SiteRequestTracker",
]


class RetransmitDecision(Enum):
    """What the source should do when a packet's ACK window closes."""

    NONE = "none"  # all ACKs arrived, or losses too isolated to matter
    UNICAST = "unicast"  # small group: retransmit to the known missing ackers
    MULTICAST = "multicast"  # missing ACKs represent many sites: re-multicast now


@dataclass(frozen=True, slots=True)
class SourceRetransmitPolicy:
    """The source-side strategy of §2.3.2.

    ``sites_per_acker = N_sl / expected_ackers`` measures how many sites
    one Designated Acker statistically represents.  "With a 500 site
    configuration, each Designated Acker represents 25 sites so multicast
    is warranted if even a single acknowledgement is lost.  However, with
    a 20 site configuration, it is feasible for each logging server to
    acknowledge" — and a missing ACK then identifies the one site to
    unicast to.
    """

    config: StatAckConfig = field(default_factory=StatAckConfig)

    def decide(self, missing_acks: int, expected_ackers: int, n_sl: float) -> RetransmitDecision:
        """Pick a strategy given the ACK shortfall at deadline."""
        if missing_acks <= 0 or expected_ackers <= 0:
            decision = RetransmitDecision.NONE
        elif n_sl / expected_ackers >= self.config.sites_per_acker_multicast:
            decision = RetransmitDecision.MULTICAST
        else:
            decision = RetransmitDecision.UNICAST
        obs.registry().counter("retransmit.decision", choice=decision.value).inc()
        return decision


class SiteRequestTracker:
    """Secondary-logger bookkeeping for the site re-multicast decision.

    Counts *distinct* requesters per sequence number within a sliding
    window.  ``record`` returns True the moment the count crosses the
    configured threshold (and only once per window, so a repair is never
    re-multicast twice for the same burst of requests).
    """

    def __init__(self, config: LoggerConfig | None = None, window: float = 1.0) -> None:
        self._config = config or LoggerConfig()
        self._window = window
        # Config is frozen, so the threshold can be baked in: record()
        # runs once per NACKed sequence and the property indirection
        # showed up in logger-saturation profiles.
        self._threshold = self._config.remulticast_threshold
        # seq -> (window start, distinct requesters, already re-multicast?)
        self._state: dict[int, tuple[float, set[Address], bool]] = {}
        self._obs_fired = obs.registry().counter("retransmit.site_remulticast")

    @property
    def threshold(self) -> int:
        return self._threshold

    def record(self, seq: int, requester: Address, now: float, self_lost: bool = False) -> bool:
        """Record a request; True ⇒ re-multicast the repair site-wide now.

        ``self_lost`` marks that this logger also had to recover ``seq``
        from upstream — strong evidence the loss hit the whole site, so
        the threshold drops to a single request.
        """
        state = self._state.get(seq)
        if state is not None and now - state[0] <= self._window:
            if state[2]:
                # Already re-multicast this window — the common steady
                # state during a repair storm.  Requesters are still
                # tracked (for requesters()), but the threshold math and
                # the tuple unpack are skipped.
                state[1].add(requester)
                return False
            start, requesters, _ = state
            requesters.add(requester)
        else:
            start = now
            requesters = {requester}
            self._state[seq] = (start, requesters, False)
        threshold = 1 if self_lost else self._threshold
        if len(requesters) < threshold:
            return False
        self._state[seq] = (start, requesters, True)
        self._obs_fired.inc()
        return True

    def requesters(self, seq: int) -> frozenset[Address]:
        """Distinct requesters seen for ``seq`` in the current window."""
        state = self._state.get(seq)
        return frozenset(state[1]) if state else frozenset()

    def sweep(self, now: float) -> None:
        """Drop windows that have aged out (periodic housekeeping)."""
        stale = [seq for seq, (start, _, _) in self._state.items() if now - start > self._window]
        for seq in stale:
            del self._state[seq]
