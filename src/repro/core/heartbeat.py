"""Heartbeat scheduling — the variable-backoff scheme of §2.1.

The sender keeps an inter-heartbeat time ``h``.  On every data packet
``h`` resets to ``h_min``; after each heartbeat it is multiplied by the
backoff factor (2 in the paper's implementation, Figure 3) until capped
at ``h_max``.  The effect: heartbeats cluster right after data — when a
loss is most likely to need fast detection — and thin out as the channel
stays idle.

:class:`FixedHeartbeatSchedule` implements the comparison scheme of
§2.1.2 (constant period ``h_min``), and :func:`heartbeat_times` produces
the full transmission timeline used by the Figure 3/4/5 benchmarks.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro import obs
from repro.core.config import HeartbeatConfig

__all__ = [
    "HeartbeatSchedule",
    "VariableHeartbeatSchedule",
    "FixedHeartbeatSchedule",
    "make_schedule",
    "heartbeat_times",
]


class HeartbeatSchedule(Protocol):
    """Scheduling policy for keep-alive packets.

    The sender calls :meth:`on_data` when application data goes out and
    :meth:`on_heartbeat` when a heartbeat goes out; both return the
    absolute time the *next* heartbeat is due (or ``None`` if the
    schedule has gone quiet).
    """

    def on_data(self, now: float) -> float | None:
        """Data was transmitted at ``now``; returns next heartbeat time."""
        ...

    def on_heartbeat(self, now: float) -> float | None:
        """A heartbeat was transmitted at ``now``; returns the next one."""
        ...

    @property
    def next_due(self) -> float | None:
        """Absolute time of the next scheduled heartbeat."""
        ...


class VariableHeartbeatSchedule:
    """The paper's variable (exponential-backoff) heartbeat (§2.1)."""

    def __init__(self, config: HeartbeatConfig | None = None) -> None:
        self._config = config or HeartbeatConfig()
        self._h = self._config.h_min
        self._next: float | None = None
        registry = obs.registry()
        self._obs_sent = registry.counter("heartbeat.sent", scheme="variable")
        self._obs_interval = registry.histogram("heartbeat.interval")

    @property
    def config(self) -> HeartbeatConfig:
        return self._config

    @property
    def current_interval(self) -> float:
        """The current inter-heartbeat time ``h``."""
        return self._h

    @property
    def next_due(self) -> float | None:
        return self._next

    def on_data(self, now: float) -> float | None:
        # "When the sender transmits a data packet, it initializes the
        # inter-heartbeat time h to h_min."
        self._h = self._config.h_min
        self._next = now + self._h
        self._obs_interval.observe(self._h)
        return self._next

    def on_heartbeat(self, now: float) -> float | None:
        # "After every subsequent heartbeat packet is sent, the value of
        # h is [multiplied by the backoff] ... until it reaches h_max."
        self._obs_sent.inc()
        self._h = min(self._h * self._config.backoff, self._config.h_max)
        self._next = now + self._h
        self._obs_interval.observe(self._h)
        return self._next


class FixedHeartbeatSchedule:
    """Constant-period heartbeat — the §2.1.2 comparison baseline."""

    def __init__(self, interval: float = 0.25) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._interval = interval
        self._next: float | None = None
        self._obs_sent = obs.registry().counter("heartbeat.sent", scheme="fixed")

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def next_due(self) -> float | None:
        return self._next

    def on_data(self, now: float) -> float | None:
        self._next = now + self._interval
        return self._next

    def on_heartbeat(self, now: float) -> float | None:
        self._obs_sent.inc()
        self._next = now + self._interval
        return self._next


def make_schedule(config: HeartbeatConfig) -> HeartbeatSchedule:
    """Build the schedule a config describes (fixed configs degenerate)."""
    if config.is_fixed:
        return FixedHeartbeatSchedule(interval=config.h_min)
    return VariableHeartbeatSchedule(config)


def heartbeat_times(
    config: HeartbeatConfig,
    data_times: list[float],
    until: float | None = None,
) -> list[float]:
    """Compute every heartbeat transmission time for a data timeline.

    ``data_times`` are the (sorted, ascending) instants the application
    sent data; heartbeats are generated between and after them per the
    variable schedule, stopping at ``until`` (default: the last data
    time — i.e. only inter-data heartbeats, as in Figures 4/5 where the
    stream is periodic).

    This is the reference generator behind the Figure 3 timeline and the
    simulated cross-check of the closed-form overhead math.
    """
    if not data_times:
        return []
    if sorted(data_times) != list(data_times):
        raise ValueError("data_times must be ascending")
    horizon = until if until is not None else data_times[-1]
    schedule = VariableHeartbeatSchedule(config)
    beats: list[float] = []
    remaining = list(data_times)
    next_data = remaining.pop(0)
    next_hb = schedule.on_data(next_data)
    while True:
        next_data = remaining[0] if remaining else None
        if next_hb is None:
            if next_data is None:
                break
            remaining.pop(0)
            next_hb = schedule.on_data(next_data)
            continue
        if next_data is not None and next_data <= next_hb:
            # "every heartbeat packet is preempted by the next data packet"
            remaining.pop(0)
            next_hb = schedule.on_data(next_data)
            continue
        if next_hb > horizon:
            break
        beats.append(next_hb)
        next_hb = schedule.on_heartbeat(next_hb)
    return beats
