"""Packet log storage for logging servers (§2).

"The length of time that the logging server must store a packet is
application-specific.  Some applications may only store packets until
their 'useful lifetime' has expired.  Other applications with stronger
persistence needs may log all packets, writing them to disk once
in-memory buffers are full."

:class:`PacketLog` implements both policies: optional entry lifetime,
optional in-memory caps, and an optional append-only disk spool that
oldest entries overflow into (they remain retrievable, just slower —
exactly the paper's memory-then-disk model).
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from dataclasses import dataclass

from repro import obs
from repro.core.errors import LogMissError

__all__ = ["LogEntry", "PacketLog"]

_SPOOL_HEADER = struct.Struct("!QdI")  # seq, logged_at, payload length


@dataclass(frozen=True, slots=True)
class LogEntry:
    """One logged packet: its sequence number, payload, and log time."""

    seq: int
    payload: bytes
    logged_at: float


class PacketLog:
    """Sequence-indexed store of transmitted packets.

    Invariants (property-tested):

    * ``get(seq)`` returns exactly what was appended for ``seq`` until it
      expires or is evicted past every cap.
    * append is idempotent: re-logging a sequence already held (e.g. a
      retransmission observed on the group) never changes the payload.
    * memory use never exceeds ``max_packets``/``max_bytes`` when set;
      overflow goes to the spool when configured, otherwise the oldest
      entries are dropped.
    """

    def __init__(
        self,
        max_packets: int = 0,
        max_bytes: int = 0,
        lifetime: float = 0.0,
        spool_path: str | None = None,
    ) -> None:
        self._max_packets = max_packets
        self._max_bytes = max_bytes
        self._lifetime = lifetime
        self._entries: "OrderedDict[int, LogEntry]" = OrderedDict()
        self._byte_size = 0
        self._spool_path = spool_path
        self._spool_index: dict[int, tuple[int, int, float]] = {}  # seq -> (offset, len, logged_at)
        self._spool_file = None
        self._dropped = 0
        # Process-wide totals across every PacketLog instance; per-store
        # levels are published by the owning LogServer's labelled gauges.
        registry = obs.registry()
        self._obs_appended = registry.counter("log_store.appended")
        self._obs_expired = registry.counter("log_store.expired")
        self._obs_evicted = registry.counter("log_store.evicted")
        self._obs_spooled = registry.counter("log_store.spooled")
        if spool_path is not None:
            self._spool_file = open(spool_path, "a+b")

    # -- introspection ----------------------------------------------------

    @property
    def byte_size(self) -> int:
        """Total payload bytes currently held in memory."""
        return self._byte_size

    @property
    def dropped(self) -> int:
        """Entries evicted without spool (lost to the log forever)."""
        return self._dropped

    @property
    def lowest(self) -> int | None:
        """Smallest retrievable sequence number (memory or spool).

        Entries usually arrive in sequence order, but retransmissions
        observed on the group can append out of order — so this scans
        keys rather than trusting insertion order.
        """
        candidates = []
        if self._entries:
            candidates.append(min(self._entries))
        if self._spool_index:
            candidates.append(min(self._spool_index))
        return min(candidates) if candidates else None

    @property
    def highest(self) -> int | None:
        """Largest retrievable sequence number."""
        candidates = []
        if self._entries:
            candidates.append(max(self._entries))
        if self._spool_index:
            candidates.append(max(self._spool_index))
        return max(candidates) if candidates else None

    def __len__(self) -> int:
        return len(self._entries) + len(self._spool_index)

    def __contains__(self, seq: int) -> bool:
        return seq in self._entries or seq in self._spool_index

    # -- mutation ----------------------------------------------------------

    def append(self, seq: int, payload: bytes, now: float) -> bool:
        """Log ``payload`` under ``seq``.  Returns False if already held."""
        if seq in self._entries or seq in self._spool_index:
            return False
        self._entries[seq] = LogEntry(seq=seq, payload=payload, logged_at=now)
        self._byte_size += len(payload)
        self._obs_appended.inc()
        self._enforce_caps()
        return True

    def get(self, seq: int, now: float | None = None) -> LogEntry:
        """Retrieve the entry for ``seq``.

        Raises :class:`~repro.core.errors.LogMissError` when the sequence
        was never logged, expired, or was evicted without a spool.
        """
        if now is not None and self._lifetime:
            self.expire(now)
        entry = self._entries.get(seq)
        if entry is not None:
            return entry
        spooled = self._spool_index.get(seq)
        if spooled is not None:
            return self._read_spool(seq, *spooled)
        raise LogMissError(seq)

    def peek(self, seq: int) -> LogEntry | None:
        """:meth:`get` without expiry or a miss exception.

        For callers that already ran :meth:`expire` and treat a miss as a
        normal branch (the NACK service path), this replaces a
        ``seq in log`` probe followed by ``get`` with one lookup.
        """
        entry = self._entries.get(seq)
        if entry is not None:
            return entry
        spooled = self._spool_index.get(seq)
        if spooled is not None:
            return self._read_spool(seq, *spooled)
        return None

    def expire(self, now: float) -> int:
        """Drop entries older than the configured lifetime.  Returns count."""
        if not self._lifetime:
            return 0
        cutoff = now - self._lifetime
        expired = [seq for seq, e in self._entries.items() if e.logged_at < cutoff]
        for seq in expired:
            entry = self._entries.pop(seq)
            self._byte_size -= len(entry.payload)
        spool_expired = [seq for seq, (_, _, t) in self._spool_index.items() if t < cutoff]
        for seq in spool_expired:
            del self._spool_index[seq]
        total = len(expired) + len(spool_expired)
        if total:
            self._obs_expired.inc(total)
        return total

    def trim_below(self, seq: int) -> int:
        """Discard every entry with sequence < ``seq`` (e.g. after the
        application declares old state superseded).  Returns count."""
        doomed = [s for s in self._entries if s < seq]
        for s in doomed:
            entry = self._entries.pop(s)
            self._byte_size -= len(entry.payload)
        spool_doomed = [s for s in self._spool_index if s < seq]
        for s in spool_doomed:
            del self._spool_index[s]
        return len(doomed) + len(spool_doomed)

    def close(self) -> None:
        """Close the spool file, if any."""
        if self._spool_file is not None:
            self._spool_file.close()
            self._spool_file = None

    # -- internals ----------------------------------------------------------

    def _enforce_caps(self) -> None:
        while self._over_cap():
            seq, entry = self._entries.popitem(last=False)
            self._byte_size -= len(entry.payload)
            if self._spool_file is not None:
                self._write_spool(entry)
                self._obs_spooled.inc()
            else:
                self._dropped += 1
                self._obs_evicted.inc()

    def _over_cap(self) -> bool:
        if self._max_packets and len(self._entries) > self._max_packets:
            return True
        if self._max_bytes and self._byte_size > self._max_bytes:
            return True
        return False

    def _write_spool(self, entry: LogEntry) -> None:
        assert self._spool_file is not None
        self._spool_file.seek(0, os.SEEK_END)
        offset = self._spool_file.tell()
        self._spool_file.write(_SPOOL_HEADER.pack(entry.seq, entry.logged_at, len(entry.payload)))
        self._spool_file.write(entry.payload)
        self._spool_file.flush()
        self._spool_index[entry.seq] = (offset, len(entry.payload), entry.logged_at)

    def _read_spool(self, seq: int, offset: int, length: int, logged_at: float) -> LogEntry:
        assert self._spool_file is not None
        self._spool_file.seek(offset)
        header = self._spool_file.read(_SPOOL_HEADER.size)
        stored_seq, stored_at, stored_len = _SPOOL_HEADER.unpack(header)
        if stored_seq != seq or stored_len != length:
            raise LogMissError(seq)
        payload = self._spool_file.read(stored_len)
        return LogEntry(seq=seq, payload=payload, logged_at=stored_at)
