"""Protocol events surfaced to applications via :class:`~repro.core.actions.Notify`.

Events let an application observe what its LBRM endpoint is doing —
detecting a loss, losing freshness, being promoted from replica to
primary — without the protocol machines ever calling back into
application code (which would break the sans-IO discipline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.core.actions import Address

__all__ = [
    "Event",
    "LossDetected",
    "FreshnessLost",
    "FreshnessRestored",
    "RecoveryComplete",
    "RecoveryFailed",
    "EpochStarted",
    "DesignatedAcker",
    "Remulticast",
    "LoggerDiscovered",
    "DiscoveryExhausted",
    "LoggerUnreachable",
    "PrimaryFailover",
    "PromotedToPrimary",
    "SourceBufferReleased",
    "FaultyAckerDetected",
]


class Event:
    """Marker base class for protocol events."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class LossDetected(Event):
    """The receiver found a sequence gap or MaxIT silence.

    ``seqs`` are the missing sequence numbers; ``via_silence`` is True
    when the trigger was heartbeat absence rather than a gap.
    """

    seqs: tuple[int, ...]
    via_silence: bool = False


@dataclass(frozen=True, slots=True)
class FreshnessLost(Event):
    """No packet (data or heartbeat) for MaxIT: state may be stale.

    ``idle_for`` is the measured silence when staleness was declared.
    """

    idle_for: float


@dataclass(frozen=True, slots=True)
class FreshnessRestored(Event):
    """Traffic resumed after a :class:`FreshnessLost` notification."""

    silent_for: float


@dataclass(frozen=True, slots=True)
class RecoveryComplete(Event):
    """A previously missing sequence number was recovered.

    ``latency`` measures detection-to-recovery time — the metric the
    paper's §2.2.2 and §6 latency comparisons are about.
    """

    seq: int
    latency: float


@dataclass(frozen=True, slots=True)
class RecoveryFailed(Event):
    """All recovery retries for ``seq`` were exhausted."""

    seq: int
    attempts: int


@dataclass(frozen=True, slots=True)
class EpochStarted(Event):
    """The source began a new statistical-acknowledgement epoch."""

    epoch: int
    p_ack: float
    expected_ackers: int = 0


@dataclass(frozen=True, slots=True)
class DesignatedAcker(Event):
    """This secondary logger volunteered as a Designated Acker."""

    epoch: int


@dataclass(frozen=True, slots=True)
class Remulticast(Event):
    """A packet was re-multicast (source statack decision or site-local
    repair), with the reason recorded for the benchmark harness."""

    seq: int
    reason: str


@dataclass(frozen=True, slots=True)
class LoggerDiscovered(Event):
    """Expanding-ring discovery located a logging server."""

    logger: Address
    ttl: int


@dataclass(frozen=True, slots=True)
class DiscoveryExhausted(Event):
    """Every discovery ring up to ``max_ttl`` stayed silent; the caller
    should fall back to static configuration (§2.2.1)."""

    max_ttl: int
    queries_sent: int


@dataclass(frozen=True, slots=True)
class LoggerUnreachable(Event):
    """A logger stopped answering; the client escalated upstream."""

    logger: Address


@dataclass(frozen=True, slots=True)
class PrimaryFailover(Event):
    """The source promoted a replica after primary-log failure.

    ``log_epoch`` is the new promotion term; ``high_seq`` the sender's
    high-water mark at failover time (the prefix the promoted primary
    must reach for handover to count as complete).
    """

    old_primary: Address
    new_primary: Address
    resent_packets: int
    log_epoch: int = 0
    high_seq: int = 0


@dataclass(frozen=True, slots=True)
class PromotedToPrimary(Event):
    """This replica was told it is now the primary logger."""

    from_seq: int
    log_epoch: int = 0


@dataclass(frozen=True, slots=True)
class SourceBufferReleased(Event):
    """The source discarded data up to ``seq`` after replica-safe ACK
    (the paper's resource-management benefit, §5/§7)."""

    seq: int


@dataclass(frozen=True, slots=True)
class FaultyAckerDetected(Event):
    """The hotlist flagged a logger acking outside its selection."""

    logger: Address
    reason: str
