"""Baseline protocols the paper compares LBRM against.

* :mod:`repro.baselines.fixed_heartbeat` — the basic receiver-reliable
  scheme with a constant heartbeat period (§2.1.2).
* :mod:`repro.baselines.centralized` — recovery without secondary
  loggers: every NACK goes to the primary (§2.2.2, Fig 7a).
* :mod:`repro.baselines.srm` — wb/SRM-style unorganized recovery with
  multicast requests and repairs (§6).
* :mod:`repro.baselines.senderreliable` — conventional positive-ACK
  multicast with per-receiver state and ACK implosion (§1, §5).
"""

from repro.baselines.centralized import build_centralized, centralized_spec
from repro.baselines.fixed_heartbeat import FIXED_DEFAULT, fixed_heartbeat_config
from repro.baselines.senderreliable import (
    PosAckDataPacket,
    PosAckPacket,
    PosAckReceiver,
    PosAckSender,
)
from repro.baselines.srm import (
    SrmMember,
    SrmRepairPacket,
    SrmRequestPacket,
    SrmSender,
    SrmSessionPacket,
)

__all__ = [
    "build_centralized",
    "centralized_spec",
    "FIXED_DEFAULT",
    "fixed_heartbeat_config",
    "PosAckDataPacket",
    "PosAckPacket",
    "PosAckReceiver",
    "PosAckSender",
    "SrmMember",
    "SrmRepairPacket",
    "SrmRequestPacket",
    "SrmSender",
    "SrmSessionPacket",
]
