"""Positive-acknowledgement (sender-reliable) multicast — the §1/§5 foil.

"A positive acknowledgement scheme used with multicast can lead to an
acknowledgment implosion at the source and significant network load.
Second, positive acknowledgement requires that the source know the
identity of the receivers..."

:class:`PosAckSender` implements exactly that conventional design: it is
configured with the full receiver list, every receiver ACKs every data
packet, the sender retransmits (unicast) to any receiver whose ACK is
late, and buffered data is released only when *all* receivers have
acknowledged it.  The benchmark harness uses it to show per-packet ACK
load growing linearly with group size while LBRM's stays at ``k``
designated ackers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar

from repro.core.actions import Action, Address, Deliver, JoinGroup, SendMulticast, SendUnicast
from repro.core.errors import DecodeError
from repro.core.machine import ProtocolMachine
from repro.core.packets import Packet, PacketType, _pack_bytes, _unpack_bytes, register_packet

__all__ = ["PosAckDataPacket", "PosAckPacket", "PosAckSender", "PosAckReceiver"]


@register_packet
@dataclass(frozen=True, slots=True)
class PosAckDataPacket(Packet):
    """Data under the positive-acknowledgement regime."""

    seq: int
    payload: bytes

    TYPE: ClassVar[PacketType] = PacketType.POSACK_DATA
    WIRE: ClassVar[tuple] = (("seq", "u64"), ("payload", "bytes"))

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.seq) + _pack_bytes(self.payload)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PosAckDataPacket":
        if len(buf) < 8:
            raise DecodeError("truncated POSACK_DATA body")
        (seq,) = struct.unpack_from("!Q", buf, 0)
        payload, end = _unpack_bytes(buf, 8)
        if end != len(buf):
            raise DecodeError("trailing garbage after POSACK_DATA body")
        return cls(group=group, seq=seq, payload=payload)


@register_packet
@dataclass(frozen=True, slots=True)
class PosAckPacket(Packet):
    """Per-receiver cumulative acknowledgement."""

    cum_seq: int

    TYPE: ClassVar[PacketType] = PacketType.POSACK_ACK
    WIRE: ClassVar[tuple] = (("cum_seq", "u64"),)

    def encode_body(self) -> bytes:
        return struct.pack("!Q", self.cum_seq)

    @classmethod
    def decode_body(cls, group: str, buf: memoryview) -> "PosAckPacket":
        if len(buf) != 8:
            raise DecodeError("bad POSACK_ACK body length")
        (cum_seq,) = struct.unpack_from("!Q", buf, 0)
        return cls(group=group, cum_seq=cum_seq)


class PosAckSender(ProtocolMachine):
    """Conventional sender-reliable multicast source.

    Must know every receiver (``receivers``); keeps per-receiver
    cumulative ACK state; retransmits unicast after ``retry`` seconds of
    silence, up to ``max_retries`` per receiver per packet, after which
    the receiver is declared failed and dropped from the ACK quorum.
    """

    def __init__(
        self,
        group: str,
        receivers: tuple[Address, ...],
        retry: float = 0.5,
        max_retries: int = 5,
    ) -> None:
        super().__init__()
        if retry <= 0:
            raise ValueError(f"retry must be positive, got {retry}")
        self._group = group
        self._receivers: set[Address] = set(receivers)
        self._retry = retry
        self._max_retries = max_retries
        self._seq = 0
        self._buffer: dict[int, bytes] = {}
        self._acked: dict[Address, int] = {r: 0 for r in receivers}
        self._retries: dict[tuple[Address, int], int] = {}
        self.stats = {
            "data_sent": 0,
            "acks_received": 0,
            "retransmits": 0,
            "receivers_failed": 0,
        }

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def unreleased(self) -> int:
        """Packets still buffered awaiting the full ACK quorum."""
        return len(self._buffer)

    @property
    def released_up_to(self) -> int:
        if not self._receivers:
            return self._seq
        return min(self._acked[r] for r in self._receivers)

    def start(self, now: float) -> list[Action]:
        return [JoinGroup(group=self._group)]

    def send(self, payload: bytes, now: float) -> list[Action]:
        self._seq += 1
        self._buffer[self._seq] = payload
        self.stats["data_sent"] += 1
        self.timers.set(("retry", self._seq), now + self._retry)
        packet = PosAckDataPacket(group=self._group, seq=self._seq, payload=payload)
        return [SendMulticast(group=self._group, packet=packet)]

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        if not isinstance(packet, PosAckPacket) or src not in self._receivers:
            return []
        self.stats["acks_received"] += 1
        if packet.cum_seq > self._acked.get(src, 0):
            self._acked[src] = packet.cum_seq
        self._release()
        return []

    def _release(self) -> None:
        floor = self.released_up_to
        for seq in [s for s in self._buffer if s <= floor]:
            del self._buffer[seq]
            self.timers.cancel(("retry", seq))

    def poll(self, now: float) -> list[Action]:
        actions: list[Action] = []
        for key in self.timers.pop_due(now):
            if key[0] != "retry":
                continue
            seq = key[1]
            payload = self._buffer.get(seq)
            if payload is None:
                continue
            packet = PosAckDataPacket(group=self._group, seq=seq, payload=payload)
            for receiver in list(self._receivers):
                if self._acked.get(receiver, 0) >= seq:
                    continue
                attempts = self._retries.get((receiver, seq), 0)
                if attempts >= self._max_retries:
                    # Conventional protocols must eventually declare the
                    # receiver dead or block forever (§5's criticism).
                    self._receivers.discard(receiver)
                    self.stats["receivers_failed"] += 1
                    continue
                self._retries[(receiver, seq)] = attempts + 1
                self.stats["retransmits"] += 1
                actions.append(SendUnicast(dest=receiver, packet=packet))
            self._release()
            if seq in self._buffer:
                self.timers.set(("retry", seq), now + self._retry)
        return actions


class PosAckReceiver(ProtocolMachine):
    """Receiver that positively acknowledges everything, in order.

    Delivery is *in-order* (the conventional-transport semantics §5
    contrasts with LBRM): a gap stalls delivery of later packets until
    the retransmission arrives — the head-of-line blocking the paper's
    real-time argument is about.
    """

    def __init__(self, group: str, sender: Address) -> None:
        super().__init__()
        self._group = group
        self._sender = sender
        self._cum = 0
        self._pending: dict[int, bytes] = {}
        self.stats = {"data_received": 0, "acks_sent": 0, "stalled": 0}

    @property
    def cum_seq(self) -> int:
        return self._cum

    def start(self, now: float) -> list[Action]:
        return [JoinGroup(group=self._group)]

    def handle(self, packet: Packet, src: Address, now: float) -> list[Action]:
        if not isinstance(packet, PosAckDataPacket):
            return []
        self.stats["data_received"] += 1
        actions: list[Action] = []
        if packet.seq > self._cum and packet.seq not in self._pending:
            self._pending[packet.seq] = packet.payload
        # Deliver any now-contiguous prefix, in order.
        while self._cum + 1 in self._pending:
            self._cum += 1
            actions.append(Deliver(seq=self._cum, payload=self._pending.pop(self._cum), recovered=False))
        if self._pending:
            self.stats["stalled"] += len(self._pending)
        self.stats["acks_sent"] += 1
        actions.append(SendUnicast(dest=self._sender, packet=PosAckPacket(group=self._group, cum_seq=self._cum)))
        return actions

    def poll(self, now: float) -> list[Action]:
        return []
